//! Reusable [`SimWorkspace`] pool: concurrent sessions borrow a
//! workspace on open (or restore) and give it back when the run
//! finishes, so a long-lived server serving many short sims converges
//! to steady-state allocations instead of re-growing every arena per
//! request. The pool is a plain LIFO — reuse is an allocation-level
//! optimization only and never observable in results (a fresh and a
//! reused workspace produce bit-identical runs; the engine's campaign
//! tests enforce this).

use bc_engine::SimWorkspace;

/// A LIFO pool of simulation workspaces with reuse accounting.
#[derive(Default)]
pub struct WorkspacePool {
    free: Vec<SimWorkspace>,
    created: u64,
    reused: u64,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a workspace, reusing a released one when available.
    pub fn acquire(&mut self) -> SimWorkspace {
        match self.free.pop() {
            Some(ws) => {
                self.reused += 1;
                ws
            }
            None => {
                self.created += 1;
                SimWorkspace::new()
            }
        }
    }

    /// Returns a workspace to the pool for the next acquire.
    pub fn release(&mut self, ws: SimWorkspace) {
        self.free.push(ws);
    }

    /// Workspaces currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Workspaces ever constructed by this pool.
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Acquires that were served from the pool instead of allocating.
    pub fn reused(&self) -> u64 {
        self.reused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_prefers_released_workspaces() {
        let mut pool = WorkspacePool::new();
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!((pool.created(), pool.reused(), pool.idle()), (2, 0, 0));
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.acquire();
        assert_eq!((pool.created(), pool.reused(), pool.idle()), (2, 1, 1));
    }
}
