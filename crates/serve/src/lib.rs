//! Open-world service mode: a long-running, JSON-per-line simulation
//! server (`bc-serve`) multiplexing concurrent bandwidth-centric
//! simulations over a shared workspace pool.
//!
//! The protocol is newline-delimited JSON in both directions. Requests
//! name a command (`"cmd"`) and usually a session (`"sim"`); responses
//! name an event (`"ev"`). A session is opened from a tree + workload
//! spec (closed batch or streamed arrivals), stepped or run — possibly
//! many sessions at once via `run-all` — paused to a snapshot, resumed,
//! exported, restored, and queried for exact-rational latency metrics.
//!
//! Everything below the line protocol is pure and deterministic:
//! [`server::Server::handle_line`] maps request lines to response lines
//! with no I/O, so the whole server is testable in-process and its
//! output streams are byte-stable across runs and worker-thread counts.

pub mod pool;
pub mod proto;
pub mod server;

pub use pool::WorkspacePool;
pub use proto::{
    from_hex, parse_request, to_hex, OpenSpec, Request, TreeSpec, MAX_LINE_LEN, MAX_SIM_NAME_LEN,
};
pub use server::{oversized_line_error, RecoverReport, Server, StreamSink, DEFAULT_MAX_SESSIONS};
