//! Wire protocol of the simulation server: JSON-per-line requests in,
//! JSON-per-line events out.
//!
//! Every request is one JSON object with a `"cmd"` field; every output
//! line is one JSON object with an `"ev"` field. The parser is strict
//! about shapes (a malformed request yields one `{"ev":"error"}` line
//! and changes nothing) but tolerant about order — fields may appear in
//! any order, and unknown fields are ignored so clients can annotate
//! requests freely.
//!
//! See DESIGN.md ("Open-world service mode") for the session lifecycle
//! and `bc-serve --help` for a worked example.

use bc_engine::{
    AdmissionPolicy, ArrivalPlan, ArrivalProcess, FaultEvent, FaultKind, FaultPlan, RecoveryTuning,
    SimConfig, TaskClass,
};
use bc_platform::{NodeId, RandomTreeConfig, Tree};
use serde::Value;

/// Default fault-plan jitter seed when a request schedules faults
/// without picking one.
pub const DEFAULT_FAULT_SEED: u64 = 0xBC5E;

/// Hard bound on an accepted request line, in bytes. Generous enough
/// for a hex-encoded restore of a large mid-run snapshot (hex doubles
/// the byte count), tight enough that a hostile endless line cannot
/// buffer unboundedly: both `Server::handle_line` and the binary's
/// stdin reader enforce it.
pub const MAX_LINE_LEN: usize = 4 << 20;

/// Hard bound on a session name, in bytes.
pub const MAX_SIM_NAME_LEN: usize = 64;

/// One parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Create a session from a tree + workload spec.
    Open { sim: String, spec: Box<OpenSpec> },
    /// Advance one session by up to `events` events.
    Step { sim: String, events: u64 },
    /// Run one session to completion.
    Run { sim: String },
    /// Run every live session to completion (in parallel; output is
    /// emitted in session-name order regardless of worker count).
    RunAll,
    /// Run one session until its clock is about to reach `time`.
    RunUntil { sim: String, time: u64 },
    /// Capture a snapshot and drop the live engine state.
    Pause { sim: String },
    /// Rebuild the live engine state from the pause snapshot.
    Resume { sim: String },
    /// Emit the session's serialized snapshot (hex bytes).
    Snapshot { sim: String },
    /// Create a session from serialized snapshot bytes.
    Restore { sim: String, bytes: Vec<u8> },
    /// Emit current progress / final latency metrics.
    Metrics { sim: String },
    /// Emit a one-line inventory of sessions and the workspace pool.
    Status,
    /// Discard a session.
    Close { sim: String },
    /// Stop serving.
    Shutdown,
}

/// Everything an `open` request configures.
#[derive(Debug)]
pub struct OpenSpec {
    /// How to build the platform tree.
    pub tree: TreeSpec,
    /// The assembled engine configuration (validated by the server).
    pub cfg: SimConfig,
    /// Stream per-event trace lines.
    pub trace: bool,
    /// Emit a `metric` event each time this many events elapse (0 = off).
    pub metrics_every: u64,
}

/// A platform tree, either generated or given explicitly.
#[derive(Debug)]
pub enum TreeSpec {
    /// `RandomTreeConfig::generate(seed)`.
    Random { config: RandomTreeConfig, seed: u64 },
    /// Explicit `(parent, comm, compute)` rows in id order (row `k` is
    /// node `k + 1`; parents must precede children).
    Explicit {
        root_compute: u64,
        nodes: Vec<(usize, u64, u64)>,
    },
}

impl TreeSpec {
    /// Builds and validates the tree.
    pub fn build(&self) -> Result<Tree, String> {
        let tree = match self {
            TreeSpec::Random { config, seed } => config.generate(*seed),
            TreeSpec::Explicit {
                root_compute,
                nodes,
            } => {
                let mut tree = Tree::new(*root_compute);
                for (k, &(parent, comm, compute)) in nodes.iter().enumerate() {
                    if parent > k {
                        return Err(format!(
                            "tree node {} names parent {parent}, which does not precede it",
                            k + 1
                        ));
                    }
                    tree.add_child(NodeId(parent as u32), comm, compute);
                }
                tree
            }
        };
        tree.validate()
            .map_err(|e| format!("invalid tree: {e:?}"))?;
        Ok(tree)
    }
}

// ---------------------------------------------------------------------
// Value helpers (the vendored serde shim has no derive)
// ---------------------------------------------------------------------

fn opt<T: serde::Deserialize>(v: &Value, key: &str) -> Result<Option<T>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(f) => T::from_value(f)
            .map(Some)
            .map_err(|e| format!("field `{key}`: {e}")),
    }
}

fn req<T: serde::Deserialize>(v: &Value, key: &str) -> Result<T, String> {
    opt(v, key)?.ok_or_else(|| format!("missing field `{key}`"))
}

fn sim_name(v: &Value) -> Result<String, String> {
    let name: String = req(v, "sim")?;
    if name.is_empty() || name.len() > MAX_SIM_NAME_LEN {
        return Err(format!("`sim` must be 1..={MAX_SIM_NAME_LEN} characters"));
    }
    Ok(name)
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

/// Parses one request line. `Err` is a human-readable message for an
/// `{"ev":"error"}` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
    let cmd: String = req(&v, "cmd")?;
    match cmd.as_str() {
        "open" => Ok(Request::Open {
            sim: sim_name(&v)?,
            spec: Box::new(parse_open(&v)?),
        }),
        "step" => Ok(Request::Step {
            sim: sim_name(&v)?,
            events: opt(&v, "events")?.unwrap_or(1).max(1),
        }),
        "run" => Ok(Request::Run { sim: sim_name(&v)? }),
        "run-all" => Ok(Request::RunAll),
        "run-until" => Ok(Request::RunUntil {
            sim: sim_name(&v)?,
            time: req(&v, "time")?,
        }),
        "pause" => Ok(Request::Pause { sim: sim_name(&v)? }),
        "resume" => Ok(Request::Resume { sim: sim_name(&v)? }),
        "snapshot" => Ok(Request::Snapshot { sim: sim_name(&v)? }),
        "restore" => Ok(Request::Restore {
            sim: sim_name(&v)?,
            bytes: from_hex(&req::<String>(&v, "bytes")?)?,
        }),
        "metrics" => Ok(Request::Metrics { sim: sim_name(&v)? }),
        "status" => Ok(Request::Status),
        "close" => Ok(Request::Close { sim: sim_name(&v)? }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown cmd {other:?}")),
    }
}

fn parse_open(v: &Value) -> Result<OpenSpec, String> {
    let tree = parse_tree(v.get("tree").ok_or("missing field `tree`")?)?;
    let buffers: u32 = opt(v, "buffers")?.unwrap_or(2);
    let tasks: u64 = opt(v, "tasks")?.unwrap_or(0);
    let protocol: Option<String> = opt(v, "protocol")?;
    let mut cfg = match protocol.as_deref().unwrap_or("ic") {
        "ic" => SimConfig::interruptible(buffers, tasks),
        "nonic" => SimConfig::non_interruptible(buffers, tasks),
        "nonic-fixed" => SimConfig::non_interruptible_fixed(buffers, tasks),
        other => {
            return Err(format!(
                "unknown protocol {other:?}; use ic, nonic, or nonic-fixed"
            ))
        }
    };
    cfg = cfg.with_checked(opt(v, "checked")?.unwrap_or(false));
    if let Some(arr) = v.get("arrivals") {
        cfg = cfg.with_arrivals(parse_arrivals(arr)?);
    } else if tasks == 0 {
        return Err("need `tasks` (closed batch) or `arrivals` (open world)".into());
    }
    if let Some(faults) = v.get("faults") {
        cfg = cfg.with_fault_plan(parse_faults(faults, opt(v, "fault_seed")?)?);
    }
    Ok(OpenSpec {
        tree,
        cfg,
        trace: opt(v, "trace")?.unwrap_or(false),
        metrics_every: opt(v, "metrics_every")?.unwrap_or(0),
    })
}

fn parse_tree(v: &Value) -> Result<TreeSpec, String> {
    if let Some(r) = v.get("random") {
        return Ok(TreeSpec::Random {
            config: RandomTreeConfig {
                min_nodes: req(r, "min_nodes")?,
                max_nodes: req(r, "max_nodes")?,
                comm_min: req(r, "comm_min")?,
                comm_max: req(r, "comm_max")?,
                compute_scale: req(r, "compute_scale")?,
            },
            seed: req(r, "seed")?,
        });
    }
    let rows: Vec<Vec<u64>> = req(v, "nodes")?;
    let mut nodes = Vec::with_capacity(rows.len());
    for (k, row) in rows.iter().enumerate() {
        let [parent, comm, compute] = row.as_slice() else {
            return Err(format!(
                "tree node {} must be [parent, comm, compute]",
                k + 1
            ));
        };
        nodes.push((*parent as usize, *comm, *compute));
    }
    Ok(TreeSpec::Explicit {
        root_compute: req(v, "root_compute")?,
        nodes,
    })
}

fn parse_arrivals(v: &Value) -> Result<ArrivalPlan, String> {
    let policy: String = opt(v, "policy")?.unwrap_or_else(|| "defer".into());
    let policy = match policy.as_str() {
        "defer" => AdmissionPolicy::Defer,
        "drop" => AdmissionPolicy::Drop,
        other => return Err(format!("unknown policy {other:?}; use defer or drop")),
    };
    let Some(Value::Array(classes)) = v.get("classes") else {
        return Err("`arrivals.classes` must be an array".into());
    };
    let classes = classes
        .iter()
        .enumerate()
        .map(|(i, c)| parse_class(c, i))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ArrivalPlan {
        seed: req(v, "seed")?,
        classes,
        queue_cap: req(v, "queue_cap")?,
        policy,
    })
}

fn parse_class(v: &Value, index: usize) -> Result<TaskClass, String> {
    let process = if let Some(p) = v.get("poisson") {
        ArrivalProcess::Poisson {
            mean_gap: req(p, "mean_gap")?,
            count: req(p, "count")?,
        }
    } else if let Some(b) = v.get("burst") {
        ArrivalProcess::Burst {
            phase: req(b, "phase")?,
            period: req(b, "period")?,
            size: req(b, "size")?,
            bursts: req(b, "bursts")?,
        }
    } else if let Some(t) = v.get("trace") {
        ArrivalProcess::Trace {
            times: serde::Deserialize::from_value(t)
                .map_err(|e| format!("class {index} trace: {e}"))?,
        }
    } else {
        return Err(format!(
            "class {index} needs a `poisson`, `burst`, or `trace` process"
        ));
    };
    Ok(TaskClass {
        name: opt(v, "name")?.unwrap_or_else(|| format!("class{index}")),
        work_units: opt(v, "units")?.unwrap_or(1),
        process,
    })
}

fn parse_faults(v: &Value, seed: Option<u64>) -> Result<FaultPlan, String> {
    let Value::Array(items) = v else {
        return Err("`faults` must be an array".into());
    };
    let mut faults = Vec::with_capacity(items.len());
    for (i, f) in items.iter().enumerate() {
        let kind: String = req(f, "kind")?;
        let kind = match kind.as_str() {
            "outage" => FaultKind::LinkOutage {
                duration: req(f, "duration")?,
            },
            "crash" => FaultKind::Crash,
            "abort" => FaultKind::TransferAbort,
            "request-loss" => FaultKind::RequestLoss {
                batches: req(f, "batches")?,
            },
            "duplicate" => FaultKind::DuplicateDelivery {
                copies: req(f, "copies")?,
            },
            other => {
                return Err(format!(
                    "fault {i}: unknown kind {other:?}; use outage, crash, abort, \
                     request-loss, or duplicate"
                ))
            }
        };
        faults.push(FaultEvent {
            at: req(f, "at")?,
            node: NodeId(req::<u32>(f, "node")?),
            kind,
        });
    }
    Ok(FaultPlan {
        seed: seed.unwrap_or(DEFAULT_FAULT_SEED),
        faults,
        recovery: RecoveryTuning::default(),
    })
}

// ---------------------------------------------------------------------
// Hex (snapshot bytes on the wire)
// ---------------------------------------------------------------------

/// Lowercase hex encoding of snapshot bytes.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`to_hex`].
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("hex string has odd length".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| format!("bad hex at byte {i}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_engine::Protocol;

    #[test]
    fn parses_a_full_open_request() {
        let line = r#"{"cmd":"open","sim":"a","protocol":"nonic-fixed","buffers":3,
            "tree":{"root_compute":5,"nodes":[[0,2,7],[1,1,3]]},
            "arrivals":{"seed":9,"queue_cap":4,"policy":"drop","classes":[
                {"name":"bg","poisson":{"mean_gap":3,"count":30}},
                {"units":2,"burst":{"phase":10,"period":25,"size":3,"bursts":4}},
                {"trace":[5,17,90]}]},
            "faults":[{"at":40,"node":2,"kind":"outage","duration":12}],
            "trace":true,"metrics_every":64}"#;
        let Request::Open { sim, spec } = parse_request(line).unwrap() else {
            panic!("not an open");
        };
        assert_eq!(sim, "a");
        assert!(spec.trace);
        assert_eq!(spec.metrics_every, 64);
        let tree = spec.tree.build().unwrap();
        assert_eq!(tree.len(), 3);
        assert_eq!(spec.cfg.protocol, Protocol::NonInterruptible);
        let plan = spec.cfg.arrivals.as_ref().unwrap();
        assert_eq!(plan.classes.len(), 3);
        assert_eq!(plan.classes[0].name, "bg");
        assert_eq!(plan.classes[1].work_units, 2);
        assert_eq!(plan.policy, AdmissionPolicy::Drop);
        // `with_arrivals` keeps total_tasks synced to the plan.
        assert_eq!(spec.cfg.total_tasks, plan.total_units());
        let fp = spec.cfg.fault_plan.as_ref().unwrap();
        assert_eq!(fp.faults.len(), 1);
        assert_eq!(fp.seed, DEFAULT_FAULT_SEED);
        spec.cfg.validate().unwrap();
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("nonsense", "JSON"),
            (r#"{"sim":"a"}"#, "missing field `cmd`"),
            (r#"{"cmd":"warp","sim":"a"}"#, "unknown cmd"),
            (r#"{"cmd":"open","sim":"a"}"#, "missing field `tree`"),
            (r#"{"cmd":"step"}"#, "missing field `sim`"),
            (
                r#"{"cmd":"open","sim":"a","tree":{"root_compute":5,"nodes":[]}}"#,
                "need `tasks`",
            ),
            (
                r#"{"cmd":"open","sim":"a","tasks":5,"protocol":"warp",
                   "tree":{"root_compute":5,"nodes":[]}}"#,
                "unknown protocol",
            ),
            (
                r#"{"cmd":"open","sim":"a","tasks":5,
                   "tree":{"root_compute":5,"nodes":[[2,1,1]]}}"#,
                "does not precede",
            ),
            (r#"{"cmd":"restore","sim":"a","bytes":"xyz"}"#, "hex"),
        ] {
            let err = match parse_request(line) {
                Err(e) => e,
                Ok(r) => {
                    // Tree building is deferred; force it for tree cases.
                    match r {
                        Request::Open { spec, .. } => spec.tree.build().unwrap_err(),
                        other => panic!("accepted {line:?} as {other:?}"),
                    }
                }
            };
            assert!(err.contains(needle), "for {line:?} got {err:?}");
        }
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }
}
