//! The session engine behind `bc-serve`: a pure line-in/lines-out state
//! machine multiplexing any number of concurrent simulations over one
//! [`WorkspacePool`].
//!
//! [`Server::handle_line`] is deliberately free of I/O — the binary
//! feeds it stdin lines and prints what comes back, and the e2e tests
//! drive it in-process and compare byte-for-byte against golden
//! streams. Determinism contract: the output lines are a pure function
//! of the request lines, independent of worker-thread count (`run-all`
//! runs sessions in parallel but emits each session's chunk in
//! session-name order).

use crate::pool::WorkspacePool;
use crate::proto::{parse_request, to_hex, OpenSpec, Request};
use bc_engine::{RunResult, SimSnapshot, SimWorkspace, Simulation, TraceRecord, TraceSink};
use bc_metrics::{latency_profile, per_class_throughput, LatencyProfile, LatencySummary};
use bc_simcore::{Time, TraceEvent};
use rayon::IntoParallelIterator;
use serde::{object, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Trace streaming
// ---------------------------------------------------------------------

/// A sink that appends into a shared buffer the session drains into
/// output lines between steps. Sessions opened without `"trace":true`
/// still carry one (so every session has the same `Simulation` type and
/// identical semantics) but record nothing.
pub struct StreamSink {
    buf: Arc<Mutex<Vec<TraceRecord>>>,
    enabled: bool,
}

impl TraceSink for StreamSink {
    fn record(&mut self, time: Time, event: TraceEvent) {
        if self.enabled {
            self.buf
                .lock()
                .expect("trace buffer poisoned")
                .push(TraceRecord { time, event });
        }
    }
}

// ---------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------

enum State {
    /// Engine state in memory, ready to step.
    Live(Box<Simulation<StreamSink>>),
    /// Snapshot-backed: the engine state was captured and dropped.
    Paused(Box<SimSnapshot>),
    /// Finished; the result is kept for metrics queries.
    Done(Box<RunResult>),
    /// Transient placeholder while ownership moves (never observable).
    Moving,
}

struct Session {
    state: State,
    trace: bool,
    metrics_every: u64,
    next_metric: u64,
    buf: Arc<Mutex<Vec<TraceRecord>>>,
    /// Arrival class names, for per-class throughput in `done`/`metrics`.
    classes: Vec<String>,
}

impl Session {
    fn state_name(&self) -> &'static str {
        match self.state {
            State::Live(_) => "live",
            State::Paused(_) => "paused",
            State::Done(_) => "done",
            State::Moving => unreachable!("transient state escaped"),
        }
    }

    /// Moves buffered trace records into output lines.
    fn drain_trace(&mut self, name: &str, out: &mut Vec<String>) {
        let mut buf = self.buf.lock().expect("trace buffer poisoned");
        for rec in buf.drain(..) {
            // The Display form is padded for column alignment; collapse
            // runs of spaces so wire lines stay compact.
            let text = rec.to_string();
            let text: Vec<&str> = text.split_whitespace().collect();
            out.push(line(
                "trace",
                Some(name),
                vec![
                    ("t", Value::Int(rec.time as i128)),
                    ("text", Value::Str(text.join(" "))),
                ],
            ));
        }
    }

    /// Emits `metric` lines for every `metrics_every` boundary the event
    /// counter has crossed.
    fn drain_metrics(&mut self, name: &str, out: &mut Vec<String>) {
        if self.metrics_every == 0 {
            return;
        }
        if let State::Live(sim) = &self.state {
            while sim.events_processed() >= self.next_metric {
                out.push(line(
                    "metric",
                    Some(name),
                    vec![
                        ("t", Value::Int(sim.now() as i128)),
                        ("events", Value::Int(sim.events_processed() as i128)),
                        ("completed", Value::Int(sim.completed() as i128)),
                    ],
                ));
                self.next_metric += self.metrics_every;
            }
        }
    }

    /// Finishes a `Live` session whose engine reported completion:
    /// builds the `RunResult`, emits the `done` line, and hands the
    /// workspace back for the pool.
    fn finalize(&mut self, name: &str, out: &mut Vec<String>) -> SimWorkspace {
        let State::Live(sim) = std::mem::replace(&mut self.state, State::Moving) else {
            unreachable!("finalize on a non-live session");
        };
        let (result, ws, _sink) = sim.run_traced();
        self.drain_trace(name, out);
        out.push(done_line(name, &result, &self.classes));
        self.state = State::Done(Box::new(result));
        ws
    }

    /// Steps up to `budget` events, streaming trace/metric lines.
    /// Returns `(events_stepped, finished_workspace)`.
    fn step_n(
        &mut self,
        name: &str,
        budget: u64,
        out: &mut Vec<String>,
    ) -> (u64, Option<SimWorkspace>) {
        let mut did = 0;
        let mut finished = false;
        if let State::Live(sim) = &mut self.state {
            sim.start();
            for _ in 0..budget {
                if !sim.step() {
                    finished = true;
                    break;
                }
                did += 1;
            }
        }
        self.drain_trace(name, out);
        self.drain_metrics(name, out);
        if finished {
            let summary = self.progress();
            out.push(line("stepped", Some(name), with_more(summary, false)));
            let ws = self.finalize(name, out);
            (did, Some(ws))
        } else {
            let summary = self.progress();
            out.push(line("stepped", Some(name), with_more(summary, true)));
            (did, None)
        }
    }

    /// Runs to completion, streaming metric lines at the configured
    /// cadence (and trace lines at the end of each stride).
    fn run_to_end(&mut self, name: &str, out: &mut Vec<String>) -> Option<SimWorkspace> {
        loop {
            let mut finished = false;
            if let State::Live(sim) = &mut self.state {
                sim.start();
                // Stride to the next metric boundary (or the end) so
                // untraced, unmetered runs stay a tight loop.
                if self.metrics_every == 0 {
                    while sim.step() {}
                    finished = true;
                } else {
                    let target = self.next_metric;
                    while sim.events_processed() < target {
                        if !sim.step() {
                            finished = true;
                            break;
                        }
                    }
                }
            } else {
                return None;
            }
            self.drain_trace(name, out);
            self.drain_metrics(name, out);
            if finished {
                return Some(self.finalize(name, out));
            }
        }
    }

    /// Progress fields of a live session.
    fn progress(&self) -> Vec<(&'static str, Value)> {
        match &self.state {
            State::Live(sim) => vec![
                ("t", Value::Int(sim.now() as i128)),
                ("events", Value::Int(sim.events_processed() as i128)),
                ("completed", Value::Int(sim.completed() as i128)),
            ],
            State::Done(r) => vec![
                ("t", Value::Int(r.end_time as i128)),
                ("events", Value::Int(r.events_processed as i128)),
                ("completed", Value::Int(r.completion_times.len() as i128)),
            ],
            State::Paused(s) => vec![("events", Value::Int(s.events_processed() as i128))],
            State::Moving => unreachable!("transient state escaped"),
        }
    }
}

fn with_more(mut fields: Vec<(&'static str, Value)>, more: bool) -> Vec<(&'static str, Value)> {
    fields.push(("more", Value::Bool(more)));
    fields
}

// ---------------------------------------------------------------------
// Output lines
// ---------------------------------------------------------------------

fn line(ev: &str, sim: Option<&str>, fields: Vec<(&str, Value)>) -> String {
    let mut all = vec![("ev", Value::Str(ev.into()))];
    if let Some(s) = sim {
        all.push(("sim", Value::Str(s.into())));
    }
    all.extend(fields);
    serde_json::to_string(&object(all)).expect("serialization is infallible")
}

fn err_line(sim: Option<&str>, msg: &str) -> String {
    line("error", sim, vec![("msg", Value::Str(msg.into()))])
}

fn summary_value(s: &LatencySummary) -> Value {
    let num = |v: Option<u64>| match v {
        Some(n) => Value::Int(n as i128),
        None => Value::Null,
    };
    object(vec![
        ("count", Value::Int(s.count() as i128)),
        (
            "mean",
            match s.mean() {
                Some(m) => Value::Str(m.to_string()),
                None => Value::Null,
            },
        ),
        ("p50", num(s.p50())),
        ("p99", num(s.p99())),
        ("min", num(s.min())),
        ("max", num(s.max())),
    ])
}

fn latency_value(p: &LatencyProfile) -> Value {
    object(vec![
        ("sojourn", summary_value(&p.sojourn)),
        ("queue_wait", summary_value(&p.queue_wait)),
        ("service", summary_value(&p.service)),
    ])
}

fn arrival_values(r: &RunResult, classes: &[String]) -> Vec<(&'static str, Value)> {
    let ar = &r.arrivals;
    let profile = latency_profile(&ar.admit_times, &ar.dispatch_times, &r.completion_times);
    let throughput = per_class_throughput(&ar.completed_per_class, r.end_time);
    vec![
        (
            "arrivals",
            object(vec![
                ("submitted", Value::Int(ar.submitted as i128)),
                ("admitted", Value::Int(ar.admitted as i128)),
                ("rejected", Value::Int(ar.rejected as i128)),
                ("deferrals", Value::Int(ar.deferrals as i128)),
                ("peak_deferred", Value::Int(ar.peak_deferred as i128)),
            ]),
        ),
        ("latency", latency_value(&profile)),
        (
            "throughput",
            Value::Array(
                classes
                    .iter()
                    .zip(ar.completed_per_class.iter().zip(&throughput))
                    .map(|(name, (&completed, rate))| {
                        object(vec![
                            ("class", Value::Str(name.clone())),
                            ("completed", Value::Int(completed as i128)),
                            ("rate", Value::Str(rate.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]
}

fn done_line(name: &str, r: &RunResult, classes: &[String]) -> String {
    let mut fields = vec![
        ("end_time", Value::Int(r.end_time as i128)),
        ("completed", Value::Int(r.completion_times.len() as i128)),
        ("events", Value::Int(r.events_processed as i128)),
        ("preemptions", Value::Int(r.preemptions as i128)),
        ("transfers", Value::Int(r.transfers_started as i128)),
        ("requests", Value::Int(r.requests_sent as i128)),
        (
            "max_buffers",
            Value::Int(r.max_buffers_per_node.iter().copied().max().unwrap_or(0) as i128),
        ),
    ];
    if r.faults.faults_injected > 0 {
        let f = &r.faults;
        fields.push((
            "faults",
            object(vec![
                ("injected", Value::Int(f.faults_injected as i128)),
                ("tasks_lost", Value::Int(f.tasks_lost as i128)),
                ("reissued", Value::Int(f.tasks_reissued as i128)),
                ("retries", Value::Int(f.retries as i128)),
                ("crashes", Value::Int(f.crashes as i128)),
                ("aborts", Value::Int(f.transfer_aborts as i128)),
            ]),
        ));
    }
    if r.arrivals.submitted > 0 {
        fields.extend(arrival_values(r, classes));
    }
    line("done", Some(name), fields)
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// A multiplexing simulation server; see the module docs.
#[derive(Default)]
pub struct Server {
    sessions: BTreeMap<String, Session>,
    pool: WorkspacePool,
    shutdown: bool,
}

impl Server {
    /// A server with no sessions and an empty workspace pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once a `shutdown` request was handled; the driving loop
    /// should stop feeding lines.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// Handles one request line, returning the response lines in order.
    /// Blank lines are ignored. Never panics on malformed input — bad
    /// requests produce one `error` line and change nothing.
    pub fn handle_line(&mut self, raw: &str) -> Vec<String> {
        let raw = raw.trim();
        if raw.is_empty() {
            return Vec::new();
        }
        let req = match parse_request(raw) {
            Ok(r) => r,
            Err(msg) => return vec![err_line(None, &msg)],
        };
        let mut out = Vec::new();
        match req {
            Request::Open { sim, spec } => self.open(&sim, &spec, &mut out),
            Request::Step { sim, events } => {
                self.with_session(&sim, &mut out, |s, name, out| match s.state {
                    State::Live(_) => {
                        let (_, ws) = s.step_n(name, events, out);
                        Ok(ws)
                    }
                    _ => Err(format!("sim {name:?} is {}, not live", s.state_name())),
                })
            }
            Request::Run { sim } => {
                self.with_session(&sim, &mut out, |s, name, out| match s.state {
                    State::Live(_) => Ok(s.run_to_end(name, out)),
                    _ => Err(format!("sim {name:?} is {}, not live", s.state_name())),
                })
            }
            Request::RunAll => self.run_all(&mut out),
            Request::RunUntil { sim, time } => self.with_session(&sim, &mut out, |s, name, out| {
                let State::Live(sim) = &mut s.state else {
                    return Err(format!("sim {name:?} is {}, not live", s.state_name()));
                };
                let more = sim.run_to_time(time);
                s.drain_trace(name, out);
                s.drain_metrics(name, out);
                let summary = s.progress();
                out.push(line("ran", Some(name), with_more(summary, more)));
                Ok(if more {
                    None
                } else {
                    Some(s.finalize(name, out))
                })
            }),
            Request::Pause { sim } => self.with_session(&sim, &mut out, |s, name, out| {
                let State::Live(sim) = &mut s.state else {
                    return Err(format!("sim {name:?} is {}, not live", s.state_name()));
                };
                sim.start();
                let snap = sim.snapshot();
                let fields = vec![
                    ("t", Value::Int(sim.now() as i128)),
                    ("events", Value::Int(sim.events_processed() as i128)),
                ];
                s.state = State::Paused(Box::new(snap));
                s.drain_trace(name, out);
                out.push(line("paused", Some(name), fields));
                Ok(None)
            }),
            Request::Resume { sim } => match self.sessions.get_mut(&sim) {
                None => out.push(err_line(Some(&sim), &format!("no sim {sim:?}"))),
                Some(s) => {
                    let State::Paused(snap) = &s.state else {
                        out.push(err_line(
                            Some(&sim),
                            &format!("sim {sim:?} is {}, not paused", s.state_name()),
                        ));
                        return out;
                    };
                    let sink = StreamSink {
                        buf: Arc::clone(&s.buf),
                        enabled: s.trace,
                    };
                    let live = Simulation::from_snapshot_traced(snap, self.pool.acquire(), sink);
                    let fields = vec![
                        ("t", Value::Int(live.now() as i128)),
                        ("events", Value::Int(live.events_processed() as i128)),
                    ];
                    s.state = State::Live(Box::new(live));
                    out.push(line("resumed", Some(&sim), fields));
                }
            },
            Request::Snapshot { sim } => self.with_session(&sim, &mut out, |s, name, out| {
                let bytes = match &mut s.state {
                    State::Live(sim) => {
                        sim.start();
                        sim.snapshot().to_bytes()
                    }
                    State::Paused(snap) => snap.to_bytes(),
                    State::Done(_) => {
                        return Err(format!("sim {name:?} is done; nothing to snapshot"))
                    }
                    State::Moving => unreachable!("transient state escaped"),
                };
                s.drain_trace(name, out);
                out.push(line(
                    "snapshot",
                    Some(name),
                    vec![
                        ("len", Value::Int(bytes.len() as i128)),
                        ("bytes", Value::Str(to_hex(&bytes))),
                    ],
                ));
                Ok(None)
            }),
            Request::Restore { sim, bytes } => self.restore(&sim, &bytes, &mut out),
            Request::Metrics { sim } => self.with_session(&sim, &mut out, |s, name, out| {
                let mut fields = vec![("state", Value::Str(s.state_name().into()))];
                fields.extend(s.progress());
                if let State::Done(r) = &s.state {
                    if r.arrivals.submitted > 0 {
                        fields.extend(arrival_values(r, &s.classes));
                    }
                }
                out.push(line("metrics", Some(name), fields));
                Ok(None)
            }),
            Request::Status => self.status(&mut out),
            Request::Close { sim } => {
                if self.sessions.remove(&sim).is_some() {
                    out.push(line("closed", Some(&sim), vec![]));
                } else {
                    out.push(err_line(Some(&sim), &format!("no sim {sim:?}")));
                }
            }
            Request::Shutdown => {
                self.shutdown = true;
                out.push(line(
                    "bye",
                    None,
                    vec![("sims", Value::Int(self.sessions.len() as i128))],
                ));
            }
        }
        out
    }

    /// Runs the session closure, routing a missing session or a closure
    /// error to an `error` line and releasing any returned workspace.
    fn with_session(
        &mut self,
        name: &str,
        out: &mut Vec<String>,
        f: impl FnOnce(&mut Session, &str, &mut Vec<String>) -> Result<Option<SimWorkspace>, String>,
    ) {
        match self.sessions.get_mut(name) {
            None => out.push(err_line(Some(name), &format!("no sim {name:?}"))),
            Some(s) => match f(s, name, out) {
                Ok(Some(ws)) => self.pool.release(ws),
                Ok(None) => {}
                Err(msg) => out.push(err_line(Some(name), &msg)),
            },
        }
    }

    fn open(&mut self, name: &str, spec: &OpenSpec, out: &mut Vec<String>) {
        if self.sessions.contains_key(name) {
            out.push(err_line(Some(name), &format!("sim {name:?} already open")));
            return;
        }
        let tree = match spec.tree.build() {
            Ok(t) => t,
            Err(msg) => return out.push(err_line(Some(name), &msg)),
        };
        if let Err(msg) = spec.cfg.validate() {
            return out.push(err_line(Some(name), &msg));
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = StreamSink {
            buf: Arc::clone(&buf),
            enabled: spec.trace,
        };
        let nodes = tree.len();
        let mut sim = Simulation::traced(tree, spec.cfg.clone(), self.pool.acquire(), sink);
        sim.start();
        let mut session = Session {
            state: State::Live(Box::new(sim)),
            trace: spec.trace,
            metrics_every: spec.metrics_every,
            next_metric: spec.metrics_every.max(1),
            buf,
            classes: spec
                .cfg
                .arrivals
                .as_ref()
                .map(|p| p.classes.iter().map(|c| c.name.clone()).collect())
                .unwrap_or_default(),
        };
        out.push(line(
            "opened",
            Some(name),
            vec![
                ("nodes", Value::Int(nodes as i128)),
                ("tasks", Value::Int(spec.cfg.total_tasks as i128)),
                ("open_world", Value::Bool(spec.cfg.arrivals.is_some())),
            ],
        ));
        session.drain_trace(name, out);
        session.drain_metrics(name, out);
        self.sessions.insert(name.to_string(), session);
    }

    fn restore(&mut self, name: &str, bytes: &[u8], out: &mut Vec<String>) {
        if self.sessions.contains_key(name) {
            out.push(err_line(Some(name), &format!("sim {name:?} already open")));
            return;
        }
        let snap = match SimSnapshot::from_bytes(bytes) {
            Ok(s) => s,
            Err(e) => return out.push(err_line(Some(name), &format!("bad snapshot: {e:?}"))),
        };
        let buf = Arc::new(Mutex::new(Vec::new()));
        // A restored session starts untraced and unmetered; its state
        // (and results) are exactly the captured run's continuation.
        let sink = StreamSink {
            buf: Arc::clone(&buf),
            enabled: false,
        };
        let classes = snap
            .cfg()
            .arrivals
            .as_ref()
            .map(|p| p.classes.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default();
        let sim = Simulation::from_snapshot_traced(&snap, self.pool.acquire(), sink);
        let fields = vec![
            ("t", Value::Int(sim.now() as i128)),
            ("events", Value::Int(sim.events_processed() as i128)),
        ];
        self.sessions.insert(
            name.to_string(),
            Session {
                state: State::Live(Box::new(sim)),
                trace: false,
                metrics_every: 0,
                next_metric: 1,
                buf,
                classes,
            },
        );
        out.push(line("restored", Some(name), fields));
    }

    /// Runs every live session to completion in parallel. Sessions are
    /// simulated concurrently (rayon worker pool), but output chunks
    /// are emitted strictly in session-name order — the worker count is
    /// invisible in the byte stream.
    fn run_all(&mut self, out: &mut Vec<String>) {
        let live: Vec<String> = self
            .sessions
            .iter()
            .filter(|(_, s)| matches!(s.state, State::Live(_)))
            .map(|(name, _)| name.clone())
            .collect();
        let taken: Vec<(String, Session)> = live
            .iter()
            .map(|name| {
                let s = self.sessions.remove(name).expect("listed above");
                (name.clone(), s)
            })
            .collect();
        let ran: Vec<(String, Session, Vec<String>, Option<SimWorkspace>)> = taken
            .into_par_iter()
            .map(|(name, mut s)| {
                let mut lines = Vec::new();
                let ws = s.run_to_end(&name, &mut lines);
                (name, s, lines, ws)
            })
            .collect();
        let count = ran.len();
        for (name, session, lines, ws) in ran {
            out.extend(lines);
            if let Some(ws) = ws {
                self.pool.release(ws);
            }
            self.sessions.insert(name, session);
        }
        out.push(line(
            "ran-all",
            None,
            vec![("sims", Value::Int(count as i128))],
        ));
    }

    fn status(&mut self, out: &mut Vec<String>) {
        let sims: Vec<Value> = self
            .sessions
            .iter()
            .map(|(name, s)| {
                let mut fields = vec![
                    ("sim", Value::Str(name.clone())),
                    ("state", Value::Str(s.state_name().into())),
                ];
                fields.extend(s.progress());
                object(fields)
            })
            .collect();
        out.push(line(
            "status",
            None,
            vec![
                ("sims", Value::Array(sims)),
                (
                    "pool",
                    object(vec![
                        ("idle", Value::Int(self.pool.idle() as i128)),
                        ("created", Value::Int(self.pool.created() as i128)),
                        ("reused", Value::Int(self.pool.reused() as i128)),
                    ]),
                ),
            ],
        ));
    }
}
