//! The session engine behind `bc-serve`: a pure line-in/lines-out state
//! machine multiplexing any number of concurrent simulations over one
//! [`WorkspacePool`].
//!
//! [`Server::handle_line`] is deliberately free of I/O — the binary
//! feeds it stdin lines and prints what comes back, and the e2e tests
//! drive it in-process and compare byte-for-byte against golden
//! streams. Determinism contract: the output lines are a pure function
//! of the request lines, independent of worker-thread count (`run-all`
//! runs sessions in parallel but emits each session's chunk in
//! session-name order).

use crate::pool::WorkspacePool;
use crate::proto::{parse_request, to_hex, OpenSpec, Request};
use bc_engine::{RunResult, SimSnapshot, SimWorkspace, Simulation, TraceRecord, TraceSink};
use bc_metrics::{latency_profile, per_class_throughput, LatencyProfile, LatencySummary};
use bc_simcore::{Time, TraceEvent};
use rayon::IntoParallelIterator;
use serde::{object, Value};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Trace streaming
// ---------------------------------------------------------------------

/// A sink that appends into a shared buffer the session drains into
/// output lines between steps. Sessions opened without `"trace":true`
/// still carry one (so every session has the same `Simulation` type and
/// identical semantics) but record nothing.
pub struct StreamSink {
    buf: Arc<Mutex<Vec<TraceRecord>>>,
    enabled: bool,
}

impl TraceSink for StreamSink {
    fn record(&mut self, time: Time, event: TraceEvent) {
        if self.enabled {
            self.buf
                .lock()
                .expect("trace buffer poisoned")
                .push(TraceRecord { time, event });
        }
    }
}

// ---------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------

enum State {
    /// Engine state in memory, ready to step.
    Live(Box<Simulation<StreamSink>>),
    /// Snapshot-backed: the engine state was captured and dropped.
    Paused(Box<SimSnapshot>),
    /// Finished; the result is kept for metrics queries.
    Done(Box<RunResult>),
    /// Quarantined after a panic inside a session operation; the string
    /// is the panic message. Every further operation except `close` and
    /// `metrics`/`status` is rejected.
    Poisoned(String),
    /// Transient placeholder while ownership moves (never observable).
    Moving,
}

struct Session {
    state: State,
    trace: bool,
    metrics_every: u64,
    next_metric: u64,
    buf: Arc<Mutex<Vec<TraceRecord>>>,
    /// Arrival class names, for per-class throughput in `done`/`metrics`.
    classes: Vec<String>,
}

impl Session {
    fn state_name(&self) -> &'static str {
        match self.state {
            State::Live(_) => "live",
            State::Paused(_) => "paused",
            State::Done(_) => "done",
            State::Poisoned(_) => "poisoned",
            State::Moving => unreachable!("transient state escaped"),
        }
    }

    /// Moves buffered trace records into output lines.
    fn drain_trace(&mut self, name: &str, out: &mut Vec<String>) {
        let mut buf = self.buf.lock().expect("trace buffer poisoned");
        for rec in buf.drain(..) {
            // The Display form is padded for column alignment; collapse
            // runs of spaces so wire lines stay compact.
            let text = rec.to_string();
            let text: Vec<&str> = text.split_whitespace().collect();
            out.push(line(
                "trace",
                Some(name),
                vec![
                    ("t", Value::Int(rec.time as i128)),
                    ("text", Value::Str(text.join(" "))),
                ],
            ));
        }
    }

    /// Emits `metric` lines for every `metrics_every` boundary the event
    /// counter has crossed.
    fn drain_metrics(&mut self, name: &str, out: &mut Vec<String>) {
        if self.metrics_every == 0 {
            return;
        }
        if let State::Live(sim) = &self.state {
            while sim.events_processed() >= self.next_metric {
                out.push(line(
                    "metric",
                    Some(name),
                    vec![
                        ("t", Value::Int(sim.now() as i128)),
                        ("events", Value::Int(sim.events_processed() as i128)),
                        ("completed", Value::Int(sim.completed() as i128)),
                    ],
                ));
                self.next_metric += self.metrics_every;
            }
        }
    }

    /// Finishes a `Live` session whose engine reported completion:
    /// builds the `RunResult`, emits the `done` line, and hands the
    /// workspace back for the pool.
    fn finalize(&mut self, name: &str, out: &mut Vec<String>) -> SimWorkspace {
        let State::Live(sim) = std::mem::replace(&mut self.state, State::Moving) else {
            unreachable!("finalize on a non-live session");
        };
        let (result, ws, _sink) = sim.run_traced();
        self.drain_trace(name, out);
        out.push(done_line(name, &result, &self.classes));
        self.state = State::Done(Box::new(result));
        ws
    }

    /// Steps up to `budget` events, streaming trace/metric lines.
    /// Returns `(events_stepped, finished_workspace)`.
    fn step_n(
        &mut self,
        name: &str,
        budget: u64,
        out: &mut Vec<String>,
    ) -> (u64, Option<SimWorkspace>) {
        let mut did = 0;
        let mut finished = false;
        if let State::Live(sim) = &mut self.state {
            sim.start();
            for _ in 0..budget {
                if !sim.step() {
                    finished = true;
                    break;
                }
                did += 1;
            }
        }
        self.drain_trace(name, out);
        self.drain_metrics(name, out);
        if finished {
            let summary = self.progress();
            out.push(line("stepped", Some(name), with_more(summary, false)));
            let ws = self.finalize(name, out);
            (did, Some(ws))
        } else {
            let summary = self.progress();
            out.push(line("stepped", Some(name), with_more(summary, true)));
            (did, None)
        }
    }

    /// Runs to completion, streaming metric lines at the configured
    /// cadence (and trace lines at the end of each stride).
    fn run_to_end(&mut self, name: &str, out: &mut Vec<String>) -> Option<SimWorkspace> {
        loop {
            let mut finished = false;
            if let State::Live(sim) = &mut self.state {
                sim.start();
                // Stride to the next metric boundary (or the end) so
                // untraced, unmetered runs stay a tight loop.
                if self.metrics_every == 0 {
                    while sim.step() {}
                    finished = true;
                } else {
                    let target = self.next_metric;
                    while sim.events_processed() < target {
                        if !sim.step() {
                            finished = true;
                            break;
                        }
                    }
                }
            } else {
                return None;
            }
            self.drain_trace(name, out);
            self.drain_metrics(name, out);
            if finished {
                return Some(self.finalize(name, out));
            }
        }
    }

    /// Progress fields of a live session.
    fn progress(&self) -> Vec<(&'static str, Value)> {
        match &self.state {
            State::Live(sim) => vec![
                ("t", Value::Int(sim.now() as i128)),
                ("events", Value::Int(sim.events_processed() as i128)),
                ("completed", Value::Int(sim.completed() as i128)),
            ],
            State::Done(r) => vec![
                ("t", Value::Int(r.end_time as i128)),
                ("events", Value::Int(r.events_processed as i128)),
                ("completed", Value::Int(r.completion_times.len() as i128)),
            ],
            State::Paused(s) => vec![("events", Value::Int(s.events_processed() as i128))],
            State::Poisoned(_) => vec![],
            State::Moving => unreachable!("transient state escaped"),
        }
    }
}

/// Best-effort text of a panic payload for the quarantine error line.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn with_more(mut fields: Vec<(&'static str, Value)>, more: bool) -> Vec<(&'static str, Value)> {
    fields.push(("more", Value::Bool(more)));
    fields
}

// ---------------------------------------------------------------------
// Output lines
// ---------------------------------------------------------------------

fn line(ev: &str, sim: Option<&str>, fields: Vec<(&str, Value)>) -> String {
    let mut all = vec![("ev", Value::Str(ev.into()))];
    if let Some(s) = sim {
        all.push(("sim", Value::Str(s.into())));
    }
    all.extend(fields);
    serde_json::to_string(&object(all)).expect("serialization is infallible")
}

fn err_line(sim: Option<&str>, msg: &str) -> String {
    line("error", sim, vec![("msg", Value::Str(msg.into()))])
}

/// The structured error line the binary emits for an oversized stdin
/// line it refused to buffer (the true length is unknown there — the
/// line was discarded in bounded chunks, never accumulated).
pub fn oversized_line_error() -> String {
    err_line_code(
        None,
        "line-too-long",
        &format!(
            "request line exceeds the {}-byte bound",
            crate::proto::MAX_LINE_LEN
        ),
    )
}

/// An `error` line carrying a stable machine-readable `code` alongside
/// the human-readable message. Used for the hardening rejections
/// (`line-too-long`, `session-limit`, `poisoned`) that clients are
/// expected to branch on.
fn err_line_code(sim: Option<&str>, code: &str, msg: &str) -> String {
    line(
        "error",
        sim,
        vec![
            ("code", Value::Str(code.into())),
            ("msg", Value::Str(msg.into())),
        ],
    )
}

fn summary_value(s: &LatencySummary) -> Value {
    let num = |v: Option<u64>| match v {
        Some(n) => Value::Int(n as i128),
        None => Value::Null,
    };
    object(vec![
        ("count", Value::Int(s.count() as i128)),
        (
            "mean",
            match s.mean() {
                Some(m) => Value::Str(m.to_string()),
                None => Value::Null,
            },
        ),
        ("p50", num(s.p50())),
        ("p99", num(s.p99())),
        ("min", num(s.min())),
        ("max", num(s.max())),
    ])
}

fn latency_value(p: &LatencyProfile) -> Value {
    object(vec![
        ("sojourn", summary_value(&p.sojourn)),
        ("queue_wait", summary_value(&p.queue_wait)),
        ("service", summary_value(&p.service)),
    ])
}

fn arrival_values(r: &RunResult, classes: &[String]) -> Vec<(&'static str, Value)> {
    let ar = &r.arrivals;
    let profile = latency_profile(&ar.admit_times, &ar.dispatch_times, &r.completion_times);
    let throughput = per_class_throughput(&ar.completed_per_class, r.end_time);
    vec![
        (
            "arrivals",
            object(vec![
                ("submitted", Value::Int(ar.submitted as i128)),
                ("admitted", Value::Int(ar.admitted as i128)),
                ("rejected", Value::Int(ar.rejected as i128)),
                ("deferrals", Value::Int(ar.deferrals as i128)),
                ("peak_deferred", Value::Int(ar.peak_deferred as i128)),
            ]),
        ),
        ("latency", latency_value(&profile)),
        (
            "throughput",
            Value::Array(
                classes
                    .iter()
                    .zip(ar.completed_per_class.iter().zip(&throughput))
                    .map(|(name, (&completed, rate))| {
                        object(vec![
                            ("class", Value::Str(name.clone())),
                            ("completed", Value::Int(completed as i128)),
                            ("rate", Value::Str(rate.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]
}

fn done_line(name: &str, r: &RunResult, classes: &[String]) -> String {
    let mut fields = vec![
        ("end_time", Value::Int(r.end_time as i128)),
        ("completed", Value::Int(r.completion_times.len() as i128)),
        ("events", Value::Int(r.events_processed as i128)),
        ("preemptions", Value::Int(r.preemptions as i128)),
        ("transfers", Value::Int(r.transfers_started as i128)),
        ("requests", Value::Int(r.requests_sent as i128)),
        (
            "max_buffers",
            Value::Int(r.max_buffers_per_node.iter().copied().max().unwrap_or(0) as i128),
        ),
    ];
    if r.faults.faults_injected > 0 {
        let f = &r.faults;
        fields.push((
            "faults",
            object(vec![
                ("injected", Value::Int(f.faults_injected as i128)),
                ("tasks_lost", Value::Int(f.tasks_lost as i128)),
                ("reissued", Value::Int(f.tasks_reissued as i128)),
                ("retries", Value::Int(f.retries as i128)),
                ("crashes", Value::Int(f.crashes as i128)),
                ("aborts", Value::Int(f.transfer_aborts as i128)),
            ]),
        ));
    }
    if r.arrivals.submitted > 0 {
        fields.extend(arrival_values(r, classes));
    }
    line("done", Some(name), fields)
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// Default bound on concurrently open sessions; see
/// [`Server::set_max_sessions`].
pub const DEFAULT_MAX_SESSIONS: usize = 1024;

/// Version byte of the [`Server::journal_bytes`] payload.
const JOURNAL_VERSION: u8 = 1;

/// What [`Server::recover_from_bytes`] managed to bring back.
#[derive(Debug, Default)]
pub struct RecoverReport {
    /// Session names rehydrated, in journal order.
    pub recovered: Vec<String>,
    /// Sessions that could not be rehydrated, with the reason each was
    /// skipped.
    pub skipped: Vec<(String, String)>,
}

impl RecoverReport {
    fn skip(&mut self, name: String, why: &str) {
        self.skipped.push((name, why.to_string()));
    }
}

/// A multiplexing simulation server; see the module docs.
pub struct Server {
    sessions: BTreeMap<String, Session>,
    pool: WorkspacePool,
    shutdown: bool,
    max_sessions: usize,
}

impl Default for Server {
    fn default() -> Self {
        Self {
            sessions: BTreeMap::new(),
            pool: WorkspacePool::new(),
            shutdown: false,
            max_sessions: DEFAULT_MAX_SESSIONS,
        }
    }
}

impl Server {
    /// A server with no sessions and an empty workspace pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds concurrently open sessions: `open`/`restore` beyond the
    /// bound are rejected with a structured `"session-limit"` error
    /// instead of growing without limit. Zero is clamped to one.
    pub fn set_max_sessions(&mut self, n: usize) {
        self.max_sessions = n.max(1);
    }

    /// True when one more session may be admitted.
    fn admit(&self, name: &str, out: &mut Vec<String>) -> bool {
        if self.sessions.len() >= self.max_sessions {
            out.push(err_line_code(
                Some(name),
                "session-limit",
                &format!(
                    "session limit of {} reached; close a sim first",
                    self.max_sessions
                ),
            ));
            return false;
        }
        true
    }

    /// True once a `shutdown` request was handled; the driving loop
    /// should stop feeding lines.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// Handles one request line, returning the response lines in order.
    /// Blank lines are ignored. Never panics on malformed input — bad
    /// requests produce one `error` line and change nothing. Lines over
    /// [`crate::proto::MAX_LINE_LEN`] bytes are rejected outright with a
    /// structured `"line-too-long"` error (the binary additionally caps
    /// its read buffer at the same bound, so an endless line cannot
    /// exhaust memory before it ever reaches this check).
    pub fn handle_line(&mut self, raw: &str) -> Vec<String> {
        if raw.len() > crate::proto::MAX_LINE_LEN {
            return vec![err_line_code(
                None,
                "line-too-long",
                &format!(
                    "request line of {} bytes exceeds the {}-byte bound",
                    raw.len(),
                    crate::proto::MAX_LINE_LEN
                ),
            )];
        }
        let raw = raw.trim();
        if raw.is_empty() {
            return Vec::new();
        }
        let req = match parse_request(raw) {
            Ok(r) => r,
            Err(msg) => return vec![err_line(None, &msg)],
        };
        let mut out = Vec::new();
        match req {
            Request::Open { sim, spec } => self.open(&sim, &spec, &mut out),
            Request::Step { sim, events } => {
                self.with_session(&sim, &mut out, |s, name, out| match s.state {
                    State::Live(_) => {
                        let (_, ws) = s.step_n(name, events, out);
                        Ok(ws)
                    }
                    _ => Err(format!("sim {name:?} is {}, not live", s.state_name())),
                })
            }
            Request::Run { sim } => {
                self.with_session(&sim, &mut out, |s, name, out| match s.state {
                    State::Live(_) => Ok(s.run_to_end(name, out)),
                    _ => Err(format!("sim {name:?} is {}, not live", s.state_name())),
                })
            }
            Request::RunAll => self.run_all(&mut out),
            Request::RunUntil { sim, time } => self.with_session(&sim, &mut out, |s, name, out| {
                let State::Live(sim) = &mut s.state else {
                    return Err(format!("sim {name:?} is {}, not live", s.state_name()));
                };
                let more = sim.run_to_time(time);
                s.drain_trace(name, out);
                s.drain_metrics(name, out);
                let summary = s.progress();
                out.push(line("ran", Some(name), with_more(summary, more)));
                Ok(if more {
                    None
                } else {
                    Some(s.finalize(name, out))
                })
            }),
            Request::Pause { sim } => self.with_session(&sim, &mut out, |s, name, out| {
                let State::Live(sim) = &mut s.state else {
                    return Err(format!("sim {name:?} is {}, not live", s.state_name()));
                };
                sim.start();
                let snap = sim.snapshot();
                let fields = vec![
                    ("t", Value::Int(sim.now() as i128)),
                    ("events", Value::Int(sim.events_processed() as i128)),
                ];
                s.state = State::Paused(Box::new(snap));
                s.drain_trace(name, out);
                out.push(line("paused", Some(name), fields));
                Ok(None)
            }),
            Request::Resume { sim } => match self.sessions.get_mut(&sim) {
                None => out.push(err_line(Some(&sim), &format!("no sim {sim:?}"))),
                Some(s) => {
                    let State::Paused(snap) = &s.state else {
                        out.push(err_line(
                            Some(&sim),
                            &format!("sim {sim:?} is {}, not paused", s.state_name()),
                        ));
                        return out;
                    };
                    let sink = StreamSink {
                        buf: Arc::clone(&s.buf),
                        enabled: s.trace,
                    };
                    let live = Simulation::from_snapshot_traced(snap, self.pool.acquire(), sink);
                    let fields = vec![
                        ("t", Value::Int(live.now() as i128)),
                        ("events", Value::Int(live.events_processed() as i128)),
                    ];
                    s.state = State::Live(Box::new(live));
                    out.push(line("resumed", Some(&sim), fields));
                }
            },
            Request::Snapshot { sim } => self.with_session(&sim, &mut out, |s, name, out| {
                let bytes = match &mut s.state {
                    State::Live(sim) => {
                        sim.start();
                        sim.snapshot().to_bytes()
                    }
                    State::Paused(snap) => snap.to_bytes(),
                    State::Done(_) | State::Poisoned(_) => {
                        return Err(format!(
                            "sim {name:?} is {}; nothing to snapshot",
                            s.state_name()
                        ))
                    }
                    State::Moving => unreachable!("transient state escaped"),
                };
                s.drain_trace(name, out);
                out.push(line(
                    "snapshot",
                    Some(name),
                    vec![
                        ("len", Value::Int(bytes.len() as i128)),
                        ("bytes", Value::Str(to_hex(&bytes))),
                    ],
                ));
                Ok(None)
            }),
            Request::Restore { sim, bytes } => self.restore(&sim, &bytes, &mut out),
            Request::Metrics { sim } => self.with_session(&sim, &mut out, |s, name, out| {
                let mut fields = vec![("state", Value::Str(s.state_name().into()))];
                fields.extend(s.progress());
                if let State::Done(r) = &s.state {
                    if r.arrivals.submitted > 0 {
                        fields.extend(arrival_values(r, &s.classes));
                    }
                }
                if let State::Poisoned(why) = &s.state {
                    fields.push(("msg", Value::Str(why.clone())));
                }
                out.push(line("metrics", Some(name), fields));
                Ok(None)
            }),
            Request::Status => self.status(&mut out),
            Request::Close { sim } => {
                if self.sessions.remove(&sim).is_some() {
                    out.push(line("closed", Some(&sim), vec![]));
                } else {
                    out.push(err_line(Some(&sim), &format!("no sim {sim:?}")));
                }
            }
            Request::Shutdown => {
                self.shutdown = true;
                out.push(line(
                    "bye",
                    None,
                    vec![("sims", Value::Int(self.sessions.len() as i128))],
                ));
            }
        }
        out
    }

    /// Runs the session closure, routing a missing session or a closure
    /// error to an `error` line and releasing any returned workspace.
    ///
    /// The closure runs inside a `catch_unwind` fence: a panicking
    /// simulation poisons *its own session* (lines it emitted before the
    /// panic are discarded, one `error` line with code `"poisoned"` is
    /// emitted instead) and every other session — and the server itself
    /// — keeps running. The panicking session's workspace is lost to the
    /// pool; the pool simply allocates a fresh one later.
    fn with_session(
        &mut self,
        name: &str,
        out: &mut Vec<String>,
        f: impl FnOnce(&mut Session, &str, &mut Vec<String>) -> Result<Option<SimWorkspace>, String>,
    ) {
        match self.sessions.get_mut(name) {
            None => out.push(err_line(Some(name), &format!("no sim {name:?}"))),
            Some(s) => {
                let emitted = out.len();
                match catch_unwind(AssertUnwindSafe(|| f(s, name, out))) {
                    Ok(Ok(Some(ws))) => self.pool.release(ws),
                    Ok(Ok(None)) => {}
                    Ok(Err(msg)) => out.push(err_line(Some(name), &msg)),
                    Err(payload) => {
                        out.truncate(emitted);
                        s.state = State::Poisoned(panic_message(payload));
                        out.push(err_line_code(
                            Some(name),
                            "poisoned",
                            &format!("sim {name:?} panicked and was quarantined"),
                        ));
                    }
                }
            }
        }
    }

    /// Test-only hook: routes a panic through the same quarantine fence
    /// every session operation uses, so the `catch_unwind` path can be
    /// pinned by integration tests without crafting a genuinely
    /// panicking workload.
    #[doc(hidden)]
    pub fn inject_panic(&mut self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.with_session(name, &mut out, |_, _, _| panic!("injected fault"));
        out
    }

    fn open(&mut self, name: &str, spec: &OpenSpec, out: &mut Vec<String>) {
        if self.sessions.contains_key(name) {
            out.push(err_line(Some(name), &format!("sim {name:?} already open")));
            return;
        }
        if !self.admit(name, out) {
            return;
        }
        let tree = match spec.tree.build() {
            Ok(t) => t,
            Err(msg) => return out.push(err_line(Some(name), &msg)),
        };
        if let Err(msg) = spec.cfg.validate() {
            return out.push(err_line(Some(name), &msg));
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = StreamSink {
            buf: Arc::clone(&buf),
            enabled: spec.trace,
        };
        let nodes = tree.len();
        let mut sim = Simulation::traced(tree, spec.cfg.clone(), self.pool.acquire(), sink);
        sim.start();
        let mut session = Session {
            state: State::Live(Box::new(sim)),
            trace: spec.trace,
            metrics_every: spec.metrics_every,
            next_metric: spec.metrics_every.max(1),
            buf,
            classes: spec
                .cfg
                .arrivals
                .as_ref()
                .map(|p| p.classes.iter().map(|c| c.name.clone()).collect())
                .unwrap_or_default(),
        };
        out.push(line(
            "opened",
            Some(name),
            vec![
                ("nodes", Value::Int(nodes as i128)),
                ("tasks", Value::Int(spec.cfg.total_tasks as i128)),
                ("open_world", Value::Bool(spec.cfg.arrivals.is_some())),
            ],
        ));
        session.drain_trace(name, out);
        session.drain_metrics(name, out);
        self.sessions.insert(name.to_string(), session);
    }

    fn restore(&mut self, name: &str, bytes: &[u8], out: &mut Vec<String>) {
        if self.sessions.contains_key(name) {
            out.push(err_line(Some(name), &format!("sim {name:?} already open")));
            return;
        }
        if !self.admit(name, out) {
            return;
        }
        let snap = match SimSnapshot::from_bytes(bytes) {
            Ok(s) => s,
            Err(e) => return out.push(err_line(Some(name), &format!("bad snapshot: {e:?}"))),
        };
        let buf = Arc::new(Mutex::new(Vec::new()));
        // A restored session starts untraced and unmetered; its state
        // (and results) are exactly the captured run's continuation.
        let sink = StreamSink {
            buf: Arc::clone(&buf),
            enabled: false,
        };
        let classes = snap
            .cfg()
            .arrivals
            .as_ref()
            .map(|p| p.classes.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default();
        let sim = Simulation::from_snapshot_traced(&snap, self.pool.acquire(), sink);
        let fields = vec![
            ("t", Value::Int(sim.now() as i128)),
            ("events", Value::Int(sim.events_processed() as i128)),
        ];
        self.sessions.insert(
            name.to_string(),
            Session {
                state: State::Live(Box::new(sim)),
                trace: false,
                metrics_every: 0,
                next_metric: 1,
                buf,
                classes,
            },
        );
        out.push(line("restored", Some(name), fields));
    }

    /// Runs every live session to completion in parallel. Sessions are
    /// simulated concurrently (rayon worker pool), but output chunks
    /// are emitted strictly in session-name order — the worker count is
    /// invisible in the byte stream.
    fn run_all(&mut self, out: &mut Vec<String>) {
        let live: Vec<String> = self
            .sessions
            .iter()
            .filter(|(_, s)| matches!(s.state, State::Live(_)))
            .map(|(name, _)| name.clone())
            .collect();
        let taken: Vec<(String, Session)> = live
            .iter()
            .map(|name| {
                let s = self.sessions.remove(name).expect("listed above");
                (name.clone(), s)
            })
            .collect();
        let ran: Vec<(String, Session, Vec<String>, Option<SimWorkspace>)> = taken
            .into_par_iter()
            .map(|(name, mut s)| {
                // Same quarantine contract as `with_session`, applied
                // inside the worker so one panicking simulation cannot
                // tear down the whole `run-all` round.
                let mut lines = Vec::new();
                match catch_unwind(AssertUnwindSafe(|| s.run_to_end(&name, &mut lines))) {
                    Ok(ws) => (name, s, lines, ws),
                    Err(payload) => {
                        lines.clear();
                        s.state = State::Poisoned(panic_message(payload));
                        lines.push(err_line_code(
                            Some(&name),
                            "poisoned",
                            &format!("sim {name:?} panicked and was quarantined"),
                        ));
                        (name, s, lines, None)
                    }
                }
            })
            .collect();
        let count = ran.len();
        for (name, session, lines, ws) in ran {
            out.extend(lines);
            if let Some(ws) = ws {
                self.pool.release(ws);
            }
            self.sessions.insert(name, session);
        }
        out.push(line(
            "ran-all",
            None,
            vec![("sims", Value::Int(count as i128))],
        ));
    }

    // -----------------------------------------------------------------
    // Crash-recovery journal
    // -----------------------------------------------------------------

    /// Serializes every `live` and `paused` session into one journal
    /// payload (live engine state is captured through the same `BCSS`
    /// snapshot path `pause` uses, without disturbing the run). `done`
    /// and `poisoned` sessions are deliberately not journaled — finished
    /// results are queryable in-process but are not state worth
    /// resurrecting, and a quarantined session must not come back from
    /// the dead on restart.
    ///
    /// The payload carries no checksum or framing magic of its own:
    /// integrity, atomic writes, and generation fallback are the
    /// `bc_engine::durability` container's job (the binary wraps this
    /// payload in a [`CheckpointKind::ServeJournal`] checkpoint).
    ///
    /// [`CheckpointKind::ServeJournal`]: bc_engine::CheckpointKind
    pub fn journal_bytes(&mut self) -> Vec<u8> {
        let mut entries: Vec<(&String, u8, u64, u64, Vec<u8>)> = Vec::new();
        for (name, s) in self.sessions.iter_mut() {
            let (live, snap_bytes) = match &mut s.state {
                State::Live(sim) => {
                    sim.start();
                    (true, sim.snapshot().to_bytes())
                }
                State::Paused(snap) => (false, snap.to_bytes()),
                State::Done(_) | State::Poisoned(_) => continue,
                State::Moving => unreachable!("transient state escaped"),
            };
            let flags = (s.trace as u8) | ((live as u8) << 1);
            entries.push((name, flags, s.metrics_every, s.next_metric, snap_bytes));
        }
        let mut out = vec![JOURNAL_VERSION];
        out.extend((entries.len() as u64).to_le_bytes());
        for (name, flags, every, next, snap) in entries {
            out.extend((name.len() as u64).to_le_bytes());
            out.extend(name.as_bytes());
            out.push(flags);
            out.extend(every.to_le_bytes());
            out.extend(next.to_le_bytes());
            out.extend((snap.len() as u64).to_le_bytes());
            out.extend(snap);
        }
        out
    }

    /// Rebuilds sessions from a [`journal_bytes`](Self::journal_bytes)
    /// payload. Malformed framing is a typed `Err` (never a panic); a
    /// session whose snapshot fails to decode, collides with an existing
    /// name, or panics during rehydration is *skipped* with a reason —
    /// one rotten entry must not block recovery of the rest.
    pub fn recover_from_bytes(&mut self, bytes: &[u8]) -> Result<RecoverReport, String> {
        fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
            let (head, tail) = input
                .split_at_checked(n)
                .ok_or_else(|| "journal truncated".to_string())?;
            *input = tail;
            Ok(head)
        }
        fn take_u64(input: &mut &[u8]) -> Result<u64, String> {
            Ok(u64::from_le_bytes(take(input, 8)?.try_into().unwrap()))
        }

        let mut input = bytes;
        let version = *take(&mut input, 1)?.first().unwrap();
        if version != JOURNAL_VERSION {
            return Err(format!("unsupported journal version {version}"));
        }
        let n = take_u64(&mut input)?;
        if n > (1 << 20) {
            return Err(format!("implausible journal session count {n}"));
        }
        let mut report = RecoverReport::default();
        for _ in 0..n {
            let name_len = take_u64(&mut input)? as usize;
            if name_len > crate::proto::MAX_SIM_NAME_LEN {
                return Err(format!("implausible journal name length {name_len}"));
            }
            let name = std::str::from_utf8(take(&mut input, name_len)?)
                .map_err(|_| "journal name is not UTF-8".to_string())?
                .to_string();
            let flags = *take(&mut input, 1)?.first().unwrap();
            let metrics_every = take_u64(&mut input)?;
            let next_metric = take_u64(&mut input)?;
            let snap_len = take_u64(&mut input)? as usize;
            let snap_bytes = take(&mut input, snap_len)?;
            let trace = flags & 1 != 0;
            let was_live = flags & 2 != 0;

            if self.sessions.contains_key(&name) {
                report.skip(name, "name already in use");
                continue;
            }
            if self.sessions.len() >= self.max_sessions {
                report.skip(name, "session limit reached");
                continue;
            }
            let snap = match SimSnapshot::from_bytes(snap_bytes) {
                Ok(s) => s,
                Err(e) => {
                    report.skip(name, &format!("bad snapshot: {e:?}"));
                    continue;
                }
            };
            let classes: Vec<String> = snap
                .cfg()
                .arrivals
                .as_ref()
                .map(|p| p.classes.iter().map(|c| c.name.clone()).collect())
                .unwrap_or_default();
            let buf = Arc::new(Mutex::new(Vec::new()));
            let state = if was_live {
                let sink = StreamSink {
                    buf: Arc::clone(&buf),
                    enabled: trace,
                };
                let ws = self.pool.acquire();
                match catch_unwind(AssertUnwindSafe(|| {
                    Simulation::from_snapshot_traced(&snap, ws, sink)
                })) {
                    Ok(sim) => State::Live(Box::new(sim)),
                    Err(payload) => {
                        report.skip(
                            name,
                            &format!("rehydration panic: {}", panic_message(payload)),
                        );
                        continue;
                    }
                }
            } else {
                State::Paused(Box::new(snap))
            };
            self.sessions.insert(
                name.clone(),
                Session {
                    state,
                    trace,
                    metrics_every,
                    next_metric,
                    buf,
                    classes,
                },
            );
            report.recovered.push(name);
        }
        if !input.is_empty() {
            return Err(format!("{} trailing bytes after journal", input.len()));
        }
        Ok(report)
    }

    fn status(&mut self, out: &mut Vec<String>) {
        let sims: Vec<Value> = self
            .sessions
            .iter()
            .map(|(name, s)| {
                let mut fields = vec![
                    ("sim", Value::Str(name.clone())),
                    ("state", Value::Str(s.state_name().into())),
                ];
                fields.extend(s.progress());
                object(fields)
            })
            .collect();
        out.push(line(
            "status",
            None,
            vec![
                ("sims", Value::Array(sims)),
                (
                    "pool",
                    object(vec![
                        ("idle", Value::Int(self.pool.idle() as i128)),
                        ("created", Value::Int(self.pool.created() as i128)),
                        ("reused", Value::Int(self.pool.reused() as i128)),
                    ]),
                ),
            ],
        ));
    }
}
