//! `bc-serve` — a long-running JSON-per-line simulation server.
//!
//! Reads one request per line on stdin, writes zero or more response
//! lines per request on stdout, and exits on `{"cmd":"shutdown"}` or
//! end of input. All state lives in [`bc_serve::Server`]; this binary
//! is only the stdio plumbing.
//!
//! ```text
//! bc-serve [--threads N]
//! ```
//!
//! `--threads N` pins the rayon worker pool (used by `run-all`) to `N`
//! threads. Output is byte-identical for any `N` — the flag trades
//! wall-clock for cores, never determinism.

use std::io::{BufRead, Write};

fn main() {
    let mut threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let v = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0);
                match v {
                    Some(n) => threads = Some(n),
                    None => {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: bc-serve [--threads N]");
                println!("reads JSON requests line-by-line on stdin; see crate docs");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if let Some(n) = threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("rayon pool already initialized");
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut server = bc_serve::Server::new();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        for resp in server.handle_line(&line) {
            writeln!(out, "{resp}").expect("stdout write failed");
        }
        out.flush().expect("stdout flush failed");
        if server.is_shutdown() {
            break;
        }
    }
}
