//! `bc-serve` — a long-running JSON-per-line simulation server.
//!
//! Reads one request per line on stdin, writes zero or more response
//! lines per request on stdout, and exits on `{"cmd":"shutdown"}` or
//! end of input. All state lives in [`bc_serve::Server`]; this binary
//! is only the stdio plumbing plus the durability hooks.
//!
//! ```text
//! bc-serve [--threads N] [--max-sessions N]
//!          [--journal DIR [--journal-every N]] [--recover DIR]
//! ```
//!
//! `--threads N` pins the rayon worker pool (used by `run-all`) to `N`
//! threads. Output is byte-identical for any `N` — the flag trades
//! wall-clock for cores, never determinism.
//!
//! `--journal DIR` persists a session journal (every open live/paused
//! session as a `BCSS` snapshot, wrapped in a checksummed `BCCK`
//! checkpoint generation — see DESIGN.md "Durability & crash recovery")
//! every `--journal-every` request lines and once more at shutdown or
//! end of input. `--recover DIR` rehydrates the newest good journal
//! generation on startup, emitting one `{"ev":"recovered"}` line;
//! corrupt generations are detected by checksum and skipped, never
//! trusted. Point both flags at the same directory for a server that
//! survives SIGKILL with at most `--journal-every` lines of lost
//! progress.
//!
//! Stdin is read through a bounded-line reader: a line longer than
//! [`bc_serve::MAX_LINE_LEN`] is discarded in fixed-size chunks (never
//! accumulated) and answered with one structured `"line-too-long"`
//! error, so a hostile endless line cannot exhaust memory.

use bc_engine::{CheckpointKind, CheckpointStore};
use bc_serve::MAX_LINE_LEN;
use std::io::{BufRead, Read, Write};
use std::path::PathBuf;

struct Args {
    threads: Option<usize>,
    max_sessions: Option<usize>,
    journal: Option<PathBuf>,
    journal_every: u64,
    recover: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        threads: None,
        max_sessions: None,
        journal: None,
        journal_every: 64,
        recover: None,
    };
    fn need(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    }
    fn positive(value: &str, flag: &str) -> usize {
        match value.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("{flag} needs a positive integer");
                std::process::exit(2);
            }
        }
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                parsed.threads = Some(positive(&need(&mut args, "--threads"), "--threads"));
            }
            "--max-sessions" => {
                parsed.max_sessions = Some(positive(
                    &need(&mut args, "--max-sessions"),
                    "--max-sessions",
                ));
            }
            "--journal" => parsed.journal = Some(PathBuf::from(need(&mut args, "--journal"))),
            "--journal-every" => {
                parsed.journal_every =
                    positive(&need(&mut args, "--journal-every"), "--journal-every") as u64;
            }
            "--recover" => parsed.recover = Some(PathBuf::from(need(&mut args, "--recover"))),
            "--help" | "-h" => {
                println!(
                    "usage: bc-serve [--threads N] [--max-sessions N] \
                     [--journal DIR [--journal-every N]] [--recover DIR]"
                );
                println!("reads JSON requests line-by-line on stdin; see crate docs");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// Retained journal generations: enough that a torn newest write (or
/// even two) still leaves good generations to fall back to.
const JOURNAL_KEEP: usize = 4;

fn open_store(dir: &std::path::Path) -> CheckpointStore {
    CheckpointStore::open(dir, "serve", CheckpointKind::ServeJournal, JOURNAL_KEEP).unwrap_or_else(
        |e| {
            eprintln!("cannot open journal directory {}: {e}", dir.display());
            std::process::exit(1);
        },
    )
}

/// Reads one newline-terminated line into `buf` without ever holding
/// more than `MAX_LINE_LEN + 1` bytes of it. Returns `(n_read,
/// oversized)`; `n_read == 0` is end of input. When the bound is hit,
/// the rest of the line is consumed and discarded in bounded chunks
/// (`read_until` never reads past its delimiter, so the next line stays
/// intact in the reader).
fn read_bounded_line(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
) -> std::io::Result<(usize, bool)> {
    buf.clear();
    let n = reader
        .by_ref()
        .take(MAX_LINE_LEN as u64 + 1)
        .read_until(b'\n', buf)?;
    if n == 0 || buf.last() == Some(&b'\n') || buf.len() <= MAX_LINE_LEN {
        return Ok((n, false));
    }
    loop {
        buf.clear();
        let m = reader.by_ref().take(1 << 16).read_until(b'\n', buf)?;
        if m == 0 || buf.last() == Some(&b'\n') {
            break;
        }
    }
    buf.clear();
    Ok((1, true))
}

fn main() {
    let args = parse_args();
    if let Some(n) = args.threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("rayon pool already initialized");
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut server = bc_serve::Server::new();
    if let Some(n) = args.max_sessions {
        server.set_max_sessions(n);
    }

    if let Some(dir) = &args.recover {
        let store = open_store(dir);
        match store.load_latest() {
            Ok(Some(loaded)) => match server.recover_from_bytes(&loaded.payload) {
                Ok(report) => {
                    for (name, why) in &report.skipped {
                        eprintln!("recover: skipped session {name:?}: {why}");
                    }
                    writeln!(
                        out,
                        "{{\"ev\":\"recovered\",\"sims\":{},\"skipped\":{},\"generation\":{}}}",
                        report.recovered.len(),
                        report.skipped.len(),
                        loaded.generation
                    )
                    .expect("stdout write failed");
                }
                Err(e) => {
                    eprintln!("recover: journal payload unusable: {e}");
                    std::process::exit(1);
                }
            },
            Ok(None) => eprintln!("recover: no journal in {}; starting fresh", dir.display()),
            Err(e) => {
                eprintln!("recover: {e}");
                std::process::exit(1);
            }
        }
        out.flush().expect("stdout flush failed");
    }

    let mut journal = args.journal.as_deref().map(open_store);
    let mut lines_handled: u64 = 0;
    let mut reader = stdin.lock();
    let mut buf: Vec<u8> = Vec::new();
    while let Ok((n, oversized)) = read_bounded_line(&mut reader, &mut buf) {
        if n == 0 {
            break;
        }
        let responses = if oversized {
            vec![bc_serve::oversized_line_error()]
        } else {
            server.handle_line(&String::from_utf8_lossy(&buf))
        };
        for resp in responses {
            writeln!(out, "{resp}").expect("stdout write failed");
        }
        out.flush().expect("stdout flush failed");
        lines_handled += 1;
        if let Some(store) = &mut journal {
            if lines_handled.is_multiple_of(args.journal_every) {
                if let Err(e) = store.save(&server.journal_bytes()) {
                    eprintln!("journal: {e}");
                }
            }
        }
        if server.is_shutdown() {
            break;
        }
    }
    if let Some(store) = &mut journal {
        if let Err(e) = store.save(&server.journal_bytes()) {
            eprintln!("journal: {e}");
        }
    }
}
