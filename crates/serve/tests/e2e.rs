//! In-process end-to-end tests for the `bc-serve` server: scripted
//! sessions through [`Server::handle_line`], golden-stream regression,
//! bit-stability across runs and worker-thread counts, pause/resume and
//! snapshot/restore equivalence, and error-path isolation.
//!
//! The scripted session in `tests/fixtures/smoke_session.jsonl` is the
//! same one CI pipes through the release binary; the expected byte
//! stream lives in `tests/golden/smoke_session.golden.jsonl` and is
//! re-blessed with `BLESS=1 cargo test -p bc-serve golden`.

use bc_serve::Server;
use serde::Value;
use std::sync::Mutex;

/// Tests that set the process-wide rayon worker override must not run
/// concurrently within this binary (the vendored shim's `build_global`
/// is a settable global).
static POOL: Mutex<()> = Mutex::new(());

const SMOKE_SCRIPT: &str = include_str!("fixtures/smoke_session.jsonl");

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/smoke_session.golden.jsonl")
}

/// Feeds a script line-by-line through a fresh server, returning every
/// response line in order.
fn run_script(script: &str) -> Vec<String> {
    let mut server = Server::new();
    let mut out = Vec::new();
    for line in script.lines() {
        out.extend(server.handle_line(line));
        if server.is_shutdown() {
            break;
        }
    }
    out
}

fn set_threads(threads: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .unwrap();
}

/// Parses a response line and strips the session name, so results from
/// differently-named sessions can be compared field-for-field.
fn parsed_sans_sim(line: &str) -> Value {
    let v: Value = serde_json::from_str(line).expect("server emitted invalid JSON");
    let Value::Object(fields) = v else {
        panic!("server line is not an object: {line}")
    };
    Value::Object(fields.into_iter().filter(|(k, _)| k != "sim").collect())
}

fn ev_of(line: &str) -> String {
    let v: Value = serde_json::from_str(line).expect("invalid JSON");
    match v.get("ev") {
        Some(Value::Str(s)) => s.clone(),
        _ => panic!("line has no ev: {line}"),
    }
}

fn field_u64(line: &str, key: &str) -> u64 {
    let v: Value = serde_json::from_str(line).expect("invalid JSON");
    match v.get(key) {
        Some(Value::Int(n)) => *n as u64,
        other => panic!("field {key}: {other:?} in {line}"),
    }
}

fn field_str(line: &str, key: &str) -> String {
    let v: Value = serde_json::from_str(line).expect("invalid JSON");
    match v.get(key) {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("field {key}: {other:?} in {line}"),
    }
}

// ---------------------------------------------------------------------
// Golden stream + determinism
// ---------------------------------------------------------------------

/// The scripted smoke session reproduces the committed golden stream
/// byte-for-byte. `BLESS=1` rewrites the golden after an intentional
/// protocol change.
#[test]
fn golden_smoke_stream() {
    let _guard = POOL.lock().unwrap();
    set_threads(2);
    let got = run_script(SMOKE_SCRIPT).join("\n") + "\n";
    let path = golden_path();
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("golden missing; run with BLESS=1");
    assert_eq!(
        got,
        want,
        "smoke-session stream diverged from {}; re-bless only if intentional",
        path.display()
    );
}

/// The same script yields the same bytes on every run and for every
/// worker-thread count — `run-all` parallelism is invisible on the wire.
#[test]
fn smoke_stream_is_bit_stable_across_runs_and_threads() {
    let _guard = POOL.lock().unwrap();
    set_threads(1);
    let baseline = run_script(SMOKE_SCRIPT);
    assert!(
        baseline.iter().any(|l| ev_of(l) == "done"),
        "script should finish sims"
    );
    set_threads(1);
    assert_eq!(run_script(SMOKE_SCRIPT), baseline, "repeat run diverged");
    for threads in [2usize, 4, 7] {
        set_threads(threads);
        assert_eq!(
            rayon::current_num_threads(),
            threads,
            "thread override not applied"
        );
        assert_eq!(
            run_script(SMOKE_SCRIPT),
            baseline,
            "{threads}-thread run diverged from 1-thread baseline"
        );
    }
}

// ---------------------------------------------------------------------
// Pause / resume and snapshot / restore
// ---------------------------------------------------------------------

const OPEN_WORLD_SPEC: &str = r#"{"cmd":"open","sim":"NAME","tree":{"root_compute":3,"nodes":[[0,2,3],[0,1,4],[1,2,2],[2,1,3]]},"protocol":"ic","buffers":2,"arrivals":{"seed":23,"queue_cap":3,"policy":"defer","classes":[{"name":"tick","units":1,"poisson":{"mean_gap":2,"count":25}},{"name":"surge","units":2,"burst":{"phase":7,"period":15,"size":5,"bursts":3}}]},"trace":TRACE}"#;

fn open_line(name: &str, trace: bool) -> String {
    OPEN_WORLD_SPEC
        .replace("NAME", name)
        .replace("TRACE", if trace { "true" } else { "false" })
}

fn cmd(server: &mut Server, line: &str) -> Vec<String> {
    server.handle_line(line)
}

/// A run interrupted by pause/resume (live state dropped, rebuilt from
/// the snapshot) produces the same trace stream and the same `done`
/// line as the uninterrupted run.
#[test]
fn pause_resume_mid_stream_matches_uninterrupted() {
    let mut plain = Server::new();
    let mut straight = cmd(&mut plain, &open_line("p", true));
    straight.extend(cmd(&mut plain, r#"{"cmd":"run","sim":"p"}"#));

    let mut interrupted = Server::new();
    let mut chopped = cmd(&mut interrupted, &open_line("q", true));
    chopped.extend(cmd(
        &mut interrupted,
        r#"{"cmd":"step","sim":"q","events":25}"#,
    ));
    chopped.extend(cmd(&mut interrupted, r#"{"cmd":"pause","sim":"q"}"#));
    chopped.extend(cmd(&mut interrupted, r#"{"cmd":"resume","sim":"q"}"#));
    chopped.extend(cmd(&mut interrupted, r#"{"cmd":"run","sim":"q"}"#));
    let traces = |lines: &[String]| -> Vec<Value> {
        lines
            .iter()
            .filter(|l| ev_of(l) == "trace")
            .map(|l| parsed_sans_sim(l))
            .collect()
    };
    assert_eq!(
        traces(&straight),
        traces(&chopped),
        "trace stream changed across pause/resume"
    );

    let done = |lines: &[String]| -> Value {
        parsed_sans_sim(lines.iter().find(|l| ev_of(l) == "done").expect("no done"))
    };
    assert_eq!(
        done(&straight),
        done(&chopped),
        "final results changed across pause/resume"
    );
}

/// Snapshot bytes exported from one server rebuild the identical
/// continuation in a different server (untraced restore), including the
/// open-world admission queue.
#[test]
fn snapshot_restore_round_trips_across_servers() {
    let mut origin = Server::new();
    cmd(&mut origin, &open_line("src", false));
    cmd(&mut origin, r#"{"cmd":"step","sim":"src","events":40}"#);
    let snap_lines = cmd(&mut origin, r#"{"cmd":"snapshot","sim":"src"}"#);
    let snap = snap_lines
        .iter()
        .find(|l| ev_of(l) == "snapshot")
        .expect("no snapshot line");
    let hex = field_str(snap, "bytes");
    assert_eq!(field_u64(snap, "len") as usize * 2, hex.len());

    let src_done = cmd(&mut origin, r#"{"cmd":"run","sim":"src"}"#)
        .into_iter()
        .find(|l| ev_of(l) == "done")
        .expect("src never finished");

    let mut replica = Server::new();
    let restored = cmd(
        &mut replica,
        &format!(r#"{{"cmd":"restore","sim":"copy","bytes":"{hex}"}}"#),
    );
    assert_eq!(
        ev_of(&restored[0]),
        "restored",
        "restore failed: {restored:?}"
    );
    assert_eq!(field_u64(&restored[0], "events"), 40);
    let copy_done = cmd(&mut replica, r#"{"cmd":"run","sim":"copy"}"#)
        .into_iter()
        .find(|l| ev_of(l) == "done")
        .expect("copy never finished");

    assert_eq!(
        parsed_sans_sim(&src_done),
        parsed_sans_sim(&copy_done),
        "restored continuation diverged from the original run"
    );
}

/// `run-until` in slices reaches the same final result as a single
/// uninterrupted `run`.
#[test]
fn run_until_slices_match_single_run() {
    let mut sliced = Server::new();
    cmd(&mut sliced, &open_line("s", false));
    let mut done_line = None;
    for t in [10u64, 25, 60, 100_000] {
        for l in cmd(
            &mut sliced,
            &format!(r#"{{"cmd":"run-until","sim":"s","time":{t}}}"#),
        ) {
            if ev_of(&l) == "done" {
                done_line = Some(l);
            }
        }
        if done_line.is_some() {
            break;
        }
    }
    let sliced_done = done_line.expect("sliced run never finished");

    let mut whole = Server::new();
    cmd(&mut whole, &open_line("w", false));
    let whole_done = cmd(&mut whole, r#"{"cmd":"run","sim":"w"}"#)
        .into_iter()
        .find(|l| ev_of(l) == "done")
        .expect("whole run never finished");

    assert_eq!(parsed_sans_sim(&sliced_done), parsed_sans_sim(&whole_done));
}

/// Streaming per-event trace lines does not perturb results: the traced
/// and untraced `done` lines are identical, and only the traced session
/// emits `trace` events.
#[test]
fn trace_flag_does_not_change_results() {
    let run = |trace: bool| -> Vec<String> {
        let mut server = Server::new();
        cmd(&mut server, &open_line("x", trace));
        cmd(&mut server, r#"{"cmd":"run","sim":"x"}"#)
    };
    let traced = run(true);
    let untraced = run(false);
    assert!(traced.iter().filter(|l| ev_of(l) == "trace").count() > 0);
    assert_eq!(untraced.iter().filter(|l| ev_of(l) == "trace").count(), 0);
    let done = |lines: &[String]| -> Value {
        parsed_sans_sim(lines.iter().find(|l| ev_of(l) == "done").expect("no done"))
    };
    assert_eq!(done(&traced), done(&untraced));
}

// ---------------------------------------------------------------------
// Open-world accounting on the wire
// ---------------------------------------------------------------------

/// A drop-policy session with an undersized admission queue reports
/// rejections in its `done` line, and per-class throughput covers every
/// configured class.
#[test]
fn drop_policy_rejections_are_reported() {
    let mut server = Server::new();
    let open = r#"{"cmd":"open","sim":"d","tree":{"root_compute":2,"nodes":[[0,1,2]]},"protocol":"ic","buffers":2,"arrivals":{"seed":5,"queue_cap":2,"policy":"drop","classes":[{"name":"flood","units":1,"burst":{"phase":0,"period":10,"size":8,"bursts":3}}]}}"#;
    let opened = cmd(&mut server, open);
    assert_eq!(ev_of(&opened[0]), "opened", "{opened:?}");
    let done = cmd(&mut server, r#"{"cmd":"run","sim":"d"}"#)
        .into_iter()
        .find(|l| ev_of(l) == "done")
        .expect("no done");
    let v: Value = serde_json::from_str(&done).unwrap();
    let arrivals = v.get("arrivals").expect("no arrivals block");
    let rejected = match arrivals.get("rejected") {
        Some(Value::Int(n)) => *n,
        other => panic!("rejected: {other:?}"),
    };
    assert!(rejected > 0, "undersized drop queue never rejected: {done}");
    let Some(Value::Array(tp)) = v.get("throughput") else {
        panic!("no throughput array: {done}")
    };
    assert_eq!(tp.len(), 1);
    assert_eq!(tp[0].get("class"), Some(&Value::Str("flood".into())));
}

// ---------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------

/// Malformed or misdirected requests each produce exactly one `error`
/// line and leave existing sessions untouched.
#[test]
fn errors_are_isolated_and_sessions_survive() {
    let mut server = Server::new();
    cmd(&mut server, &open_line("keep", false));

    let bad = [
        "{not json",
        r#"{"sim":"keep"}"#,
        r#"{"cmd":"warp","sim":"keep"}"#,
        r#"{"cmd":"step","sim":"ghost"}"#,
        r#"{"cmd":"resume","sim":"keep"}"#,
        r#"{"cmd":"restore","sim":"keep2","bytes":"zz"}"#,
        r#"{"cmd":"restore","sim":"keep3","bytes":"00ff"}"#,
        r#"{"cmd":"open","sim":"keep","tree":{"root_compute":1,"nodes":[]},"tasks":1}"#,
        r#"{"cmd":"open","sim":"nw","tree":{"root_compute":1,"nodes":[]}}"#,
        r#"{"cmd":"open","sim":"bt","tree":{"root_compute":1,"nodes":[[5,1,1]]},"tasks":3}"#,
    ];
    for line in bad {
        let out = cmd(&mut server, line);
        assert_eq!(out.len(), 1, "expected one line for {line}: {out:?}");
        assert_eq!(
            ev_of(&out[0]),
            "error",
            "expected error for {line}: {out:?}"
        );
    }
    // Blank lines are ignored outright.
    assert!(cmd(&mut server, "   ").is_empty());

    // The original session is still live and runs to completion.
    let done = cmd(&mut server, r#"{"cmd":"run","sim":"keep"}"#)
        .into_iter()
        .find(|l| ev_of(l) == "done");
    assert!(done.is_some(), "surviving session failed to run");

    // Post-completion stepping is rejected but the result stays queryable.
    let out = cmd(&mut server, r#"{"cmd":"step","sim":"keep"}"#);
    assert_eq!(ev_of(&out[0]), "error");
    let metrics = cmd(&mut server, r#"{"cmd":"metrics","sim":"keep"}"#);
    assert_eq!(ev_of(&metrics[0]), "metrics");
    assert_eq!(field_str(&metrics[0], "state"), "done");
}

// ---------------------------------------------------------------------
// Crash recovery and hardening
// ---------------------------------------------------------------------

/// The kill/recover satellite: journal a traced session mid-run, drop
/// the server (the crash), recover the journal into a fresh server, and
/// pin that the full output stream — pre-kill lines from the first
/// server plus post-recover lines from the second — is **byte-for-byte**
/// identical to the uninterrupted run on one server. Trace records,
/// metric cadence, arrival classes, and the final `done` accounting all
/// have to survive the journal round-trip for this to hold.
#[test]
fn journal_recover_stream_matches_uninterrupted_byte_for_byte() {
    let mut golden_srv = Server::new();
    let mut golden = cmd(&mut golden_srv, &open_line("j", true));
    golden.extend(cmd(
        &mut golden_srv,
        r#"{"cmd":"step","sim":"j","events":30}"#,
    ));
    golden.extend(cmd(&mut golden_srv, r#"{"cmd":"run","sim":"j"}"#));
    assert!(golden.iter().any(|l| ev_of(l) == "done"));

    let mut first = Server::new();
    let mut stream = cmd(&mut first, &open_line("j", true));
    stream.extend(cmd(&mut first, r#"{"cmd":"step","sim":"j","events":30}"#));
    let journal = first.journal_bytes();
    drop(first); // the crash: all live state gone

    let mut second = Server::new();
    let report = second.recover_from_bytes(&journal).expect("recover failed");
    assert_eq!(report.recovered, vec!["j".to_string()]);
    assert!(report.skipped.is_empty());
    stream.extend(cmd(&mut second, r#"{"cmd":"run","sim":"j"}"#));

    assert_eq!(
        stream.join("\n"),
        golden.join("\n"),
        "recovered stream diverged from the uninterrupted run"
    );
}

/// Journaling captures live *and* paused sessions (a paused session
/// comes back paused and resumable) but deliberately drops `done` ones.
#[test]
fn journal_covers_paused_sessions_and_skips_done() {
    let mut server = Server::new();
    cmd(&mut server, &open_line("live", false));
    cmd(&mut server, &open_line("paused", false));
    cmd(&mut server, r#"{"cmd":"step","sim":"paused","events":10}"#);
    cmd(&mut server, r#"{"cmd":"pause","sim":"paused"}"#);
    cmd(&mut server, &open_line("finished", false));
    cmd(&mut server, r#"{"cmd":"run","sim":"finished"}"#);
    let journal = server.journal_bytes();
    drop(server);

    let mut recovered = Server::new();
    let report = recovered.recover_from_bytes(&journal).unwrap();
    assert_eq!(
        report.recovered,
        vec!["live".to_string(), "paused".to_string()]
    );
    let metrics = cmd(&mut recovered, r#"{"cmd":"metrics","sim":"paused"}"#);
    assert_eq!(field_str(&metrics[0], "state"), "paused");
    let resumed = cmd(&mut recovered, r#"{"cmd":"resume","sim":"paused"}"#);
    assert_eq!(ev_of(&resumed[0]), "resumed");
    let gone = cmd(&mut recovered, r#"{"cmd":"metrics","sim":"finished"}"#);
    assert_eq!(ev_of(&gone[0]), "error", "done session should not recover");
}

/// Truncated or bit-flipped journal payloads are rejected or partially
/// skipped — never a panic. (Checksummed integrity is the checkpoint
/// container's job; this pins that the inner decoder is still total.)
#[test]
fn mangled_journal_payloads_never_panic() {
    let mut server = Server::new();
    cmd(&mut server, &open_line("a", true));
    cmd(&mut server, &open_line("b", false));
    cmd(&mut server, r#"{"cmd":"step","sim":"a","events":20}"#);
    let journal = server.journal_bytes();

    for cut in 0..journal.len() {
        let _ = Server::new().recover_from_bytes(&journal[..cut]);
    }
    for at in (0..journal.len()).step_by(7) {
        for bit in [0, 3, 7] {
            let mut bad = journal.clone();
            bad[at] ^= 1 << bit;
            let _ = Server::new().recover_from_bytes(&bad);
        }
    }
}

/// Session admission is bounded: opens beyond the limit get a
/// structured `"session-limit"` error, closing frees a slot, and
/// recovery honours the same bound by skipping the overflow.
#[test]
fn session_limit_is_enforced_with_structured_rejection() {
    let mut server = Server::new();
    server.set_max_sessions(2);
    assert_eq!(
        ev_of(&cmd(&mut server, &open_line("a", false))[0]),
        "opened"
    );
    assert_eq!(
        ev_of(&cmd(&mut server, &open_line("b", false))[0]),
        "opened"
    );
    let rejected = cmd(&mut server, &open_line("c", false));
    assert_eq!(rejected.len(), 1);
    assert_eq!(ev_of(&rejected[0]), "error");
    assert_eq!(field_str(&rejected[0], "code"), "session-limit");
    cmd(&mut server, r#"{"cmd":"close","sim":"a"}"#);
    assert_eq!(
        ev_of(&cmd(&mut server, &open_line("c", false))[0]),
        "opened"
    );

    let journal = server.journal_bytes();
    let mut small = Server::new();
    small.set_max_sessions(1);
    let report = small.recover_from_bytes(&journal).unwrap();
    assert_eq!(report.recovered.len(), 1);
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(report.skipped[0].1, "session limit reached");
}

/// Oversized request lines are rejected with a structured error and the
/// server keeps serving normal lines afterwards.
#[test]
fn oversized_lines_are_rejected_not_buffered() {
    let mut server = Server::new();
    let giant = "x".repeat(bc_serve::MAX_LINE_LEN + 1);
    let out = server.handle_line(&giant);
    assert_eq!(out.len(), 1);
    assert_eq!(ev_of(&out[0]), "error");
    assert_eq!(field_str(&out[0], "code"), "line-too-long");
    // The binary's bounded reader emits this variant for lines it
    // discarded without accumulating; same shape, same code.
    assert_eq!(
        field_str(&bc_serve::oversized_line_error(), "code"),
        "line-too-long"
    );
    assert_eq!(
        ev_of(&cmd(&mut server, &open_line("ok", false))[0]),
        "opened"
    );
}

/// A panic inside one session's operation quarantines that session
/// (structured `"poisoned"` error, state visible in `metrics`) and
/// leaves the server and every other session fully operational.
#[test]
fn panicking_session_is_quarantined_not_fatal() {
    let mut server = Server::new();
    cmd(&mut server, &open_line("sick", true));
    cmd(&mut server, &open_line("healthy", false));

    let out = server.inject_panic("sick");
    assert_eq!(out.len(), 1);
    assert_eq!(ev_of(&out[0]), "error");
    assert_eq!(field_str(&out[0], "code"), "poisoned");

    let step = cmd(&mut server, r#"{"cmd":"step","sim":"sick"}"#);
    assert_eq!(ev_of(&step[0]), "error");
    let metrics = cmd(&mut server, r#"{"cmd":"metrics","sim":"sick"}"#);
    assert_eq!(field_str(&metrics[0], "state"), "poisoned");
    assert_eq!(field_str(&metrics[0], "msg"), "injected fault");

    // The quarantined session is not journaled back to life.
    let journal = server.journal_bytes();
    let mut recovered = Server::new();
    let report = recovered.recover_from_bytes(&journal).unwrap();
    assert_eq!(report.recovered, vec!["healthy".to_string()]);

    // The healthy session and the server itself are unharmed.
    let done = cmd(&mut server, r#"{"cmd":"run","sim":"healthy"}"#)
        .into_iter()
        .find(|l| ev_of(l) == "done");
    assert!(done.is_some(), "healthy session failed after quarantine");
    assert_eq!(
        ev_of(&cmd(&mut server, r#"{"cmd":"close","sim":"sick"}"#)[0]),
        "closed"
    );
}

/// The workspace pool recycles: closing and reopening sessions reuses
/// released workspaces instead of allocating fresh ones.
#[test]
fn workspace_pool_recycles_across_sessions() {
    let mut server = Server::new();
    let spec = |name: &str| {
        format!(
            r#"{{"cmd":"open","sim":"{name}","tree":{{"root_compute":2,"nodes":[[0,1,2]]}},"tasks":6}}"#
        )
    };
    for round in 0..3 {
        let name = format!("r{round}");
        cmd(&mut server, &spec(&name));
        cmd(&mut server, &format!(r#"{{"cmd":"run","sim":"{name}"}}"#));
        cmd(&mut server, &format!(r#"{{"cmd":"close","sim":"{name}"}}"#));
    }
    let status = cmd(&mut server, r#"{"cmd":"status"}"#);
    let v: Value = serde_json::from_str(&status[0]).unwrap();
    let pool = v.get("pool").expect("no pool block");
    let get = |k: &str| match pool.get(k) {
        Some(Value::Int(n)) => *n,
        other => panic!("pool.{k}: {other:?}"),
    };
    assert_eq!(get("created"), 1, "every round should reuse one workspace");
    assert_eq!(get("reused"), 2);
    assert_eq!(get("idle"), 1);
}
