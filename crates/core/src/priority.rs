//! Child-selection policies.
//!
//! The paper's scheduling principle (§2.1): *"Each parent node prioritizes
//! its children according to the time it takes the node to communicate a
//! task to the child. Each parent delegates the next task in its buffers
//! to the highest-priority child that has an empty buffer to receive it."*
//!
//! [`ChildSelector::BandwidthCentric`] implements exactly that. The other
//! variants are baselines used by the ablation benchmarks: prioritizing by
//! *compute* speed (the intuitive-but-wrong heuristic the bandwidth-centric
//! principle corrects) and round-robin (priority-free fair service).

/// What a parent knows about one child when making a scheduling decision —
/// all locally measurable quantities (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChildInfo {
    /// Stable index of the child in the parent's child list.
    pub index: usize,
    /// Estimated time to communicate one task to this child.
    pub comm_estimate: u64,
    /// Estimated time for the child to compute one task (used only by the
    /// compute-centric baseline; the bandwidth-centric policy deliberately
    /// ignores it).
    pub compute_estimate: u64,
}

/// A child-selection policy. Selection is the single decision point of the
/// autonomous protocols: "which requesting child gets the next task".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChildSelector {
    /// The paper's policy: smallest communication time first.
    BandwidthCentric,
    /// Baseline: smallest computation time first (ignores bandwidth).
    ComputeCentric,
    /// Baseline: cyclic fair service, no preemption.
    RoundRobin {
        /// Index after which the scan resumes.
        cursor: usize,
    },
}

impl ChildSelector {
    /// A fresh round-robin selector.
    pub fn round_robin() -> Self {
        ChildSelector::RoundRobin { cursor: usize::MAX }
    }

    /// Picks the next child to serve among `candidates` (children that
    /// have an outstanding request and room to receive). Returns the
    /// chosen child's `index`. Candidates may arrive in any order; ties
    /// break toward the lowest index so decisions are deterministic.
    pub fn select(&mut self, candidates: &[ChildInfo]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            ChildSelector::BandwidthCentric => candidates
                .iter()
                .min_by_key(|c| (c.comm_estimate, c.index))
                .map(|c| c.index),
            ChildSelector::ComputeCentric => candidates
                .iter()
                .min_by_key(|c| (c.compute_estimate, c.index))
                .map(|c| c.index),
            ChildSelector::RoundRobin { cursor } => {
                // Smallest index strictly greater than the cursor, else
                // wrap to the smallest overall.
                let after = candidates
                    .iter()
                    .filter(|c| c.index > *cursor)
                    .min_by_key(|c| c.index);
                let chosen = after
                    .or_else(|| candidates.iter().min_by_key(|c| c.index))
                    .map(|c| c.index);
                if let Some(ix) = chosen {
                    *cursor = ix;
                }
                chosen
            }
        }
    }

    /// True if `a` strictly outranks `b` — the preemption test for
    /// interruptible communication (§3.2: "a request from a higher
    /// priority child may interrupt a communication to a lower priority
    /// child"). Round-robin defines no static priority, so it never
    /// preempts.
    pub fn outranks(&self, a: &ChildInfo, b: &ChildInfo) -> bool {
        match self {
            ChildSelector::BandwidthCentric => {
                (a.comm_estimate, a.index) < (b.comm_estimate, b.index)
            }
            ChildSelector::ComputeCentric => {
                (a.compute_estimate, a.index) < (b.compute_estimate, b.index)
            }
            ChildSelector::RoundRobin { .. } => false,
        }
    }

    /// The highest-priority candidate — `rank(..).first()` without the
    /// allocation. This is the hot-path query of interruptible
    /// communication (every link reconciliation asks it), so it must not
    /// touch the heap.
    pub fn best(&self, candidates: &[ChildInfo]) -> Option<usize> {
        match self {
            ChildSelector::BandwidthCentric => candidates
                .iter()
                .min_by_key(|c| (c.comm_estimate, c.index))
                .map(|c| c.index),
            ChildSelector::ComputeCentric => candidates
                .iter()
                .min_by_key(|c| (c.compute_estimate, c.index))
                .map(|c| c.index),
            ChildSelector::RoundRobin { .. } => candidates.iter().map(|c| c.index).min(),
        }
    }

    /// Full priority ranking of `candidates`, best first. (Used to pick
    /// which shelved transfer resumes when the active one completes.)
    pub fn rank(&self, candidates: &[ChildInfo]) -> Vec<usize> {
        let mut v: Vec<&ChildInfo> = candidates.iter().collect();
        match self {
            ChildSelector::BandwidthCentric => {
                v.sort_by_key(|c| (c.comm_estimate, c.index));
            }
            ChildSelector::ComputeCentric => {
                v.sort_by_key(|c| (c.compute_estimate, c.index));
            }
            ChildSelector::RoundRobin { .. } => {
                v.sort_by_key(|c| c.index);
            }
        }
        v.into_iter().map(|c| c.index).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(index: usize, comm: u64, compute: u64) -> ChildInfo {
        ChildInfo {
            index,
            comm_estimate: comm,
            compute_estimate: compute,
        }
    }

    #[test]
    fn bandwidth_centric_ignores_compute_speed() {
        let mut s = ChildSelector::BandwidthCentric;
        // Child 1 computes 100× faster but has the slower link.
        let picked = s.select(&[ci(0, 2, 1000), ci(1, 7, 10)]);
        assert_eq!(picked, Some(0));
    }

    #[test]
    fn compute_centric_is_the_opposite() {
        let mut s = ChildSelector::ComputeCentric;
        let picked = s.select(&[ci(0, 2, 1000), ci(1, 7, 10)]);
        assert_eq!(picked, Some(1));
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert_eq!(ChildSelector::BandwidthCentric.select(&[]), None);
        assert_eq!(ChildSelector::round_robin().select(&[]), None);
    }

    #[test]
    fn ties_break_by_index() {
        let mut s = ChildSelector::BandwidthCentric;
        assert_eq!(s.select(&[ci(3, 5, 1), ci(1, 5, 9)]), Some(1));
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = ChildSelector::round_robin();
        let all = [ci(0, 1, 1), ci(1, 1, 1), ci(2, 1, 1)];
        assert_eq!(s.select(&all), Some(0));
        assert_eq!(s.select(&all), Some(1));
        assert_eq!(s.select(&all), Some(2));
        assert_eq!(s.select(&all), Some(0));
    }

    #[test]
    fn round_robin_skips_missing_candidates() {
        let mut s = ChildSelector::round_robin();
        assert_eq!(s.select(&[ci(0, 1, 1), ci(2, 1, 1)]), Some(0));
        // Child 1 absent: jumps to 2.
        assert_eq!(s.select(&[ci(2, 1, 1)]), Some(2));
        // Wraps.
        assert_eq!(s.select(&[ci(0, 1, 1), ci(2, 1, 1)]), Some(0));
    }

    #[test]
    fn outranks_matches_selection_order() {
        let s = ChildSelector::BandwidthCentric;
        assert!(s.outranks(&ci(1, 2, 9), &ci(0, 5, 1)));
        assert!(!s.outranks(&ci(0, 5, 1), &ci(1, 2, 9)));
        // Equal comm: lower index outranks.
        assert!(s.outranks(&ci(0, 5, 1), &ci(1, 5, 1)));
    }

    #[test]
    fn round_robin_never_preempts() {
        let s = ChildSelector::round_robin();
        assert!(!s.outranks(&ci(0, 1, 1), &ci(1, 100, 100)));
    }

    #[test]
    fn rank_orders_best_first() {
        let s = ChildSelector::BandwidthCentric;
        let order = s.rank(&[ci(0, 9, 1), ci(1, 3, 1), ci(2, 6, 1)]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn best_matches_rank_head() {
        let cands = [ci(0, 9, 4), ci(1, 3, 8), ci(2, 6, 2), ci(3, 3, 1)];
        for s in [
            ChildSelector::BandwidthCentric,
            ChildSelector::ComputeCentric,
            ChildSelector::round_robin(),
        ] {
            assert_eq!(s.best(&cands), s.rank(&cands).first().copied());
            assert_eq!(s.best(&[]), None);
        }
    }

    #[test]
    fn changed_estimates_change_selection() {
        // Adaptation: the same selector re-queried with new measurements
        // flips its choice (the mechanism behind §4.2.3).
        let mut s = ChildSelector::BandwidthCentric;
        assert_eq!(s.select(&[ci(0, 1, 3), ci(1, 3, 5)]), Some(0));
        // c_0 degrades from 1 to 9.
        assert_eq!(s.select(&[ci(0, 9, 3), ci(1, 3, 5)]), Some(1));
    }
}
