//! # bc-core — the autonomous protocol policies
//!
//! The paper's primary contribution, as pure decision logic with no
//! simulator types: child-selection policies (bandwidth-centric plus the
//! baselines it is compared against), local latency observation, and the
//! buffer ledger implementing the §3.1 growth rules. `bc-engine` drives
//! these components from a discrete-event loop; the same code could drive
//! a real transport, which is the point of an *autonomous* protocol —
//! every decision consumes only locally measurable state.
//!
//! ```
//! use bc_core::{ChildInfo, ChildSelector};
//!
//! let mut policy = ChildSelector::BandwidthCentric;
//! let fast_link_slow_cpu = ChildInfo { index: 0, comm_estimate: 1, compute_estimate: 900 };
//! let slow_link_fast_cpu = ChildInfo { index: 1, comm_estimate: 8, compute_estimate: 2 };
//! // Bandwidth-centric: the link decides, not the CPU.
//! assert_eq!(policy.select(&[fast_link_slow_cpu, slow_link_fast_cpu]), Some(0));
//! ```

pub mod buffers;
pub mod observer;
pub mod priority;

pub use buffers::{BufferLedger, BufferPolicy, GrowthEvent, GrowthGate, LedgerState};
pub use observer::{LatencyObserver, ObserverKind, ObserverState};
pub use priority::{ChildInfo, ChildSelector};
