//! Local measurement of per-child communication times.
//!
//! §3: *"Each node can measure the time it takes to communicate a task to
//! each of its children, the time it takes to compute a task by itself,
//! and the time it takes for each child node to have an empty buffer."*
//!
//! The simulator can either hand nodes the true current edge weight
//! ("oracle" — what a deployment with perfect instantaneous measurement
//! would see) or make them learn from observed transfer durations. The
//! measured variants are what give the protocol its adaptivity: when a
//! link degrades, the next completed transfer updates the estimate and the
//! priority order follows.

/// How a node estimates the communication time to its children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObserverKind {
    /// Read the true current value each time (instant adaptation; the
    /// default for the reproduction campaign).
    Oracle,
    /// Remember the last observed transfer duration; `initial` is used
    /// before any observation.
    LastSample {
        /// Estimate before the first observation.
        initial: u64,
    },
    /// Exponential moving average with weight `num/den` on the new sample:
    /// `est ← (num·sample + (den−num)·est) / den`.
    Ema {
        /// Estimate before the first observation.
        initial: u64,
        /// Numerator of the new-sample weight.
        num: u32,
        /// Denominator of the new-sample weight (≥ num, > 0).
        den: u32,
    },
}

/// Per-child communication-time estimates for one node.
#[derive(Clone, Debug)]
pub struct LatencyObserver {
    kind: ObserverKind,
    estimates: Vec<u64>,
    samples: Vec<u64>,
}

/// A verbatim dump of a [`LatencyObserver`]'s internal state, for
/// snapshot serialization (capture via [`LatencyObserver::state`],
/// rebuild via [`LatencyObserver::from_state`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObserverState {
    /// Estimation strategy.
    pub kind: ObserverKind,
    /// Per-child current estimates.
    pub estimates: Vec<u64>,
    /// Per-child observation counts.
    pub samples: Vec<u64>,
}

impl LatencyObserver {
    /// Captures the complete internal state (see [`ObserverState`]).
    pub fn state(&self) -> ObserverState {
        ObserverState {
            kind: self.kind,
            estimates: self.estimates.clone(),
            samples: self.samples.clone(),
        }
    }

    /// Rebuilds an observer from a captured [`ObserverState`],
    /// bit-identical to the observer it was captured from.
    pub fn from_state(s: ObserverState) -> Self {
        LatencyObserver {
            kind: s.kind,
            estimates: s.estimates,
            samples: s.samples,
        }
    }

    /// Creates an observer for `children` children.
    pub fn new(kind: ObserverKind, children: usize) -> Self {
        if let ObserverKind::Ema { num, den, .. } = kind {
            assert!(
                den > 0 && num > 0 && num <= den,
                "EMA weight must be in (0, 1]"
            );
        }
        let initial = match kind {
            ObserverKind::Oracle => 0,
            ObserverKind::LastSample { initial } | ObserverKind::Ema { initial, .. } => initial,
        };
        LatencyObserver {
            kind,
            estimates: vec![initial; children],
            samples: vec![0; children],
        }
    }

    /// Reinitializes in place for a new run, keeping the vectors'
    /// capacity (the engine's workspace reuse relies on this being
    /// allocation-free once capacities are warm).
    pub fn reset(&mut self, kind: ObserverKind, children: usize) {
        if let ObserverKind::Ema { num, den, .. } = kind {
            assert!(
                den > 0 && num > 0 && num <= den,
                "EMA weight must be in (0, 1]"
            );
        }
        let initial = match kind {
            ObserverKind::Oracle => 0,
            ObserverKind::LastSample { initial } | ObserverKind::Ema { initial, .. } => initial,
        };
        self.kind = kind;
        self.estimates.clear();
        self.estimates.resize(children, initial);
        self.samples.clear();
        self.samples.resize(children, 0);
    }

    /// Whether the engine should bypass estimates and read true weights.
    pub fn is_oracle(&self) -> bool {
        matches!(self.kind, ObserverKind::Oracle)
    }

    /// Registers one more child (a node joined the overlay under this
    /// parent); its estimate starts at the observer's initial value.
    pub fn add_child(&mut self) {
        let initial = match self.kind {
            ObserverKind::Oracle => 0,
            ObserverKind::LastSample { initial } | ObserverKind::Ema { initial, .. } => initial,
        };
        self.estimates.push(initial);
        self.samples.push(0);
    }

    /// Records a completed transfer to `child` that took `duration`.
    pub fn observe(&mut self, child: usize, duration: u64) {
        self.samples[child] += 1;
        match self.kind {
            ObserverKind::Oracle => {}
            ObserverKind::LastSample { .. } => self.estimates[child] = duration,
            ObserverKind::Ema { num, den, .. } => {
                let est = self.estimates[child];
                if self.samples[child] == 1 {
                    self.estimates[child] = duration;
                } else {
                    let num = num as u128;
                    let den = den as u128;
                    let blended = (num * duration as u128 + (den - num) * est as u128) / den;
                    self.estimates[child] = blended as u64;
                }
            }
        }
    }

    /// Current estimate for `child`. Meaningless for oracle observers
    /// (the engine substitutes the true weight).
    pub fn estimate(&self, child: usize) -> u64 {
        self.estimates[child]
    }

    /// Number of samples recorded for `child`.
    pub fn sample_count(&self, child: usize) -> u64 {
        self.samples[child]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_sample_tracks_latest() {
        let mut o = LatencyObserver::new(ObserverKind::LastSample { initial: 0 }, 2);
        assert_eq!(o.estimate(0), 0);
        o.observe(0, 7);
        assert_eq!(o.estimate(0), 7);
        o.observe(0, 3);
        assert_eq!(o.estimate(0), 3);
        // Other children unaffected.
        assert_eq!(o.estimate(1), 0);
    }

    #[test]
    fn ema_blends() {
        // Weight 1/2: first sample snaps, later ones average.
        let mut o = LatencyObserver::new(
            ObserverKind::Ema {
                initial: 0,
                num: 1,
                den: 2,
            },
            1,
        );
        o.observe(0, 8);
        assert_eq!(o.estimate(0), 8);
        o.observe(0, 4);
        assert_eq!(o.estimate(0), 6);
        o.observe(0, 6);
        assert_eq!(o.estimate(0), 6);
    }

    #[test]
    fn ema_converges_to_changed_latency() {
        let mut o = LatencyObserver::new(
            ObserverKind::Ema {
                initial: 0,
                num: 1,
                den: 2,
            },
            1,
        );
        for _ in 0..10 {
            o.observe(0, 10);
        }
        assert_eq!(o.estimate(0), 10);
        for _ in 0..30 {
            o.observe(0, 40);
        }
        assert!(o.estimate(0) >= 39, "est = {}", o.estimate(0));
    }

    #[test]
    fn sample_counts() {
        let mut o = LatencyObserver::new(ObserverKind::LastSample { initial: 1 }, 2);
        o.observe(1, 5);
        o.observe(1, 5);
        assert_eq!(o.sample_count(0), 0);
        assert_eq!(o.sample_count(1), 2);
    }

    #[test]
    fn children_can_join_later() {
        let mut o = LatencyObserver::new(ObserverKind::LastSample { initial: 9 }, 1);
        o.observe(0, 5);
        o.add_child();
        assert_eq!(o.estimate(1), 9);
        assert_eq!(o.sample_count(1), 0);
        o.observe(1, 2);
        assert_eq!(o.estimate(1), 2);
        // Existing child unaffected.
        assert_eq!(o.estimate(0), 5);
    }

    #[test]
    fn oracle_is_flagged() {
        let o = LatencyObserver::new(ObserverKind::Oracle, 3);
        assert!(o.is_oracle());
        let o = LatencyObserver::new(ObserverKind::LastSample { initial: 0 }, 3);
        assert!(!o.is_oracle());
    }

    #[test]
    #[should_panic(expected = "EMA weight")]
    fn bad_ema_weight_rejected() {
        let _ = LatencyObserver::new(
            ObserverKind::Ema {
                initial: 0,
                num: 3,
                den: 2,
            },
            1,
        );
    }
}
