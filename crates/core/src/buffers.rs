//! Buffer accounting and the §3.1 growth rules.
//!
//! A *buffer* holds one received-but-unassigned task. Buffers empty when
//! the task starts computing locally or starts moving toward a child
//! (§3.1), and the protocol keeps one outstanding request toward the
//! parent per uncovered empty buffer ("a child requests a task from a node
//! when the child has an empty buffer").

/// How often the §3.1 growth rules are allowed to actually fire.
///
/// The paper states *which events* permit growth but not how often; it
/// only notes the chosen combination "allowed almost every node to grow
/// its necessary buffers, while discouraging over-growth". These gates
/// span that design space (and are ablated in the benches — see
/// DESIGN.md for the calibration against Fig 4 / Table 2):
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GrowthGate {
    /// Fire on every qualifying event. Most aggressive: starved relay
    /// nodes grow continuously.
    #[default]
    EveryEvent,
    /// At most one growth per task received from the parent.
    OncePerArrival,
    /// Only after the pool has completely filled since the last growth —
    /// i.e. capacity was demonstrably the binding constraint. Growth
    /// self-limits once capacity exceeds what the inflow can stock.
    AfterPoolFilled,
}

/// How a node's buffer pool is sized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferPolicy {
    /// Interruptible-communication runs: a fixed pool (the paper's FB).
    Fixed(u32),
    /// Non-interruptible runs: start at `initial`, grow per the §3.1
    /// rules, optionally capped, optionally decaying back toward
    /// `initial` (the paper notes decay as desirable future work).
    Growable {
        /// Starting pool size (the paper's IB).
        initial: u32,
        /// Hard cap on growth (None = unbounded, as in the paper's runs).
        cap: Option<u32>,
        /// How often the growth rules may fire.
        gate: GrowthGate,
        /// If set, one buffer is reclaimed after this many timesteps
        /// without growth pressure (extension; see DESIGN.md).
        decay_after: Option<u64>,
    },
}

impl BufferPolicy {
    /// Initial pool size.
    pub fn initial(&self) -> u32 {
        match *self {
            BufferPolicy::Fixed(k) => k,
            BufferPolicy::Growable { initial, .. } => initial,
        }
    }

    /// True if the pool may grow.
    pub fn growable(&self) -> bool {
        matches!(self, BufferPolicy::Growable { .. })
    }
}

/// The protocol events after which §3.1 allows growing a buffer:
///
/// 1. all buffers became empty while a child request is outstanding;
/// 2. a send to a child completed, a child request is outstanding, and
///    all buffers are empty;
/// 3. a computation completed and all buffers are empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrowthEvent {
    /// A request from a child arrived (or remained outstanding) while the
    /// buffers are empty — rule 1.
    ChildRequestPressure,
    /// The node completed the communication of a task to a child — rule 2.
    SendCompleted,
    /// The node completed the computation of a task — rule 3.
    ComputeCompleted,
}

/// Per-node buffer ledger: capacity, holdings, and coverage of empty
/// buffers by requests/in-flight deliveries.
#[derive(Clone, Debug)]
pub struct BufferLedger {
    policy: BufferPolicy,
    capacity: u32,
    held: u32,
    /// Empty buffers already covered by an outstanding request to the
    /// parent or an in-flight delivery from it.
    covered: u32,
    max_capacity: u32,
    peak_held: u32,
    /// For [`GrowthGate::AfterPoolFilled`]: pool filled since last growth.
    filled_since_growth: bool,
    /// For [`GrowthGate::OncePerArrival`]: grew since the last arrival.
    grown_since_arrival: bool,
}

/// A verbatim dump of a [`BufferLedger`]'s internal state, for snapshot
/// serialization. Fields are public by design; the only supported uses
/// are [`BufferLedger::state`] → encode and decode →
/// [`BufferLedger::from_state`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LedgerState {
    /// Sizing policy.
    pub policy: BufferPolicy,
    /// Current pool capacity.
    pub capacity: u32,
    /// Tasks currently held.
    pub held: u32,
    /// Empty buffers covered by an outstanding request or delivery.
    pub covered: u32,
    /// High-water pool capacity.
    pub max_capacity: u32,
    /// High-water held count.
    pub peak_held: u32,
    /// `AfterPoolFilled` gate latch.
    pub filled_since_growth: bool,
    /// `OncePerArrival` gate latch.
    pub grown_since_arrival: bool,
}

impl BufferLedger {
    /// Captures the complete internal state (see [`LedgerState`]).
    pub fn state(&self) -> LedgerState {
        LedgerState {
            policy: self.policy,
            capacity: self.capacity,
            held: self.held,
            covered: self.covered,
            max_capacity: self.max_capacity,
            peak_held: self.peak_held,
            filled_since_growth: self.filled_since_growth,
            grown_since_arrival: self.grown_since_arrival,
        }
    }

    /// Rebuilds a ledger from a captured [`LedgerState`], bit-identical
    /// to the ledger it was captured from.
    pub fn from_state(s: LedgerState) -> Self {
        BufferLedger {
            policy: s.policy,
            capacity: s.capacity,
            held: s.held,
            covered: s.covered,
            max_capacity: s.max_capacity,
            peak_held: s.peak_held,
            filled_since_growth: s.filled_since_growth,
            grown_since_arrival: s.grown_since_arrival,
        }
    }

    /// A ledger with the policy's initial capacity, empty and uncovered.
    pub fn new(policy: BufferPolicy) -> Self {
        let capacity = policy.initial();
        BufferLedger {
            policy,
            capacity,
            held: 0,
            covered: 0,
            max_capacity: capacity,
            peak_held: 0,
            filled_since_growth: false,
            grown_since_arrival: false,
        }
    }

    /// Current pool size.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Tasks currently held.
    pub fn held(&self) -> u32 {
        self.held
    }

    /// True if no tasks are held ("buffers all empty" in §3.1's wording).
    pub fn all_empty(&self) -> bool {
        self.held == 0
    }

    /// Empty buffers not yet covered by a request/in-flight delivery —
    /// the number of new requests the node should send to its parent.
    pub fn uncovered(&self) -> u32 {
        self.capacity - self.held - self.covered
    }

    /// Empty buffers covered by an outstanding request to the parent or
    /// an in-flight delivery from it. The engine's invariant checker
    /// cross-checks this against the parent's request ledger: `covered`
    /// must always equal requests pending at the parent plus tasks in
    /// flight toward this node.
    pub fn covered(&self) -> u32 {
        self.covered
    }

    /// The sizing policy this ledger was built with.
    pub fn policy(&self) -> &BufferPolicy {
        &self.policy
    }

    /// Largest capacity ever reached (the paper's "number of buffers
    /// used", Tables 1 and 2).
    pub fn max_capacity(&self) -> u32 {
        self.max_capacity
    }

    /// Largest number of tasks simultaneously held.
    pub fn peak_held(&self) -> u32 {
        self.peak_held
    }

    /// Marks `n` empty buffers as covered by freshly sent requests.
    pub fn note_requests_sent(&mut self, n: u32) {
        assert!(n <= self.uncovered(), "over-requesting");
        self.covered += n;
    }

    /// A task from the parent arrived: occupy a covered buffer.
    pub fn task_arrived(&mut self) {
        assert!(self.covered > 0, "delivery without coverage");
        assert!(self.held < self.capacity, "buffer overflow");
        self.covered -= 1;
        self.held += 1;
        self.peak_held = self.peak_held.max(self.held);
        if self.held == self.capacity {
            self.filled_since_growth = true;
        }
        self.grown_since_arrival = false;
    }

    /// Takes a task out of the pool (compute start or send start).
    /// The freed buffer becomes uncovered; the caller re-requests.
    pub fn take_task(&mut self) {
        assert!(self.held > 0, "taking from empty buffers");
        self.held -= 1;
    }

    /// Releases `n` covered buffers back to uncovered: the requests (or
    /// in-flight deliveries) covering them are known lost — a request
    /// timeout fired, a transfer aborted, or a deferred negative
    /// acknowledgement resolved. The caller re-requests.
    pub fn uncover(&mut self, n: u32) {
        assert!(n <= self.covered, "uncovering more than covered");
        self.covered -= n;
    }

    /// Applies a §3.1 growth rule. Returns true if a buffer was grown
    /// (the caller should then send a request to cover it).
    pub fn try_grow(&mut self, event: GrowthEvent, child_requests_outstanding: bool) -> bool {
        let BufferPolicy::Growable { cap, gate, .. } = self.policy else {
            return false;
        };
        if let Some(cap) = cap {
            if self.capacity >= cap {
                return false;
            }
        }
        let rule_allows = match event {
            // Rules 1 and 2 require an outstanding child request.
            GrowthEvent::ChildRequestPressure | GrowthEvent::SendCompleted => {
                self.all_empty() && child_requests_outstanding
            }
            // Rule 3 requires only empty buffers.
            GrowthEvent::ComputeCompleted => self.all_empty(),
        };
        if !rule_allows {
            return false;
        }
        match gate {
            GrowthGate::EveryEvent => {}
            GrowthGate::OncePerArrival => {
                if self.grown_since_arrival {
                    return false;
                }
            }
            GrowthGate::AfterPoolFilled => {
                if !self.filled_since_growth {
                    return false;
                }
            }
        }
        self.filled_since_growth = false;
        self.grown_since_arrival = true;
        // Growing is only useful if the new buffer is actually uncovered
        // afterward; it always is, since capacity rises by one.
        self.capacity += 1;
        self.max_capacity = self.max_capacity.max(self.capacity);
        true
    }

    /// Decay (extension): reclaims one unused buffer if the pool is above
    /// its initial size and at least one buffer is empty and uncovered.
    /// Returns true if a buffer was reclaimed.
    pub fn try_shrink(&mut self) -> bool {
        let BufferPolicy::Growable {
            initial,
            decay_after: Some(_),
            ..
        } = self.policy
        else {
            return false;
        };
        if self.capacity > initial && self.uncovered() > 0 {
            self.capacity -= 1;
            true
        } else {
            false
        }
    }

    /// The decay window, if the policy has one.
    pub fn decay_after(&self) -> Option<u64> {
        match self.policy {
            BufferPolicy::Growable { decay_after, .. } => decay_after,
            BufferPolicy::Fixed(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn growable(initial: u32) -> BufferLedger {
        BufferLedger::new(BufferPolicy::Growable {
            initial,
            cap: None,
            gate: GrowthGate::EveryEvent,
            decay_after: None,
        })
    }

    #[test]
    fn initial_state() {
        let l = BufferLedger::new(BufferPolicy::Fixed(3));
        assert_eq!(l.capacity(), 3);
        assert_eq!(l.held(), 0);
        assert_eq!(l.uncovered(), 3);
        assert!(l.all_empty());
    }

    #[test]
    fn request_delivery_cycle() {
        let mut l = BufferLedger::new(BufferPolicy::Fixed(2));
        l.note_requests_sent(2);
        assert_eq!(l.uncovered(), 0);
        l.task_arrived();
        assert_eq!(l.held(), 1);
        assert_eq!(l.uncovered(), 0); // one held + one still covered
        l.take_task();
        assert_eq!(l.uncovered(), 1); // freed buffer needs a new request
        l.note_requests_sent(1);
        assert_eq!(l.uncovered(), 0);
    }

    #[test]
    #[should_panic(expected = "over-requesting")]
    fn cannot_over_request() {
        let mut l = BufferLedger::new(BufferPolicy::Fixed(1));
        l.note_requests_sent(2);
    }

    #[test]
    fn uncover_releases_lost_coverage() {
        let mut l = BufferLedger::new(BufferPolicy::Fixed(3));
        l.note_requests_sent(3);
        assert_eq!(l.uncovered(), 0);
        // Two of the three requests were lost in the network; a timeout
        // withdraws them so they can be re-sent.
        l.uncover(2);
        assert_eq!(l.covered(), 1);
        assert_eq!(l.uncovered(), 2);
        l.note_requests_sent(2);
        assert_eq!(l.uncovered(), 0);
    }

    #[test]
    #[should_panic(expected = "uncovering more than covered")]
    fn cannot_uncover_below_zero() {
        let mut l = BufferLedger::new(BufferPolicy::Fixed(2));
        l.note_requests_sent(1);
        l.uncover(2);
    }

    #[test]
    #[should_panic(expected = "delivery without coverage")]
    fn cannot_deliver_uncovered() {
        let mut l = BufferLedger::new(BufferPolicy::Fixed(1));
        l.task_arrived();
    }

    #[test]
    fn fixed_pool_never_grows() {
        let mut l = BufferLedger::new(BufferPolicy::Fixed(1));
        assert!(!l.try_grow(GrowthEvent::ComputeCompleted, true));
        assert_eq!(l.capacity(), 1);
    }

    #[test]
    fn growth_rule_1_needs_pressure() {
        let mut l = growable(1);
        assert!(!l.try_grow(GrowthEvent::ChildRequestPressure, false));
        assert!(l.try_grow(GrowthEvent::ChildRequestPressure, true));
        assert_eq!(l.capacity(), 2);
        assert_eq!(l.max_capacity(), 2);
    }

    #[test]
    fn growth_rules_need_empty_buffers() {
        let mut l = growable(1);
        l.note_requests_sent(1);
        l.task_arrived(); // now holding one task
        assert!(!l.try_grow(GrowthEvent::ChildRequestPressure, true));
        assert!(!l.try_grow(GrowthEvent::SendCompleted, true));
        assert!(!l.try_grow(GrowthEvent::ComputeCompleted, true));
    }

    #[test]
    fn growth_rule_3_without_child_requests() {
        let mut l = growable(1);
        assert!(l.try_grow(GrowthEvent::ComputeCompleted, false));
        assert_eq!(l.capacity(), 2);
    }

    #[test]
    fn cap_limits_growth() {
        let mut l = BufferLedger::new(BufferPolicy::Growable {
            initial: 1,
            cap: Some(2),
            gate: GrowthGate::EveryEvent,
            decay_after: None,
        });
        assert!(l.try_grow(GrowthEvent::ComputeCompleted, false));
        assert!(!l.try_grow(GrowthEvent::ComputeCompleted, false));
        assert_eq!(l.capacity(), 2);
    }

    #[test]
    fn peak_held_tracks_high_water() {
        let mut l = BufferLedger::new(BufferPolicy::Fixed(3));
        l.note_requests_sent(3);
        l.task_arrived();
        l.task_arrived();
        l.take_task();
        l.task_arrived();
        assert_eq!(l.peak_held(), 2);
    }

    #[test]
    fn shrink_requires_decay_policy_and_slack() {
        let mut l = BufferLedger::new(BufferPolicy::Growable {
            initial: 1,
            cap: None,
            gate: GrowthGate::EveryEvent,
            decay_after: Some(100),
        });
        assert!(!l.try_shrink(), "cannot shrink below initial");
        assert!(l.try_grow(GrowthEvent::ComputeCompleted, false));
        assert_eq!(l.capacity(), 2);
        assert!(l.try_shrink());
        assert_eq!(l.capacity(), 1);
        // Without decay configured, shrink is a no-op.
        let mut l = growable(1);
        l.try_grow(GrowthEvent::ComputeCompleted, false);
        assert!(!l.try_shrink());
    }

    #[test]
    fn once_per_arrival_gate_throttles() {
        let mut l = BufferLedger::new(BufferPolicy::Growable {
            initial: 1,
            cap: None,
            gate: GrowthGate::OncePerArrival,
            decay_after: None,
        });
        assert!(l.try_grow(GrowthEvent::ComputeCompleted, false));
        assert!(!l.try_grow(GrowthEvent::ComputeCompleted, false));
        // An arrival re-arms the gate.
        l.note_requests_sent(1);
        l.task_arrived();
        l.take_task();
        assert!(l.try_grow(GrowthEvent::ComputeCompleted, false));
        assert_eq!(l.capacity(), 3);
    }

    #[test]
    fn after_pool_filled_gate_requires_evidence() {
        let mut l = BufferLedger::new(BufferPolicy::Growable {
            initial: 1,
            cap: None,
            gate: GrowthGate::AfterPoolFilled,
            decay_after: None,
        });
        // Never filled: no growth no matter how many events fire.
        assert!(!l.try_grow(GrowthEvent::ComputeCompleted, false));
        // Fill the single buffer, drain it, and growth is justified once.
        l.note_requests_sent(1);
        l.task_arrived();
        l.take_task();
        assert!(l.try_grow(GrowthEvent::ComputeCompleted, false));
        assert!(!l.try_grow(GrowthEvent::ComputeCompleted, false));
        assert_eq!(l.capacity(), 2);
        // Now the pool must fill to 2 before the next growth.
        l.note_requests_sent(2);
        l.task_arrived();
        assert!(!l.try_grow(GrowthEvent::ComputeCompleted, false));
        l.task_arrived();
        l.take_task();
        l.take_task();
        assert!(l.try_grow(GrowthEvent::ComputeCompleted, false));
        assert_eq!(l.capacity(), 3);
    }

    #[test]
    fn covered_tracks_requests_and_deliveries() {
        let mut l = BufferLedger::new(BufferPolicy::Fixed(2));
        assert_eq!(l.covered(), 0);
        l.note_requests_sent(2);
        assert_eq!(l.covered(), 2);
        l.task_arrived();
        assert_eq!(l.covered(), 1);
        assert_eq!(*l.policy(), BufferPolicy::Fixed(2));
    }

    #[test]
    fn grown_buffer_is_uncovered() {
        let mut l = growable(1);
        l.note_requests_sent(1);
        assert_eq!(l.uncovered(), 0);
        assert!(l.try_grow(GrowthEvent::ChildRequestPressure, true));
        assert_eq!(l.uncovered(), 1);
    }
}
