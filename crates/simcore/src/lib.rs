//! # bc-simcore — deterministic discrete-event simulation kernel
//!
//! The substrate that plays SimGrid's role in the paper's evaluation
//! (§4.1): a minimal, fully deterministic discrete-event engine. The
//! protocol simulator in `bc-engine` drives an [`Agenda`] of typed events;
//! ties at equal timestamps resolve in scheduling order, cancellation is
//! O(log n) (needed constantly by interruptible communication), and time
//! is integer, so simulations are exact and reproducible bit-for-bit.
//!
//! ```
//! use bc_simcore::Agenda;
//!
//! let mut agenda: Agenda<&str> = Agenda::new();
//! agenda.schedule(10, "compute done");
//! let h = agenda.schedule(5, "transfer done");
//! agenda.cancel(h); // preempted!
//! assert_eq!(agenda.next(), Some((10, "compute done")));
//! ```

pub mod agenda;
pub mod quad_heap;
pub mod rng;
pub mod trace;
pub mod vec_agenda;

pub use agenda::{Agenda, AgendaSnapshot, EventHandle, SlotSnapshot, Time};
pub use quad_heap::{PackedEvent, QuadHeap};
pub use rng::{job_rng, split_seed};
pub use trace::{
    BinWriter, JsonlWriter, NullSink, RingRecorder, TeeSink, TraceEvent, TraceRecord, TraceSink,
    VecSink,
};
pub use vec_agenda::{VecAgenda, VecEventHandle};
