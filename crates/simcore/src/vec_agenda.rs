//! A sorted-`Vec` agenda: the naive alternative to the binary-heap
//! [`Agenda`](crate::Agenda), kept for the event-queue ablation bench.
//!
//! Insertion is O(n) (binary search + shift) and pop is O(1) from the
//! tail; for the small-to-mid event populations of protocol simulation
//! this is sometimes competitive with the heap, which is exactly what the
//! ablation measures. Semantics (time order, schedule-order ties,
//! cancellation) are identical to [`Agenda`](crate::Agenda) and are
//! property-tested to match.

use crate::agenda::Time;

/// Handle to a scheduled event in a [`VecAgenda`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VecEventHandle {
    seq: u64,
}

struct Entry<E> {
    time: Time,
    seq: u64,
    payload: Option<E>,
}

/// A sorted-vector discrete-event agenda (drop-in semantic equivalent of
/// [`Agenda`](crate::Agenda)).
pub struct VecAgenda<E> {
    /// Sorted by `(time, seq)` DESCENDING so pops come from the tail.
    entries: Vec<Entry<E>>,
    now: Time,
    seq: u64,
    live: usize,
}

impl<E> Default for VecAgenda<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> VecAgenda<E> {
    /// An empty agenda at time 0.
    pub fn new() -> Self {
        VecAgenda {
            entries: Vec::new(),
            now: 0,
            seq: 0,
            live: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `payload` to fire `delay` steps from now.
    pub fn schedule(&mut self, delay: Time, payload: E) -> VecEventHandle {
        let time = self.now.checked_add(delay).expect("time overflow");
        self.seq += 1;
        let seq = self.seq;
        // Descending (time, seq): find insertion point.
        let pos = self
            .entries
            .partition_point(|e| (e.time, e.seq) > (time, seq));
        self.entries.insert(
            pos,
            Entry {
                time,
                seq,
                payload: Some(payload),
            },
        );
        self.live += 1;
        VecEventHandle { seq }
    }

    /// Cancels a pending event.
    pub fn cancel(&mut self, handle: VecEventHandle) -> Option<E> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.seq == handle.seq && e.payload.is_some())?;
        self.live -= 1;
        e.payload.take()
    }

    /// Pops the next event, advancing the clock.
    #[allow(clippy::should_implement_trait)] // a DES agenda is not an Iterator: popping mutates the clock
    pub fn next(&mut self) -> Option<(Time, E)> {
        while let Some(e) = self.entries.pop() {
            if let Some(payload) = e.payload {
                debug_assert!(e.time >= self.now);
                self.now = e.time;
                self.live -= 1;
                return Some((e.time, payload));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Agenda;
    use proptest::prelude::*;

    #[test]
    fn basic_order_and_cancel() {
        let mut a = VecAgenda::new();
        a.schedule(5, "b");
        a.schedule(1, "a");
        let h = a.schedule(3, "x");
        assert_eq!(a.len(), 3);
        assert_eq!(a.cancel(h), Some("x"));
        assert_eq!(a.cancel(h), None);
        assert_eq!(a.next(), Some((1, "a")));
        assert_eq!(a.next(), Some((5, "b")));
        assert_eq!(a.next(), None);
    }

    #[test]
    fn equal_times_fire_in_schedule_order() {
        let mut a = VecAgenda::new();
        for i in 0..50 {
            a.schedule(7, i);
        }
        for i in 0..50 {
            assert_eq!(a.next(), Some((7, i)));
        }
    }

    proptest! {
        /// The two agenda implementations produce identical event
        /// sequences under arbitrary schedule/cancel/pop interleavings.
        #[test]
        fn equivalent_to_heap_agenda(ops in prop::collection::vec((0u8..3, 0u64..50), 1..200)) {
            let mut heap = Agenda::new();
            let mut vec = VecAgenda::new();
            let mut heap_handles = Vec::new();
            let mut vec_handles = Vec::new();
            let mut next_id = 0u64;
            for (op, arg) in ops {
                match op {
                    0 => {
                        next_id += 1;
                        heap_handles.push(heap.schedule(arg, next_id));
                        vec_handles.push(vec.schedule(arg, next_id));
                    }
                    1 if !heap_handles.is_empty() => {
                        let i = (arg as usize) % heap_handles.len();
                        let a = heap.cancel(heap_handles[i]);
                        let b = vec.cancel(vec_handles[i]);
                        prop_assert_eq!(a, b);
                    }
                    _ => {
                        let a = heap.next();
                        let b = vec.next();
                        prop_assert_eq!(a, b);
                        prop_assert_eq!(heap.now(), vec.now());
                    }
                }
                prop_assert_eq!(heap.len(), vec.len());
            }
            // Drain both to the end.
            loop {
                let a = heap.next();
                let b = vec.next();
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
