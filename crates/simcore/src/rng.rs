//! Deterministic seed derivation.
//!
//! The experiment campaign runs tens of thousands of independent
//! simulations in parallel; each one derives its own seed from the
//! campaign seed and its index so that results are reproducible
//! regardless of thread scheduling, chunking, or partial re-runs.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step — the standard way to stretch one `u64` seed into many
/// well-decorrelated ones.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A [`SmallRng`] for the `index`-th job of a campaign.
pub fn job_rng(campaign_seed: u64, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(split_seed(campaign_seed, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
        let a: u64 = job_rng(1, 2).random();
        let b: u64 = job_rng(1, 2).random();
        assert_eq!(a, b);
    }

    #[test]
    fn indices_decorrelate() {
        let seeds: Vec<u64> = (0..1000).map(|i| split_seed(99, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "collision in 1000 derivations");
    }

    #[test]
    fn campaign_seeds_decorrelate() {
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
    }
}
