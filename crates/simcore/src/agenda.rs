//! The event agenda: a deterministic discrete-event scheduler.
//!
//! Replaces the role SimGrid played in the paper's evaluation. Design
//! points that matter for reproducibility:
//!
//! * **Total determinism.** Events at equal times pop in scheduling order
//!   (a monotone sequence number breaks ties), so a simulation is a pure
//!   function of its inputs. The experiment campaign relies on this: every
//!   figure regenerates bit-for-bit from the same seeds.
//! * **O(log n) cancellation.** Interruptible communication cancels and
//!   reschedules transfer-completion events constantly; cancellation here
//!   is a generation bump plus lazy removal at pop time, the standard
//!   "tombstone" technique.
//! * **Integer time.** All paper parameters are integer timesteps and
//!   preemptions happen at event times, so `u64` time is exact — no float
//!   drift anywhere in the simulator.
//!
//! ## Two-tier ladder front-end
//!
//! Nearly every event a protocol run schedules lands a short delay ahead:
//! transfer completions are one edge weight out (tens of timesteps) and
//! compute completions one node weight (hundreds). A binary/4-ary heap
//! pays O(log n) sift work per operation for ordering generality those
//! events never use. The agenda therefore splits by horizon:
//!
//! * **Near tier** — a calendar of [`NEAR_BUCKETS`] one-timestep buckets
//!   covering `[now, now + NEAR_BUCKETS)`. An event due `< NEAR_BUCKETS`
//!   from now is appended to the bucket of its timestamp (`time mod
//!   NEAR_BUCKETS`): O(1) insert. Because the global sequence number is
//!   monotone, a bucket's append order *is* its `(time, seq)` order, so
//!   popping walks an occupancy bitmap to the first non-empty bucket and
//!   takes its front entry: O(1) amortized, a couple of cache lines.
//! * **Far tier** — everything at or beyond the window goes to the packed
//!   4-ary heap ([`crate::quad_heap`]) exactly as before. Far events are
//!   rare (scripted faults, recovery timeouts, degenerate platforms), and
//!   an event never migrates: by the time the clock brings its due time
//!   inside the window it simply wins the front comparison below.
//!
//! Each pop compares the near front against the far front **by full
//! packed key** — the same `time:64 | seq:44 | slot:20` `u128` either
//! tier stores — so the merged order is bit-exactly the order the
//! single-heap agenda produced (golden traces do not move).
//!
//! Tombstones exist in both tiers. Near tombstones are skimmed when
//! their bucket reaches the front and compacted wholesale when they
//! outnumber live near entries (interruptible-communication churn
//! cancels mostly short-horizon events); far tombstones purge on the
//! heap-local ratio, not the global live count, so a cancel-heavy near
//! tier can no longer force pointless heap rebuilds (and vice versa).

use crate::quad_heap::{PackedEvent, QuadHeap, MAX_SEQ, MAX_SLOT};

/// Simulation time in integer timesteps.
pub type Time = u64;

/// Width of the near-tier calendar window, in timesteps (one bucket per
/// timestep). Power of two so the bucket index is a mask. 1024 covers
/// every delay the protocol schedules under the paper's parameter ranges
/// (edge weights ≤ ~100, node weights ≤ ~1000 in the dense campaigns);
/// longer delays take the far heap, which is merely slower, never wrong.
const NEAR_BUCKETS: usize = 1024;
/// Bitmap words backing the bucket-occupancy index.
const NEAR_WORDS: usize = NEAR_BUCKETS / 64;
/// Near-tier compaction floor (mirrors the far tier's 64-entry floor).
const NEAR_PURGE_FLOOR: usize = 64;

/// Handle to a scheduled event; survives the event firing (becomes stale).
///
/// ## Generation arithmetic
///
/// Slot generations advance with `wrapping_add(1)` **everywhere** —
/// cancel, fire, and [`Agenda::reset`] — and are compared only for
/// equality, never ordered. Wrapping is sound because a slot is recycled
/// only after its single outstanding entry leaves its tier, so a
/// stale handle can only resurrect if the *same slot* runs through all
/// 2^32 generations while the handle is retained; no simulation holds a
/// handle across four billion reuses of one slot (handles live for one
/// transfer). A saturating or panicking `+= 1` would instead make
/// extremely long release campaigns abort (or, with overflow checks off,
/// silently reuse generation values with no documented reasoning).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    generation: u32,
}

impl EventHandle {
    /// `(slot, generation)`, for snapshot serialization. Meaningful only
    /// against the agenda state captured alongside it.
    #[inline]
    pub fn raw_parts(self) -> (u32, u32) {
        (self.slot, self.generation)
    }

    /// Rebuilds a handle from [`EventHandle::raw_parts`] output. A handle
    /// forged against the wrong agenda state is merely stale (cancel
    /// returns `None`), never unsafe.
    #[inline]
    pub fn from_raw_parts(slot: u32, generation: u32) -> Self {
        EventHandle { slot, generation }
    }
}

struct Slot<E> {
    generation: u32,
    /// Which tier holds this slot's outstanding entry (meaningful only
    /// while the payload is present). Events never migrate, so the flag
    /// set at schedule time stays correct for the entry's whole life.
    in_far: bool,
    payload: Option<E>,
}

/// One near-tier calendar bucket: entries appended in seq order, drained
/// front-to-back via `head` (cleared for reuse once fully drained).
#[derive(Default)]
struct Bucket {
    entries: Vec<PackedEvent>,
    head: usize,
}

/// A discrete-event agenda over payload type `E`.
///
/// Pending events live in one of two tiers (see the module docs): a
/// bucket calendar for the near window and a packed-key 4-ary heap for
/// the far future. Both store the same `u128` key ordered by `(time,
/// seq)` with the slot index in the low bits. A slot has at most one
/// outstanding entry at a time (slots are recycled only after their
/// entry leaves its tier), so liveness at pop time is just "does the
/// slot still hold a payload" — generations exist only to invalidate
/// stale [`EventHandle`]s.
pub struct Agenda<E> {
    /// Far tier: events due `>= NEAR_BUCKETS` from their scheduling time.
    heap: QuadHeap,
    /// Near tier: `buckets[t % NEAR_BUCKETS]` holds the events due at
    /// `t` for `t` in `[now, now + NEAR_BUCKETS)`. Allocated on first
    /// use, reused forever after.
    buckets: Vec<Bucket>,
    /// Occupancy bitmap over `buckets` (bit set ⇔ bucket non-empty,
    /// counting tombstones until they are skimmed).
    bits: [u64; NEAR_WORDS],
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    now: Time,
    seq: u64,
    live: usize,
    /// Live (non-cancelled) entries in the near tier.
    near_live: usize,
    /// Total entries (live + tombstones) across all near buckets.
    near_entries: usize,
    /// Tombstones currently in the far heap.
    far_dead: usize,
}

impl<E> Default for Agenda<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Agenda<E> {
    /// An empty agenda at time 0.
    pub fn new() -> Self {
        Agenda {
            heap: QuadHeap::new(),
            buckets: Vec::new(),
            bits: [0; NEAR_WORDS],
            slots: Vec::new(),
            free: Vec::new(),
            now: 0,
            seq: 0,
            live: 0,
            near_live: 0,
            near_entries: 0,
            far_dead: 0,
        }
    }

    /// Returns the agenda to its initial state (time 0, nothing pending)
    /// while keeping every allocation — heap arena, calendar buckets,
    /// slot table, free list. The campaign engine calls this between
    /// simulations so the steady-state event loop never reallocates
    /// across the thousands of runs one worker executes.
    ///
    /// Handles issued before the reset are invalidated (their slots'
    /// generations advance), so a stale handle can never cancel an event
    /// scheduled after the reset.
    pub fn reset(&mut self) {
        self.heap.clear();
        for b in &mut self.buckets {
            b.entries.clear();
            b.head = 0;
        }
        self.bits = [0; NEAR_WORDS];
        self.free.clear();
        for s in &mut self.slots {
            s.generation = s.generation.wrapping_add(1);
            s.payload = None; // drops the payload, keeps the slot
        }
        // Refill the free list so post-reset slot assignment runs 0, 1, 2…
        // exactly like a fresh agenda.
        self.free.extend((0..self.slots.len() as u32).rev());
        self.now = 0;
        self.seq = 0;
        self.live = 0;
        self.near_live = 0;
        self.near_entries = 0;
        self.far_dead = 0;
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `payload` to fire `delay` timesteps from now.
    #[inline]
    pub fn schedule(&mut self, delay: Time, payload: E) -> EventHandle {
        let time = self
            .now
            .checked_add(delay)
            .expect("simulation time overflow");
        self.schedule_at(time, payload)
    }

    /// Schedules `payload` at an absolute time (≥ now).
    pub fn schedule_at(&mut self, time: Time, payload: E) -> EventHandle {
        assert!(time >= self.now, "cannot schedule into the past");
        let in_far = time - self.now >= NEAR_BUCKETS as Time;
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.payload = Some(payload);
                sl.in_far = in_far;
                s
            }
            None => {
                assert!(
                    self.slots.len() <= MAX_SLOT as usize,
                    "agenda slot table overflow (> 2^20 concurrent events)"
                );
                self.slots.push(Slot {
                    generation: 0,
                    in_far,
                    payload: Some(payload),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.seq += 1;
        assert!(self.seq <= MAX_SEQ, "agenda sequence number overflow");
        let key = PackedEvent::pack(time, self.seq, slot);
        if in_far {
            self.heap.push(key);
        } else {
            if self.buckets.is_empty() {
                self.buckets.resize_with(NEAR_BUCKETS, Bucket::default);
            }
            let b = time as usize & (NEAR_BUCKETS - 1);
            // Monotone seq ⇒ appends keep the bucket in (time, seq) order
            // (all live entries of one bucket share one timestamp; see
            // the module docs).
            self.buckets[b].entries.push(key);
            self.bits[b / 64] |= 1u64 << (b % 64);
            self.near_live += 1;
            self.near_entries += 1;
        }
        self.live += 1;
        EventHandle { slot, generation }
    }

    /// Cancels a pending event, returning its payload. Returns `None` if
    /// the event already fired or was already cancelled (both are normal
    /// in protocol code; not an error).
    pub fn cancel(&mut self, handle: EventHandle) -> Option<E> {
        let slot = self.slots.get_mut(handle.slot as usize)?;
        if slot.generation != handle.generation || slot.payload.is_none() {
            return None;
        }
        // Wrapping: see the generation-arithmetic note on [`EventHandle`].
        slot.generation = slot.generation.wrapping_add(1);
        self.live -= 1;
        // The entry remains in its tier as a tombstone; reuse of the slot
        // is deferred until the tombstone leaves the tier, so neither
        // tier ever refers to a recycled slot with a matching generation.
        let payload = slot.payload.take();
        if slot.in_far {
            // Compact when far tombstones dominate the far tier. The
            // ratio is heap-local on purpose: near-tier churn must not
            // trigger (pointless) heap rebuilds, and a tombstone-choked
            // heap must compact even while thousands of near events are
            // live. The 2× threshold amortizes the O(n) rebuild; the
            // size floor keeps tiny heaps on the simple path.
            self.far_dead += 1;
            if self.heap.len() > 64 && self.far_dead * 2 > self.heap.len() {
                self.purge_far_tombstones();
            }
        } else {
            // Near tombstones are skimmed for free when their bucket
            // reaches the front; the sweep below only matters when churn
            // cancels faster than the clock drains (it reclaims slots
            // and keeps bucket scans short).
            self.near_live -= 1;
            let dead = self.near_entries - self.near_live;
            if dead > NEAR_PURGE_FLOOR && dead > 2 * self.near_live {
                self.sweep_near_tombstones();
            }
        }
        payload
    }

    /// Number of retained entries across both tiers, live plus tombstones
    /// (capacity introspection for tests and benchmarks).
    pub fn heap_entries(&self) -> usize {
        self.heap.len() + self.near_entries
    }

    /// Rebuilds the far heap keeping only live entries, freeing the slots
    /// of dropped tombstones. Safe because each slot has at most one
    /// outstanding entry (a slot is never reused until its previous
    /// entry leaves its tier).
    fn purge_far_tombstones(&mut self) {
        let slots = &self.slots;
        let free = &mut self.free;
        self.heap.retain(|entry| {
            let slot = entry.slot();
            if slots[slot as usize].payload.is_some() {
                true
            } else {
                free.push(slot);
                false
            }
        });
        self.far_dead = 0;
    }

    /// Compacts every near bucket in place, dropping tombstones (freeing
    /// their slots) and clearing the occupancy bit of emptied buckets.
    /// Entry order within a bucket is preserved, so the merged pop order
    /// is untouched.
    fn sweep_near_tombstones(&mut self) {
        let slots = &self.slots;
        let free = &mut self.free;
        let mut total = 0;
        for (b, bucket) in self.buckets.iter_mut().enumerate() {
            if bucket.entries.is_empty() {
                continue;
            }
            let head = std::mem::take(&mut bucket.head);
            let mut kept = 0;
            bucket.entries.retain(|&e| {
                // Entries before the drain head already left the tier
                // (their slots were recycled at pop/skim time); drop them
                // without touching the free list.
                if kept < head {
                    kept += 1;
                    return false;
                }
                if slots[e.slot() as usize].payload.is_some() {
                    true
                } else {
                    free.push(e.slot());
                    false
                }
            });
            if bucket.entries.is_empty() {
                self.bits[b / 64] &= !(1u64 << (b % 64));
            }
            total += bucket.entries.len();
        }
        self.near_entries = total;
        debug_assert_eq!(self.near_entries, self.near_live);
    }

    /// True if the handle still refers to a pending event.
    pub fn is_pending(&self, handle: EventHandle) -> bool {
        self.slots
            .get(handle.slot as usize)
            .is_some_and(|s| s.generation == handle.generation && s.payload.is_some())
    }

    /// Time of the next pending event without firing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        let near = self.near_front();
        let far = self.far_front();
        match (near, far) {
            (Some(n), Some(f)) => Some(n.min(f).time()),
            (Some(n), None) => Some(n.time()),
            (None, Some(f)) => Some(f.time()),
            (None, None) => None,
        }
    }

    /// Pops the next event, advancing the clock to its time.
    #[allow(clippy::should_implement_trait)] // a DES agenda is not an Iterator: popping mutates the clock
    pub fn next(&mut self) -> Option<(Time, E)> {
        let near = self.near_front();
        let far = self.far_front();
        // Full-key comparison: time first, then the global seq — the
        // exact order the single-heap agenda produced.
        let entry = match (near, far) {
            (Some(n), Some(f)) => {
                if n < f {
                    self.pop_near(n)
                } else {
                    self.heap.pop().expect("far front exists");
                    f
                }
            }
            (Some(n), None) => self.pop_near(n),
            (None, Some(f)) => {
                self.heap.pop().expect("far front exists");
                f
            }
            (None, None) => return None,
        };
        let slot = entry.slot();
        let s = &mut self.slots[slot as usize];
        let payload = s.payload.take().expect("front entries are live");
        // Wrapping: see the generation-arithmetic note on [`EventHandle`].
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        let time = entry.time();
        debug_assert!(time >= self.now, "agenda produced time travel");
        self.now = time;
        Some((time, payload))
    }

    /// Removes `entry` — the near front just returned by
    /// [`Self::near_front`] — from its bucket.
    #[inline]
    fn pop_near(&mut self, entry: PackedEvent) -> PackedEvent {
        let b = entry.time() as usize & (NEAR_BUCKETS - 1);
        let bucket = &mut self.buckets[b];
        debug_assert_eq!(bucket.entries[bucket.head], entry);
        bucket.head += 1;
        self.near_entries -= 1;
        self.near_live -= 1;
        if bucket.head == bucket.entries.len() {
            bucket.entries.clear();
            bucket.head = 0;
            self.bits[b / 64] &= !(1u64 << (b % 64));
        }
        entry
    }

    /// The smallest live near-tier entry, skimming tombstones off bucket
    /// fronts (recycling their slots) along the way.
    fn near_front(&mut self) -> Option<PackedEvent> {
        loop {
            if self.near_live == 0 {
                if self.near_entries > 0 {
                    // All-dead near tier: reclaim the tombstones' slots
                    // now (the single-heap agenda freed them at pop
                    // time). Amortized free — the sweep zeroes
                    // `near_entries`, so it cannot run twice in a row.
                    self.sweep_near_tombstones();
                }
                return None;
            }
            let b = self.first_bucket()?;
            let bucket = &mut self.buckets[b];
            while let Some(&e) = bucket.entries.get(bucket.head) {
                let slot = e.slot();
                if self.slots[slot as usize].payload.is_some() {
                    return Some(e);
                }
                // Skim the tombstone: the entry leaves the tier, so its
                // slot recycles now.
                bucket.head += 1;
                self.near_entries -= 1;
                self.free.push(slot);
            }
            bucket.entries.clear();
            bucket.head = 0;
            self.bits[b / 64] &= !(1u64 << (b % 64));
        }
    }

    /// Index of the first occupied bucket in circular window order from
    /// `now` (every live near entry's time is in `[now, now +
    /// NEAR_BUCKETS)`, so circular order from `now` is time order).
    #[inline]
    fn first_bucket(&self) -> Option<usize> {
        let start = self.now as usize & (NEAR_BUCKETS - 1);
        let (sw, sb) = (start / 64, start % 64);
        let w = self.bits[sw] & (!0u64 << sb);
        if w != 0 {
            return Some(sw * 64 + w.trailing_zeros() as usize);
        }
        for k in 1..NEAR_WORDS {
            let wi = (sw + k) % NEAR_WORDS;
            let w = self.bits[wi];
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        // Wrapped all the way: the bits of the start word before `start`.
        let w = self.bits[sw] & !(!0u64 << sb);
        if w != 0 {
            return Some(sw * 64 + w.trailing_zeros() as usize);
        }
        None
    }

    /// The smallest live far-tier entry, popping tombstones (recycling
    /// their slots) off the heap top along the way.
    fn far_front(&mut self) -> Option<PackedEvent> {
        while let Some(entry) = self.heap.peek() {
            let slot = entry.slot();
            if self.slots[slot as usize].payload.is_some() {
                return Some(entry);
            }
            self.heap.pop();
            self.far_dead -= 1;
            self.free.push(slot);
        }
        None
    }
}

/// One slot of an [`AgendaSnapshot`]: the slot's generation (handles
/// issued against it stay valid across a restore), which tier holds its
/// outstanding entry, and the payload (`None` = free or tombstoned).
#[derive(Clone, Debug)]
pub struct SlotSnapshot<E> {
    /// Generation counter at capture time.
    pub generation: u32,
    /// Tier of the slot's outstanding entry (meaningful only with a
    /// payload present).
    pub in_far: bool,
    /// The pending payload, if the slot holds a live entry.
    pub payload: Option<E>,
}

/// A complete deep capture of an [`Agenda`]: both tiers verbatim
/// (including tombstones and intra-bucket drain heads), the slot table
/// with generations, the free-list order, and every cursor (`now`,
/// `seq`, liveness counters).
///
/// Restoring reproduces the agenda's observable *and* internal state
/// exactly: outstanding [`EventHandle`]s captured alongside the snapshot
/// remain valid, future slot assignment draws from the same free-list
/// order, and the pop sequence (a full packed-key merge of the two
/// tiers) is bit-identical to the uninterrupted agenda's. The fields are
/// public so an embedding engine can serialize them; treat the contents
/// as opaque otherwise.
#[derive(Clone, Debug)]
pub struct AgendaSnapshot<E> {
    /// Far-tier heap array, verbatim heap layout (not sorted).
    pub heap: Vec<PackedEvent>,
    /// Non-empty near buckets as `(bucket index, drain head, entries)`.
    /// Entries before the head already left the tier; they are retained
    /// so the restored bucket is byte-equal to the captured one.
    pub buckets: Vec<(u32, u32, Vec<PackedEvent>)>,
    /// Slot table, index-aligned with the captured agenda's.
    pub slots: Vec<SlotSnapshot<E>>,
    /// Free slot indices, in pop order (last entry is assigned next).
    pub free: Vec<u32>,
    /// Simulation clock at capture time.
    pub now: Time,
    /// Monotone scheduling sequence counter.
    pub seq: u64,
    /// Pending (non-cancelled) events across both tiers.
    pub live: u64,
    /// Live entries in the near tier.
    pub near_live: u64,
    /// Near-tier entries including tombstones.
    pub near_entries: u64,
    /// Far-tier tombstone count.
    pub far_dead: u64,
}

impl<E: Clone> Agenda<E> {
    /// Captures the agenda's complete state (see [`AgendaSnapshot`]).
    pub fn snapshot(&self) -> AgendaSnapshot<E> {
        AgendaSnapshot {
            heap: self.heap.entries().to_vec(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| !b.entries.is_empty())
                .map(|(i, b)| (i as u32, b.head as u32, b.entries.clone()))
                .collect(),
            slots: self
                .slots
                .iter()
                .map(|s| SlotSnapshot {
                    generation: s.generation,
                    in_far: s.in_far,
                    payload: s.payload.clone(),
                })
                .collect(),
            free: self.free.clone(),
            now: self.now,
            seq: self.seq,
            live: self.live as u64,
            near_live: self.near_live as u64,
            near_entries: self.near_entries as u64,
            far_dead: self.far_dead as u64,
        }
    }

    /// Restores the agenda to a previously captured state, retaining
    /// allocations where possible. Everything scheduled since the capture
    /// is discarded; handles issued before the capture become exactly as
    /// valid as they were at capture time.
    pub fn restore(&mut self, snap: &AgendaSnapshot<E>) {
        self.heap.restore_from(&snap.heap);
        for b in &mut self.buckets {
            b.entries.clear();
            b.head = 0;
        }
        self.bits = [0; NEAR_WORDS];
        if !snap.buckets.is_empty() && self.buckets.is_empty() {
            self.buckets.resize_with(NEAR_BUCKETS, Bucket::default);
        }
        for &(i, head, ref entries) in &snap.buckets {
            let b = &mut self.buckets[i as usize];
            b.entries.extend_from_slice(entries);
            b.head = head as usize;
            self.bits[i as usize / 64] |= 1u64 << (i as usize % 64);
        }
        self.slots.truncate(snap.slots.len());
        for (dst, src) in self.slots.iter_mut().zip(&snap.slots) {
            dst.generation = src.generation;
            dst.in_far = src.in_far;
            dst.payload = src.payload.clone();
        }
        for src in &snap.slots[self.slots.len()..] {
            self.slots.push(Slot {
                generation: src.generation,
                in_far: src.in_far,
                payload: src.payload.clone(),
            });
        }
        self.free.clear();
        self.free.extend_from_slice(&snap.free);
        self.now = snap.now;
        self.seq = snap.seq;
        self.live = snap.live as usize;
        self.near_live = snap.near_live as usize;
        self.near_entries = snap.near_entries as usize;
        self.far_dead = snap.far_dead as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut a = Agenda::new();
        a.schedule(30, "c");
        a.schedule(10, "a");
        a.schedule(20, "b");
        assert_eq!(a.next(), Some((10, "a")));
        assert_eq!(a.next(), Some((20, "b")));
        assert_eq!(a.next(), Some((30, "c")));
        assert_eq!(a.next(), None);
        assert_eq!(a.now(), 30);
    }

    #[test]
    fn equal_times_fire_in_schedule_order() {
        let mut a = Agenda::new();
        for i in 0..100 {
            a.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(a.next(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut a = Agenda::new();
        a.schedule(10, 1);
        assert_eq!(a.next(), Some((10, 1)));
        a.schedule(0, 2); // same instant is allowed
        assert_eq!(a.next(), Some((10, 2)));
        a.schedule(5, 3);
        assert_eq!(a.next(), Some((15, 3)));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut a = Agenda::new();
        a.schedule(10, 1);
        a.next();
        a.schedule_at(5, 2);
    }

    #[test]
    fn cancel_returns_payload_once() {
        let mut a = Agenda::new();
        let h = a.schedule(10, "x");
        assert_eq!(a.cancel(h), Some("x"));
        assert_eq!(a.cancel(h), None);
        assert_eq!(a.next(), None);
        assert!(a.is_empty());
    }

    #[test]
    fn stale_handle_after_fire() {
        let mut a = Agenda::new();
        let h = a.schedule(1, "x");
        assert!(a.is_pending(h));
        assert_eq!(a.next(), Some((1, "x")));
        assert!(!a.is_pending(h));
        assert_eq!(a.cancel(h), None);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_handles() {
        let mut a = Agenda::new();
        let h1 = a.schedule(10, 1);
        assert_eq!(a.cancel(h1), Some(1));
        // Force the tombstone out and reuse the slot.
        a.schedule(1, 2);
        assert_eq!(a.next(), Some((1, 2)));
        let _h2 = a.schedule(5, 3);
        // The old handle must stay dead even though its slot may be live
        // again.
        assert_eq!(a.cancel(h1), None);
        assert!(!a.is_pending(h1));
        assert_eq!(a.next(), Some((6, 3)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut a = Agenda::new();
        let h = a.schedule(5, 1);
        a.schedule(10, 2);
        a.cancel(h);
        assert_eq!(a.peek_time(), Some(10));
        assert_eq!(a.next(), Some((10, 2)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut a = Agenda::new();
        let h1 = a.schedule(1, 1);
        let _h2 = a.schedule(2, 2);
        assert_eq!(a.len(), 2);
        a.cancel(h1);
        assert_eq!(a.len(), 1);
        a.next();
        assert_eq!(a.len(), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn purge_compacts_tombstone_heavy_tiers() {
        // Half the events land in the near window, half in the far heap;
        // cancelling almost all of them must compact BOTH tiers (neither
        // tier's tombstones may linger until pop time).
        let mut a = Agenda::new();
        let handles: Vec<_> = (0..1000u64)
            .map(|i| a.schedule(10 + i * 4, i)) // delays 10..4006 straddle the window
            .collect();
        for &h in &handles[..990] {
            a.cancel(h);
        }
        assert_eq!(a.len(), 10);
        assert!(
            a.heap_entries() <= 2 * a.len().max(64),
            "tiers kept {} entries for {} live events",
            a.heap_entries(),
            a.len()
        );
        // Cancelled handles stay dead, live events still fire in order,
        // and freed slots are reusable.
        assert_eq!(a.cancel(handles[0]), None);
        let h = a.schedule(1, 5000);
        assert_eq!(a.next(), Some((1, 5000)));
        assert!(!a.is_pending(h));
        let mut fired = Vec::new();
        while let Some((_, v)) = a.next() {
            fired.push(v);
        }
        assert_eq!(fired, (990..1000).collect::<Vec<_>>());
    }

    #[test]
    fn far_purge_is_heap_local() {
        // A tombstone-choked far heap must compact even while plenty of
        // near events stay live (the old global-ratio heuristic would
        // never fire here).
        let mut a = Agenda::new();
        for i in 0..500u64 {
            a.schedule(1 + (i % 800), i); // near tier, all live
        }
        let far: Vec<_> = (0..200u64).map(|i| a.schedule(5000 + i, i)).collect();
        for &h in &far[..199] {
            a.cancel(h);
        }
        assert!(
            a.heap_entries() <= 501 + 2 * 199,
            "far tombstones lingered: {} entries",
            a.heap_entries()
        );
        let mut fired = 0;
        while a.next().is_some() {
            fired += 1;
        }
        assert_eq!(fired, 501);
    }

    #[test]
    fn purge_preserves_cancel_reschedule_semantics() {
        // Heavy churn crossing the purge threshold repeatedly.
        let mut a = Agenda::new();
        let mut pending = Vec::new();
        for round in 0..20u64 {
            for i in 0..100u64 {
                pending.push(a.schedule(1000 + round * 100 + i, round * 100 + i));
            }
            // Cancel ~95% of what's pending.
            let keep = pending.len() / 20;
            for h in pending.drain(keep..) {
                a.cancel(h);
            }
        }
        let live = a.len();
        let mut fired = Vec::new();
        while let Some((t, v)) = a.next() {
            fired.push((t, v));
        }
        assert_eq!(fired.len(), live);
        assert!(fired.windows(2).all(|w| w[0].0 <= w[1].0), "time order");
    }

    #[test]
    fn near_far_merge_preserves_global_seq_order() {
        // An event scheduled into the far heap early must still outrank a
        // near event scheduled later at the SAME time (smaller seq wins),
        // and vice versa — the tie-break must not depend on the tier.
        let mut a = Agenda::new();
        a.schedule(2000, "far-first"); // seq 1, far tier (2000 - 0 >= window)
        a.schedule(1500, "mid"); // seq 2, far tier
        assert_eq!(a.next(), Some((1500, "mid"))); // clock to 1500
        a.schedule_at(2000, "near-second"); // seq 3, near tier (500 out)
        assert_eq!(a.next(), Some((2000, "far-first")));
        assert_eq!(a.next(), Some((2000, "near-second")));
    }

    #[test]
    fn window_boundary_and_wraparound() {
        // Delays straddling the window boundary, popped across several
        // window generations, stay globally ordered.
        let mut a = Agenda::new();
        let mut expect = Vec::new();
        let mut t = 0u64;
        for i in 0..300u64 {
            let delay = (i * 37) % 2100; // 0..2100: near, boundary, far
            a.schedule_at(t + delay, (t + delay, i));
            expect.push((t + delay, i));
            if i % 5 == 0 {
                // Fire one event to advance the clock irregularly.
                if let Some((nt, _)) = a.next() {
                    t = nt;
                    expect.sort();
                    expect.remove(0);
                }
            }
        }
        expect.sort();
        let mut fired = Vec::new();
        while let Some((_, v)) = a.next() {
            fired.push(v);
        }
        assert_eq!(fired, expect);
    }

    #[test]
    fn bucket_reuse_across_epochs() {
        // The same bucket index serves time t and t + NEAR_BUCKETS once
        // the window slides; stale tombstones left in the bucket must not
        // confuse the new epoch's entries.
        let mut a = Agenda::new();
        let h = a.schedule(5, "old"); // bucket 5
        a.schedule(6, "live");
        a.cancel(h); // tombstone stays in bucket 5
        assert_eq!(a.next(), Some((6, "live")));
        // Clock at 6; schedule at 5 + NEAR_BUCKETS (same bucket index 5).
        let t2 = 5 + NEAR_BUCKETS as u64;
        a.schedule_at(t2, "new-epoch");
        assert_eq!(a.next(), Some((t2, "new-epoch")));
        assert_eq!(a.next(), None);
    }

    #[test]
    fn horizon_boundary_lands_in_heap_tier() {
        // Regression guard for the ladder horizon off-by-one: an event
        // scheduled at exactly `now + NEAR_BUCKETS` must take the far
        // heap. If the boundary check ever became `>`, the entry would
        // wrap into bucket `now & (NEAR_BUCKETS-1)` — a bucket the clock
        // has already drained this epoch — and pop *before* nearer
        // events, breaking time order.
        let mut a = Agenda::new();
        a.schedule(5, 0u64);
        assert_eq!(a.next(), Some((5, 0))); // now = 5, bucket 5 drained
        let now = a.now();
        let w = NEAR_BUCKETS as u64;
        a.schedule_at(now + w, 2); // exactly at the horizon: far tier
        a.schedule_at(now + w - 1, 1); // last near bucket
        a.schedule_at(now + w + 1, 3); // past the horizon: far tier
        a.schedule_at(now + 1, 0); // front of the window
        assert_eq!(a.next(), Some((now + 1, 0)));
        assert_eq!(a.next(), Some((now + w - 1, 1)));
        assert_eq!(a.next(), Some((now + w, 2)));
        assert_eq!(a.next(), Some((now + w + 1, 3)));
        assert_eq!(a.next(), None);
    }

    #[test]
    fn horizon_straddle_after_partial_drain() {
        // The drained-slot wrap scenario spelled out: drain deep into the
        // window, then schedule a batch straddling the (moved) horizon
        // and verify the merged order is globally sorted with schedule
        // order breaking ties.
        let mut a = Agenda::new();
        for i in 0..64u64 {
            a.schedule(1 + i * 13, i);
        }
        for _ in 0..48 {
            a.next();
        }
        let now = a.now();
        let w = NEAR_BUCKETS as u64;
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for (j, off) in [w, 0, w - 1, w + 7, 1, w, 2 * w, w - 1]
            .into_iter()
            .enumerate()
        {
            a.schedule_at(now + off, 1000 + j as u64);
            expect.push((now + off, 1000 + j as u64));
        }
        let mut fired = Vec::new();
        while let Some((t, v)) = a.next() {
            if v >= 1000 {
                fired.push((t, v));
            }
        }
        // Stable by time: equal times keep schedule order (monotone seq).
        expect.sort_by_key(|&(t, _)| t);
        assert_eq!(fired, expect);
    }

    #[test]
    fn snapshot_restore_is_exact_under_churn() {
        // Drive an agenda through schedule/cancel/pop churn, snapshot it
        // mid-flight, then check the restored copy pops the bit-identical
        // remaining sequence — into both a fresh agenda and a dirty
        // reused one.
        let mut rng = 0x9E3779B97F4A7C15u64;
        let mut next_rng = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut a: Agenda<u64> = Agenda::new();
        let mut handles = Vec::new();
        for i in 0..600u64 {
            let r = next_rng();
            match r % 10 {
                0..=5 => {
                    let delay = r % 2300; // spans near, boundary, far
                    handles.push(a.schedule(delay, i));
                }
                6..=7 => {
                    if !handles.is_empty() {
                        let h = handles.swap_remove((r as usize / 16) % handles.len());
                        a.cancel(h);
                    }
                }
                _ => {
                    a.next();
                }
            }
        }
        let snap = a.snapshot();

        // Reference: drain the original to completion.
        let mut reference = Vec::new();
        while let Some(ev) = a.next() {
            reference.push(ev);
        }

        // Fresh restore.
        let mut fresh: Agenda<u64> = Agenda::new();
        fresh.restore(&snap);
        assert_eq!(fresh.now(), snap.now);
        assert_eq!(fresh.len() as u64, snap.live);
        let mut replayed = Vec::new();
        while let Some(ev) = fresh.next() {
            replayed.push(ev);
        }
        assert_eq!(replayed, reference);

        // Dirty-reuse restore: a workspace agenda mid-churn.
        let mut dirty: Agenda<u64> = Agenda::new();
        for i in 0..300u64 {
            let h = dirty.schedule(i % 1500, i);
            if i % 3 == 0 {
                dirty.cancel(h);
            }
            if i % 7 == 0 {
                dirty.next();
            }
        }
        dirty.restore(&snap);
        let mut replayed = Vec::new();
        while let Some(ev) = dirty.next() {
            replayed.push(ev);
        }
        assert_eq!(replayed, reference);
    }

    #[test]
    fn snapshot_preserves_handles_and_free_order() {
        let mut a: Agenda<&str> = Agenda::new();
        let _h0 = a.schedule(3, "fires");
        let h1 = a.schedule(50, "cancel-after-restore");
        let h2 = a.schedule(2000, "far-cancel-after-restore");
        let h3 = a.schedule(7, "stale");
        a.cancel(h3); // tombstone + freed generation before the capture
        let snap = a.snapshot();

        let mut b: Agenda<&str> = Agenda::new();
        b.restore(&snap);
        // Pre-capture handles stay exactly as valid as they were.
        assert!(b.is_pending(h1));
        assert!(b.is_pending(h2));
        assert!(!b.is_pending(h3));
        assert_eq!(b.cancel(h1), Some("cancel-after-restore"));
        assert_eq!(b.cancel(h2), Some("far-cancel-after-restore"));
        assert_eq!(b.cancel(h3), None);
        assert_eq!(b.next(), Some((3, "fires")));
        assert_eq!(b.next(), None);

        // Post-restore slot assignment draws the same free-list order as
        // the original would: schedule in both and compare raw handles.
        let mut c: Agenda<&str> = Agenda::new();
        c.restore(&snap);
        let ha = a.schedule(4, "x");
        let hc = c.schedule(4, "x");
        assert_eq!(ha.raw_parts(), hc.raw_parts());
    }

    #[test]
    fn reset_restores_fresh_semantics_and_keeps_capacity() {
        let mut a = Agenda::new();
        let handles: Vec<_> = (0..200u64).map(|i| a.schedule(10 + i * 10, i)).collect();
        for &h in &handles[..50] {
            a.cancel(h);
        }
        a.next();
        a.reset();
        assert_eq!(a.now(), 0);
        assert!(a.is_empty());
        assert_eq!(a.heap_entries(), 0);
        assert_eq!(a.next(), None);
        // Stale pre-reset handles must not resurrect post-reset events.
        let h = a.schedule(5, 999);
        for &old in &handles {
            assert_eq!(a.cancel(old), None);
        }
        assert!(a.is_pending(h));
        assert_eq!(a.next(), Some((5, 999)));
        // Full post-reset lifecycle still works.
        for i in 0..100u64 {
            a.schedule(i, i);
        }
        let mut fired = Vec::new();
        while let Some((_, v)) = a.next() {
            fired.push(v);
        }
        assert_eq!(fired, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn generation_reuse_storm_across_wrap_boundary() {
        // Force slot 0's generation to the top of the u32 range, then run
        // a cancel/fire/reset storm across the wrap. Handles from before
        // each bump must stay dead, handles from after must stay live —
        // equality-only comparison means the wrap itself is invisible.
        let mut a: Agenda<u64> = Agenda::new();
        let h0 = a.schedule(1, 0);
        assert_eq!(a.cancel(h0), Some(0)); // slot 0 exists, tombstoned
        assert_eq!(a.next(), None); // tombstone skimmed, slot 0 free
        a.slots[0].generation = u32::MAX - 3;

        let mut stale: Vec<EventHandle> = Vec::new();
        for i in 0..8u64 {
            // Each round reuses slot 0 (the only free slot): schedule,
            // verify, then cancel — bumping the generation through
            // MAX-3, MAX-2, MAX-1, MAX, 0, 1, …
            let h = a.schedule(10 + i, i);
            assert_eq!(h.slot, 0, "storm must exercise one slot");
            assert!(a.is_pending(h));
            // Every previously issued handle must remain dead.
            for &old in &stale {
                assert!(!a.is_pending(old), "stale handle revived at round {i}");
                assert_eq!(a.cancel(old), None);
            }
            assert!(
                a.is_pending(h),
                "stale cancels must not kill the live event"
            );
            assert_eq!(a.cancel(h), Some(i));
            assert_eq!(a.next(), None); // drain the tombstone
            stale.push(h);
        }
        assert!(
            a.slots[0].generation < u32::MAX - 3,
            "generation must have wrapped, got {}",
            a.slots[0].generation
        );

        // Firing (not cancelling) across the boundary behaves the same.
        a.slots[0].generation = u32::MAX;
        let h = a.schedule(5, 99);
        assert_eq!(h.generation, u32::MAX);
        assert_eq!(a.next(), Some((5, 99)));
        assert_eq!(a.slots[0].generation, 0, "fire wraps MAX -> 0");
        assert!(!a.is_pending(h));
        assert_eq!(a.cancel(h), None);

        // reset() keeps using the same wrapping scheme.
        a.slots[0].generation = u32::MAX;
        let h = a.schedule(5, 7);
        a.reset();
        assert!(!a.is_pending(h));
        assert_eq!(a.cancel(h), None);
        let h2 = a.schedule(1, 8);
        assert_eq!(h2.generation, 0, "reset wraps MAX -> 0");
        assert_eq!(a.next(), Some((1, 8)));
    }

    #[test]
    fn interleaved_cancel_reschedule_storm() {
        // Emulates interruptible-communication churn: repeatedly cancel
        // and reschedule, checking order integrity throughout.
        let mut a = Agenda::new();
        let mut handles = Vec::new();
        for i in 0..50u64 {
            handles.push(a.schedule(100 + i, i));
        }
        // Cancel evens, reschedule them later.
        for (i, &h) in handles.iter().enumerate() {
            if i % 2 == 0 {
                let v = a.cancel(h).unwrap();
                a.schedule(200 + v, v);
            }
        }
        let mut fired = Vec::new();
        while let Some((_, v)) = a.next() {
            fired.push(v);
        }
        assert_eq!(fired.len(), 50);
        // Odds first (at 100+i), then evens (at 200+i), each in order.
        let odds: Vec<u64> = fired[..25].to_vec();
        assert!(odds.iter().all(|v| v % 2 == 1));
        assert!(odds.windows(2).all(|w| w[0] < w[1]));
        let evens: Vec<u64> = fired[25..].to_vec();
        assert!(evens.iter().all(|v| v % 2 == 0));
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn matches_reference_model_under_random_churn() {
        // Differential test: the two-tier agenda against a sorted-vec
        // reference, under schedule/cancel/pop churn spanning both tiers.
        let mut a = Agenda::new();
        let mut reference: Vec<(u64, u64, u64)> = Vec::new(); // (time, seq, val)
        let mut handles: Vec<(EventHandle, u64)> = Vec::new(); // (handle, seq)
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut seq = 0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..5000u64 {
            match rng() % 10 {
                0..=5 => {
                    let delay = match rng() % 3 {
                        0 => rng() % 30,        // dense near
                        1 => 900 + rng() % 300, // boundary straddle
                        _ => rng() % 5000,      // anywhere
                    };
                    seq += 1;
                    let h = a.schedule(delay, step);
                    reference.push((a.now() + delay, seq, step));
                    handles.push((h, seq));
                }
                6..=7 => {
                    if !handles.is_empty() {
                        let k = (rng() % handles.len() as u64) as usize;
                        let (h, s) = handles.swap_remove(k);
                        let cancelled = a.cancel(h);
                        let pos = reference.iter().position(|&(_, rs, _)| rs == s);
                        match pos {
                            Some(p) => {
                                assert!(cancelled.is_some());
                                reference.remove(p);
                            }
                            None => assert!(cancelled.is_none()),
                        }
                    }
                }
                _ => {
                    reference.sort();
                    let expect = if reference.is_empty() {
                        None
                    } else {
                        let (t, _, v) = reference.remove(0);
                        Some((t, v))
                    };
                    assert_eq!(a.next(), expect, "divergence at step {step}");
                }
            }
            assert_eq!(a.len(), reference.len(), "live count at step {step}");
        }
        reference.sort();
        for &(t, _, v) in &reference {
            assert_eq!(a.next(), Some((t, v)));
        }
        assert_eq!(a.next(), None);
    }
}
