//! The event agenda: a deterministic discrete-event scheduler.
//!
//! Replaces the role SimGrid played in the paper's evaluation. Design
//! points that matter for reproducibility:
//!
//! * **Total determinism.** Events at equal times pop in scheduling order
//!   (a monotone sequence number breaks ties), so a simulation is a pure
//!   function of its inputs. The experiment campaign relies on this: every
//!   figure regenerates bit-for-bit from the same seeds.
//! * **O(log n) cancellation.** Interruptible communication cancels and
//!   reschedules transfer-completion events constantly; cancellation here
//!   is a generation bump plus lazy removal at pop time, the standard
//!   "tombstone" technique.
//! * **Integer time.** All paper parameters are integer timesteps and
//!   preemptions happen at event times, so `u64` time is exact — no float
//!   drift anywhere in the simulator.

use crate::quad_heap::{PackedEvent, QuadHeap, MAX_SEQ, MAX_SLOT};

/// Simulation time in integer timesteps.
pub type Time = u64;

/// Handle to a scheduled event; survives the event firing (becomes stale).
///
/// ## Generation arithmetic
///
/// Slot generations advance with `wrapping_add(1)` **everywhere** —
/// cancel, fire, and [`Agenda::reset`] — and are compared only for
/// equality, never ordered. Wrapping is sound because a slot is recycled
/// only after its single outstanding heap entry leaves the heap, so a
/// stale handle can only resurrect if the *same slot* runs through all
/// 2^32 generations while the handle is retained; no simulation holds a
/// handle across four billion reuses of one slot (handles live for one
/// transfer). A saturating or panicking `+= 1` would instead make
/// extremely long release campaigns abort (or, with overflow checks off,
/// silently reuse generation values with no documented reasoning).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    generation: u32,
}

struct Slot<E> {
    generation: u32,
    payload: Option<E>,
}

/// A discrete-event agenda over payload type `E`.
///
/// The priority queue is a packed-key 4-ary heap (see
/// [`crate::quad_heap`]): each pending event is one `u128` ordered by
/// `(time, seq)`, with the slot index riding in the low bits. A slot has
/// at most one outstanding heap entry at a time (slots are recycled only
/// after their entry leaves the heap), so liveness at pop time is just
/// "does the slot still hold a payload" — generations exist only to
/// invalidate stale [`EventHandle`]s.
pub struct Agenda<E> {
    heap: QuadHeap,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    now: Time,
    seq: u64,
    live: usize,
}

impl<E> Default for Agenda<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Agenda<E> {
    /// An empty agenda at time 0.
    pub fn new() -> Self {
        Agenda {
            heap: QuadHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            now: 0,
            seq: 0,
            live: 0,
        }
    }

    /// Returns the agenda to its initial state (time 0, nothing pending)
    /// while keeping every allocation — heap arena, slot table, free
    /// list. The campaign engine calls this between simulations so the
    /// steady-state event loop never reallocates across the thousands of
    /// runs one worker executes.
    ///
    /// Handles issued before the reset are invalidated (their slots'
    /// generations advance), so a stale handle can never cancel an event
    /// scheduled after the reset.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.free.clear();
        for s in &mut self.slots {
            s.generation = s.generation.wrapping_add(1);
            s.payload = None; // drops the payload, keeps the slot
        }
        // Refill the free list so post-reset slot assignment runs 0, 1, 2…
        // exactly like a fresh agenda.
        self.free.extend((0..self.slots.len() as u32).rev());
        self.now = 0;
        self.seq = 0;
        self.live = 0;
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `payload` to fire `delay` timesteps from now.
    pub fn schedule(&mut self, delay: Time, payload: E) -> EventHandle {
        let time = self
            .now
            .checked_add(delay)
            .expect("simulation time overflow");
        self.schedule_at(time, payload)
    }

    /// Schedules `payload` at an absolute time (≥ now).
    pub fn schedule_at(&mut self, time: Time, payload: E) -> EventHandle {
        assert!(time >= self.now, "cannot schedule into the past");
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].payload = Some(payload);
                s
            }
            None => {
                assert!(
                    self.slots.len() <= MAX_SLOT as usize,
                    "agenda slot table overflow (> 2^20 concurrent events)"
                );
                self.slots.push(Slot {
                    generation: 0,
                    payload: Some(payload),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.seq += 1;
        assert!(self.seq <= MAX_SEQ, "agenda sequence number overflow");
        self.heap.push(PackedEvent::pack(time, self.seq, slot));
        self.live += 1;
        EventHandle { slot, generation }
    }

    /// Cancels a pending event, returning its payload. Returns `None` if
    /// the event already fired or was already cancelled (both are normal
    /// in protocol code; not an error).
    pub fn cancel(&mut self, handle: EventHandle) -> Option<E> {
        let slot = self.slots.get_mut(handle.slot as usize)?;
        if slot.generation != handle.generation || slot.payload.is_none() {
            return None;
        }
        // Wrapping: see the generation-arithmetic note on [`EventHandle`].
        slot.generation = slot.generation.wrapping_add(1);
        self.live -= 1;
        // The heap entry remains as a tombstone; reuse of the slot is
        // deferred until the tombstone pops, so the heap never refers to
        // a recycled slot with a matching generation.
        let payload = slot.payload.take();
        // Compact when tombstones dominate: interruptible-communication
        // churn can cancel far more events than ever fire, and popping
        // each dead entry through the heap costs O(log n) apiece. The
        // 2× threshold amortizes the O(n) rebuild; the size floor keeps
        // tiny agendas on the simple path.
        if self.heap.len() > 64 && self.heap.len() > 2 * self.live {
            self.purge_tombstones();
        }
        payload
    }

    /// Number of heap entries, live plus tombstones (capacity
    /// introspection for tests and benchmarks).
    pub fn heap_entries(&self) -> usize {
        self.heap.len()
    }

    /// Rebuilds the heap keeping only live entries, freeing the slots of
    /// dropped tombstones. Safe because each slot has at most one
    /// outstanding heap entry (a slot is never reused until its previous
    /// entry leaves the heap).
    fn purge_tombstones(&mut self) {
        let slots = &self.slots;
        let free = &mut self.free;
        self.heap.retain(|entry| {
            let slot = entry.slot();
            if slots[slot as usize].payload.is_some() {
                true
            } else {
                free.push(slot);
                false
            }
        });
    }

    /// True if the handle still refers to a pending event.
    pub fn is_pending(&self, handle: EventHandle) -> bool {
        self.slots
            .get(handle.slot as usize)
            .is_some_and(|s| s.generation == handle.generation && s.payload.is_some())
    }

    /// Time of the next pending event without firing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.skim_tombstones();
        self.heap.peek().map(|e| e.time())
    }

    /// Pops the next event, advancing the clock to its time.
    #[allow(clippy::should_implement_trait)] // a DES agenda is not an Iterator: popping mutates the clock
    pub fn next(&mut self) -> Option<(Time, E)> {
        loop {
            let entry = self.heap.pop()?;
            let slot = entry.slot();
            let s = &mut self.slots[slot as usize];
            // A slot has one outstanding heap entry, so this entry is the
            // slot's current one: payload present = live, absent =
            // cancelled tombstone. Either way the slot recycles now.
            if let Some(payload) = s.payload.take() {
                // Wrapping: see the generation-arithmetic note on
                // [`EventHandle`].
                s.generation = s.generation.wrapping_add(1);
                self.free.push(slot);
                self.live -= 1;
                let time = entry.time();
                debug_assert!(time >= self.now, "heap produced time travel");
                self.now = time;
                return Some((time, payload));
            }
            self.free.push(slot);
        }
    }

    fn skim_tombstones(&mut self) {
        while let Some(entry) = self.heap.peek() {
            let slot = entry.slot();
            if self.slots[slot as usize].payload.is_some() {
                break;
            }
            self.heap.pop();
            self.free.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut a = Agenda::new();
        a.schedule(30, "c");
        a.schedule(10, "a");
        a.schedule(20, "b");
        assert_eq!(a.next(), Some((10, "a")));
        assert_eq!(a.next(), Some((20, "b")));
        assert_eq!(a.next(), Some((30, "c")));
        assert_eq!(a.next(), None);
        assert_eq!(a.now(), 30);
    }

    #[test]
    fn equal_times_fire_in_schedule_order() {
        let mut a = Agenda::new();
        for i in 0..100 {
            a.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(a.next(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut a = Agenda::new();
        a.schedule(10, 1);
        assert_eq!(a.next(), Some((10, 1)));
        a.schedule(0, 2); // same instant is allowed
        assert_eq!(a.next(), Some((10, 2)));
        a.schedule(5, 3);
        assert_eq!(a.next(), Some((15, 3)));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut a = Agenda::new();
        a.schedule(10, 1);
        a.next();
        a.schedule_at(5, 2);
    }

    #[test]
    fn cancel_returns_payload_once() {
        let mut a = Agenda::new();
        let h = a.schedule(10, "x");
        assert_eq!(a.cancel(h), Some("x"));
        assert_eq!(a.cancel(h), None);
        assert_eq!(a.next(), None);
        assert!(a.is_empty());
    }

    #[test]
    fn stale_handle_after_fire() {
        let mut a = Agenda::new();
        let h = a.schedule(1, "x");
        assert!(a.is_pending(h));
        assert_eq!(a.next(), Some((1, "x")));
        assert!(!a.is_pending(h));
        assert_eq!(a.cancel(h), None);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_handles() {
        let mut a = Agenda::new();
        let h1 = a.schedule(10, 1);
        assert_eq!(a.cancel(h1), Some(1));
        // Force the tombstone out and reuse the slot.
        a.schedule(1, 2);
        assert_eq!(a.next(), Some((1, 2)));
        let _h2 = a.schedule(5, 3);
        // The old handle must stay dead even though its slot may be live
        // again.
        assert_eq!(a.cancel(h1), None);
        assert!(!a.is_pending(h1));
        assert_eq!(a.next(), Some((6, 3)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut a = Agenda::new();
        let h = a.schedule(5, 1);
        a.schedule(10, 2);
        a.cancel(h);
        assert_eq!(a.peek_time(), Some(10));
        assert_eq!(a.next(), Some((10, 2)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut a = Agenda::new();
        let h1 = a.schedule(1, 1);
        let _h2 = a.schedule(2, 2);
        assert_eq!(a.len(), 2);
        a.cancel(h1);
        assert_eq!(a.len(), 1);
        a.next();
        assert_eq!(a.len(), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn purge_compacts_tombstone_heavy_heaps() {
        let mut a = Agenda::new();
        let handles: Vec<_> = (0..1000u64).map(|i| a.schedule(10 + i, i)).collect();
        // Cancel all but the last 10: the dead entries must not linger
        // in the heap until pop time.
        for &h in &handles[..990] {
            a.cancel(h);
        }
        assert_eq!(a.len(), 10);
        assert!(
            a.heap_entries() <= 2 * a.len().max(64),
            "heap kept {} entries for {} live events",
            a.heap_entries(),
            a.len()
        );
        // Cancelled handles stay dead, live events still fire in order,
        // and freed slots are reusable.
        assert_eq!(a.cancel(handles[0]), None);
        let h = a.schedule(1, 5000);
        assert_eq!(a.next(), Some((1, 5000)));
        assert!(!a.is_pending(h));
        let mut fired = Vec::new();
        while let Some((_, v)) = a.next() {
            fired.push(v);
        }
        assert_eq!(fired, (990..1000).collect::<Vec<_>>());
    }

    #[test]
    fn purge_preserves_cancel_reschedule_semantics() {
        // Heavy churn crossing the purge threshold repeatedly.
        let mut a = Agenda::new();
        let mut pending = Vec::new();
        for round in 0..20u64 {
            for i in 0..100u64 {
                pending.push(a.schedule(1000 + round * 100 + i, round * 100 + i));
            }
            // Cancel ~95% of what's pending.
            let keep = pending.len() / 20;
            for h in pending.drain(keep..) {
                a.cancel(h);
            }
        }
        let live = a.len();
        let mut fired = Vec::new();
        while let Some((t, v)) = a.next() {
            fired.push((t, v));
        }
        assert_eq!(fired.len(), live);
        assert!(fired.windows(2).all(|w| w[0].0 <= w[1].0), "time order");
    }

    #[test]
    fn reset_restores_fresh_semantics_and_keeps_capacity() {
        let mut a = Agenda::new();
        let handles: Vec<_> = (0..200u64).map(|i| a.schedule(10 + i, i)).collect();
        for &h in &handles[..50] {
            a.cancel(h);
        }
        a.next();
        a.reset();
        assert_eq!(a.now(), 0);
        assert!(a.is_empty());
        assert_eq!(a.heap_entries(), 0);
        assert_eq!(a.next(), None);
        // Stale pre-reset handles must not resurrect post-reset events.
        let h = a.schedule(5, 999);
        for &old in &handles {
            assert_eq!(a.cancel(old), None);
        }
        assert!(a.is_pending(h));
        assert_eq!(a.next(), Some((5, 999)));
        // Full post-reset lifecycle still works.
        for i in 0..100u64 {
            a.schedule(i, i);
        }
        let mut fired = Vec::new();
        while let Some((_, v)) = a.next() {
            fired.push(v);
        }
        assert_eq!(fired, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn generation_reuse_storm_across_wrap_boundary() {
        // Force slot 0's generation to the top of the u32 range, then run
        // a cancel/fire/reset storm across the wrap. Handles from before
        // each bump must stay dead, handles from after must stay live —
        // equality-only comparison means the wrap itself is invisible.
        let mut a: Agenda<u64> = Agenda::new();
        let h0 = a.schedule(1, 0);
        assert_eq!(a.cancel(h0), Some(0)); // slot 0 exists, tombstoned
        assert_eq!(a.next(), None); // tombstone popped, slot 0 free
        a.slots[0].generation = u32::MAX - 3;

        let mut stale: Vec<EventHandle> = Vec::new();
        for i in 0..8u64 {
            // Each round reuses slot 0 (the only free slot): schedule,
            // verify, then cancel — bumping the generation through
            // MAX-3, MAX-2, MAX-1, MAX, 0, 1, …
            let h = a.schedule(10 + i, i);
            assert_eq!(h.slot, 0, "storm must exercise one slot");
            assert!(a.is_pending(h));
            // Every previously issued handle must remain dead.
            for &old in &stale {
                assert!(!a.is_pending(old), "stale handle revived at round {i}");
                assert_eq!(a.cancel(old), None);
            }
            assert!(
                a.is_pending(h),
                "stale cancels must not kill the live event"
            );
            assert_eq!(a.cancel(h), Some(i));
            assert_eq!(a.next(), None); // drain the tombstone
            stale.push(h);
        }
        assert!(
            a.slots[0].generation < u32::MAX - 3,
            "generation must have wrapped, got {}",
            a.slots[0].generation
        );

        // Firing (not cancelling) across the boundary behaves the same.
        a.slots[0].generation = u32::MAX;
        let h = a.schedule(5, 99);
        assert_eq!(h.generation, u32::MAX);
        assert_eq!(a.next(), Some((5, 99)));
        assert_eq!(a.slots[0].generation, 0, "fire wraps MAX -> 0");
        assert!(!a.is_pending(h));
        assert_eq!(a.cancel(h), None);

        // reset() keeps using the same wrapping scheme.
        a.slots[0].generation = u32::MAX;
        let h = a.schedule(5, 7);
        a.reset();
        assert!(!a.is_pending(h));
        assert_eq!(a.cancel(h), None);
        let h2 = a.schedule(1, 8);
        assert_eq!(h2.generation, 0, "reset wraps MAX -> 0");
        assert_eq!(a.next(), Some((1, 8)));
    }

    #[test]
    fn interleaved_cancel_reschedule_storm() {
        // Emulates interruptible-communication churn: repeatedly cancel
        // and reschedule, checking order integrity throughout.
        let mut a = Agenda::new();
        let mut handles = Vec::new();
        for i in 0..50u64 {
            handles.push(a.schedule(100 + i, i));
        }
        // Cancel evens, reschedule them later.
        for (i, &h) in handles.iter().enumerate() {
            if i % 2 == 0 {
                let v = a.cancel(h).unwrap();
                a.schedule(200 + v, v);
            }
        }
        let mut fired = Vec::new();
        while let Some((_, v)) = a.next() {
            fired.push(v);
        }
        assert_eq!(fired.len(), 50);
        // Odds first (at 100+i), then evens (at 200+i), each in order.
        let odds: Vec<u64> = fired[..25].to_vec();
        assert!(odds.iter().all(|v| v % 2 == 1));
        assert!(odds.windows(2).all(|w| w[0] < w[1]));
        let evens: Vec<u64> = fired[25..].to_vec();
        assert!(evens.iter().all(|v| v % 2 == 0));
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
    }
}
