//! A cache-friendly 4-ary min-heap over packed event keys.
//!
//! The agenda's hot loop is `push`/`pop` of `(time, seq, slot)` triples.
//! A `std::collections::BinaryHeap<Reverse<(u64, u64, u32, u32)>>` keeps
//! 24-byte entries and touches ~log2(n) scattered cache lines per
//! operation. This heap packs each entry into a single `u128` — time in
//! the high 64 bits, then the tie-breaking sequence number, then the slot
//! index — so ordering is one integer comparison, entries are 16 bytes
//! (4 per cache line), and the 4-ary layout halves the tree depth:
//! sift-down inspects 4 children sitting in at most two cache lines.
//!
//! Key layout (most significant first): `time:64 | seq:44 | slot:20`.
//! 2^44 scheduled events per agenda and 2^20 concurrent slots are far
//! above anything a simulation reaches (the engine's event valve is 5·10^8
//! per *run*, and slots track concurrent events, which are O(nodes));
//! both limits are asserted at pack time.

/// Bits reserved for the tie-breaking sequence number.
pub const SEQ_BITS: u32 = 44;
/// Bits reserved for the slot index.
pub const SLOT_BITS: u32 = 20;

/// Largest representable sequence number.
pub const MAX_SEQ: u64 = (1 << SEQ_BITS) - 1;
/// Largest representable slot index.
pub const MAX_SLOT: u32 = (1 << SLOT_BITS) - 1;

/// One heap entry: `(time, seq, slot)` packed into a `u128` whose integer
/// order equals the lexicographic event order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackedEvent(u128);

impl PackedEvent {
    /// Packs an event key. Panics if `seq` or `slot` exceed their fields
    /// (unreachable in practice; see module docs).
    ///
    /// The bound checks are unconditional: an overflowing `seq` or `slot`
    /// would silently wrap into the neighboring bit fields and corrupt
    /// global event ordering, which in a release campaign would mean
    /// wrong results rather than a crash. Both branches are trivially
    /// predictable (never taken), so they are free on the hot path — see
    /// the committed `BENCH_campaign.json` budget.
    #[inline]
    pub fn pack(time: u64, seq: u64, slot: u32) -> Self {
        assert!(seq <= MAX_SEQ, "agenda sequence number overflow");
        assert!(slot <= MAX_SLOT, "agenda slot index overflow");
        PackedEvent(
            ((time as u128) << (SEQ_BITS + SLOT_BITS))
                | ((seq as u128) << SLOT_BITS)
                | slot as u128,
        )
    }

    /// The event's firing time.
    #[inline]
    pub fn time(self) -> u64 {
        (self.0 >> (SEQ_BITS + SLOT_BITS)) as u64
    }

    /// The tie-breaking sequence number.
    #[inline]
    pub fn seq(self) -> u64 {
        ((self.0 >> SLOT_BITS) as u64) & MAX_SEQ
    }

    /// The slot index.
    #[inline]
    pub fn slot(self) -> u32 {
        (self.0 as u32) & MAX_SLOT
    }

    /// The raw packed key, for verbatim serialization (snapshots). The
    /// bit layout is part of the snapshot format: `time:64 | seq:44 |
    /// slot:20`, most significant first.
    #[inline]
    pub fn raw(self) -> u128 {
        self.0
    }

    /// Rebuilds an entry from a raw packed key previously obtained via
    /// [`PackedEvent::raw`]. No validation: the key is trusted to have
    /// been produced by `pack` (snapshot decode paths validate the
    /// container, not each key).
    #[inline]
    pub fn from_raw(raw: u128) -> Self {
        PackedEvent(raw)
    }
}

/// A 4-ary min-heap of [`PackedEvent`]s backed by a flat `Vec`.
#[derive(Default)]
pub struct QuadHeap {
    data: Vec<PackedEvent>,
}

const ARITY: usize = 4;

impl QuadHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries (live + tombstones; the agenda tracks liveness).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drops all entries, retaining the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The smallest entry, if any.
    #[inline]
    pub fn peek(&self) -> Option<PackedEvent> {
        self.data.first().copied()
    }

    /// The backing array in heap layout (not sorted order). Captured
    /// verbatim by agenda snapshots so a restore reproduces the exact
    /// array — and therefore the exact future pop/sift behavior — of the
    /// moment the snapshot was taken.
    pub fn entries(&self) -> &[PackedEvent] {
        &self.data
    }

    /// Replaces the backing array verbatim, retaining the allocation.
    /// `entries` must be a heap-ordered array previously obtained from
    /// [`QuadHeap::entries`]; no heapify is performed, so a restore is
    /// exact rather than merely equivalent.
    pub fn restore_from(&mut self, entries: &[PackedEvent]) {
        self.data.clear();
        self.data.extend_from_slice(entries);
    }

    /// Inserts an entry.
    #[inline]
    pub fn push(&mut self, e: PackedEvent) {
        self.data.push(e);
        self.sift_up(self.data.len() - 1);
    }

    /// Removes and returns the smallest entry.
    #[inline]
    pub fn pop(&mut self) -> Option<PackedEvent> {
        let last = self.data.pop()?;
        if self.data.is_empty() {
            return Some(last);
        }
        let top = std::mem::replace(&mut self.data[0], last);
        self.sift_down(0);
        Some(top)
    }

    /// Keeps only entries for which `keep` returns true, then restores
    /// the heap property in O(n) (the agenda's tombstone purge).
    pub fn retain(&mut self, mut keep: impl FnMut(PackedEvent) -> bool) {
        self.data.retain(|&e| keep(e));
        self.heapify();
    }

    fn heapify(&mut self) {
        let n = self.data.len();
        if n <= 1 {
            return;
        }
        // Last parent: the parent of the last leaf.
        for i in (0..=(n - 2) / ARITY).rev() {
            self.sift_down(i);
        }
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let e = self.data[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.data[parent] <= e {
                break;
            }
            self.data[i] = self.data[parent];
            i = parent;
        }
        self.data[i] = e;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        let e = self.data[i];
        loop {
            let first = ARITY * i + 1;
            if first >= n {
                break;
            }
            // Smallest of up to four children — one or two cache lines.
            let mut min_c = first;
            let mut min_v = self.data[first];
            let end = (first + ARITY).min(n);
            for c in first + 1..end {
                if self.data[c] < min_v {
                    min_c = c;
                    min_v = self.data[c];
                }
            }
            if e <= min_v {
                break;
            }
            self.data[i] = min_v;
            i = min_c;
        }
        self.data[i] = e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn pack_roundtrip() {
        for (t, s, sl) in [
            (0u64, 0u64, 0u32),
            (1, 2, 3),
            (u64::MAX, MAX_SEQ, MAX_SLOT),
            (123_456_789_000, 44, 1 << 19),
        ] {
            let e = PackedEvent::pack(t, s, sl);
            assert_eq!((e.time(), e.seq(), e.slot()), (t, s, sl));
        }
    }

    // The two overflow guards must hold in release builds too: a wrapped
    // field would corrupt neighboring bits (and thus event order) rather
    // than fail. These run under `cargo test --release` in CI.

    #[test]
    #[should_panic(expected = "sequence number overflow")]
    fn seq_overflow_panics_even_in_release() {
        let _ = PackedEvent::pack(0, MAX_SEQ + 1, 0);
    }

    #[test]
    #[should_panic(expected = "slot index overflow")]
    fn slot_overflow_panics_even_in_release() {
        let _ = PackedEvent::pack(0, 0, MAX_SLOT + 1);
    }

    #[test]
    fn max_fields_do_not_bleed_into_neighbors() {
        // Saturated low fields must not perturb higher ones.
        let e = PackedEvent::pack(7, MAX_SEQ, MAX_SLOT);
        assert_eq!(e.time(), 7);
        assert_eq!(e.seq(), MAX_SEQ);
        assert_eq!(e.slot(), MAX_SLOT);
        let f = PackedEvent::pack(7, 0, MAX_SLOT);
        assert_eq!(f.seq(), 0, "slot bits leaked into seq");
        assert!(f < e);
    }

    #[test]
    fn order_is_time_then_seq() {
        let a = PackedEvent::pack(5, 100, MAX_SLOT);
        let b = PackedEvent::pack(6, 0, 0);
        assert!(a < b, "earlier time wins regardless of seq/slot");
        let c = PackedEvent::pack(5, 101, 0);
        assert!(a < c, "equal times order by seq");
    }

    #[test]
    fn pops_sorted() {
        let mut h = QuadHeap::new();
        let mut state = 88172645463325252u64;
        let mut keys = Vec::new();
        for i in 0..2000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let e = PackedEvent::pack(state % 1000, i, (i % 64) as u32);
            keys.push(e);
            h.push(e);
        }
        keys.sort();
        let mut popped = Vec::new();
        while let Some(e) = h.pop() {
            popped.push(e);
        }
        assert_eq!(popped, keys);
    }

    #[test]
    fn matches_std_binary_heap_under_interleaving() {
        let mut quad = QuadHeap::new();
        let mut bin: BinaryHeap<Reverse<PackedEvent>> = BinaryHeap::new();
        let mut state = 0x243F6A8885A308D3u64;
        for i in 0..5000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if !state.is_multiple_of(3) {
                let e = PackedEvent::pack(state % 512, i, (state % 100) as u32);
                quad.push(e);
                bin.push(Reverse(e));
            } else {
                assert_eq!(quad.pop(), bin.pop().map(|Reverse(e)| e));
            }
            assert_eq!(quad.peek(), bin.peek().map(|&Reverse(e)| e));
            assert_eq!(quad.len(), bin.len());
        }
        while let Some(e) = quad.pop() {
            assert_eq!(Some(e), bin.pop().map(|Reverse(e)| e));
        }
        assert!(bin.is_empty());
    }

    #[test]
    fn retain_keeps_heap_property() {
        let mut h = QuadHeap::new();
        for i in 0..500u64 {
            h.push(PackedEvent::pack(500 - i, i, 0));
        }
        h.retain(|e| e.seq() % 3 == 0);
        let mut last = None;
        let mut n = 0;
        while let Some(e) = h.pop() {
            if let Some(prev) = last {
                assert!(prev <= e);
            }
            assert_eq!(e.seq() % 3, 0);
            last = Some(e);
            n += 1;
        }
        assert_eq!(n, 167);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut h = QuadHeap::new();
        for i in 0..100u64 {
            h.push(PackedEvent::pack(i, i, 0));
        }
        let cap = h.data.capacity();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.data.capacity(), cap);
    }
}
