//! Structured trace events: the typed event taxonomy of a protocol run.
//!
//! The engine's aggregate results (end time, per-node busy totals) cannot
//! distinguish two runs that differ only in *when* things happened — yet
//! the paper's evidence is all temporal (steady-state onset, buffer
//! fill-up, wind-down). This module defines the event stream a simulation
//! can emit so tests and tools can audit a schedule event by event:
//!
//! * [`TraceEvent`] — the taxonomy: transfer start/preempt/resume/
//!   complete, compute start/finish, buffer acquire/release (with
//!   occupancy), requests sent/denied, node join/leave.
//! * [`TraceSink`] — where events go. The simulator is generic over the
//!   sink and monomorphizes: the default [`NullSink`] has
//!   [`TraceSink::ENABLED`]` = false`, so every instrumentation site
//!   (including its argument computation) is compiled out and the
//!   untraced event loop stays allocation-free (proven by the engine's
//!   counting-allocator test).
//! * [`VecSink`] (record everything), [`RingRecorder`] (bounded,
//!   allocation-free after construction — the in-flight black box the
//!   invariant checker dumps on failure).
//! * Streaming writers: [`JsonlWriter`] (one canonical JSON object per
//!   line, byte-stable across platforms — the golden-trace format) and
//!   [`BinWriter`] (compact tag + varint encoding, ~4–6× smaller).
//!
//! Determinism: a simulation emits events single-threaded in event-loop
//! order, so for a fixed `(tree, config)` the byte stream is identical
//! on every run at any campaign thread count. `tests/golden_traces.rs`
//! freezes that guarantee against committed snapshots.

use crate::agenda::Time;
use std::fmt;
use std::io::{self, Write};

/// One typed protocol event. Nodes are named by arena index (the
/// repository is node 0); `child` is likewise a node index, not a
/// position in its parent's child list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A task transfer toward `child` started transmitting on `node`'s
    /// outbound link (`work` timesteps of communication).
    TransferStart {
        /// Sending node.
        node: u32,
        /// Receiving child node.
        child: u32,
        /// Total transmission work, in timesteps.
        work: u64,
    },
    /// Interruptible only: the active transfer toward `child` was shelved
    /// with `remaining` timesteps of work left (0 = it completed at the
    /// preemption instant; a `TransferComplete` follows immediately).
    TransferPreempt {
        /// Sending node.
        node: u32,
        /// Receiving child node.
        child: u32,
        /// Transmission work left when shelved.
        remaining: u64,
    },
    /// Interruptible only: a shelved partial transfer toward `child`
    /// resumed transmitting where it left off.
    TransferResume {
        /// Sending node.
        node: u32,
        /// Receiving child node.
        child: u32,
        /// Transmission work left at resume.
        remaining: u64,
    },
    /// The transfer toward `child` delivered its task (`work` = the total
    /// transmission work at delegation time).
    TransferComplete {
        /// Sending node.
        node: u32,
        /// Receiving child node.
        child: u32,
        /// Total transmission work of the completed transfer.
        work: u64,
    },
    /// `node`'s processor started computing a task.
    ComputeStart {
        /// Computing node.
        node: u32,
    },
    /// `node`'s processor finished computing a task (a task completion).
    ComputeFinish {
        /// Computing node.
        node: u32,
    },
    /// A delivered task occupied one of `node`'s buffers; `held` is the
    /// occupancy *after* the arrival, `capacity` the pool size.
    BufferAcquire {
        /// Buffering node.
        node: u32,
        /// Tasks held after the arrival.
        held: u32,
        /// Buffer-pool capacity at that instant.
        capacity: u32,
    },
    /// `node` took a task out of a buffer (compute start or delegation);
    /// `held` is the occupancy *after* the removal.
    BufferRelease {
        /// Buffering node.
        node: u32,
        /// Tasks held after the removal.
        held: u32,
        /// Buffer-pool capacity at that instant.
        capacity: u32,
    },
    /// `node` sent `count` fresh task requests to its parent (one per
    /// uncovered empty buffer).
    Request {
        /// Requesting node.
        node: u32,
        /// Requests sent in this batch.
        count: u32,
    },
    /// `count` requests pending at `node` from `child` were discarded
    /// unserved (the child departed before they could be honored).
    RequestDeny {
        /// Parent node that held the requests.
        node: u32,
        /// Departed child whose requests died.
        child: u32,
        /// Requests discarded.
        count: u32,
    },
    /// A new node joined the overlay under `parent`.
    NodeJoin {
        /// The joined node.
        node: u32,
        /// Its parent (the contact node).
        parent: u32,
    },
    /// The subtree rooted at `node` departed; `reclaimed` tasks it held
    /// (buffered, computing, or in flight toward it) returned to the
    /// repository.
    NodeLeave {
        /// Root of the departed subtree.
        node: u32,
        /// Tasks returned to the repository.
        reclaimed: u64,
    },
    /// A request batch from `node` to its parent was lost by the network
    /// (dropped by a fault or swallowed by an outage / crashed parent).
    RequestLoss {
        /// Requesting node whose batch vanished.
        node: u32,
        /// Requests lost.
        count: u32,
    },
    /// `node`'s request timeout fired with unacknowledged requests
    /// outstanding: it withdrew `count` lost requests and re-issues them
    /// (attempt number `retry`, with exponential backoff).
    RequestRetry {
        /// Retrying node.
        node: u32,
        /// Retry attempt number (1-based).
        retry: u32,
        /// Lost requests being re-issued.
        count: u32,
    },
    /// The in-flight transfer from `node` toward `child` was torn down by
    /// a fault (link reset, outage, or the receiver crashed); its task is
    /// lost and will be reissued by the repository.
    TransferAbort {
        /// Sending node that observed the reset.
        node: u32,
        /// Intended receiver.
        child: u32,
    },
    /// The uplink of `node` entered a transient outage lasting until
    /// simulation time `until`.
    LinkDown {
        /// Node whose uplink went dark.
        node: u32,
        /// Sim time the outage ends.
        until: u64,
    },
    /// The uplink of `node` came back after an outage; deferred negative
    /// acknowledgements resolve now.
    LinkUp {
        /// Node whose uplink recovered.
        node: u32,
    },
    /// The subtree rooted at `node` crashed abruptly; `lost` tasks it held
    /// (buffered, computing, or in flight inside it) were destroyed and
    /// enter the repository's reissue ledger.
    NodeCrash {
        /// Root of the crashed subtree.
        node: u32,
        /// Tasks destroyed by the crash.
        lost: u64,
    },
    /// The repository re-injected `count` previously lost tasks into the
    /// remaining pool (master-side orphan reissue).
    TaskReissue {
        /// Tasks re-injected.
        count: u64,
    },
    /// `node` hit the missed-ack threshold for `child` and declared it
    /// dead: pending requests from it are discarded and it stops being a
    /// delegation candidate until it is heard from again.
    ChildDead {
        /// Parent making the call.
        node: u32,
        /// Child presumed dead.
        child: u32,
    },
    /// A request from a child previously declared dead arrived at `node`:
    /// the child is alive after all and rejoins the candidate set.
    ChildRevived {
        /// Parent revising its belief.
        node: u32,
        /// Child welcomed back.
        child: u32,
    },
    /// A duplicated delivery reached `node` and was recognized by task
    /// identity and dropped (at-least-once network, at-most-once buffer).
    DuplicateDrop {
        /// Receiving node that discarded the copy.
        node: u32,
    },
    /// A scheduled join was denied because the contact node is unknown,
    /// departed, or crashed — in a real overlay the join simply fails.
    JoinDenied {
        /// The contact node the join was addressed to.
        parent: u32,
    },
    /// Open-world mode: an arrival of `units` unit tasks of class
    /// `class` was submitted to the repository.
    TaskArrival {
        /// Index into the arrival plan's class list.
        class: u32,
        /// Unit tasks submitted.
        units: u64,
    },
    /// Open-world mode: `units` unit tasks entered the repository's
    /// admission queue; `queued` is the queue depth *after* admission.
    TaskAdmit {
        /// Index into the arrival plan's class list.
        class: u32,
        /// Unit tasks admitted.
        units: u64,
        /// Admitted-but-undispatched units after this admission.
        queued: u64,
    },
    /// Open-world mode, `Drop` policy: an arrival overflowed the
    /// admission bound and was shed.
    TaskReject {
        /// Index into the arrival plan's class list.
        class: u32,
        /// Unit tasks rejected.
        units: u64,
    },
    /// Open-world mode, `Defer` policy: an arrival overflowed the
    /// admission bound and joined the deferred queue; `waiting` is the
    /// deferred backlog *after* this deferral, in unit tasks.
    TaskDefer {
        /// Index into the arrival plan's class list.
        class: u32,
        /// Unit tasks deferred.
        units: u64,
        /// Deferred backlog after this deferral.
        waiting: u64,
    },
}

/// A [`TraceEvent`] stamped with its simulation time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time the event occurred at.
    pub time: Time,
    /// The event.
    pub event: TraceEvent,
}

impl TraceEvent {
    /// The stable kebab-case name of this event kind (the `"ev"` field of
    /// the JSONL encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TransferStart { .. } => "transfer-start",
            TraceEvent::TransferPreempt { .. } => "transfer-preempt",
            TraceEvent::TransferResume { .. } => "transfer-resume",
            TraceEvent::TransferComplete { .. } => "transfer-complete",
            TraceEvent::ComputeStart { .. } => "compute-start",
            TraceEvent::ComputeFinish { .. } => "compute-finish",
            TraceEvent::BufferAcquire { .. } => "buffer-acquire",
            TraceEvent::BufferRelease { .. } => "buffer-release",
            TraceEvent::Request { .. } => "request",
            TraceEvent::RequestDeny { .. } => "request-deny",
            TraceEvent::NodeJoin { .. } => "node-join",
            TraceEvent::NodeLeave { .. } => "node-leave",
            TraceEvent::RequestLoss { .. } => "request-loss",
            TraceEvent::RequestRetry { .. } => "request-retry",
            TraceEvent::TransferAbort { .. } => "transfer-abort",
            TraceEvent::LinkDown { .. } => "link-down",
            TraceEvent::LinkUp { .. } => "link-up",
            TraceEvent::NodeCrash { .. } => "node-crash",
            TraceEvent::TaskReissue { .. } => "task-reissue",
            TraceEvent::ChildDead { .. } => "child-dead",
            TraceEvent::ChildRevived { .. } => "child-revived",
            TraceEvent::DuplicateDrop { .. } => "duplicate-drop",
            TraceEvent::JoinDenied { .. } => "join-denied",
            TraceEvent::TaskArrival { .. } => "task-arrival",
            TraceEvent::TaskAdmit { .. } => "task-admit",
            TraceEvent::TaskReject { .. } => "task-reject",
            TraceEvent::TaskDefer { .. } => "task-defer",
        }
    }

    /// The node the event happened at (the sender for transfers, the
    /// parent for denials).
    pub fn node(&self) -> u32 {
        match *self {
            TraceEvent::TransferStart { node, .. }
            | TraceEvent::TransferPreempt { node, .. }
            | TraceEvent::TransferResume { node, .. }
            | TraceEvent::TransferComplete { node, .. }
            | TraceEvent::ComputeStart { node }
            | TraceEvent::ComputeFinish { node }
            | TraceEvent::BufferAcquire { node, .. }
            | TraceEvent::BufferRelease { node, .. }
            | TraceEvent::Request { node, .. }
            | TraceEvent::RequestDeny { node, .. }
            | TraceEvent::NodeJoin { node, .. }
            | TraceEvent::NodeLeave { node, .. }
            | TraceEvent::RequestLoss { node, .. }
            | TraceEvent::RequestRetry { node, .. }
            | TraceEvent::TransferAbort { node, .. }
            | TraceEvent::LinkDown { node, .. }
            | TraceEvent::LinkUp { node }
            | TraceEvent::NodeCrash { node, .. }
            | TraceEvent::ChildDead { node, .. }
            | TraceEvent::ChildRevived { node, .. }
            | TraceEvent::DuplicateDrop { node } => node,
            // Reissues and arrival admission happen at the repository; a
            // denied join names only the contact node it was addressed to.
            TraceEvent::TaskReissue { .. }
            | TraceEvent::TaskArrival { .. }
            | TraceEvent::TaskAdmit { .. }
            | TraceEvent::TaskReject { .. }
            | TraceEvent::TaskDefer { .. } => 0,
            TraceEvent::JoinDenied { parent } => parent,
        }
    }
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// Receives the trace stream of one simulation run.
///
/// The simulator is generic over its sink, so each sink monomorphizes its
/// own event loop. [`NullSink`] sets [`TraceSink::ENABLED`] to `false`;
/// instrumentation sites guard on that associated constant, so the
/// untraced loop contains no trace code at all — not even the occupancy
/// reads that would feed event payloads.
pub trait TraceSink {
    /// Statically `false` only for the no-op sink: lets the simulator
    /// compile instrumentation (and its argument computation) out
    /// entirely.
    const ENABLED: bool = true;

    /// Receives one event. Called in strict event-loop order;
    /// `time` never decreases between calls.
    fn record(&mut self, time: Time, event: TraceEvent);

    /// Appends whatever the sink still retains, oldest first (the
    /// invariant checker's failure dump). Unbounded sinks may truncate to
    /// a recent tail; the default retains nothing.
    fn retained(&self, _out: &mut Vec<TraceRecord>) {}
}

/// The default sink: keeps nothing, compiles to nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _time: Time, _event: TraceEvent) {}
}

/// Records every event in order (tests, golden traces, timeline folds).
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// The full trace, in emission order.
    pub records: Vec<TraceRecord>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, time: Time, event: TraceEvent) {
        self.records.push(TraceRecord { time, event });
    }

    fn retained(&self, out: &mut Vec<TraceRecord>) {
        out.extend_from_slice(&self.records);
    }
}

/// A bounded ring buffer keeping the most recent `capacity` records: the
/// black-box flight recorder for long runs. All storage is allocated up
/// front, so recording is allocation-free (asserted by the engine's
/// counting-allocator test).
#[derive(Clone, Debug)]
pub struct RingRecorder {
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Index the next record lands at once the ring is full.
    next: usize,
    /// Total records ever seen (≥ `buf.len()`).
    total: u64,
}

impl RingRecorder {
    /// A ring retaining the last `capacity` records (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be >= 1");
        RingRecorder {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total: 0,
        }
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// The retained tail in chronological order.
    pub fn tail(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        self.retained(&mut out);
        out
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, time: Time, event: TraceEvent) {
        let rec = TraceRecord { time, event };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % self.capacity;
        }
        self.total += 1;
    }

    fn retained(&self, out: &mut Vec<TraceRecord>) {
        // `next` is both the overwrite cursor and the oldest retained
        // record once the ring has wrapped.
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
    }
}

/// Forwards every event to two sinks (e.g. a ring for failure dumps plus
/// a streaming writer).
#[derive(Clone, Debug, Default)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn record(&mut self, time: Time, event: TraceEvent) {
        self.0.record(time, event);
        self.1.record(time, event);
    }

    fn retained(&self, out: &mut Vec<TraceRecord>) {
        self.0.retained(out);
    }
}

// ---------------------------------------------------------------------
// Canonical JSONL encoding
// ---------------------------------------------------------------------

impl TraceRecord {
    /// Appends the canonical JSONL form (no trailing newline): one JSON
    /// object, fixed key order (`t`, `ev`, then payload fields in
    /// declaration order), no whitespace. Integers only — the encoding is
    /// byte-stable across platforms, which is what lets golden traces be
    /// diffed with `assert_eq!` on bytes.
    pub fn write_jsonl(&self, out: &mut String) {
        use fmt::Write;
        let w = |out: &mut String, args: fmt::Arguments| {
            out.write_fmt(args).expect("string write");
        };
        w(
            out,
            format_args!("{{\"t\":{},\"ev\":\"{}\"", self.time, self.event.kind()),
        );
        match self.event {
            TraceEvent::TransferStart { node, child, work }
            | TraceEvent::TransferComplete { node, child, work } => {
                w(
                    out,
                    format_args!(",\"node\":{node},\"child\":{child},\"work\":{work}"),
                );
            }
            TraceEvent::TransferPreempt {
                node,
                child,
                remaining,
            }
            | TraceEvent::TransferResume {
                node,
                child,
                remaining,
            } => {
                w(
                    out,
                    format_args!(",\"node\":{node},\"child\":{child},\"remaining\":{remaining}"),
                );
            }
            TraceEvent::ComputeStart { node } | TraceEvent::ComputeFinish { node } => {
                w(out, format_args!(",\"node\":{node}"));
            }
            TraceEvent::BufferAcquire {
                node,
                held,
                capacity,
            }
            | TraceEvent::BufferRelease {
                node,
                held,
                capacity,
            } => {
                w(
                    out,
                    format_args!(",\"node\":{node},\"held\":{held},\"capacity\":{capacity}"),
                );
            }
            TraceEvent::Request { node, count } => {
                w(out, format_args!(",\"node\":{node},\"count\":{count}"));
            }
            TraceEvent::RequestDeny { node, child, count } => {
                w(
                    out,
                    format_args!(",\"node\":{node},\"child\":{child},\"count\":{count}"),
                );
            }
            TraceEvent::NodeJoin { node, parent } => {
                w(out, format_args!(",\"node\":{node},\"parent\":{parent}"));
            }
            TraceEvent::NodeLeave { node, reclaimed } => {
                w(
                    out,
                    format_args!(",\"node\":{node},\"reclaimed\":{reclaimed}"),
                );
            }
            TraceEvent::RequestLoss { node, count } => {
                w(out, format_args!(",\"node\":{node},\"count\":{count}"));
            }
            TraceEvent::RequestRetry { node, retry, count } => {
                w(
                    out,
                    format_args!(",\"node\":{node},\"retry\":{retry},\"count\":{count}"),
                );
            }
            TraceEvent::TransferAbort { node, child } => {
                w(out, format_args!(",\"node\":{node},\"child\":{child}"));
            }
            TraceEvent::LinkDown { node, until } => {
                w(out, format_args!(",\"node\":{node},\"until\":{until}"));
            }
            TraceEvent::LinkUp { node } | TraceEvent::DuplicateDrop { node } => {
                w(out, format_args!(",\"node\":{node}"));
            }
            TraceEvent::NodeCrash { node, lost } => {
                w(out, format_args!(",\"node\":{node},\"lost\":{lost}"));
            }
            TraceEvent::TaskReissue { count } => {
                w(out, format_args!(",\"count\":{count}"));
            }
            TraceEvent::ChildDead { node, child } | TraceEvent::ChildRevived { node, child } => {
                w(out, format_args!(",\"node\":{node},\"child\":{child}"));
            }
            TraceEvent::JoinDenied { parent } => {
                w(out, format_args!(",\"parent\":{parent}"));
            }
            TraceEvent::TaskArrival { class, units } | TraceEvent::TaskReject { class, units } => {
                w(out, format_args!(",\"class\":{class},\"units\":{units}"));
            }
            TraceEvent::TaskAdmit {
                class,
                units,
                queued,
            } => {
                w(
                    out,
                    format_args!(",\"class\":{class},\"units\":{units},\"queued\":{queued}"),
                );
            }
            TraceEvent::TaskDefer {
                class,
                units,
                waiting,
            } => {
                w(
                    out,
                    format_args!(",\"class\":{class},\"units\":{units},\"waiting\":{waiting}"),
                );
            }
        }
        out.push('}');
    }

    /// The canonical JSONL line (without newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        self.write_jsonl(&mut s);
        s
    }

    /// Parses one line of [`TraceRecord::write_jsonl`]'s output. Accepts
    /// only the canonical form (this is a snapshot format, not a general
    /// JSON reader).
    pub fn from_jsonl(line: &str) -> Result<TraceRecord, String> {
        let inner = line
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| format!("not a JSON object: {line:?}"))?;
        let mut time: Option<Time> = None;
        let mut kind: Option<&str> = None;
        let mut fields: Vec<(&str, u64)> = Vec::with_capacity(4);
        for part in inner.split(',') {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("malformed field {part:?}"))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("malformed key in {part:?}"))?;
            if key == "ev" {
                let v = value
                    .trim()
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("malformed event kind {value:?}"))?;
                kind = Some(v);
            } else {
                let v: u64 = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("non-integer value in {part:?}"))?;
                if key == "t" {
                    time = Some(v);
                } else {
                    fields.push((key, v));
                }
            }
        }
        let time = time.ok_or("missing \"t\"")?;
        let kind = kind.ok_or("missing \"ev\"")?;
        let get = |name: &str| -> Result<u64, String> {
            fields
                .iter()
                .find(|(k, _)| *k == name)
                .map(|&(_, v)| v)
                .ok_or_else(|| format!("{kind}: missing field {name:?}"))
        };
        let narrow = |name: &str| -> Result<u32, String> {
            u32::try_from(get(name)?).map_err(|_| format!("{kind}: field {name:?} overflows u32"))
        };
        let event = match kind {
            "transfer-start" => TraceEvent::TransferStart {
                node: narrow("node")?,
                child: narrow("child")?,
                work: get("work")?,
            },
            "transfer-preempt" => TraceEvent::TransferPreempt {
                node: narrow("node")?,
                child: narrow("child")?,
                remaining: get("remaining")?,
            },
            "transfer-resume" => TraceEvent::TransferResume {
                node: narrow("node")?,
                child: narrow("child")?,
                remaining: get("remaining")?,
            },
            "transfer-complete" => TraceEvent::TransferComplete {
                node: narrow("node")?,
                child: narrow("child")?,
                work: get("work")?,
            },
            "compute-start" => TraceEvent::ComputeStart {
                node: narrow("node")?,
            },
            "compute-finish" => TraceEvent::ComputeFinish {
                node: narrow("node")?,
            },
            "buffer-acquire" => TraceEvent::BufferAcquire {
                node: narrow("node")?,
                held: narrow("held")?,
                capacity: narrow("capacity")?,
            },
            "buffer-release" => TraceEvent::BufferRelease {
                node: narrow("node")?,
                held: narrow("held")?,
                capacity: narrow("capacity")?,
            },
            "request" => TraceEvent::Request {
                node: narrow("node")?,
                count: narrow("count")?,
            },
            "request-deny" => TraceEvent::RequestDeny {
                node: narrow("node")?,
                child: narrow("child")?,
                count: narrow("count")?,
            },
            "node-join" => TraceEvent::NodeJoin {
                node: narrow("node")?,
                parent: narrow("parent")?,
            },
            "node-leave" => TraceEvent::NodeLeave {
                node: narrow("node")?,
                reclaimed: get("reclaimed")?,
            },
            "request-loss" => TraceEvent::RequestLoss {
                node: narrow("node")?,
                count: narrow("count")?,
            },
            "request-retry" => TraceEvent::RequestRetry {
                node: narrow("node")?,
                retry: narrow("retry")?,
                count: narrow("count")?,
            },
            "transfer-abort" => TraceEvent::TransferAbort {
                node: narrow("node")?,
                child: narrow("child")?,
            },
            "link-down" => TraceEvent::LinkDown {
                node: narrow("node")?,
                until: get("until")?,
            },
            "link-up" => TraceEvent::LinkUp {
                node: narrow("node")?,
            },
            "node-crash" => TraceEvent::NodeCrash {
                node: narrow("node")?,
                lost: get("lost")?,
            },
            "task-reissue" => TraceEvent::TaskReissue {
                count: get("count")?,
            },
            "child-dead" => TraceEvent::ChildDead {
                node: narrow("node")?,
                child: narrow("child")?,
            },
            "child-revived" => TraceEvent::ChildRevived {
                node: narrow("node")?,
                child: narrow("child")?,
            },
            "duplicate-drop" => TraceEvent::DuplicateDrop {
                node: narrow("node")?,
            },
            "join-denied" => TraceEvent::JoinDenied {
                parent: narrow("parent")?,
            },
            "task-arrival" => TraceEvent::TaskArrival {
                class: narrow("class")?,
                units: get("units")?,
            },
            "task-admit" => TraceEvent::TaskAdmit {
                class: narrow("class")?,
                units: get("units")?,
                queued: get("queued")?,
            },
            "task-reject" => TraceEvent::TaskReject {
                class: narrow("class")?,
                units: get("units")?,
            },
            "task-defer" => TraceEvent::TaskDefer {
                class: narrow("class")?,
                units: get("units")?,
                waiting: get("waiting")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(TraceRecord { time, event })
    }
}

impl fmt::Display for TraceRecord {
    /// Human-oriented rendering (`trace_dump --format pretty`, failure
    /// dumps): `t=14 node 3  transfer-start -> 5 (work 4)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={:<8} node {:<4} {:<17}",
            self.time,
            self.event.node(),
            self.event.kind()
        )?;
        match self.event {
            TraceEvent::TransferStart { child, work, .. }
            | TraceEvent::TransferComplete { child, work, .. } => {
                write!(f, " -> {child} (work {work})")
            }
            TraceEvent::TransferPreempt {
                child, remaining, ..
            }
            | TraceEvent::TransferResume {
                child, remaining, ..
            } => {
                write!(f, " -> {child} (remaining {remaining})")
            }
            TraceEvent::ComputeStart { .. } | TraceEvent::ComputeFinish { .. } => Ok(()),
            TraceEvent::BufferAcquire { held, capacity, .. }
            | TraceEvent::BufferRelease { held, capacity, .. } => {
                write!(f, " ({held}/{capacity} held)")
            }
            TraceEvent::Request { count, .. } => write!(f, " ({count} sent)"),
            TraceEvent::RequestDeny { child, count, .. } => {
                write!(f, " from {child} ({count} dropped)")
            }
            TraceEvent::NodeJoin { parent, .. } => write!(f, " under {parent}"),
            TraceEvent::NodeLeave { reclaimed, .. } => write!(f, " ({reclaimed} reclaimed)"),
            TraceEvent::RequestLoss { count, .. } => write!(f, " ({count} lost)"),
            TraceEvent::RequestRetry { retry, count, .. } => {
                write!(f, " (attempt {retry}, {count} re-sent)")
            }
            TraceEvent::TransferAbort { child, .. } => write!(f, " -> {child} (task lost)"),
            TraceEvent::LinkDown { until, .. } => write!(f, " (until t={until})"),
            TraceEvent::LinkUp { .. } | TraceEvent::DuplicateDrop { .. } => Ok(()),
            TraceEvent::NodeCrash { lost, .. } => write!(f, " ({lost} lost)"),
            TraceEvent::TaskReissue { count } => write!(f, " ({count} re-injected)"),
            TraceEvent::ChildDead { child, .. } => write!(f, " presumed dead: {child}"),
            TraceEvent::ChildRevived { child, .. } => write!(f, " heard from: {child}"),
            TraceEvent::JoinDenied { .. } => Ok(()),
            TraceEvent::TaskArrival { class, units } => {
                write!(f, " (class {class}, {units} units)")
            }
            TraceEvent::TaskAdmit {
                class,
                units,
                queued,
            } => write!(f, " (class {class}, {units} units, {queued} queued)"),
            TraceEvent::TaskReject { class, units } => {
                write!(f, " (class {class}, {units} units shed)")
            }
            TraceEvent::TaskDefer {
                class,
                units,
                waiting,
            } => write!(f, " (class {class}, {units} units, {waiting} waiting)"),
        }
    }
}

/// Renders `records` as canonical JSONL, one record per line, trailing
/// newline after every line (the golden-trace file format).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 64);
    for r in records {
        r.write_jsonl(&mut out);
        out.push('\n');
    }
    out
}

/// Parses a whole JSONL document (inverse of [`to_jsonl`]). Empty lines
/// are ignored; the error names the offending line.
pub fn from_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(TraceRecord::from_jsonl(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Streams records to `w` as canonical JSONL, one line per event, without
/// retaining them.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    inner: W,
    line: String,
}

impl<W: Write> JsonlWriter<W> {
    /// A writer streaming to `w`.
    pub fn new(w: W) -> Self {
        JsonlWriter {
            inner: w,
            line: String::with_capacity(96),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> TraceSink for JsonlWriter<W> {
    fn record(&mut self, time: Time, event: TraceEvent) {
        self.line.clear();
        TraceRecord { time, event }.write_jsonl(&mut self.line);
        self.line.push('\n');
        self.inner
            .write_all(self.line.as_bytes())
            .expect("trace stream write failed");
    }
}

// ---------------------------------------------------------------------
// Compact binary encoding
// ---------------------------------------------------------------------

/// Event-kind tags of the binary encoding (stable; new kinds append).
const TAGS: [&str; 27] = [
    "transfer-start",
    "transfer-preempt",
    "transfer-resume",
    "transfer-complete",
    "compute-start",
    "compute-finish",
    "buffer-acquire",
    "buffer-release",
    "request",
    "request-deny",
    "node-join",
    "node-leave",
    "request-loss",
    "request-retry",
    "transfer-abort",
    "link-down",
    "link-up",
    "node-crash",
    "task-reissue",
    "child-dead",
    "child-revived",
    "duplicate-drop",
    "join-denied",
    "task-arrival",
    "task-admit",
    "task-reject",
    "task-defer",
];

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *buf.get(*pos).ok_or("truncated varint")?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err("varint exceeds 64 bits".into())
}

impl TraceRecord {
    /// Fields of the event, in declaration order (shared by the binary
    /// encoder and decoder so the two cannot drift).
    fn payload(&self) -> (u8, [u64; 3], usize) {
        let tag = TAGS
            .iter()
            .position(|&k| k == self.event.kind())
            .expect("kind in TAGS") as u8;
        match self.event {
            TraceEvent::TransferStart { node, child, work }
            | TraceEvent::TransferComplete { node, child, work } => {
                (tag, [node.into(), child.into(), work], 3)
            }
            TraceEvent::TransferPreempt {
                node,
                child,
                remaining,
            }
            | TraceEvent::TransferResume {
                node,
                child,
                remaining,
            } => (tag, [node.into(), child.into(), remaining], 3),
            TraceEvent::ComputeStart { node } | TraceEvent::ComputeFinish { node } => {
                (tag, [node.into(), 0, 0], 1)
            }
            TraceEvent::BufferAcquire {
                node,
                held,
                capacity,
            }
            | TraceEvent::BufferRelease {
                node,
                held,
                capacity,
            } => (tag, [node.into(), held.into(), capacity.into()], 3),
            TraceEvent::Request { node, count } => (tag, [node.into(), count.into(), 0], 2),
            TraceEvent::RequestDeny { node, child, count } => {
                (tag, [node.into(), child.into(), count.into()], 3)
            }
            TraceEvent::NodeJoin { node, parent } => (tag, [node.into(), parent.into(), 0], 2),
            TraceEvent::NodeLeave { node, reclaimed } => (tag, [node.into(), reclaimed, 0], 2),
            TraceEvent::RequestLoss { node, count } => (tag, [node.into(), count.into(), 0], 2),
            TraceEvent::RequestRetry { node, retry, count } => {
                (tag, [node.into(), retry.into(), count.into()], 3)
            }
            TraceEvent::TransferAbort { node, child }
            | TraceEvent::ChildDead { node, child }
            | TraceEvent::ChildRevived { node, child } => (tag, [node.into(), child.into(), 0], 2),
            TraceEvent::LinkDown { node, until } => (tag, [node.into(), until, 0], 2),
            TraceEvent::LinkUp { node } | TraceEvent::DuplicateDrop { node } => {
                (tag, [node.into(), 0, 0], 1)
            }
            TraceEvent::NodeCrash { node, lost } => (tag, [node.into(), lost, 0], 2),
            TraceEvent::TaskReissue { count } => (tag, [count, 0, 0], 1),
            TraceEvent::JoinDenied { parent } => (tag, [parent.into(), 0, 0], 1),
            TraceEvent::TaskArrival { class, units } | TraceEvent::TaskReject { class, units } => {
                (tag, [class.into(), units, 0], 2)
            }
            TraceEvent::TaskAdmit {
                class,
                units,
                queued,
            } => (tag, [class.into(), units, queued], 3),
            TraceEvent::TaskDefer {
                class,
                units,
                waiting,
            } => (tag, [class.into(), units, waiting], 3),
        }
    }

    /// Appends the compact binary form: `[tag][varint time-delta-able
    /// absolute time][varint fields…]`.
    pub fn write_binary(&self, out: &mut Vec<u8>) {
        let (tag, fields, n) = self.payload();
        out.push(tag);
        put_varint(out, self.time);
        for &f in &fields[..n] {
            put_varint(out, f);
        }
    }

    /// Decodes one record at `pos`, advancing it.
    pub fn read_binary(buf: &[u8], pos: &mut usize) -> Result<TraceRecord, String> {
        let tag = *buf.get(*pos).ok_or("truncated record")?;
        *pos += 1;
        let kind = *TAGS
            .get(tag as usize)
            .ok_or_else(|| format!("unknown binary tag {tag}"))?;
        let time = get_varint(buf, pos)?;
        let narrow = |v: u64, what: &str| -> Result<u32, String> {
            u32::try_from(v).map_err(|_| format!("{kind}: {what} overflows u32"))
        };
        let mut next = || get_varint(buf, pos);
        let event = match kind {
            "transfer-start" | "transfer-complete" => {
                let (node, child, work) = (next()?, next()?, next()?);
                let (node, child) = (narrow(node, "node")?, narrow(child, "child")?);
                if kind == "transfer-start" {
                    TraceEvent::TransferStart { node, child, work }
                } else {
                    TraceEvent::TransferComplete { node, child, work }
                }
            }
            "transfer-preempt" | "transfer-resume" => {
                let (node, child, remaining) = (next()?, next()?, next()?);
                let (node, child) = (narrow(node, "node")?, narrow(child, "child")?);
                if kind == "transfer-preempt" {
                    TraceEvent::TransferPreempt {
                        node,
                        child,
                        remaining,
                    }
                } else {
                    TraceEvent::TransferResume {
                        node,
                        child,
                        remaining,
                    }
                }
            }
            "compute-start" | "compute-finish" => {
                let node = narrow(next()?, "node")?;
                if kind == "compute-start" {
                    TraceEvent::ComputeStart { node }
                } else {
                    TraceEvent::ComputeFinish { node }
                }
            }
            "buffer-acquire" | "buffer-release" => {
                let (node, held, capacity) = (next()?, next()?, next()?);
                let (node, held, capacity) = (
                    narrow(node, "node")?,
                    narrow(held, "held")?,
                    narrow(capacity, "capacity")?,
                );
                if kind == "buffer-acquire" {
                    TraceEvent::BufferAcquire {
                        node,
                        held,
                        capacity,
                    }
                } else {
                    TraceEvent::BufferRelease {
                        node,
                        held,
                        capacity,
                    }
                }
            }
            "request" => TraceEvent::Request {
                node: narrow(next()?, "node")?,
                count: narrow(next()?, "count")?,
            },
            "request-deny" => TraceEvent::RequestDeny {
                node: narrow(next()?, "node")?,
                child: narrow(next()?, "child")?,
                count: narrow(next()?, "count")?,
            },
            "node-join" => TraceEvent::NodeJoin {
                node: narrow(next()?, "node")?,
                parent: narrow(next()?, "parent")?,
            },
            "node-leave" => TraceEvent::NodeLeave {
                node: narrow(next()?, "node")?,
                reclaimed: next()?,
            },
            "request-loss" => TraceEvent::RequestLoss {
                node: narrow(next()?, "node")?,
                count: narrow(next()?, "count")?,
            },
            "request-retry" => TraceEvent::RequestRetry {
                node: narrow(next()?, "node")?,
                retry: narrow(next()?, "retry")?,
                count: narrow(next()?, "count")?,
            },
            "transfer-abort" => TraceEvent::TransferAbort {
                node: narrow(next()?, "node")?,
                child: narrow(next()?, "child")?,
            },
            "link-down" => TraceEvent::LinkDown {
                node: narrow(next()?, "node")?,
                until: next()?,
            },
            "link-up" => TraceEvent::LinkUp {
                node: narrow(next()?, "node")?,
            },
            "node-crash" => TraceEvent::NodeCrash {
                node: narrow(next()?, "node")?,
                lost: next()?,
            },
            "task-reissue" => TraceEvent::TaskReissue { count: next()? },
            "child-dead" => TraceEvent::ChildDead {
                node: narrow(next()?, "node")?,
                child: narrow(next()?, "child")?,
            },
            "child-revived" => TraceEvent::ChildRevived {
                node: narrow(next()?, "node")?,
                child: narrow(next()?, "child")?,
            },
            "duplicate-drop" => TraceEvent::DuplicateDrop {
                node: narrow(next()?, "node")?,
            },
            "join-denied" => TraceEvent::JoinDenied {
                parent: narrow(next()?, "parent")?,
            },
            "task-arrival" | "task-reject" => {
                let (class, units) = (narrow(next()?, "class")?, next()?);
                if kind == "task-arrival" {
                    TraceEvent::TaskArrival { class, units }
                } else {
                    TraceEvent::TaskReject { class, units }
                }
            }
            "task-admit" => TraceEvent::TaskAdmit {
                class: narrow(next()?, "class")?,
                units: next()?,
                queued: next()?,
            },
            "task-defer" => TraceEvent::TaskDefer {
                class: narrow(next()?, "class")?,
                units: next()?,
                waiting: next()?,
            },
            _ => unreachable!("kind comes from TAGS"),
        };
        Ok(TraceRecord { time, event })
    }
}

/// Encodes `records` in the compact binary format.
pub fn to_binary(records: &[TraceRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 8);
    for r in records {
        r.write_binary(&mut out);
    }
    out
}

/// Decodes a whole compact-binary document (inverse of [`to_binary`]).
pub fn from_binary(buf: &[u8]) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        out.push(TraceRecord::read_binary(buf, &mut pos)?);
    }
    Ok(out)
}

/// Streams records to `w` in the compact binary format.
#[derive(Debug)]
pub struct BinWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
}

impl<W: Write> BinWriter<W> {
    /// A writer streaming to `w`.
    pub fn new(w: W) -> Self {
        BinWriter {
            inner: w,
            buf: Vec::with_capacity(32),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> TraceSink for BinWriter<W> {
    fn record(&mut self, time: Time, event: TraceEvent) {
        self.buf.clear();
        TraceRecord { time, event }.write_binary(&mut self.buf);
        self.inner
            .write_all(&self.buf)
            .expect("trace stream write failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_kind() -> Vec<TraceRecord> {
        let events = [
            TraceEvent::TransferStart {
                node: 0,
                child: 3,
                work: 7,
            },
            TraceEvent::TransferPreempt {
                node: 0,
                child: 3,
                remaining: 4,
            },
            TraceEvent::TransferResume {
                node: 0,
                child: 3,
                remaining: 4,
            },
            TraceEvent::TransferComplete {
                node: 0,
                child: 3,
                work: 7,
            },
            TraceEvent::ComputeStart { node: 2 },
            TraceEvent::ComputeFinish { node: 2 },
            TraceEvent::BufferAcquire {
                node: 3,
                held: 2,
                capacity: 3,
            },
            TraceEvent::BufferRelease {
                node: 3,
                held: 1,
                capacity: 3,
            },
            TraceEvent::Request { node: 3, count: 2 },
            TraceEvent::RequestDeny {
                node: 0,
                child: 3,
                count: 1,
            },
            TraceEvent::NodeJoin { node: 9, parent: 1 },
            TraceEvent::NodeLeave {
                node: 9,
                reclaimed: 5,
            },
            TraceEvent::RequestLoss { node: 3, count: 2 },
            TraceEvent::RequestRetry {
                node: 3,
                retry: 2,
                count: 2,
            },
            TraceEvent::TransferAbort { node: 0, child: 3 },
            TraceEvent::LinkDown {
                node: 3,
                until: 900,
            },
            TraceEvent::LinkUp { node: 3 },
            TraceEvent::NodeCrash { node: 4, lost: 6 },
            TraceEvent::TaskReissue { count: 6 },
            TraceEvent::ChildDead { node: 0, child: 4 },
            TraceEvent::ChildRevived { node: 0, child: 4 },
            TraceEvent::DuplicateDrop { node: 3 },
            TraceEvent::JoinDenied { parent: 9 },
            TraceEvent::TaskArrival { class: 1, units: 3 },
            TraceEvent::TaskAdmit {
                class: 1,
                units: 3,
                queued: 5,
            },
            TraceEvent::TaskReject { class: 2, units: 4 },
            TraceEvent::TaskDefer {
                class: 0,
                units: 2,
                waiting: 6,
            },
        ];
        assert_eq!(events.len(), super::TAGS.len(), "one sample per kind");
        events
            .iter()
            .enumerate()
            .map(|(i, &event)| TraceRecord {
                time: (i as u64) * 1000 + u64::from(i == 11) * u64::from(u32::MAX),
                event,
            })
            .collect()
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let records = every_kind();
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), records.len());
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn jsonl_is_canonical() {
        let r = TraceRecord {
            time: 14,
            event: TraceEvent::TransferStart {
                node: 1,
                child: 5,
                work: 4,
            },
        };
        assert_eq!(
            r.to_jsonl(),
            "{\"t\":14,\"ev\":\"transfer-start\",\"node\":1,\"child\":5,\"work\":4}"
        );
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        for bad in [
            "",
            "{}",
            "{\"t\":1}",
            "{\"ev\":\"compute-start\",\"node\":1}",
            "{\"t\":1,\"ev\":\"no-such-kind\",\"node\":1}",
            "{\"t\":1,\"ev\":\"compute-start\"}",
            "{\"t\":1,\"ev\":\"request\",\"node\":1,\"count\":99999999999}",
            "not json at all",
        ] {
            assert!(TraceRecord::from_jsonl(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn binary_round_trips_every_kind() {
        let records = every_kind();
        let bin = to_binary(&records);
        assert!(
            bin.len() < to_jsonl(&records).len() / 3,
            "binary should be a small fraction of JSONL ({} vs {})",
            bin.len(),
            to_jsonl(&records).len()
        );
        assert_eq!(from_binary(&bin).unwrap(), records);
    }

    #[test]
    fn binary_rejects_truncation_and_bad_tags() {
        let records = every_kind();
        let bin = to_binary(&records);
        assert!(from_binary(&bin[..bin.len() - 1]).is_err());
        assert!(from_binary(&[200]).is_err());
    }

    #[test]
    fn ring_keeps_the_most_recent_tail() {
        let mut ring = RingRecorder::new(4);
        for i in 0..10u64 {
            ring.record(i, TraceEvent::ComputeStart { node: i as u32 });
        }
        assert_eq!(ring.total_recorded(), 10);
        let tail = ring.tail();
        assert_eq!(tail.len(), 4);
        assert_eq!(
            tail.iter().map(|r| r.time).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "ring must retain the newest records in chronological order"
        );
        // Before wrapping, the tail is simply everything recorded.
        let mut small = RingRecorder::new(8);
        for i in 0..3u64 {
            small.record(i, TraceEvent::ComputeFinish { node: 0 });
        }
        assert_eq!(small.tail().len(), 3);
        assert_eq!(small.total_recorded(), 3);
    }

    #[test]
    fn null_sink_is_statically_disabled() {
        const { assert!(!NullSink::ENABLED) };
        const { assert!(VecSink::ENABLED) };
        const { assert!(RingRecorder::ENABLED) };
        let mut out = Vec::new();
        NullSink.retained(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn writers_stream_the_same_bytes_as_the_batch_encoders() {
        let records = every_kind();
        let mut jw = JsonlWriter::new(Vec::new());
        let mut bw = BinWriter::new(Vec::new());
        for r in &records {
            jw.record(r.time, r.event);
            bw.record(r.time, r.event);
        }
        assert_eq!(jw.into_inner().unwrap(), to_jsonl(&records).into_bytes());
        assert_eq!(bw.into_inner().unwrap(), to_binary(&records));
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut tee = TeeSink(VecSink::new(), RingRecorder::new(2));
        for i in 0..5u64 {
            tee.record(i, TraceEvent::ComputeStart { node: 1 });
        }
        assert_eq!(tee.0.records.len(), 5);
        assert_eq!(tee.1.tail().len(), 2);
        let mut out = Vec::new();
        tee.retained(&mut out);
        assert_eq!(out.len(), 5, "tee retains via its first sink");
    }

    #[test]
    fn display_is_stable() {
        let r = TraceRecord {
            time: 14,
            event: TraceEvent::TransferPreempt {
                node: 1,
                child: 5,
                remaining: 3,
            },
        };
        let s = r.to_string();
        assert!(s.contains("transfer-preempt"), "{s}");
        assert!(s.contains("remaining 3"), "{s}");
    }
}
