//! Model-based test of the agenda: the production [`Agenda`] (packed-key
//! 4-ary heap, tombstone cancellation, slot/generation recycling, purge
//! compaction) against a deliberately naive reference — a sorted `Vec` of
//! `(time, seq)` entries with none of those mechanisms.
//!
//! The interleavings are weighted to stress exactly the machinery the
//! reference lacks: cancel storms that cross the purge threshold, slot
//! reuse after fire/cancel (generation bumps), and mid-stream `reset()`.

use bc_simcore::Agenda;
use proptest::prelude::*;

/// The reference: entries sorted by (time, seq); cancellation removes the
/// entry outright, so there are no tombstones, slots, or generations to
/// get wrong.
#[derive(Default)]
struct ModelAgenda {
    /// `(time, seq, value)`, kept sorted ascending.
    entries: Vec<(u64, u64, u64)>,
    now: u64,
    seq: u64,
}

impl ModelAgenda {
    fn schedule(&mut self, delay: u64, value: u64) -> u64 {
        self.seq += 1;
        let key = (self.now + delay, self.seq, value);
        let pos = self.entries.partition_point(|e| *e < key);
        self.entries.insert(pos, key);
        self.seq
    }

    fn cancel(&mut self, seq: u64) -> Option<u64> {
        let i = self.entries.iter().position(|e| e.1 == seq)?;
        Some(self.entries.remove(i).2)
    }

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.entries.is_empty() {
            return None;
        }
        let (time, _, value) = self.entries.remove(0);
        self.now = time;
        Some((time, value))
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.now = 0;
        self.seq = 0;
    }
}

#[derive(Clone, Debug)]
enum Op {
    Schedule {
        delay: u64,
    },
    /// Cancel the pending handle at this (wrapped) index.
    Cancel {
        pick: usize,
    },
    /// Re-cancel an old, already-dead handle: must be a no-op even if the
    /// slot has been recycled by later schedules (generation reuse).
    CancelStale {
        pick: usize,
    },
    Pop,
    /// Schedule `n` events then cancel them all — the pattern that drives
    /// the heap across its purge threshold.
    CancelStorm {
        n: usize,
    },
    Reset,
}

/// Decodes a weighted `(code, arg)` pair into an op: 8/22 schedule,
/// 4/22 cancel, 2/22 stale cancel, 6/22 pop, 1/22 storm, 1/22 reset.
fn decode(code: u8, arg: u64) -> Op {
    match code {
        0..=7 => Op::Schedule { delay: arg },
        8..=11 => Op::Cancel { pick: arg as usize },
        12..=13 => Op::CancelStale { pick: arg as usize },
        14..=19 => Op::Pop,
        20 => Op::CancelStorm {
            n: 65 + (arg as usize) % 135,
        },
        _ => Op::Reset,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn agenda_matches_sorted_vec_model(raw in prop::collection::vec((0u8..22, 0u64..100), 1..120)) {
        let ops = raw.into_iter().map(|(code, arg)| decode(code, arg));
        let mut real: Agenda<u64> = Agenda::new();
        let mut model = ModelAgenda::default();
        // Parallel arrays: real handle and model seq for each live-ish
        // scheduled event; dead ones move to `stale`.
        let mut handles = Vec::new();
        let mut stale = Vec::new();
        let mut next_value = 0u64;

        for op in ops {
            match op {
                Op::Schedule { delay } => {
                    next_value += 1;
                    let h = real.schedule(delay, next_value);
                    let m = model.schedule(delay, next_value);
                    handles.push((h, m));
                }
                Op::Cancel { pick } if !handles.is_empty() => {
                    let i = pick % handles.len();
                    let (h, m) = handles.swap_remove(i);
                    prop_assert_eq!(real.cancel(h), model.cancel(m));
                    stale.push(h);
                }
                Op::CancelStale { pick } if !stale.is_empty() => {
                    let h = stale[pick % stale.len()];
                    // However the slot was recycled since, the old handle
                    // must stay dead.
                    prop_assert_eq!(real.cancel(h), None);
                    prop_assert!(!real.is_pending(h));
                }
                Op::Cancel { .. } | Op::CancelStale { .. } => {}
                Op::Pop => {
                    prop_assert_eq!(real.next(), model.next());
                    prop_assert_eq!(real.now(), model.now);
                }
                Op::CancelStorm { n } => {
                    let mut storm = Vec::with_capacity(n);
                    for _ in 0..n {
                        next_value += 1;
                        let h = real.schedule(50, next_value);
                        let m = model.schedule(50, next_value);
                        storm.push((h, m));
                    }
                    for (h, m) in storm {
                        prop_assert_eq!(real.cancel(h), model.cancel(m));
                        stale.push(h);
                    }
                    // The purge must have kept the heap near its live size.
                    prop_assert!(
                        real.heap_entries() <= 2 * real.len().max(64),
                        "heap kept {} entries for {} live events",
                        real.heap_entries(),
                        real.len()
                    );
                }
                Op::Reset => {
                    real.reset();
                    model.reset();
                    stale.extend(handles.drain(..).map(|(h, _)| h));
                }
            }
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert_eq!(real.is_empty(), model.entries.is_empty());
        }

        // Drain to the end: identical tails.
        loop {
            let a = real.next();
            let b = model.next();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
