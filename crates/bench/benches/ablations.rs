//! Ablation benchmarks for the design decisions DESIGN.md calls out:
//! protocol discipline, buffer counts, growth gates, scheduling policies,
//! latency observers, and the two analytic solvers.

use bandwidth_centric::prelude::*;
use bandwidth_centric::steady::lp_optimal_rate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn tree(seed: u64) -> Tree {
    RandomTreeConfig {
        min_nodes: 40,
        max_nodes: 120,
        comm_min: 1,
        comm_max: 60,
        compute_scale: 3_000,
    }
    .generate(seed)
}

/// IC vs non-IC event throughput on the same platform and workload.
fn ablate_protocol(c: &mut Criterion) {
    let t = tree(1);
    let mut g = c.benchmark_group("protocol");
    for (name, cfg) in [
        ("interruptible_fb3", SimConfig::interruptible(3, 1_500)),
        (
            "non_interruptible_ib1",
            SimConfig::non_interruptible(1, 1_500),
        ),
        (
            "non_interruptible_fb3",
            SimConfig::non_interruptible_fixed(3, 1_500),
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(Simulation::new(t.clone(), cfg.clone()).run().end_time))
        });
    }
    g.finish();
}

/// Fixed buffer count: the cost/benefit of FB = 1..4.
fn ablate_buffers(c: &mut Criterion) {
    let t = tree(2);
    let mut g = c.benchmark_group("fixed_buffers");
    for fb in [1u32, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(fb), &fb, |b, &fb| {
            b.iter(|| {
                black_box(
                    Simulation::new(t.clone(), SimConfig::interruptible(fb, 1_500))
                        .run()
                        .end_time,
                )
            })
        });
    }
    g.finish();
}

/// Growth gates for the non-IC protocol.
fn ablate_growth_gate(c: &mut Criterion) {
    let t = tree(3);
    let mut g = c.benchmark_group("growth_gate");
    for (name, gate) in [
        ("every_event", GrowthGate::EveryEvent),
        ("once_per_arrival", GrowthGate::OncePerArrival),
        ("after_pool_filled", GrowthGate::AfterPoolFilled),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = SimConfig::non_interruptible_gated(1, gate, 1_500);
                black_box(Simulation::new(t.clone(), cfg).run().max_buffers())
            })
        });
    }
    g.finish();
}

/// Scheduling policies: bandwidth-centric vs the baselines.
fn ablate_selector(c: &mut Criterion) {
    let t = tree(4);
    let mut g = c.benchmark_group("selector");
    for (name, sel) in [
        ("bandwidth_centric", SelectorKind::BandwidthCentric),
        ("compute_centric", SelectorKind::ComputeCentric),
        ("round_robin", SelectorKind::RoundRobin),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = SimConfig::interruptible(3, 1_500);
                cfg.selector = sel;
                black_box(Simulation::new(t.clone(), cfg).run().end_time)
            })
        });
    }
    g.finish();
}

/// Latency observers: oracle vs measured.
fn ablate_observer(c: &mut Criterion) {
    let t = tree(5);
    let mut g = c.benchmark_group("observer");
    for (name, obs) in [
        ("oracle", ObserverKind::Oracle),
        ("last_sample", ObserverKind::LastSample { initial: 0 }),
        (
            "ema_1_4",
            ObserverKind::Ema {
                initial: 0,
                num: 1,
                den: 4,
            },
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = SimConfig::interruptible(3, 1_500);
                cfg.observer = obs;
                black_box(Simulation::new(t.clone(), cfg).run().end_time)
            })
        });
    }
    g.finish();
}

/// Event-queue implementations: binary-heap agenda vs sorted-vec agenda
/// under a preemption-heavy schedule/cancel/pop mix.
fn ablate_event_queue(c: &mut Criterion) {
    use bandwidth_centric::simcore::{Agenda, VecAgenda};
    let mut g = c.benchmark_group("event_queue");
    let script: Vec<(u64, bool)> = (0..2_000u64)
        .map(|i| (i * 7919 % 500, i % 3 == 0))
        .collect();
    g.bench_function("heap_agenda", |b| {
        b.iter(|| {
            let mut a = Agenda::new();
            let mut handles = Vec::new();
            for &(delay, cancel) in &script {
                let h = a.schedule(delay, delay);
                if cancel {
                    a.cancel(h);
                } else {
                    handles.push(h);
                }
                if delay % 5 == 0 {
                    black_box(a.next());
                }
            }
            while a.next().is_some() {}
            black_box(handles.len())
        })
    });
    g.bench_function("sorted_vec_agenda", |b| {
        b.iter(|| {
            let mut a = VecAgenda::new();
            let mut handles = Vec::new();
            for &(delay, cancel) in &script {
                let h = a.schedule(delay, delay);
                if cancel {
                    a.cancel(h);
                } else {
                    handles.push(h);
                }
                if delay % 5 == 0 {
                    black_box(a.next());
                }
            }
            while a.next().is_some() {}
            black_box(handles.len())
        })
    });
    g.finish();
}

/// Analytic solvers: Theorem 1 recursion vs the LP oracle (the reason
/// the closed form exists: orders of magnitude faster).
fn ablate_solvers(c: &mut Criterion) {
    let small = RandomTreeConfig {
        min_nodes: 10,
        max_nodes: 14,
        comm_min: 1,
        comm_max: 10,
        compute_scale: 50,
    }
    .generate(6);
    let mut g = c.benchmark_group("solver");
    g.bench_function("theorem1_recursion", |b| {
        b.iter(|| black_box(SteadyState::analyze(&small).optimal_rate()))
    });
    g.bench_function("lp_simplex_oracle", |b| {
        b.iter(|| black_box(lp_optimal_rate(&small)))
    });
    // The recursion also scales to paper-size trees where the LP cannot.
    let large = RandomTreeConfig::default().generate(7);
    g.bench_function("theorem1_recursion_paper_scale", |b| {
        b.iter(|| black_box(SteadyState::analyze(&large).optimal_rate()))
    });
    g.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablate_protocol, ablate_buffers, ablate_growth_gate,
              ablate_selector, ablate_observer, ablate_event_queue,
              ablate_solvers
);
criterion_main!(ablations);
