//! Microbenchmarks for the two-tier `Rational` representation.
//!
//! Each group pits the inline small-word fast path against a baseline that
//! forces every intermediate through the `BigInt`/`BigUint` machinery via
//! the public constructors — the arithmetic the pre-fast-path code
//! performed on every operation. The `bench_report` binary consumes these
//! numbers to document the measured speedup in `BENCH_rational.json`.

use bandwidth_centric::rational::{BigInt, BigUint, Rational};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Deterministic stream of word-sized rationals (LCG; no RNG dependency).
fn small_operands(n: usize) -> Vec<Rational> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let num = (state >> 16) as i64 % 10_000 - 5_000;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let den = (state >> 16) % 10_000 + 1;
            Rational::new(num as i128, den as i128)
        })
        .collect()
}

fn bigint_of(r: &Rational) -> (BigInt, BigUint) {
    (r.numer(), r.denom())
}

/// `a + b` computed the way the old always-bignum path did: cross
/// products, limb addition, full gcd reduction, all through heap limbs.
fn big_add(a: &Rational, b: &Rational) -> Rational {
    let (an, ad) = bigint_of(a);
    let (bn, bd) = bigint_of(b);
    let num = an
        .mul(&BigInt::from_sign_mag(
            bandwidth_centric::rational::Sign::Positive,
            bd.clone(),
        ))
        .add(&bn.mul(&BigInt::from_sign_mag(
            bandwidth_centric::rational::Sign::Positive,
            ad.clone(),
        )));
    Rational::from_parts(num, ad.mul(&bd))
}

fn big_mul(a: &Rational, b: &Rational) -> Rational {
    let (an, ad) = bigint_of(a);
    let (bn, bd) = bigint_of(b);
    Rational::from_parts(an.mul(&bn), ad.mul(&bd))
}

fn bench_add(c: &mut Criterion) {
    // Pairwise ops: every input and result is word-sized, the regime the
    // fast path exists for (an accumulating fold grows lcm-like
    // denominators and degrades both paths to bignum within a few terms).
    let xs = small_operands(256);
    let mut g = c.benchmark_group("rational_add");
    g.bench_function("small_path", |b| {
        b.iter(|| {
            for pair in xs.windows(2) {
                black_box(pair[0].add_ref(&pair[1]));
            }
        })
    });
    g.bench_function("bignum_baseline", |b| {
        b.iter(|| {
            for pair in xs.windows(2) {
                black_box(big_add(&pair[0], &pair[1]));
            }
        })
    });
    g.finish();
}

fn bench_mul(c: &mut Criterion) {
    let xs = small_operands(256);
    let mut g = c.benchmark_group("rational_mul");
    g.bench_function("small_path", |b| {
        b.iter(|| {
            for pair in xs.windows(2) {
                black_box(pair[0].mul_ref(&pair[1]));
            }
        })
    });
    g.bench_function("bignum_baseline", |b| {
        b.iter(|| {
            for pair in xs.windows(2) {
                black_box(big_mul(&pair[0], &pair[1]));
            }
        })
    });
    g.finish();
}

fn bench_fused(c: &mut Criterion) {
    // The simplex inner loop shape: cell -= factor * pivot.
    let xs = small_operands(128);
    let factor = Rational::new(7, 3);
    let mut g = c.benchmark_group("rational_sub_mul");
    g.bench_function("small_path", |b| {
        b.iter(|| {
            let mut row = xs.clone();
            for (cell, pv) in row.iter_mut().zip(xs.iter().rev()) {
                cell.sub_mul_assign_ref(&factor, pv);
            }
            black_box(row)
        })
    });
    g.bench_function("bignum_baseline", |b| {
        b.iter(|| {
            let mut row = xs.clone();
            for (cell, pv) in row.iter_mut().zip(xs.iter().rev()) {
                let prod = big_mul(&factor, pv);
                let (cn, cd) = bigint_of(cell);
                let (pn, pd) = bigint_of(&prod);
                let num = cn
                    .mul(&BigInt::from_sign_mag(
                        bandwidth_centric::rational::Sign::Positive,
                        pd.clone(),
                    ))
                    .sub(&pn.mul(&BigInt::from_sign_mag(
                        bandwidth_centric::rational::Sign::Positive,
                        cd.clone(),
                    )));
                *cell = Rational::from_parts(num, cd.mul(&pd));
            }
            black_box(row)
        })
    });
    g.finish();
}

fn bench_to_f64(c: &mut Criterion) {
    let xs = small_operands(256);
    let mut g = c.benchmark_group("rational_to_f64");
    g.bench_function("small_path", |b| {
        b.iter(|| {
            let mut s = 0.0f64;
            for x in &xs {
                s += x.to_f64();
            }
            black_box(s)
        })
    });
    g.finish();
}

criterion_group!(
    name = rational_ops;
    config = Criterion::default().sample_size(20);
    targets = bench_add, bench_mul, bench_fused, bench_to_f64
);
criterion_main!(rational_ops);
