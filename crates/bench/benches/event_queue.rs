//! Event-queue ablations for the campaign engine:
//!
//! * `event_key_heap` — the packed-key 4-ary heap against the
//!   `BinaryHeap<Reverse<(u64, u64, u32, u32)>>` it replaced, on the
//!   push/pop mix a simulation produces.
//! * `agenda_impl` — the production tombstone [`Agenda`] against the
//!   sorted-`Vec` [`VecAgenda`] baseline under interruptible-style
//!   schedule/cancel/pop churn.
//! * `workspace_reuse` — a full simulation run with a fresh allocation
//!   arena per run versus a reused [`SimWorkspace`].

use bandwidth_centric::prelude::*;
use bandwidth_centric::simcore::{Agenda, PackedEvent, QuadHeap, VecAgenda};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// Deterministic xorshift stream for workload generation.
fn keys(n: usize) -> Vec<(u64, u64, u32)> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100_000, i as u64, (state % 512) as u32)
        })
        .collect()
}

/// Push all keys, then interleave (pop, push, pop) to steady state, then
/// drain — the shape of a simulation's event population over time.
fn bench_heaps(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_key_heap");
    for n in [256usize, 4096] {
        let ks = keys(n);
        g.bench_with_input(BenchmarkId::new("quad_packed", n), &ks, |b, ks| {
            b.iter(|| {
                let mut h = QuadHeap::new();
                for &(t, s, sl) in ks {
                    h.push(PackedEvent::pack(t, s, sl));
                }
                let mut acc = 0u64;
                for &(t, s, sl) in ks {
                    acc ^= h.pop().unwrap().time();
                    h.push(PackedEvent::pack(t.wrapping_add(7), s, sl));
                }
                while let Some(e) = h.pop() {
                    acc ^= e.time();
                }
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("std_binary_tuple", n), &ks, |b, ks| {
            b.iter(|| {
                let mut h: BinaryHeap<Reverse<(u64, u64, u32, u32)>> = BinaryHeap::new();
                for &(t, s, sl) in ks {
                    h.push(Reverse((t, s, sl, 0)));
                }
                let mut acc = 0u64;
                for &(t, s, sl) in ks {
                    acc ^= h.pop().unwrap().0 .0;
                    h.push(Reverse((t.wrapping_add(7), s, sl, 0)));
                }
                while let Some(Reverse((t, ..))) = h.pop() {
                    acc ^= t;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// Interruptible-communication churn: schedule a wave, cancel most of it
/// (preemptions), pop the rest; repeat.
fn bench_agendas(c: &mut Criterion) {
    let mut g = c.benchmark_group("agenda_impl");
    for pending in [64usize, 512] {
        g.bench_with_input(
            BenchmarkId::new("tombstone_heap", pending),
            &pending,
            |b, &pending| {
                b.iter(|| {
                    let mut a: Agenda<u64> = Agenda::new();
                    let mut acc = 0u64;
                    for round in 0..50u64 {
                        let hs: Vec<_> =
                            (0..pending as u64).map(|i| a.schedule(10 + i, i)).collect();
                        for h in hs.iter().skip(1).step_by(2) {
                            acc ^= a.cancel(*h).unwrap_or(0);
                        }
                        for _ in 0..pending / 2 {
                            acc ^= a.next().map_or(0, |(t, _)| t) + round;
                        }
                    }
                    while let Some((t, _)) = a.next() {
                        acc ^= t;
                    }
                    black_box(acc)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("sorted_vec", pending),
            &pending,
            |b, &pending| {
                b.iter(|| {
                    let mut a: VecAgenda<u64> = VecAgenda::new();
                    let mut acc = 0u64;
                    for round in 0..50u64 {
                        let hs: Vec<_> =
                            (0..pending as u64).map(|i| a.schedule(10 + i, i)).collect();
                        for h in hs.iter().skip(1).step_by(2) {
                            acc ^= a.cancel(*h).unwrap_or(0);
                        }
                        for _ in 0..pending / 2 {
                            acc ^= a.next().map_or(0, |(t, _)| t) + round;
                        }
                    }
                    while let Some((t, _)) = a.next() {
                        acc ^= t;
                    }
                    black_box(acc)
                })
            },
        );
    }
    g.finish();
}

/// The two-tier ladder front-end under three delay profiles. The ladder
/// absorbs schedules landing within 1024 steps of the clock and the
/// 4-ary heap takes the rest, so the same insert/cancel/pop mix is run
/// near-only (ladder-dominated), tier-straddling (merge path hot), and
/// far-heavy (heap-dominated) — a regression in either tier or in the
/// front merge shows up in exactly one profile.
fn bench_agenda_monotonicity(c: &mut Criterion) {
    let profiles: [(&str, u64, u64); 3] = [
        ("near_monotone", 1, 64),
        ("tier_straddling", 1, 4096),
        ("far_heavy", 2048, 100_000),
    ];
    let mut g = c.benchmark_group("agenda_monotonicity");
    for (name, lo, hi) in profiles {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut a: Agenda<u64> = Agenda::new();
                let mut state = 0x243f_6a88_85a3_08d3u64;
                let mut rnd = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let mut handles = Vec::with_capacity(256);
                for i in 0..256u64 {
                    handles.push(a.schedule(lo + rnd() % (hi - lo + 1), i));
                }
                let mut acc = 0u64;
                for i in 0..20_000u64 {
                    let Some((t, v)) = a.next() else { break };
                    acc ^= t.wrapping_add(v);
                    handles.push(a.schedule(lo + rnd() % (hi - lo + 1), i));
                    if i % 3 == 0 {
                        handles.push(a.schedule(lo + rnd() % (hi - lo + 1), i));
                    }
                    if i % 5 == 0 {
                        // Cancel a pseudo-random outstanding handle (may
                        // already be popped; cancel is then a no-op).
                        let h = handles[rnd() as usize % handles.len()];
                        acc ^= a.cancel(h).unwrap_or(0);
                    }
                }
                while let Some((t, _)) = a.next() {
                    acc ^= t;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// End-to-end: fresh arenas every run vs one warm workspace.
fn bench_workspace_reuse(c: &mut Criterion) {
    let tree = RandomTreeConfig {
        min_nodes: 40,
        max_nodes: 120,
        comm_min: 1,
        comm_max: 60,
        compute_scale: 3_000,
    }
    .generate(3);
    let cfg = SimConfig::interruptible(3, 1_500);
    let mut g = c.benchmark_group("workspace_reuse");
    g.bench_function("fresh_per_run", |b| {
        b.iter(|| black_box(Simulation::new(tree.clone(), cfg.clone()).run().end_time))
    });
    g.bench_function("reused_workspace", |b| {
        let mut ws = SimWorkspace::new();
        b.iter(|| black_box(ws.run(tree.clone(), cfg.clone()).end_time))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_heaps,
    bench_agendas,
    bench_agenda_monotonicity,
    bench_workspace_reuse
);
criterion_main!(benches);
