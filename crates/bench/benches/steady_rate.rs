//! Theorem 1 bottom-up fold benchmarks at campaign scale. The fold's
//! accumulators (`Σ c_i/w_i`, `Σ 1/w_i`) now update in place; on shallow
//! trees every step is word arithmetic, and only deep trees whose weights
//! outgrow a word promote to the bignum tier.

use bandwidth_centric::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_analyze_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("steady_rate");
    for (name, cfg) in [
        (
            "shallow_64",
            RandomTreeConfig {
                min_nodes: 60,
                max_nodes: 64,
                comm_min: 1,
                comm_max: 20,
                compute_scale: 100,
            },
        ),
        ("paper_scale", RandomTreeConfig::default()),
    ] {
        let t = cfg.generate(7);
        g.bench_with_input(BenchmarkId::from_parameter(name), &t, |b, t| {
            b.iter(|| black_box(SteadyState::analyze(t).optimal_rate()))
        });
    }
    g.finish();
}

fn bench_population(c: &mut Criterion) {
    // A slice of the paper's tree population: analyze 20 trees back to
    // back, the inner loop of every campaign figure.
    let cfg = RandomTreeConfig {
        min_nodes: 20,
        max_nodes: 80,
        comm_min: 1,
        comm_max: 30,
        compute_scale: 500,
    };
    let trees: Vec<Tree> = (0..20).map(|s| cfg.generate(s)).collect();
    let mut g = c.benchmark_group("steady_rate_population");
    g.bench_function("analyze_20_trees", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for t in &trees {
                acc += SteadyState::analyze(t).optimal_rate().to_f64();
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    name = steady_rate;
    config = Criterion::default().sample_size(15);
    targets = bench_analyze_scaling, bench_population
);
criterion_main!(steady_rate);
