//! Simplex benchmarks: the LP oracle dominated by exact-rational pivot
//! sweeps. The in-place small-path arithmetic (split-borrow pivot rows,
//! fused `sub_mul_assign_ref`) is what this measures end to end.

use bandwidth_centric::lp::Problem;
use bandwidth_centric::prelude::*;
use bandwidth_centric::rational::Rational;
use bandwidth_centric::steady::lp_optimal_rate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A dense random LP with word-sized coefficients (the regime the small
/// tier accelerates).
fn dense_problem(vars: usize, cons: usize) -> Problem {
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 19) as i128 + 1
    };
    let mut p = Problem::new(vars);
    p.set_objective((0..vars).map(|_| Rational::from_integer(next())).collect());
    for _ in 0..cons {
        let row = (0..vars).map(|_| Rational::from_integer(next())).collect();
        p.add_constraint(row, Rational::from_integer(next() * 50));
    }
    p
}

fn bench_dense_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_pivot_dense");
    for (vars, cons) in [(8usize, 8usize), (16, 16), (24, 24)] {
        let p = dense_problem(vars, cons);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{vars}x{cons}")),
            &p,
            |b, p| b.iter(|| black_box(p.solve().expect("bounded feasible LP"))),
        );
    }
    g.finish();
}

fn bench_tree_oracle(c: &mut Criterion) {
    // The steady-state LP built from a tree — the campaign's oracle side.
    let mut g = c.benchmark_group("lp_tree_oracle");
    for nodes in [8usize, 12, 16] {
        let t = RandomTreeConfig {
            min_nodes: nodes,
            max_nodes: nodes + 2,
            comm_min: 1,
            comm_max: 10,
            compute_scale: 50,
        }
        .generate(42);
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &t, |b, t| {
            b.iter(|| black_box(lp_optimal_rate(t)))
        });
    }
    g.finish();
}

criterion_group!(
    name = lp_pivot;
    config = Criterion::default().sample_size(10);
    targets = bench_dense_simplex, bench_tree_oracle
);
criterion_main!(lp_pivot);
