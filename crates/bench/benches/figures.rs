//! One bench per figure of the paper's evaluation. Each runs a
//! miniaturized version of the experiment (the shape-preserving subset);
//! regenerating the full artifact is `cargo run -p bc-experiments --bin
//! figN`.

use bandwidth_centric::prelude::*;
use bc_bench::bench_campaign;
use bc_experiments::{fig3, fig4, fig5, fig6, fig7};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let campaign = bench_campaign(6, 600);
    c.bench_function("fig3_window_curves", |b| {
        b.iter(|| black_box(fig3::run(black_box(&campaign))))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let campaign = bench_campaign(4, 800);
    c.bench_function("fig4_variant_cdfs", |b| {
        b.iter(|| black_box(fig4::run(black_box(&campaign))))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let campaign = bench_campaign(2, 800);
    c.bench_function("fig5_ratio_classes", |b| {
        b.iter(|| black_box(fig5::run(black_box(&campaign))))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let campaign = bench_campaign(4, 800);
    c.bench_function("fig6_used_subtrees", |b| {
        b.iter(|| black_box(fig6::run(black_box(&campaign))))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_adaptability", |b| {
        b.iter(|| black_box(fig7::run(black_box(600), black_box(200))))
    });
}

/// The inner loop every figure rests on: one IC/FB=3 run of a mid-size
/// platform, in events per second.
fn bench_single_run(c: &mut Criterion) {
    let tree = RandomTreeConfig::default().generate(3);
    c.bench_function("single_run_ic3_2000_tasks", |b| {
        b.iter(|| {
            let r = Simulation::new(tree.clone(), SimConfig::interruptible(3, 2_000)).run();
            black_box(r.events_processed)
        })
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_fig7, bench_single_run
);
criterion_main!(figures);
