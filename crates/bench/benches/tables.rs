//! One bench per table of the paper's evaluation (miniaturized; see the
//! `table1`/`table2` binaries for the full artifacts).

use bc_bench::bench_campaign;
use bc_experiments::{table1, table2};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let campaign = bench_campaign(4, 800);
    c.bench_function("table1_buffer_thresholds", |b| {
        b.iter(|| black_box(table1::run(black_box(&campaign))))
    });
}

fn bench_table2(c: &mut Criterion) {
    let campaign = bench_campaign(2, 800);
    c.bench_function("table2_growth_by_ratio_class", |b| {
        b.iter(|| black_box(table2::run(black_box(&campaign))))
    });
}

criterion_group!(
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2
);
criterion_main!(tables);
