//! # bc-bench — shared configuration for the Criterion benchmarks
//!
//! Every table and figure of the paper has a bench target that runs a
//! scaled-down version of its experiment (small enough for Criterion's
//! repeated sampling, large enough to preserve each artifact's shape).
//! The ablation benches isolate design decisions called out in DESIGN.md.

use bc_experiments::campaign::CampaignConfig;
use bc_metrics::OnsetConfig;
use bc_platform::RandomTreeConfig;

/// A miniature campaign sized for repeated Criterion sampling.
pub fn bench_campaign(trees: usize, tasks: u64) -> CampaignConfig {
    CampaignConfig {
        trees,
        tasks,
        seed: 2003,
        tree_config: RandomTreeConfig {
            min_nodes: 10,
            max_nodes: 80,
            comm_min: 1,
            comm_max: 50,
            compute_scale: 2_000,
        },
        onset: OnsetConfig {
            window_threshold: 100,
            crossings: 2,
        },
    }
}
