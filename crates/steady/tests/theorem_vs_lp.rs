//! Property test: the Theorem 1 closed form and the LP oracle must agree
//! on randomly generated trees — the central correctness argument for the
//! analytic layer.

use bc_platform::{RandomTreeConfig, Tree};
use bc_rational::Rational;
use bc_steady::{lp_optimal_rate, solve_fork, ForkChild, SteadyState};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random single-level forks: closed form == LP.
    #[test]
    fn fork_matches_lp(
        w0 in 1u64..30,
        children in prop::collection::vec((1u64..15, 1u64..30), 0..6),
    ) {
        let mut tree = Tree::new(w0);
        for &(c, w) in &children {
            tree.add_child(bc_platform::NodeId::ROOT, c, w);
        }
        let fork_children: Vec<ForkChild> = children
            .iter()
            .map(|&(c, w)| ForkChild {
                comm: Rational::from_integer(c as i128),
                // For a single-level fork the child subtree weight is
                // max(c, w): the child cannot consume faster than it
                // receives even with the link to itself dedicated.
                weight: Rational::from_integer(c.max(w) as i128),
            })
            .collect();
        let sol = solve_fork(None, &Rational::from_integer(w0 as i128), &fork_children);
        prop_assert_eq!(sol.rate(), lp_optimal_rate(&tree));
    }

    /// Random multi-level trees: bottom-up recursion == LP.
    #[test]
    fn tree_matches_lp(seed in 0u64..10_000) {
        let cfg = RandomTreeConfig {
            min_nodes: 2,
            max_nodes: 14,
            comm_min: 1,
            comm_max: 12,
            compute_scale: 40,
        };
        let tree = cfg.generate(seed);
        let cf = SteadyState::analyze(&tree).optimal_rate();
        let lp = lp_optimal_rate(&tree);
        prop_assert_eq!(cf, lp);
    }

    /// Extreme ratio classes (very cheap or very expensive computation)
    /// must also agree.
    #[test]
    fn tree_matches_lp_extreme_ratios(seed in 0u64..2_000, fast in any::<bool>()) {
        let cfg = RandomTreeConfig {
            min_nodes: 2,
            max_nodes: 10,
            comm_min: 1,
            comm_max: if fast { 3 } else { 60 },
            compute_scale: if fast { 500 } else { 2 },
        };
        let tree = cfg.generate(seed);
        prop_assert_eq!(
            SteadyState::analyze(&tree).optimal_rate(),
            lp_optimal_rate(&tree)
        );
    }

    /// The total of the top-down allocation always equals the LP optimum —
    /// i.e. the allocation is not merely feasible but optimal.
    #[test]
    fn allocation_total_is_lp_optimal(seed in 0u64..3_000) {
        let cfg = RandomTreeConfig {
            min_nodes: 2,
            max_nodes: 10,
            comm_min: 1,
            comm_max: 10,
            compute_scale: 25,
        };
        let tree = cfg.generate(seed);
        let ss = SteadyState::analyze(&tree);
        prop_assert_eq!(ss.total_rate(), lp_optimal_rate(&tree));
    }
}
