//! Makespan bounds for finite applications.
//!
//! §2.1: *"we can create a schedule that can process a fixed number of
//! tasks within an additive constant of the optimal schedule"* — the
//! steady-state rate governs the makespan up to startup/wind-down terms.
//! These bounds sandwich any legal execution and are asserted against
//! every simulation in the test suite:
//!
//! * **lower bound** — `n` tasks cannot finish before `⌈n · w_tree⌉`
//!   (rate optimality), nor before the root's first task could possibly
//!   complete;
//! * **serial baseline** — the root alone computes everything in
//!   `n · w_0`. This is *not* an upper bound on protocol executions (a
//!   task delegated to a fast-link/slow-CPU child can finish after the
//!   serial schedule would have), but it is the number a deployment beats
//!   by distributing at all.

use crate::analysis::SteadyState;
use bc_platform::{NodeId, Tree};
use bc_rational::Rational;

/// The rate-based lower bound on completing `n` tasks: no schedule
/// finishes `n` tasks before this timestep.
pub fn makespan_lower_bound(tree: &Tree, n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let w_tree = SteadyState::analyze(tree).tree_weight().clone();
    let rate_bound = Rational::from_integer(n as i128)
        .mul_ref(&w_tree)
        .ceil()
        .to_i128()
        .expect("task counts and weights are machine-sized") as u64;
    // Nothing can complete before the fastest single task completes: the
    // minimum over nodes of (path communication + compute).
    let mut first_task = u64::MAX;
    for id in tree.ids() {
        let mut path = tree.compute_time(id);
        let mut cur = id;
        while let Some(p) = tree.parent(cur) {
            path += tree.comm_time(cur);
            cur = p;
        }
        first_task = first_task.min(path);
    }
    rate_bound.max(first_task)
}

/// The serial baseline: the repository alone computes all `n` tasks.
/// Distribution is worthwhile exactly when an execution beats this.
pub fn makespan_serial_bound(tree: &Tree, n: u64) -> u64 {
    n.saturating_mul(tree.compute_time(NodeId::ROOT))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_platform::examples::fig1_tree;

    #[test]
    fn zero_tasks() {
        assert_eq!(makespan_lower_bound(&fig1_tree(), 0), 0);
    }

    #[test]
    fn single_node_bounds_are_tight() {
        let t = Tree::new(7);
        assert_eq!(makespan_lower_bound(&t, 10), 70);
        assert_eq!(makespan_serial_bound(&t, 10), 70);
    }

    #[test]
    fn first_task_term_dominates_small_n() {
        // One task on the Fig 1 tree: the rate bound (⌈45/49⌉ = 1) is far
        // below the physical minimum of completing any single task.
        let t = fig1_tree();
        let lb = makespan_lower_bound(&t, 1);
        // Fastest single task: root computes one itself in w0 = 5? No —
        // P1 path: c=1 + w=3 = 4 < 5.
        assert_eq!(lb, 4);
    }

    #[test]
    fn rate_term_dominates_large_n() {
        let t = fig1_tree();
        // 980 · 45/49 = 900 exactly.
        assert_eq!(makespan_lower_bound(&t, 980), 900);
    }

    #[test]
    fn lower_bound_below_serial_bound() {
        let t = fig1_tree();
        for n in [1u64, 10, 100, 1000] {
            assert!(makespan_lower_bound(&t, n) <= makespan_serial_bound(&t, n));
        }
    }
}
