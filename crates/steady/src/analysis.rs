//! Bottom-up steady-state analysis of a whole tree, and the top-down
//! optimal rate allocation.
//!
//! ## Bottom-up weights
//!
//! Each subtree is reduced to an equivalent single node of weight
//! `w_subtree(i) = max(c_i, 1/(1/w_i + Σ 1/w_subtree(child) + ε/c))` —
//! the Theorem 1 recursion of §2.1. For the root there is no inflow term.
//!
//! Hand-worked example (the Fig 1 reconstruction; pinned by tests):
//!
//! ```text
//! leaves:  P2 = max(1,4) = 4     P3 = max(2,4) = 4
//!          P6 = max(1,4) = 4     P7 = max(1,4) = 4
//! P5: inner = 1/(1/6 + 1/4 + 1/4) = 3/2, w = max(6, 3/2) = 6
//! P4: inner = 1/(1/5 + 1/6) = 30/11,     w = max(3, 30/11) = 3
//! P1: inner = 1/(1/3 + 1/4 + 1/4) = 6/5, w = max(1, 6/5) = 6/5
//! P0: children sorted (P1: c=1 w=6/5, P4: c=3 w=3);
//!     c/w: 5/6 ≤ 1, +1 > 1 ⇒ p = 1, ε = 1/6
//!     w_tree = 1/(1/5 + 5/6 + (1/6)/3) = 45/49
//! ```
//!
//! ## Top-down allocation
//!
//! Walking down from the root, each node splits its inflow rate: itself
//! first (delegating to the local CPU costs no link time), then children
//! in bandwidth-priority order, each capped by its subtree rate and by the
//! remaining link budget. In the saturated regime this reproduces exactly
//! the theorem's allocation (first `p` children full, child `p+1` at
//! ε/c, the rest starved); in the inflow-bound regime it describes what
//! the bandwidth-centric protocol converges to.

use crate::fork::{solve_fork, ForkChild, ForkSolution};
use bc_platform::{NodeId, Tree};
use bc_rational::Rational;

/// Complete steady-state analysis of a tree.
#[derive(Clone, Debug)]
pub struct SteadyState {
    /// `w_subtree(i)` for every node, indexed by arena position.
    subtree_weights: Vec<Rational>,
    /// Per-node fork solutions (order, saturation, ε), for introspection.
    forks: Vec<ForkSolution>,
    /// Per-node optimal steady compute rates from the top-down allocation.
    node_rates: Vec<Rational>,
}

impl SteadyState {
    /// Analyzes `tree`: one bottom-up pass (weights) and one top-down pass
    /// (rates).
    pub fn analyze(tree: &Tree) -> SteadyState {
        let n = tree.len();
        let mut subtree_weights = vec![Rational::zero(); n];
        let mut forks: Vec<Option<ForkSolution>> = vec![None; n];

        for id in tree.postorder() {
            let children: Vec<ForkChild> = tree
                .children(id)
                .iter()
                .map(|&ch| ForkChild {
                    comm: Rational::from_integer(tree.comm_time(ch) as i128),
                    weight: subtree_weights[ch.index()].clone(),
                })
                .collect();
            let inflow =
                (id != NodeId::ROOT).then(|| Rational::from_integer(tree.comm_time(id) as i128));
            let own = Rational::from_integer(tree.compute_time(id) as i128);
            let sol = solve_fork(inflow.as_ref(), &own, &children);
            subtree_weights[id.index()] = sol.weight.clone();
            forks[id.index()] = Some(sol);
        }

        let forks: Vec<ForkSolution> = forks.into_iter().map(|f| f.expect("all visited")).collect();

        // Top-down allocation.
        let mut node_rates = vec![Rational::zero(); n];
        let root_rate = subtree_weights[0].recip();
        let mut stack: Vec<(NodeId, Rational)> = vec![(NodeId::ROOT, root_rate)];
        while let Some((id, inflow)) = stack.pop() {
            let own = Rational::from_integer(tree.compute_time(id) as i128);
            let self_rate = own.recip().min_ref(&inflow);
            // The budget accumulators update in place — word arithmetic
            // with no allocation while the rates stay in the small tier.
            let mut remaining = inflow;
            remaining.sub_assign_ref(&self_rate);
            node_rates[id.index()] = self_rate;
            let mut link_left = Rational::one();
            let children = tree.children(id);
            let fork = &forks[id.index()];
            for &ci in &fork.order {
                let ch = children[ci];
                if remaining.is_zero() || link_left.is_zero() {
                    stack.push((ch, Rational::zero()));
                    continue;
                }
                let c = Rational::from_integer(tree.comm_time(ch) as i128);
                let cap_subtree = subtree_weights[ch.index()].recip();
                let cap_link = link_left.div_ref(&c);
                let grant = cap_subtree.min_ref(&remaining).min_ref(&cap_link);
                remaining.sub_assign_ref(&grant);
                link_left.sub_mul_assign_ref(&grant, &c);
                stack.push((ch, grant));
            }
        }

        SteadyState {
            subtree_weights,
            forks,
            node_rates,
        }
    }

    /// `w_tree`: the computational weight of the whole tree.
    pub fn tree_weight(&self) -> &Rational {
        &self.subtree_weights[0]
    }

    /// The optimal steady-state task completion rate `R = 1 / w_tree`.
    pub fn optimal_rate(&self) -> Rational {
        self.subtree_weights[0].recip()
    }

    /// `w_subtree(id)`.
    pub fn subtree_weight(&self, id: NodeId) -> &Rational {
        &self.subtree_weights[id.index()]
    }

    /// The fork solution at `id` (bandwidth order, saturation count, ε).
    pub fn fork(&self, id: NodeId) -> &ForkSolution {
        &self.forks[id.index()]
    }

    /// The node's compute rate in the optimal steady state.
    pub fn node_rate(&self, id: NodeId) -> &Rational {
        &self.node_rates[id.index()]
    }

    /// Nodes with a nonzero optimal compute rate — the theory-side
    /// prediction of Fig 6's "used nodes".
    pub fn used_nodes(&self) -> Vec<bool> {
        self.node_rates.iter().map(|r| r.is_positive()).collect()
    }

    /// Σ node rates; equals [`Self::optimal_rate`] (asserted in tests —
    /// conservation of tasks).
    pub fn total_rate(&self) -> Rational {
        bc_rational::sum(self.node_rates.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_platform::examples::{fig1_p1, fig1_tree};
    use bc_platform::RandomTreeConfig;

    fn rq(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::new(4);
        let ss = SteadyState::analyze(&t);
        assert_eq!(*ss.tree_weight(), Rational::from_integer(4));
        assert_eq!(ss.optimal_rate(), rq(1, 4));
        assert_eq!(ss.total_rate(), rq(1, 4));
    }

    #[test]
    fn fig1_tree_weight_is_45_over_49() {
        let ss = SteadyState::analyze(&fig1_tree());
        assert_eq!(*ss.tree_weight(), rq(45, 49));
        assert_eq!(ss.optimal_rate(), rq(49, 45));
    }

    #[test]
    fn fig1_subtree_weights_match_hand_computation() {
        let t = fig1_tree();
        let ss = SteadyState::analyze(&t);
        // Arena order: P0, P1, P4, P2, P3, P5, P6, P7 (see fig1_tree()).
        assert_eq!(*ss.subtree_weight(NodeId(1)), rq(6, 5)); // P1
        assert_eq!(*ss.subtree_weight(NodeId(2)), rq(3, 1)); // P4
        assert_eq!(*ss.subtree_weight(NodeId(3)), rq(4, 1)); // P2
        assert_eq!(*ss.subtree_weight(NodeId(4)), rq(4, 1)); // P3
        assert_eq!(*ss.subtree_weight(NodeId(5)), rq(6, 1)); // P5
    }

    #[test]
    fn fig7_changed_platforms() {
        // §4.2.3: c1 1→3 and (separately) w1 3→1.
        let mut t = fig1_tree();
        t.set_comm_time(fig1_p1(), 3);
        assert_eq!(*SteadyState::analyze(&t).tree_weight(), rq(15, 8));

        let mut t = fig1_tree();
        t.set_compute_time(fig1_p1(), 1);
        assert_eq!(*SteadyState::analyze(&t).tree_weight(), rq(5, 6));
    }

    #[test]
    fn rates_conserve_tasks() {
        for seed in 0..30 {
            let cfg = RandomTreeConfig {
                min_nodes: 2,
                max_nodes: 40,
                comm_min: 1,
                comm_max: 20,
                compute_scale: 100,
            };
            let t = cfg.generate(seed);
            let ss = SteadyState::analyze(&t);
            assert_eq!(
                ss.total_rate(),
                ss.optimal_rate(),
                "seed {seed}: allocation must sum to the tree rate"
            );
        }
    }

    #[test]
    fn allocation_is_feasible() {
        for seed in 0..30 {
            let cfg = RandomTreeConfig {
                min_nodes: 2,
                max_nodes: 40,
                comm_min: 1,
                comm_max: 20,
                compute_scale: 100,
            };
            let t = cfg.generate(seed);
            let ss = SteadyState::analyze(&t);
            // Compute capacity: w_i * x_i ≤ 1.
            for id in t.ids() {
                let w = Rational::from_integer(t.compute_time(id) as i128);
                assert!(w.mul_ref(ss.node_rate(id)) <= Rational::one());
            }
            // Link capacity at every non-leaf: Σ c_child * inflow(child) ≤ 1,
            // where inflow(child) = Σ rates in child's subtree.
            let mut subtree_rate = vec![Rational::zero(); t.len()];
            for id in t.postorder() {
                let mut s = ss.node_rate(id).clone();
                for &ch in t.children(id) {
                    s.add_assign_ref(&subtree_rate[ch.index()]);
                }
                subtree_rate[id.index()] = s;
            }
            for id in t.ids() {
                let mut link = Rational::zero();
                for &ch in t.children(id) {
                    let c = Rational::from_integer(t.comm_time(ch) as i128);
                    link.add_assign_ref(&c.mul_ref(&subtree_rate[ch.index()]));
                }
                assert!(link <= Rational::one(), "seed {seed}: link overcommitted");
            }
        }
    }

    #[test]
    fn deep_chain_is_exact() {
        // A chain where every link is fast and every node slow: with k+1
        // nodes of weight w and links of weight 1, the rate is (k+1)/w
        // until the link saturates.
        let mut t = Tree::new(10);
        let mut cur = NodeId::ROOT;
        for _ in 0..4 {
            cur = t.add_child(cur, 1, 10);
        }
        let ss = SteadyState::analyze(&t);
        assert_eq!(ss.optimal_rate(), rq(5, 10));
    }

    #[test]
    fn deep_tree_big_denominators_survive() {
        // Depth ≈ 80 trees from the paper's population; the weights'
        // denominators exceed u128 here, which is why bc-rational exists.
        let cfg = RandomTreeConfig::default();
        for seed in [11, 23] {
            let t = cfg.generate(seed);
            let ss = SteadyState::analyze(&t);
            assert!(ss.optimal_rate().is_positive());
            let f = ss.optimal_rate().to_f64();
            assert!(f.is_finite() && f > 0.0);
        }
    }

    #[test]
    fn starved_subtree_has_zero_rates() {
        // Root saturates its link on the fast child; slow child's whole
        // subtree must be unused.
        let mut t = Tree::new(1_000_000);
        let _fast = t.add_child(NodeId::ROOT, 4, 4); // c/w = 1 saturates
        let slow = t.add_child(NodeId::ROOT, 9, 1);
        let slow_kid = t.add_child(slow, 1, 1);
        let ss = SteadyState::analyze(&t);
        assert!(ss.node_rate(slow).is_zero());
        assert!(ss.node_rate(slow_kid).is_zero());
        let used = ss.used_nodes();
        assert!(!used[slow.index()]);
        assert!(used[1]); // fast child used
    }
}
