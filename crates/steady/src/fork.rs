//! Theorem 1: the optimal steady-state weight of a single-level fork.

use bc_rational::Rational;

/// One child of a fork, reduced to its equivalent single-node form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForkChild {
    /// `c_i`: time to communicate one task to this child.
    pub comm: Rational,
    /// `w_i`: the (subtree-)computational weight of the child.
    pub weight: Rational,
}

/// Result of solving a fork with Theorem 1.
#[derive(Clone, Debug)]
pub struct ForkSolution {
    /// The fork's computational weight `w_tree` (time per task); the
    /// optimal steady-state rate is its reciprocal.
    pub weight: Rational,
    /// Indices into the *input* slice, sorted by increasing `comm` (ties
    /// by input position, making the solution deterministic).
    pub order: Vec<usize>,
    /// Number of fully-fed children: the first `saturated` entries of
    /// `order` run at their full subtree rate.
    pub saturated: usize,
    /// Leftover link fraction ε granted to child `order[saturated]`
    /// (zero when every child is fully fed).
    pub epsilon: Rational,
    /// True when the first term of the theorem's max (the inflow limit
    /// `c_0`) is what binds the fork.
    pub inflow_bound: bool,
}

impl ForkSolution {
    /// The steady-state task rate `1 / weight`.
    pub fn rate(&self) -> Rational {
        self.weight.recip()
    }

    /// The steady-state task rate delivered to input child `i`
    /// (its subtree consumption rate), in the link-saturated regime.
    ///
    /// Children beyond the partially-fed one receive zero — the theorem's
    /// starvation of slow-communicating children, "independent of their
    /// execution speeds".
    pub fn child_rate(&self, children: &[ForkChild], i: usize) -> Rational {
        let pos = self
            .order
            .iter()
            .position(|&x| x == i)
            .expect("child index out of range");
        if pos < self.saturated {
            children[i].weight.recip()
        } else if pos == self.saturated && !self.epsilon.is_zero() {
            self.epsilon.div_ref(&children[i].comm)
        } else {
            Rational::zero()
        }
    }
}

/// Solves Theorem 1 for a fork.
///
/// * `inflow_comm` — `c_0`, the time for the fork's root to receive one
///   task from *its* parent; `None` at the tree root (no inflow limit).
/// * `own_weight` — `w_0`, the root's own compute time per task.
/// * `children` — each child's `(c_i, w_i)`; `w_i` is a node weight for a
///   single-level fork or a subtree weight in the bottom-up recursion.
///
/// Steps, verbatim from the paper:
/// 1. sort children by increasing `c_i`;
/// 2. `p` = largest index with `Σ_{i≤p} c_i/w_i ≤ 1`, ε = remainder;
/// 3. `w_tree = max(c_0, 1 / (1/w_0 + Σ_{i≤p} 1/w_i + ε/c_{p+1}))`.
pub fn solve_fork(
    inflow_comm: Option<&Rational>,
    own_weight: &Rational,
    children: &[ForkChild],
) -> ForkSolution {
    assert!(own_weight.is_positive(), "w_0 must be positive");
    for ch in children {
        assert!(ch.comm.is_positive(), "child comm times must be positive");
        assert!(ch.weight.is_positive(), "child weights must be positive");
    }
    if let Some(c0) = inflow_comm {
        assert!(c0.is_positive(), "c_0 must be positive");
    }

    let mut order: Vec<usize> = (0..children.len()).collect();
    order.sort_by(|&a, &b| children[a].comm.cmp(&children[b].comm).then(a.cmp(&b)));

    // Largest prefix the link can keep fully busy: Σ c_i / w_i ≤ 1.
    // The accumulators update in place: on the small representation tier
    // each step is pure word arithmetic with no allocation.
    let one = Rational::one();
    let mut used = Rational::zero();
    let mut saturated = 0;
    for &i in &order {
        let mut next = children[i].comm.div_ref(&children[i].weight);
        next.add_assign_ref(&used);
        if next <= one {
            used = next;
            saturated += 1;
        } else {
            break;
        }
    }
    let epsilon = if saturated < order.len() {
        one.sub_ref(&used)
    } else {
        Rational::zero()
    };

    // Aggregate consumption rate: self + saturated children + the ε share.
    let mut rate = own_weight.recip();
    for &i in &order[..saturated] {
        rate.add_assign_ref(&children[i].weight.recip());
    }
    if saturated < order.len() && !epsilon.is_zero() {
        let next = &children[order[saturated]];
        rate.add_assign_ref(&epsilon.div_ref(&next.comm));
    }
    let inner = rate.recip();

    let (weight, inflow_bound) = match inflow_comm {
        Some(c0) if *c0 > inner => (c0.clone(), true),
        _ => (inner, false),
    };
    ForkSolution {
        weight,
        order,
        saturated,
        epsilon,
        inflow_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    fn rq(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn child(c: i128, w: i128) -> ForkChild {
        ForkChild {
            comm: r(c),
            weight: r(w),
        }
    }

    #[test]
    fn leaf_fork_is_own_weight() {
        let s = solve_fork(None, &r(7), &[]);
        assert_eq!(s.weight, r(7));
        assert!(!s.inflow_bound);
        assert_eq!(s.saturated, 0);
    }

    #[test]
    fn leaf_with_slow_inflow_is_inflow_bound() {
        let s = solve_fork(Some(&r(9)), &r(4), &[]);
        assert_eq!(s.weight, r(9));
        assert!(s.inflow_bound);
        let s = solve_fork(Some(&r(2)), &r(4), &[]);
        assert_eq!(s.weight, r(4));
        assert!(!s.inflow_bound);
    }

    #[test]
    fn all_children_fed_when_bandwidth_ample() {
        // Two fast links: c/w = 1/4 each, total 1/2 ≤ 1 ⇒ all saturated.
        let s = solve_fork(None, &r(4), &[child(1, 4), child(1, 4)]);
        assert_eq!(s.saturated, 2);
        assert_eq!(s.epsilon, Rational::zero());
        // Rate = 1/4 + 1/4 + 1/4 = 3/4 ⇒ weight 4/3.
        assert_eq!(s.weight, rq(4, 3));
    }

    #[test]
    fn slow_child_starves_regardless_of_speed() {
        // Child 0 saturates the link alone (c/w = 4/4 = 1); child 1 is an
        // infinitely attractive compute resource behind a slow link and
        // must starve.
        let s = solve_fork(None, &r(10), &[child(4, 4), child(5, 1)]);
        assert_eq!(s.saturated, 1);
        assert_eq!(s.epsilon, Rational::zero());
        let children = [child(4, 4), child(5, 1)];
        assert_eq!(s.child_rate(&children, 1), Rational::zero());
        assert_eq!(s.child_rate(&children, 0), rq(1, 4));
    }

    #[test]
    fn partial_feed_epsilon() {
        // Child 0: c/w = 1/2; leftover ε = 1/2 feeds child 1 at ε/c = 1/6.
        let children = [child(1, 2), child(3, 2)];
        let s = solve_fork(None, &r(5), &children);
        assert_eq!(s.saturated, 1);
        assert_eq!(s.epsilon, rq(1, 2));
        assert_eq!(s.child_rate(&children, 1), rq(1, 6));
        // Rate = 1/5 + 1/2 + 1/6 = 13/15 ⇒ weight 15/13.
        assert_eq!(s.weight, rq(15, 13));
    }

    #[test]
    fn priority_is_bandwidth_not_compute() {
        // The faster-computing child (w=1) has the slower link and must be
        // ordered last.
        let s = solve_fork(None, &r(9), &[child(7, 1), child(2, 9)]);
        assert_eq!(s.order, vec![1, 0]);
    }

    #[test]
    fn tie_broken_by_index() {
        let s = solve_fork(None, &r(9), &[child(3, 5), child(3, 5)]);
        assert_eq!(s.order, vec![0, 1]);
    }

    #[test]
    fn paper_example_fig1_root_numbers() {
        // Root of the Fig 1 reconstruction: w0 = 5, children
        // (c=1, w=6/5) and (c=3, w=3) ⇒ w_tree = 45/49 (hand-computed in
        // the module docs of bc_steady::tree).
        let children = [
            ForkChild {
                comm: r(1),
                weight: rq(6, 5),
            },
            ForkChild {
                comm: r(3),
                weight: r(3),
            },
        ];
        let s = solve_fork(None, &r(5), &children);
        assert_eq!(s.saturated, 1);
        assert_eq!(s.epsilon, rq(1, 6));
        assert_eq!(s.weight, rq(45, 49));
    }

    #[test]
    fn inflow_binds_over_inner_term() {
        let s = solve_fork(Some(&r(100)), &r(1), &[child(1, 1)]);
        assert_eq!(s.weight, r(100));
        assert!(s.inflow_bound);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_weight() {
        let _ = solve_fork(None, &Rational::zero(), &[]);
    }

    #[test]
    fn child_rate_sums_to_link_budget() {
        // Σ c_i * rate_i ≤ 1 with equality when a child starves or is
        // partially fed.
        let children = [child(2, 3), child(3, 4), child(4, 2)];
        let s = solve_fork(None, &r(6), &children);
        let mut link = Rational::zero();
        for i in 0..children.len() {
            link = link.add_ref(&children[i].comm.mul_ref(&s.child_rate(&children, i)));
        }
        assert!(link <= Rational::one());
        if s.saturated < children.len() {
            assert_eq!(link, Rational::one());
        }
    }
}
