//! Sensitivity analysis: how much each node (and each link) matters.
//!
//! For platform operators the interesting question after "what is the
//! optimal rate" is "which resource should I upgrade / can I afford to
//! lose". This module answers both with exact arithmetic:
//!
//! * [`node_criticality`] — the rate lost if a node's *subtree* is
//!   detached (the node leaves and takes its descendants with it, the
//!   failure mode of tree overlays);
//! * [`link_sensitivity`] — the rate gained if one edge's communication
//!   time improved to the best value seen in the platform (a targeted
//!   upgrade), and lost if it degraded by a factor (congestion).
//!
//! Both are exact recomputations over the mutated platform — O(n) tree
//! solves each, O(n²) total, fine for platform-sized inputs — rather
//! than derivative approximations, because the Theorem 1 optimum is
//! piecewise and non-smooth (children enter and leave the saturated set).

use crate::analysis::SteadyState;
use bc_platform::{NodeId, Tree};
use bc_rational::Rational;

/// Rebuilds `tree` without the subtree rooted at `removed`.
///
/// Panics if `removed` is the root (removing the repository removes the
/// application).
pub fn without_subtree(tree: &Tree, removed: NodeId) -> Tree {
    assert!(removed != NodeId::ROOT, "cannot remove the repository");
    // Collect the removed set.
    let mut gone = vec![false; tree.len()];
    let mut stack = vec![removed];
    while let Some(id) = stack.pop() {
        gone[id.index()] = true;
        stack.extend(tree.children(id).iter().copied());
    }
    // Rebuild in preorder, skipping the removed set.
    let mut out = Tree::new(tree.compute_time(NodeId::ROOT));
    let mut map = vec![None::<NodeId>; tree.len()];
    map[0] = Some(NodeId::ROOT);
    for id in tree.preorder() {
        if id == NodeId::ROOT || gone[id.index()] {
            continue;
        }
        let parent = tree.parent(id).expect("non-root has parent");
        let new_parent = map[parent.index()].expect("preorder maps parents first");
        map[id.index()] =
            Some(out.add_child(new_parent, tree.comm_time(id), tree.compute_time(id)));
    }
    out
}

/// One node's criticality entry.
#[derive(Clone, Debug)]
pub struct Criticality {
    /// The node whose subtree is detached.
    pub node: NodeId,
    /// Optimal rate of the platform without that subtree.
    pub rate_without: Rational,
    /// Absolute rate loss (`base − without`, ≥ 0).
    pub loss: Rational,
}

/// Ranks every non-root node by the exact rate lost when its subtree
/// detaches, most critical first (ties by node id).
pub fn node_criticality(tree: &Tree) -> Vec<Criticality> {
    let base = SteadyState::analyze(tree).optimal_rate();
    let mut out: Vec<Criticality> = tree
        .ids()
        .filter(|&id| id != NodeId::ROOT)
        .map(|id| {
            let rate_without = SteadyState::analyze(&without_subtree(tree, id)).optimal_rate();
            let loss = base.sub_ref(&rate_without);
            Criticality {
                node: id,
                rate_without,
                loss,
            }
        })
        .collect();
    out.sort_by(|a, b| b.loss.cmp(&a.loss).then(a.node.cmp(&b.node)));
    out
}

/// One link's sensitivity entry.
#[derive(Clone, Debug)]
pub struct LinkSensitivity {
    /// The child end of the link.
    pub node: NodeId,
    /// Rate if this link's `c` became `upgraded_c`.
    pub rate_upgraded: Rational,
    /// Rate if this link's `c` were multiplied by `degrade_factor`.
    pub rate_degraded: Rational,
}

/// For every link, the exact optimal rate under a targeted upgrade
/// (`c → upgraded_c`) and under congestion (`c → c × degrade_factor`).
pub fn link_sensitivity(tree: &Tree, upgraded_c: u64, degrade_factor: u64) -> Vec<LinkSensitivity> {
    assert!(upgraded_c >= 1 && degrade_factor >= 1);
    tree.ids()
        .filter(|&id| id != NodeId::ROOT)
        .map(|id| {
            let mut up = tree.clone();
            up.set_comm_time(id, upgraded_c);
            let mut down = tree.clone();
            down.set_comm_time(id, tree.comm_time(id).saturating_mul(degrade_factor).max(1));
            LinkSensitivity {
                node: id,
                rate_upgraded: SteadyState::analyze(&up).optimal_rate(),
                rate_degraded: SteadyState::analyze(&down).optimal_rate(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_platform::examples::fig1_tree;
    use bc_platform::RandomTreeConfig;

    #[test]
    fn removal_preserves_validity_and_counts() {
        let t = fig1_tree();
        // Remove P1 (and its two leaves): 8 → 5 nodes.
        let cut = without_subtree(&t, NodeId(1));
        cut.validate().unwrap();
        assert_eq!(cut.len(), 5);
        // Remove a leaf: 8 → 7.
        let leaf = t.ids().find(|&id| t.is_leaf(id)).unwrap();
        assert_eq!(without_subtree(&t, leaf).len(), 7);
    }

    #[test]
    #[should_panic(expected = "cannot remove the repository")]
    fn cannot_remove_root() {
        let _ = without_subtree(&fig1_tree(), NodeId::ROOT);
    }

    #[test]
    fn losing_a_starved_subtree_costs_nothing() {
        // Fast child saturates the link; the slow subtree contributes 0.
        let mut t = Tree::new(1_000_000);
        let _fast = t.add_child(NodeId::ROOT, 4, 4);
        let slow = t.add_child(NodeId::ROOT, 9, 1);
        t.add_child(slow, 1, 1);
        let ranks = node_criticality(&t);
        let slow_entry = ranks.iter().find(|c| c.node == slow).unwrap();
        assert!(slow_entry.loss.is_zero());
        // The fast child is the critical one.
        assert_eq!(ranks[0].node, NodeId(1));
        assert!(ranks[0].loss.is_positive());
    }

    #[test]
    fn criticality_losses_are_nonnegative_and_sorted() {
        let t = RandomTreeConfig {
            min_nodes: 8,
            max_nodes: 25,
            comm_min: 1,
            comm_max: 10,
            compute_scale: 60,
        }
        .generate(11);
        let ranks = node_criticality(&t);
        assert_eq!(ranks.len(), t.len() - 1);
        for c in &ranks {
            assert!(!c.loss.is_negative(), "{:?} negative loss", c.node);
        }
        assert!(ranks.windows(2).all(|w| w[0].loss >= w[1].loss));
    }

    #[test]
    fn fig1_most_critical_node_is_p1() {
        // P1's subtree carries the fast link and two leaves; detaching it
        // costs more than detaching anything under P4.
        let ranks = node_criticality(&fig1_tree());
        assert_eq!(ranks[0].node, NodeId(1));
    }

    #[test]
    fn link_sensitivity_brackets_the_base_rate() {
        let t = fig1_tree();
        let base = SteadyState::analyze(&t).optimal_rate();
        for ls in link_sensitivity(&t, 1, 4) {
            assert!(
                ls.rate_upgraded >= base,
                "{:?}: upgrade lowered the rate",
                ls.node
            );
            assert!(
                ls.rate_degraded <= base,
                "{:?}: congestion raised the rate",
                ls.node
            );
        }
    }

    #[test]
    fn fig1_p1_link_is_the_congestion_hotspot() {
        // Degrading c1 (the paper's own Fig 7 scenario) hurts more than
        // degrading any other single link by the same factor.
        let t = fig1_tree();
        let sens = link_sensitivity(&t, 1, 3);
        let worst = sens
            .iter()
            .min_by(|a, b| a.rate_degraded.cmp(&b.rate_degraded))
            .unwrap();
        assert_eq!(worst.node, NodeId(1));
    }
}
