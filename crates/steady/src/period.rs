//! The schedule-period bound the paper calls "impractically large".
//!
//! §2.2: *"The number of buffers can be bounded by the least common
//! multiple of all the node and edge weights of the entire tree. However,
//! this bound is very large in practice and can lead to prohibitive
//! startup and wind-down times."* This module computes that LCM so the
//! experiments can quote it next to the 3 buffers the IC protocol actually
//! needs.

use bc_platform::{NodeId, Tree};
use bc_rational::BigUint;

/// LCM of every node weight and every edge weight in the tree: an upper
/// bound on the steady-state period (and hence on the buffers needed by a
/// schedule built directly from Theorem 1).
pub fn period_bound(tree: &Tree) -> BigUint {
    let mut acc = BigUint::one();
    for (id, node) in tree.iter() {
        acc = acc.lcm(&BigUint::from_u64(node.compute_time));
        if id != NodeId::ROOT {
            acc = acc.lcm(&BigUint::from_u64(node.comm_time));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_platform::RandomTreeConfig;

    #[test]
    fn single_node() {
        let t = Tree::new(12);
        assert_eq!(period_bound(&t), BigUint::from_u64(12));
    }

    #[test]
    fn small_fork() {
        let mut t = Tree::new(4); // lcm so far 4
        t.add_child(NodeId::ROOT, 6, 10); // lcm(4,6,10) = 60
        assert_eq!(period_bound(&t), BigUint::from_u64(60));
    }

    #[test]
    fn bound_is_huge_on_paper_scale_trees() {
        // The point of the paper: this bound is astronomically larger than
        // the 3 buffers the IC protocol needs.
        let t = RandomTreeConfig::default().generate(1);
        let bound = period_bound(&t);
        assert!(
            bound.bit_len() > 64,
            "expected a >64-bit period bound, got {} bits",
            bound.bit_len()
        );
    }

    #[test]
    fn divisible_weights_collapse() {
        let mut t = Tree::new(8);
        t.add_child(NodeId::ROOT, 2, 4);
        t.add_child(NodeId::ROOT, 8, 2);
        assert_eq!(period_bound(&t), BigUint::from_u64(8));
    }
}
