//! # bc-steady — bandwidth-centric steady-state theory
//!
//! The analytic half of the paper: Theorem 1 (the optimal steady-state
//! weight of a fork), its bottom-up extension to whole trees, the
//! top-down optimal rate allocation, the LP oracle used to cross-check
//! both, and the LCM period bound that motivates autonomous protocols in
//! the first place.
//!
//! ```
//! use bc_platform::examples::fig1_tree;
//! use bc_rational::Rational;
//! use bc_steady::SteadyState;
//!
//! let ss = SteadyState::analyze(&fig1_tree());
//! assert_eq!(*ss.tree_weight(), Rational::new(45, 49));
//! assert_eq!(ss.optimal_rate(), Rational::new(49, 45));
//! ```

pub mod analysis;
pub mod fork;
pub mod makespan;
pub mod oracle;
pub mod period;
pub mod sensitivity;

pub use analysis::SteadyState;
pub use fork::{solve_fork, ForkChild, ForkSolution};
pub use makespan::{makespan_lower_bound, makespan_serial_bound};
pub use oracle::lp_optimal_rate;
pub use period::period_bound;
pub use sensitivity::{
    link_sensitivity, node_criticality, without_subtree, Criticality, LinkSensitivity,
};
