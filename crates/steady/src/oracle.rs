//! LP formulation of the steady-state scheduling problem — an independent
//! oracle for the Theorem 1 recursion.
//!
//! Variables: one compute rate `x_i` per node (tasks per timestep).
//! Constraints, from the base model of §2.1:
//!
//! * compute capacity: `w_i · x_i ≤ 1` for every node;
//! * outgoing-link capacity (single-port send): for every node `u`,
//!   `Σ_{v child of u} c_v · S_v ≤ 1`, where `S_v` is the total rate of
//!   subtree `v` (everything shipped to `v` is consumed inside `v`'s
//!   subtree at steady state);
//! * the per-child receive limit `c_v · S_v ≤ 1` is implied by the send
//!   constraint of the parent, all terms being nonnegative.
//!
//! Maximizing `Σ x_i` yields `1 / w_tree`. The property tests in this
//! crate assert agreement with [`crate::SteadyState`] on thousands of
//! random trees; disagreement in either direction would expose a bug in
//! the closed form or the simplex.

use bc_lp::Problem;
use bc_platform::Tree;
use bc_rational::Rational;

/// Computes the optimal steady-state rate of `tree` by LP. Exponentially
/// slower than [`crate::SteadyState::analyze`] in practice — intended for
/// verification on small trees, not for the experiment campaign.
pub fn lp_optimal_rate(tree: &Tree) -> Rational {
    let n = tree.len();
    let mut p = Problem::new(n);
    p.set_objective(vec![Rational::one(); n]);

    // Compute capacity rows.
    for (id, node) in tree.iter() {
        let mut row = vec![Rational::zero(); n];
        row[id.index()] = Rational::from_integer(node.compute_time as i128);
        p.add_constraint(row, Rational::one());
    }

    // Subtree membership: for the link rows we need, for each child v,
    // the set of nodes inside v's subtree. One DFS per child is O(n²)
    // worst case but n is small for oracle use.
    for (u, node) in tree.iter() {
        if node.children.is_empty() {
            continue;
        }
        let mut row = vec![Rational::zero(); n];
        for &v in &node.children {
            let c = Rational::from_integer(tree.comm_time(v) as i128);
            // Everything in v's subtree contributes c_v per task.
            let mut stack = vec![v];
            while let Some(x) = stack.pop() {
                row[x.index()] = c.clone();
                stack.extend(tree.children(x).iter().copied());
            }
        }
        let _ = u;
        p.add_constraint(row, Rational::one());
    }

    p.solve()
        .expect("steady-state LP is always bounded: every x_i has a capacity row")
        .objective
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SteadyState;
    use bc_platform::examples::fig1_tree;
    use bc_platform::{NodeId, RandomTreeConfig};

    #[test]
    fn lp_matches_closed_form_on_fig1() {
        let t = fig1_tree();
        assert_eq!(lp_optimal_rate(&t), SteadyState::analyze(&t).optimal_rate());
    }

    #[test]
    fn lp_matches_closed_form_on_small_random_trees() {
        let cfg = RandomTreeConfig {
            min_nodes: 2,
            max_nodes: 12,
            comm_min: 1,
            comm_max: 10,
            compute_scale: 30,
        };
        for seed in 0..60 {
            let t = cfg.generate(seed);
            let lp = lp_optimal_rate(&t);
            let cf = SteadyState::analyze(&t).optimal_rate();
            assert_eq!(lp, cf, "seed {seed}: LP {lp} vs closed form {cf}");
        }
    }

    #[test]
    fn lp_matches_on_pathological_shapes() {
        // Star with many children.
        let mut star = Tree::new(3);
        for i in 0..10 {
            star.add_child(NodeId::ROOT, 1 + i % 4, 2 + i % 5);
        }
        assert_eq!(
            lp_optimal_rate(&star),
            SteadyState::analyze(&star).optimal_rate()
        );

        // Deep chain.
        let mut chain = Tree::new(5);
        let mut cur = NodeId::ROOT;
        for i in 0..12 {
            cur = chain.add_child(cur, 1 + i % 3, 4 + i % 7);
        }
        assert_eq!(
            lp_optimal_rate(&chain),
            SteadyState::analyze(&chain).optimal_rate()
        );
    }

    #[test]
    fn lp_single_node() {
        let t = Tree::new(9);
        assert_eq!(lp_optimal_rate(&t), Rational::new(1, 9));
    }
}
