//! Tree-overlay construction over a general platform graph.
//!
//! The paper deliberately leaves "which tree should be imposed on the
//! physical network" to future work (§6): *"Some trees are bound to be
//! more effective than others. In future work we will perform analysis,
//! simulations, and real-world experiments to understand on what basis the
//! overlay network should be constructed."* This module implements that
//! exploration: three overlay builders over an undirected, edge-weighted
//! platform graph, compared by the steady-state weight of the resulting
//! tree in the `overlay` experiment.

use crate::tree::{NodeId, Tree};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// An undirected platform graph: vertices are compute resources, edges are
/// candidate network connections. Vertex 0 is the data repository.
#[derive(Clone, Debug)]
pub struct PlatformGraph {
    compute_times: Vec<u64>,
    /// `(u, v, c)` with `u != v`; parallel edges allowed (cheapest wins in
    /// the builders).
    edges: Vec<(usize, usize, u64)>,
    adjacency: Vec<Vec<(usize, u64)>>,
}

impl PlatformGraph {
    /// Creates a graph with the given per-vertex compute times and no edges.
    pub fn new(compute_times: Vec<u64>) -> Self {
        assert!(!compute_times.is_empty(), "graph needs >= 1 vertex");
        assert!(
            compute_times.iter().all(|&w| w >= 1),
            "compute times must be >= 1"
        );
        let n = compute_times.len();
        PlatformGraph {
            compute_times,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Adds an undirected edge with communication time `c`.
    pub fn add_edge(&mut self, u: usize, v: usize, c: u64) {
        assert!(u != v, "self edges are meaningless");
        assert!(u < self.len() && v < self.len(), "vertex out of range");
        assert!(c >= 1, "comm time must be >= 1");
        self.edges.push((u, v, c));
        self.adjacency[u].push((v, c));
        self.adjacency[v].push((u, c));
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.compute_times.len()
    }

    /// True if there are no vertices (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if every vertex can reach vertex 0.
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in &self.adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.len()
    }

    /// Generates a random connected platform graph: a random spanning tree
    /// plus `extra_edges` additional random links.
    pub fn random(
        n: usize,
        extra_edges: usize,
        comm_range: (u64, u64),
        compute_range: (u64, u64),
        seed: u64,
    ) -> Self {
        assert!(n >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let compute = (0..n)
            .map(|_| rng.random_range(compute_range.0..=compute_range.1))
            .collect();
        let mut g = PlatformGraph::new(compute);
        // Random spanning structure: connect each vertex i ≥ 1 to a
        // uniformly random earlier vertex.
        for i in 1..n {
            let j = rng.random_range(0..i);
            let c = rng.random_range(comm_range.0..=comm_range.1);
            g.add_edge(i, j, c);
        }
        for _ in 0..extra_edges {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v {
                let c = rng.random_range(comm_range.0..=comm_range.1);
                g.add_edge(u, v, c);
            }
        }
        g
    }

    fn orient(&self, parent_of: &[Option<(usize, u64)>]) -> Tree {
        // parent_of[v] = (parent vertex, edge cost); vertex 0 is the root.
        let mut tree = Tree::new(self.compute_times[0]);
        let mut id_of = vec![None::<NodeId>; self.len()];
        id_of[0] = Some(NodeId::ROOT);
        // Children may appear before parents in vertex order; iterate until
        // every vertex is placed.
        let mut placed = 1;
        while placed < self.len() {
            let before = placed;
            for v in 1..self.len() {
                if id_of[v].is_some() {
                    continue;
                }
                let (p, c) = parent_of[v].expect("disconnected vertex in overlay");
                if let Some(pid) = id_of[p] {
                    id_of[v] = Some(tree.add_child(pid, c, self.compute_times[v]));
                    placed += 1;
                }
            }
            assert!(placed > before, "parent_of contains a cycle");
        }
        tree
    }

    /// Breadth-first overlay from the repository: minimizes hop count,
    /// ignoring edge costs (ties broken by cheaper edge).
    pub fn bfs_overlay(&self) -> Tree {
        assert!(self.is_connected(), "graph must be connected");
        let mut parent_of: Vec<Option<(usize, u64)>> = vec![None; self.len()];
        let mut dist = vec![usize::MAX; self.len()];
        dist[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(u) = queue.pop_front() {
            for &(v, c) in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    parent_of[v] = Some((u, c));
                    queue.push_back(v);
                } else if dist[v] == dist[u] + 1 {
                    // Same BFS layer: keep the cheaper uplink.
                    if let Some((_, best)) = parent_of[v] {
                        if c < best {
                            parent_of[v] = Some((u, c));
                        }
                    }
                }
            }
        }
        self.orient(&parent_of)
    }

    /// Minimum-communication overlay: Prim's algorithm from the repository
    /// minimizing total edge cost — the "bandwidth-greedy" candidate.
    pub fn min_comm_overlay(&self) -> Tree {
        assert!(self.is_connected(), "graph must be connected");
        let n = self.len();
        let mut in_tree = vec![false; n];
        let mut best: Vec<Option<(usize, u64)>> = vec![None; n];
        let mut parent_of: Vec<Option<(usize, u64)>> = vec![None; n];
        in_tree[0] = true;
        for &(v, c) in &self.adjacency[0] {
            if best[v].is_none_or(|(_, bc)| c < bc) {
                best[v] = Some((0, c));
            }
        }
        for _ in 1..n {
            // Cheapest frontier vertex; ties by index for determinism.
            let u = (0..n)
                .filter(|&v| !in_tree[v] && best[v].is_some())
                .min_by_key(|&v| (best[v].unwrap().1, v))
                .expect("connected graph always has a frontier");
            in_tree[u] = true;
            parent_of[u] = best[u];
            for &(v, c) in &self.adjacency[u] {
                if !in_tree[v] && best[v].is_none_or(|(_, bc)| c < bc) {
                    best[v] = Some((u, c));
                }
            }
        }
        self.orient(&parent_of)
    }

    /// Random spanning overlay (the §4.1 generator's strategy applied to a
    /// constrained edge set): a baseline for how much overlay choice
    /// matters.
    pub fn random_overlay(&self, seed: u64) -> Tree {
        assert!(self.is_connected(), "graph must be connected");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut shuffled = self.edges.clone();
        shuffled.shuffle(&mut rng);
        let n = self.len();
        let mut uf: Vec<usize> = (0..n).collect();
        fn find(uf: &mut [usize], mut x: usize) -> usize {
            while uf[x] != x {
                uf[x] = uf[uf[x]];
                x = uf[x];
            }
            x
        }
        let mut adjacency: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let mut picked = 0;
        for (u, v, c) in shuffled {
            let (ru, rv) = (find(&mut uf, u), find(&mut uf, v));
            if ru != rv {
                uf[ru] = rv;
                adjacency[u].push((v, c));
                adjacency[v].push((u, c));
                picked += 1;
                if picked == n - 1 {
                    break;
                }
            }
        }
        // Orient by BFS from 0.
        let mut parent_of: Vec<Option<(usize, u64)>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(u) = queue.pop_front() {
            for &(v, c) in &adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent_of[v] = Some((u, c));
                    queue.push_back(v);
                }
            }
        }
        self.orient(&parent_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond: 0-1 cheap, 0-2 expensive, 1-3 cheap, 2-3 cheap.
    fn diamond() -> PlatformGraph {
        let mut g = PlatformGraph::new(vec![10, 10, 10, 10]);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 50);
        g.add_edge(1, 3, 2);
        g.add_edge(2, 3, 2);
        g
    }

    #[test]
    fn connectivity() {
        assert!(diamond().is_connected());
        let mut g = PlatformGraph::new(vec![1, 1, 1]);
        g.add_edge(0, 1, 1);
        assert!(!g.is_connected());
    }

    #[test]
    fn bfs_overlay_minimizes_hops() {
        let t = diamond().bfs_overlay();
        t.validate().unwrap();
        assert_eq!(t.len(), 4);
        // Vertices 1 and 2 are both depth 1; vertex 3 depth 2.
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn min_comm_overlay_avoids_expensive_edge() {
        let t = diamond().min_comm_overlay();
        t.validate().unwrap();
        // Total edge cost of Prim tree: 1 (0-1) + 2 (1-3) + 2 (3-2) = 5,
        // never using the 50-cost edge.
        let total: u64 = t.ids().map(|id| t.comm_time(id)).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn random_overlay_is_spanning_and_seeded() {
        let g = PlatformGraph::random(30, 40, (1, 20), (10, 100), 9);
        let a = g.random_overlay(5);
        let b = g.random_overlay(5);
        a.validate().unwrap();
        assert_eq!(a.len(), 30);
        assert_eq!(
            a.ids().map(|i| a.comm_time(i)).collect::<Vec<_>>(),
            b.ids().map(|i| b.comm_time(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_graph_is_connected() {
        for seed in 0..20 {
            let g = PlatformGraph::random(50, 25, (1, 100), (100, 10_000), seed);
            assert!(g.is_connected());
            assert_eq!(g.len(), 50);
        }
    }

    #[test]
    fn overlays_preserve_node_weights() {
        let g = PlatformGraph::random(20, 10, (1, 10), (5, 50), 3);
        for t in [g.bfs_overlay(), g.min_comm_overlay(), g.random_overlay(1)] {
            // The multiset of compute times must be preserved.
            let mut ws: Vec<u64> = t.ids().map(|i| t.compute_time(i)).collect();
            ws.sort_unstable();
            let mut expect: Vec<u64> = (0..20).map(|i| g.compute_times[i]).collect();
            expect.sort_unstable();
            assert_eq!(ws, expect);
        }
    }

    #[test]
    #[should_panic(expected = "must be connected")]
    fn overlay_on_disconnected_graph_panics() {
        let mut g = PlatformGraph::new(vec![1, 1, 1]);
        g.add_edge(0, 1, 1);
        let _ = g.bfs_overlay();
    }
}
