//! The tree platform model `T = (V, E, w, c)` of §2.1.
//!
//! Nodes are compute resources; the edge to a node's parent is its network
//! connection. `compute_time` (the paper's `w_i`) is the time to execute
//! one task on the node; `comm_time` (the paper's `c_i`) is the time to
//! move one task's data (input and returned output combined) across the
//! edge from the parent. Both are integer timesteps, matching the paper's
//! simulation parameters.

use serde::{object, DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Index of a node in a [`Tree`] arena. The root is always `NodeId(0)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

// Wire format: a `NodeId` is a bare JSON number (as the real serde derive
// produces for a newtype struct).
impl Serialize for NodeId {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for NodeId {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u32::from_value(v).map(NodeId)
    }
}

impl NodeId {
    /// The root node's id.
    pub const ROOT: NodeId = NodeId(0);

    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// One compute resource in the platform tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// Parent in the overlay; `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children, in id order (the protocol layer re-sorts by priority).
    pub children: Vec<NodeId>,
    /// `w_i`: timesteps to compute one task. Always ≥ 1.
    pub compute_time: u64,
    /// `c_i`: timesteps to transfer one task over the edge from the parent.
    /// Always ≥ 1 for non-root nodes; 0 for the root (no parent edge).
    pub comm_time: u64,
}

impl Serialize for Node {
    fn to_value(&self) -> Value {
        object(vec![
            ("parent", self.parent.to_value()),
            ("children", self.children.to_value()),
            ("compute_time", self.compute_time.to_value()),
            ("comm_time", self.comm_time.to_value()),
        ])
    }
}

impl Deserialize for Node {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Node {
            parent: serde::field(v, "parent")?,
            children: serde::field(v, "children")?,
            compute_time: serde::field(v, "compute_time")?,
            comm_time: serde::field(v, "comm_time")?,
        })
    }
}

/// A node-weighted, edge-weighted platform tree.
///
/// Invariants (checked by [`Tree::validate`], and preserved by every
/// mutator): node 0 is the root, each non-root node's parent has a smaller
/// arena position only by construction of the builders (not required),
/// parent/child links are mutually consistent, `compute_time ≥ 1`
/// everywhere, `comm_time ≥ 1` on non-root nodes.
#[derive(Clone, Debug)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Serialize for Tree {
    fn to_value(&self) -> Value {
        object(vec![("nodes", self.nodes.to_value())])
    }
}

impl Deserialize for Tree {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Tree {
            nodes: serde::field(v, "nodes")?,
        })
    }
}

/// Errors surfaced by [`Tree::validate`] (after deserializing untrusted
/// data, for instance).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    Empty,
    RootHasParent,
    MultipleRoots { second: NodeId },
    BadParentLink { node: NodeId },
    BadChildLink { node: NodeId, child: NodeId },
    ZeroComputeTime { node: NodeId },
    ZeroCommTime { node: NodeId },
    Cycle { node: NodeId },
    DanglingId { node: NodeId },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "tree has no nodes"),
            TreeError::RootHasParent => write!(f, "node 0 has a parent"),
            TreeError::MultipleRoots { second } => {
                write!(f, "{second} has no parent but is not node 0")
            }
            TreeError::BadParentLink { node } => {
                write!(f, "{node} is not listed among its parent's children")
            }
            TreeError::BadChildLink { node, child } => {
                write!(f, "{child} is a child of {node} but points elsewhere")
            }
            TreeError::ZeroComputeTime { node } => {
                write!(f, "{node} has compute_time 0")
            }
            TreeError::ZeroCommTime { node } => write!(f, "{node} has comm_time 0"),
            TreeError::Cycle { node } => write!(f, "{node} is part of a parent cycle"),
            TreeError::DanglingId { node } => write!(f, "{node} refers outside the arena"),
        }
    }
}

impl std::error::Error for TreeError {}

impl Tree {
    /// Creates a tree containing only a root with the given compute time.
    ///
    /// The root is the data repository: it both computes tasks and feeds
    /// its subtrees.
    pub fn new(root_compute_time: u64) -> Self {
        assert!(root_compute_time >= 1, "compute_time must be >= 1");
        Tree {
            nodes: vec![Node {
                parent: None,
                children: Vec::new(),
                compute_time: root_compute_time,
                comm_time: 0,
            }],
        }
    }

    /// Adds a child under `parent` with edge weight `comm_time` and node
    /// weight `compute_time`; returns its id.
    pub fn add_child(&mut self, parent: NodeId, comm_time: u64, compute_time: u64) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "unknown parent {parent}");
        assert!(comm_time >= 1, "comm_time must be >= 1");
        assert!(compute_time >= 1, "compute_time must be >= 1");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            parent: Some(parent),
            children: Vec::new(),
            compute_time,
            comm_time,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: a tree has at least its root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrows a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The root's compute time; `w_0`.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Iterates ids in arena order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates `(id, node)` pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Children of `id`.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Parent of `id` (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// True if `id` has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].children.is_empty()
    }

    /// `w_id`.
    pub fn compute_time(&self, id: NodeId) -> u64 {
        self.nodes[id.index()].compute_time
    }

    /// `c_id` (0 for the root).
    pub fn comm_time(&self, id: NodeId) -> u64 {
        self.nodes[id.index()].comm_time
    }

    /// Updates `w_id` (models processor contention changes, §4.2.3).
    pub fn set_compute_time(&mut self, id: NodeId, w: u64) {
        assert!(w >= 1, "compute_time must be >= 1");
        self.nodes[id.index()].compute_time = w;
    }

    /// Updates `c_id` (models communication contention changes, §4.2.3).
    /// Panics on the root, which has no parent edge.
    pub fn set_comm_time(&mut self, id: NodeId, c: u64) {
        assert!(id != NodeId::ROOT, "root has no parent edge");
        assert!(c >= 1, "comm_time must be >= 1");
        self.nodes[id.index()].comm_time = c;
    }

    /// Depth of a node (root = 0).
    pub fn node_depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.nodes[cur.index()].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum node depth in the tree (a path tree of n nodes has depth
    /// n−1; the paper's "depth" of a tree, Fig 6(b)).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        // Arena order is not guaranteed topological; walk via parents with
        // memoization instead.
        for id in self.ids() {
            let mut chain = Vec::new();
            let mut cur = id;
            while depth[cur.index()] == 0 && self.nodes[cur.index()].parent.is_some() {
                chain.push(cur);
                cur = self.nodes[cur.index()].parent.unwrap();
            }
            let mut d = depth[cur.index()];
            for &n in chain.iter().rev() {
                d += 1;
                depth[n.index()] = d;
            }
            max = max.max(depth[id.index()]);
        }
        max
    }

    /// Ids in post-order (every child before its parent). The root is last.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        // Iterative DFS with an explicit visit marker.
        let mut stack: Vec<(NodeId, bool)> = vec![(NodeId::ROOT, false)];
        while let Some((id, visited)) = stack.pop() {
            if visited {
                order.push(id);
            } else {
                stack.push((id, true));
                for &c in self.children(id).iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// Ids in pre-order (parent before children), root first.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![NodeId::ROOT];
        while let Some(id) = stack.pop() {
            order.push(id);
            for &c in self.children(id).iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Checks every structural invariant; intended after deserialization.
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.nodes.is_empty() {
            return Err(TreeError::Empty);
        }
        let n = self.nodes.len();
        let in_range = |id: NodeId| id.index() < n;
        if self.nodes[0].parent.is_some() {
            return Err(TreeError::RootHasParent);
        }
        for (id, node) in self.iter() {
            if node.compute_time == 0 {
                return Err(TreeError::ZeroComputeTime { node: id });
            }
            match node.parent {
                None => {
                    if id != NodeId::ROOT {
                        return Err(TreeError::MultipleRoots { second: id });
                    }
                }
                Some(p) => {
                    if !in_range(p) {
                        return Err(TreeError::DanglingId { node: id });
                    }
                    if node.comm_time == 0 {
                        return Err(TreeError::ZeroCommTime { node: id });
                    }
                    if !self.nodes[p.index()].children.contains(&id) {
                        return Err(TreeError::BadParentLink { node: id });
                    }
                }
            }
            for &c in &node.children {
                if !in_range(c) {
                    return Err(TreeError::DanglingId { node: id });
                }
                if self.nodes[c.index()].parent != Some(id) {
                    return Err(TreeError::BadChildLink { node: id, child: c });
                }
            }
        }
        // Reachability from the root doubles as the acyclicity check: with
        // consistent parent/child links, n reachable nodes ⇒ no cycle.
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::ROOT];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            count += 1;
            stack.extend(self.children(id).iter().copied());
        }
        if count != n {
            let node = (0..n).find(|&i| !seen[i]).map(|i| NodeId(i as u32));
            return Err(TreeError::Cycle {
                node: node.expect("count < n implies an unseen node"),
            });
        }
        Ok(())
    }

    /// Size and depth restricted to a subset of "used" nodes (Fig 6): the
    /// subtree induced by keeping every used node and its ancestors.
    pub fn used_subtree_stats(&self, used: &[bool]) -> UsedStats {
        assert_eq!(used.len(), self.nodes.len());
        let mut kept = vec![false; self.nodes.len()];
        for id in self.ids() {
            if used[id.index()] {
                let mut cur = Some(id);
                while let Some(c) = cur {
                    if kept[c.index()] {
                        break;
                    }
                    kept[c.index()] = true;
                    cur = self.parent(c);
                }
            }
        }
        let size = kept.iter().filter(|&&k| k).count();
        let depth = self
            .ids()
            .filter(|id| kept[id.index()])
            .map(|id| self.node_depth(id))
            .max()
            .unwrap_or(0);
        UsedStats { size, depth }
    }
}

/// Size/depth of the ancestor-closed hull of the used nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UsedStats {
    /// Number of nodes kept (used nodes plus the ancestors that relay to
    /// them).
    pub size: usize,
    /// Maximum depth among kept nodes.
    pub depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Tree {
        let mut t = Tree::new(10);
        let mut cur = NodeId::ROOT;
        for _ in 1..n {
            cur = t.add_child(cur, 2, 10);
        }
        t
    }

    #[test]
    fn build_and_query() {
        let mut t = Tree::new(7);
        let a = t.add_child(NodeId::ROOT, 1, 3);
        let b = t.add_child(NodeId::ROOT, 5, 2);
        let c = t.add_child(a, 2, 9);
        assert_eq!(t.len(), 4);
        assert_eq!(t.children(NodeId::ROOT), &[a, b]);
        assert_eq!(t.parent(c), Some(a));
        assert_eq!(t.parent(NodeId::ROOT), None);
        assert_eq!(t.compute_time(NodeId::ROOT), 7);
        assert_eq!(t.comm_time(b), 5);
        assert!(t.is_leaf(c));
        assert!(!t.is_leaf(a));
        assert_eq!(t.node_depth(c), 2);
        assert_eq!(t.depth(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::new(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.postorder(), vec![NodeId::ROOT]);
        t.validate().unwrap();
    }

    #[test]
    fn chain_depth() {
        let t = chain(50);
        assert_eq!(t.depth(), 49);
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn postorder_children_first() {
        let mut t = Tree::new(1);
        let a = t.add_child(NodeId::ROOT, 1, 1);
        let b = t.add_child(NodeId::ROOT, 1, 1);
        let c = t.add_child(a, 1, 1);
        let order = t.postorder();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(c) < pos(a));
        assert!(pos(a) < pos(NodeId::ROOT));
        assert!(pos(b) < pos(NodeId::ROOT));
        assert_eq!(order.len(), 4);
        assert_eq!(*order.last().unwrap(), NodeId::ROOT);
    }

    #[test]
    fn preorder_parent_first() {
        let mut t = Tree::new(1);
        let a = t.add_child(NodeId::ROOT, 1, 1);
        let c = t.add_child(a, 1, 1);
        let order = t.preorder();
        assert_eq!(order[0], NodeId::ROOT);
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(c));
    }

    #[test]
    fn mutation_for_adaptability() {
        let mut t = Tree::new(5);
        let a = t.add_child(NodeId::ROOT, 1, 3);
        t.set_comm_time(a, 3);
        t.set_compute_time(a, 1);
        assert_eq!(t.comm_time(a), 3);
        assert_eq!(t.compute_time(a), 1);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "root has no parent edge")]
    fn cannot_set_root_comm_time() {
        let mut t = Tree::new(5);
        t.set_comm_time(NodeId::ROOT, 3);
    }

    #[test]
    #[should_panic(expected = "comm_time must be >= 1")]
    fn zero_comm_time_rejected() {
        let mut t = Tree::new(5);
        t.add_child(NodeId::ROOT, 0, 3);
    }

    #[test]
    fn validate_catches_broken_links() {
        // Round-trip through JSON then corrupt the parent pointer.
        let mut t = Tree::new(5);
        let a = t.add_child(NodeId::ROOT, 1, 3);
        let _b = t.add_child(a, 1, 3);
        let json = serde_json::to_string(&t).unwrap();
        let corrupted = json.replace("\"parent\":0", "\"parent\":2");
        assert_ne!(json, corrupted, "fixture must actually change");
        let bad: Tree = serde_json::from_str(&corrupted).unwrap();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn used_subtree_includes_relay_ancestors() {
        // root - a - b, plus root - c. Only b used ⇒ hull {root, a, b}.
        let mut t = Tree::new(1);
        let a = t.add_child(NodeId::ROOT, 1, 1);
        let b = t.add_child(a, 1, 1);
        let _c = t.add_child(NodeId::ROOT, 1, 1);
        let mut used = vec![false; t.len()];
        used[b.index()] = true;
        let stats = t.used_subtree_stats(&used);
        assert_eq!(stats.size, 3);
        assert_eq!(stats.depth, 2);
    }

    #[test]
    fn used_subtree_none_used() {
        let t = chain(5);
        let stats = t.used_subtree_stats(&[false; 5]);
        assert_eq!(stats.size, 0);
        assert_eq!(stats.depth, 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Tree::new(7);
        let a = t.add_child(NodeId::ROOT, 1, 3);
        t.add_child(a, 4, 9);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tree = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.comm_time(a), 1);
    }
}
