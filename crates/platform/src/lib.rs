//! # bc-platform — the heterogeneous platform model
//!
//! The tree platform model of the paper (§2.1): nodes are compute
//! resources with per-task compute times `w_i`, edges carry per-task
//! communication times `c_i`. This crate provides:
//!
//! * [`tree::Tree`] — the arena-based platform tree with validation and
//!   runtime mutation (for the adaptability experiment of §4.2.3);
//! * [`generator::RandomTreeConfig`] — the exact §4.1 random-tree
//!   generator `(m, n, b, d, x)`;
//! * [`examples`] — the concrete trees of Figures 1 and 2;
//! * [`overlay`] — tree-overlay construction over general platform graphs
//!   (the paper's §6 future work);
//! * [`io`] — JSON and Graphviz DOT import/export.
//!
//! ```
//! use bc_platform::{RandomTreeConfig, Tree, NodeId};
//!
//! // A hand-built fork...
//! let mut tree = Tree::new(10);
//! let fast = tree.add_child(NodeId::ROOT, 1, 5);
//! tree.add_child(fast, 2, 7);
//! assert_eq!(tree.len(), 3);
//!
//! // ...and a paper-parameterized random tree.
//! let random = RandomTreeConfig::default().generate(42);
//! assert!(random.len() >= 10 && random.len() <= 500);
//! ```

pub mod examples;
pub mod generator;
pub mod io;
pub mod overlay;
pub mod tree;

pub use generator::RandomTreeConfig;
pub use overlay::PlatformGraph;
pub use tree::{Node, NodeId, Tree, TreeError, UsedStats};
