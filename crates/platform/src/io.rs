//! Import/export of platform trees (JSON via serde, Graphviz DOT for
//! inspection).

use crate::tree::{NodeId, Tree, TreeError};
use std::fmt::Write as _;

/// Serializes a tree to JSON.
pub fn to_json(tree: &Tree) -> String {
    serde_json::to_string(tree).expect("tree serialization is infallible")
}

/// Deserializes and validates a tree from JSON.
pub fn from_json(s: &str) -> Result<Tree, FromJsonError> {
    let tree: Tree = serde_json::from_str(s).map_err(FromJsonError::Parse)?;
    tree.validate().map_err(FromJsonError::Invalid)?;
    Ok(tree)
}

/// Errors from [`from_json`].
#[derive(Debug)]
pub enum FromJsonError {
    /// The text is not valid JSON for a tree.
    Parse(serde_json::Error),
    /// The JSON parsed but violates tree invariants.
    Invalid(TreeError),
}

impl std::fmt::Display for FromJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FromJsonError::Parse(e) => write!(f, "JSON parse error: {e}"),
            FromJsonError::Invalid(e) => write!(f, "invalid tree: {e}"),
        }
    }
}

impl std::error::Error for FromJsonError {}

/// Renders the tree in Graphviz DOT: node labels carry `w`, edge labels
/// carry `c`.
pub fn to_dot(tree: &Tree) -> String {
    let mut out = String::from("digraph platform {\n  rankdir=TB;\n");
    for (id, node) in tree.iter() {
        writeln!(
            out,
            "  {} [label=\"{} w={}\"];",
            id.0, id, node.compute_time
        )
        .unwrap();
    }
    for (id, node) in tree.iter() {
        if let Some(p) = node.parent {
            writeln!(
                out,
                "  {} -> {} [label=\"c={}\"];",
                p.0, id.0, node.comm_time
            )
            .unwrap();
        }
    }
    out.push_str("}\n");
    out
}

/// A compact single-line description, e.g. for logging:
/// `P0(w=5)[P1(c=1,w=3)[…], P4(c=3,w=5)[…]]`.
pub fn to_compact(tree: &Tree) -> String {
    fn rec(tree: &Tree, id: NodeId, out: &mut String) {
        if id == NodeId::ROOT {
            write!(out, "{}(w={})", id, tree.compute_time(id)).unwrap();
        } else {
            write!(
                out,
                "{}(c={},w={})",
                id,
                tree.comm_time(id),
                tree.compute_time(id)
            )
            .unwrap();
        }
        let children = tree.children(id);
        if !children.is_empty() {
            out.push('[');
            for (i, &c) in children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                rec(tree, c, out);
            }
            out.push(']');
        }
    }
    let mut out = String::new();
    rec(tree, NodeId::ROOT, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::fig1_tree;

    #[test]
    fn json_round_trip() {
        let t = fig1_tree();
        let json = to_json(&t);
        let back = from_json(&json).unwrap();
        assert_eq!(back.len(), t.len());
        for id in t.ids() {
            assert_eq!(back.comm_time(id), t.comm_time(id));
            assert_eq!(back.compute_time(id), t.compute_time(id));
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            from_json("not json"),
            Err(FromJsonError::Parse(_))
        ));
    }

    #[test]
    fn from_json_rejects_invalid_tree() {
        // Handcrafted: node 1 claims node 0 as parent, but node 0 lists no
        // children.
        let bad = r#"{"nodes":[
            {"parent":null,"children":[],"compute_time":5,"comm_time":0},
            {"parent":0,"children":[],"compute_time":5,"comm_time":2}
        ]}"#;
        assert!(matches!(from_json(bad), Err(FromJsonError::Invalid(_))));
    }

    #[test]
    fn dot_output_contains_all_nodes_and_edges() {
        let t = fig1_tree();
        let dot = to_dot(&t);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("->").count(), t.len() - 1);
        assert!(dot.contains("P1 w=3"));
        assert!(dot.contains("label=\"c=1\""));
    }

    #[test]
    fn compact_rendering() {
        let t = fig1_tree();
        let s = to_compact(&t);
        assert!(s.starts_with("P0(w=5)["));
        assert!(s.contains("P1(c=1,w=3)"));
    }
}
