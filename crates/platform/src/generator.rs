//! Random tree generation, §4.1 of the paper.
//!
//! > "Each tree is described by five parameters: m, n, b, d, x. Each tree
//! > has a random number of nodes between m and n. After creating the
//! > desired number of nodes, edges are chosen one by one to connect two
//! > randomly-chosen nodes, provided that adding the edge doesn't create a
//! > cycle. Each link has a random task communication time between b and d
//! > timesteps. Each node has a random task computation time between x/100
//! > and x timesteps. All random distributions are uniform."
//!
//! The resulting unrooted spanning structure is rooted at node 0 (the data
//! repository). With the paper's defaults (m=10, n=500, b=1, d=100,
//! x=10 000) the generated population averages ≈245 nodes with depths from
//! 2 into the 80s — matching the population statistics the paper reports.

use crate::tree::{NodeId, Tree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the §4.1 generator. Defaults are the paper's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomTreeConfig {
    /// Minimum node count (inclusive).
    pub min_nodes: usize,
    /// Maximum node count (inclusive).
    pub max_nodes: usize,
    /// Minimum link communication time (inclusive).
    pub comm_min: u64,
    /// Maximum link communication time (inclusive).
    pub comm_max: u64,
    /// Computation-time scale `x`: compute times are uniform in
    /// `[x/100, x]` (integer division, clamped to ≥ 1).
    pub compute_scale: u64,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        RandomTreeConfig {
            min_nodes: 10,
            max_nodes: 500,
            comm_min: 1,
            comm_max: 100,
            compute_scale: 10_000,
        }
    }
}

impl RandomTreeConfig {
    /// The paper's four computation-to-communication ratio classes (Fig 5,
    /// Table 2) differ only in `x`.
    pub fn with_compute_scale(self, x: u64) -> Self {
        RandomTreeConfig {
            compute_scale: x,
            ..self
        }
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_nodes == 0 {
            return Err("min_nodes must be >= 1".into());
        }
        if self.min_nodes > self.max_nodes {
            return Err("min_nodes > max_nodes".into());
        }
        if self.comm_min == 0 {
            return Err("comm_min must be >= 1".into());
        }
        if self.comm_min > self.comm_max {
            return Err("comm_min > comm_max".into());
        }
        if self.compute_scale == 0 {
            return Err("compute_scale must be >= 1".into());
        }
        Ok(())
    }

    /// Generates one tree from a seed. The same `(config, seed)` pair
    /// always yields the identical tree.
    pub fn generate(&self, seed: u64) -> Tree {
        self.validate().expect("invalid RandomTreeConfig");
        let mut rng = SmallRng::seed_from_u64(seed);
        self.generate_with(&mut rng)
    }

    /// Generates one tree from a caller-provided RNG.
    pub fn generate_with(&self, rng: &mut SmallRng) -> Tree {
        let n = rng.random_range(self.min_nodes..=self.max_nodes);
        // Random-edge spanning structure via union-find, exactly as §4.1.
        let mut uf = UnionFind::new(n);
        let mut adjacency: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let mut edges = 0;
        while edges < n - 1 {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v && uf.union(u, v) {
                let c = rng.random_range(self.comm_min..=self.comm_max);
                adjacency[u].push((v, c));
                adjacency[v].push((u, c));
                edges += 1;
            }
        }
        let compute = |rng: &mut SmallRng| {
            let lo = (self.compute_scale / 100).max(1);
            rng.random_range(lo..=self.compute_scale)
        };
        // Root at vertex 0 and orient by BFS. Node weights are drawn in
        // BFS order, which keeps generation deterministic per seed.
        let mut tree = Tree::new(compute(rng));
        let mut id_of = vec![None::<NodeId>; n];
        id_of[0] = Some(NodeId::ROOT);
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(u) = queue.pop_front() {
            let uid = id_of[u].expect("queued vertices are mapped");
            for &(v, c) in &adjacency[u] {
                if id_of[v].is_none() {
                    let w = compute(&mut *rng);
                    id_of[v] = Some(tree.add_child(uid, c, w));
                    queue.push_back(v);
                }
            }
        }
        debug_assert_eq!(tree.len(), n);
        tree
    }
}

/// Path-compressed, union-by-size disjoint sets.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Returns true if the sets were distinct (and are now merged).
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomTreeConfig::default();
        let a = cfg.generate(42);
        let b = cfg.generate(42);
        assert_eq!(a.len(), b.len());
        for id in a.ids() {
            assert_eq!(a.comm_time(id), b.comm_time(id));
            assert_eq!(a.compute_time(id), b.compute_time(id));
            assert_eq!(a.parent(id), b.parent(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomTreeConfig::default();
        let a = cfg.generate(1);
        let b = cfg.generate(2);
        // Overwhelmingly likely to differ in size; if not, in weights.
        let same = a.len() == b.len() && a.ids().all(|id| a.compute_time(id) == b.compute_time(id));
        assert!(!same);
    }

    #[test]
    fn respects_bounds() {
        let cfg = RandomTreeConfig {
            min_nodes: 5,
            max_nodes: 30,
            comm_min: 2,
            comm_max: 9,
            compute_scale: 400,
        };
        for seed in 0..50 {
            let t = cfg.generate(seed);
            assert!(t.len() >= 5 && t.len() <= 30, "len = {}", t.len());
            t.validate().unwrap();
            for id in t.ids() {
                if id != NodeId::ROOT {
                    let c = t.comm_time(id);
                    assert!((2..=9).contains(&c), "c = {c}");
                }
                let w = t.compute_time(id);
                assert!((4..=400).contains(&w), "w = {w}");
            }
        }
    }

    #[test]
    fn single_node_allowed() {
        let cfg = RandomTreeConfig {
            min_nodes: 1,
            max_nodes: 1,
            ..RandomTreeConfig::default()
        };
        let t = cfg.generate(7);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn compute_floor_clamped_to_one() {
        // x = 50 ⇒ x/100 = 0, which must clamp to 1.
        let cfg = RandomTreeConfig {
            min_nodes: 20,
            max_nodes: 20,
            compute_scale: 50,
            ..RandomTreeConfig::default()
        };
        let t = cfg.generate(3);
        for id in t.ids() {
            assert!(t.compute_time(id) >= 1);
        }
    }

    #[test]
    fn population_statistics_match_paper() {
        // §4.1: defaults yield trees averaging ≈245 nodes. Check the mean
        // over a modest sample is in a loose band around (10+500)/2 = 255;
        // the paper reports 245.
        let cfg = RandomTreeConfig::default();
        let sample = 200;
        let mean: f64 = (0..sample)
            .map(|s| cfg.generate(s).len() as f64)
            .sum::<f64>()
            / sample as f64;
        assert!(
            (200.0..310.0).contains(&mean),
            "mean size {mean} out of band"
        );
        // Depth range: paper reports 2..82. Verify we produce substantial
        // depth diversity.
        let depths: Vec<usize> = (0..sample).map(|s| cfg.generate(s).depth()).collect();
        let max = *depths.iter().max().unwrap();
        let min = *depths.iter().min().unwrap();
        assert!(min <= 10, "min depth {min}");
        assert!(max >= 30, "max depth {max}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = RandomTreeConfig {
            min_nodes: 0,
            ..RandomTreeConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = RandomTreeConfig {
            comm_min: 5,
            comm_max: 2,
            ..RandomTreeConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = RandomTreeConfig {
            min_nodes: 9,
            max_nodes: 3,
            ..RandomTreeConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
