//! The concrete trees that appear in the paper's figures.

use crate::tree::{NodeId, Tree};

/// The 8-node example platform of Figure 1(b), used by the adaptability
/// experiment (Fig 7).
///
/// The figure's label placement is partly ambiguous in the available text;
/// this reconstruction honors every stated fact: eight nodes P0..P7 spread
/// over three sites, P0 the repository with two subtrees, and — explicitly
/// given in §4.2.3 — node P1 has `c1 = 1` and `w1 = 3`.
///
/// Layout (edge label = c, node label = w):
///
/// ```text
///            P0 (w=5)
///        c=1 /     \ c=3
///     P1 (w=3)     P4 (w=5)
///   c=1 /  \ c=2      \ c=6
/// P2(w=4)  P3(w=4)    P5 (w=6)
///                    c=1 /  \ c=1
///                  P6(w=4)  P7(w=4)
/// ```
pub fn fig1_tree() -> Tree {
    let mut t = Tree::new(5); // P0
    let p1 = t.add_child(NodeId::ROOT, 1, 3); // P1: c=1, w=3 (stated in §4.2.3)
    let p4 = t.add_child(NodeId::ROOT, 3, 5); // P4
    let _p2 = t.add_child(p1, 1, 4); // P2
    let _p3 = t.add_child(p1, 2, 4); // P3
    let p5 = t.add_child(p4, 6, 6); // P5
    let _p6 = t.add_child(p5, 1, 4); // P6
    let _p7 = t.add_child(p5, 1, 4); // P7
    t
}

/// The id of node P1 in [`fig1_tree`] (the node perturbed in Fig 7).
pub fn fig1_p1() -> NodeId {
    NodeId(1)
}

/// Figure 2(a): the case study showing one buffer per node does not
/// suffice under non-interruptible communication.
///
/// Node A (root) takes 1 timestep to send to B (which computes a task in
/// 2) and 5 timesteps to send to C (which computes in 8). While A spends
/// 5 timesteps feeding C, B must drain ⌈5/2⌉ ≈ 3 buffered tasks to stay
/// busy — more than one buffer.
///
/// Weights follow the figure: edge A→B = 1, edge A→C = 5, w_B = 2,
/// w_C = 8. The root's own compute weight is set large (it is not the
/// object of the study).
pub fn fig2a_tree() -> Tree {
    let mut t = Tree::new(1_000_000); // A: effectively does not compute
    let _b = t.add_child(NodeId::ROOT, 1, 2); // B
    let _c = t.add_child(NodeId::ROOT, 5, 8); // C
    t
}

/// Node B of [`fig2a_tree`].
pub fn fig2a_b() -> NodeId {
    NodeId(1)
}

/// Node C of [`fig2a_tree`].
pub fn fig2a_c() -> NodeId {
    NodeId(2)
}

/// Figure 2(b): for every k there is a tree where some node needs more
/// than k buffers under non-interruptible communication.
///
/// Node A sends to B in 1 timestep; B computes in `x`; A sends to C in
/// `k*x + 1` timesteps (C computes in `k*x + 1` as well, following the
/// figure's "k buffers + 1 / k*x+1" annotations). While A feeds C, B needs
/// k+1 buffered tasks to stay busy.
pub fn fig2b_tree(k: u64, x: u64) -> Tree {
    assert!(k >= 1 && x >= 2, "fig 2(b) requires k >= 1, x > 1");
    let mut t = Tree::new(1_000_000); // A
    let _b = t.add_child(NodeId::ROOT, 1, x); // B
    let _c = t.add_child(NodeId::ROOT, k * x + 1, k * x + 1); // C
    t
}

/// Node B of [`fig2b_tree`].
pub fn fig2b_b() -> NodeId {
    NodeId(1)
}

/// Node C of [`fig2b_tree`].
pub fn fig2b_c() -> NodeId {
    NodeId(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matches_stated_facts() {
        let t = fig1_tree();
        assert_eq!(t.len(), 8);
        let p1 = fig1_p1();
        assert_eq!(t.comm_time(p1), 1);
        assert_eq!(t.compute_time(p1), 3);
        assert_eq!(t.children(NodeId::ROOT).len(), 2);
        t.validate().unwrap();
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn fig2a_shape() {
        let t = fig2a_tree();
        assert_eq!(t.len(), 3);
        assert_eq!(t.comm_time(fig2a_b()), 1);
        assert_eq!(t.compute_time(fig2a_b()), 2);
        assert_eq!(t.comm_time(fig2a_c()), 5);
        assert_eq!(t.compute_time(fig2a_c()), 8);
        t.validate().unwrap();
    }

    #[test]
    fn fig2b_parameterization() {
        for k in [1, 3, 7] {
            let x = 4;
            let t = fig2b_tree(k, x);
            assert_eq!(t.comm_time(fig2b_c()), k * x + 1);
            t.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn fig2b_rejects_degenerate_x() {
        let _ = fig2b_tree(2, 1);
    }
}
