//! Property tests for the platform layer: generator invariants, overlay
//! builders, serialization round trips, and tree-query consistency over
//! arbitrary inputs.

use bc_platform::{io, NodeId, PlatformGraph, RandomTreeConfig, Tree};
use proptest::prelude::*;

/// Strategy: an arbitrary valid tree built by attaching each node to a
/// uniformly chosen earlier node.
fn arb_tree() -> impl Strategy<Value = Tree> {
    (
        1u64..100,
        prop::collection::vec((any::<u32>(), 1u64..50, 1u64..200), 0..40),
    )
        .prop_map(|(root_w, nodes)| {
            let mut t = Tree::new(root_w);
            for (pick, c, w) in nodes {
                let parent = NodeId(pick % t.len() as u32);
                t.add_child(parent, c, w);
            }
            t
        })
}

proptest! {
    /// Builders only produce valid trees.
    #[test]
    fn built_trees_validate(t in arb_tree()) {
        prop_assert!(t.validate().is_ok());
    }

    /// JSON round trips exactly.
    #[test]
    fn json_round_trip(t in arb_tree()) {
        let back = io::from_json(&io::to_json(&t)).unwrap();
        prop_assert_eq!(back.len(), t.len());
        for id in t.ids() {
            prop_assert_eq!(back.parent(id), t.parent(id));
            prop_assert_eq!(back.comm_time(id), t.comm_time(id));
            prop_assert_eq!(back.compute_time(id), t.compute_time(id));
        }
    }

    /// Depth equals the longest root path computed independently.
    #[test]
    fn depth_matches_naive(t in arb_tree()) {
        let naive = t.ids().map(|id| t.node_depth(id)).max().unwrap();
        prop_assert_eq!(t.depth(), naive);
    }

    /// Pre/postorder are permutations with the defining order property.
    #[test]
    fn traversals_are_consistent(t in arb_tree()) {
        let pre = t.preorder();
        let post = t.postorder();
        prop_assert_eq!(pre.len(), t.len());
        prop_assert_eq!(post.len(), t.len());
        let pos_pre: std::collections::HashMap<_, _> =
            pre.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let pos_post: std::collections::HashMap<_, _> =
            post.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in t.ids() {
            if let Some(p) = t.parent(id) {
                prop_assert!(pos_pre[&p] < pos_pre[&id], "preorder violated");
                prop_assert!(pos_post[&id] < pos_post[&p], "postorder violated");
            }
        }
    }

    /// The §4.1 generator always respects its parameter envelope.
    #[test]
    fn generator_envelope(seed in any::<u64>(), m in 1usize..20, span in 0usize..60,
                          b in 1u64..20, d_extra in 0u64..50, x in 1u64..5_000) {
        let cfg = RandomTreeConfig {
            min_nodes: m,
            max_nodes: m + span,
            comm_min: b,
            comm_max: b + d_extra,
            compute_scale: x,
        };
        let t = cfg.generate(seed);
        prop_assert!(t.validate().is_ok());
        prop_assert!(t.len() >= m && t.len() <= m + span);
        for id in t.ids() {
            if id != NodeId::ROOT {
                let c = t.comm_time(id);
                prop_assert!(c >= b && c <= b + d_extra);
            }
            let w = t.compute_time(id);
            prop_assert!(w >= (x / 100).max(1) && w <= x);
        }
    }

    /// Used-subtree stats are monotone in the used set and bounded by the
    /// whole tree.
    #[test]
    fn used_stats_monotone(t in arb_tree(), bits in prop::collection::vec(any::<bool>(), 40)) {
        let mut used: Vec<bool> = (0..t.len()).map(|i| bits[i % bits.len()]) .collect();
        let small = t.used_subtree_stats(&used);
        // Add one more used node: the hull can only grow.
        if let Some(slot) = used.iter().position(|&u| !u) {
            used[slot] = true;
            let bigger = t.used_subtree_stats(&used);
            prop_assert!(bigger.size >= small.size);
            prop_assert!(bigger.depth >= small.depth);
        }
        prop_assert!(small.size <= t.len());
        prop_assert!(small.depth <= t.depth());
    }

    /// Every overlay strategy yields a valid spanning tree over the same
    /// vertex set, and min-comm's total link cost is minimal among them.
    #[test]
    fn overlays_span_and_min_comm_is_cheapest(
        n in 2usize..25, extra in 0usize..30, seed in any::<u64>(),
    ) {
        let g = PlatformGraph::random(n, extra, (1, 30), (5, 500), seed);
        let total_c = |t: &Tree| -> u64 { t.ids().map(|id| t.comm_time(id)).sum() };
        let bfs = g.bfs_overlay();
        let prim = g.min_comm_overlay();
        let rand = g.random_overlay(seed ^ 1);
        for t in [&bfs, &prim, &rand] {
            prop_assert!(t.validate().is_ok());
            prop_assert_eq!(t.len(), n);
        }
        prop_assert!(total_c(&prim) <= total_c(&bfs));
        prop_assert!(total_c(&prim) <= total_c(&rand));
        // BFS minimizes hops: its depth is minimal.
        prop_assert!(bfs.depth() <= prim.depth());
        prop_assert!(bfs.depth() <= rand.depth());
    }
}
