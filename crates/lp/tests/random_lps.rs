//! Property tests for the simplex solver on randomly generated capacity
//! LPs: the returned assignment must be feasible, and the objective must
//! match a brute-force vertex enumeration on tiny instances.

use bc_lp::{LpError, Problem};
use bc_rational::Rational;
use proptest::prelude::*;

fn ri(n: i128) -> Rational {
    Rational::from_integer(n)
}

fn dot(row: &[Rational], x: &[Rational]) -> Rational {
    row.iter()
        .zip(x)
        .fold(Rational::zero(), |acc, (a, b)| acc.add_ref(&a.mul_ref(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any solved LP's assignment satisfies its own constraints and
    /// nonnegativity, and achieves exactly the reported objective.
    #[test]
    fn solution_is_feasible_and_consistent(
        n in 1usize..5,
        obj in prop::collection::vec(0i128..10, 1..5),
        rows in prop::collection::vec((prop::collection::vec(0i128..10, 1..5), 1i128..20), 1..6),
    ) {
        let obj: Vec<i128> = obj.into_iter().cycle().take(n).collect();
        let mut p = Problem::new(n);
        p.set_objective(obj.iter().map(|&v| ri(v)).collect());
        let mut bounded = vec![false; n];
        let mut constraints = Vec::new();
        for (row, rhs) in &rows {
            let row: Vec<i128> = row.iter().copied().cycle().take(n).collect();
            for (j, &a) in row.iter().enumerate() {
                if a > 0 {
                    bounded[j] = true;
                }
            }
            let r: Vec<Rational> = row.iter().map(|&v| ri(v)).collect();
            p.add_constraint(r.clone(), ri(*rhs));
            constraints.push((r, ri(*rhs)));
        }
        // Guarantee boundedness so solve() must succeed.
        for (j, b) in bounded.iter().enumerate() {
            if !b && obj[j] > 0 {
                let mut row = vec![Rational::zero(); n];
                row[j] = ri(1);
                p.add_constraint(row.clone(), ri(1000));
                constraints.push((row, ri(1000)));
            }
        }
        let s = p.solve().unwrap();
        for x in &s.assignment {
            prop_assert!(!x.is_negative());
        }
        for (row, rhs) in &constraints {
            prop_assert!(dot(row, &s.assignment) <= *rhs);
        }
        let objective: Vec<Rational> = obj.iter().map(|&v| ri(v)).collect();
        prop_assert_eq!(dot(&objective, &s.assignment), s.objective);
    }

    /// On 2-variable problems, compare against brute-force enumeration of
    /// all candidate vertices (constraint pair intersections + axis cuts).
    #[test]
    fn two_var_matches_vertex_enumeration(
        c0 in 1i128..8, c1 in 1i128..8,
        rows in prop::collection::vec((0i128..6, 0i128..6, 1i128..15), 2..5),
    ) {
        // Ensure boundedness: add box constraints.
        let mut all_rows: Vec<(i128, i128, i128)> = rows.clone();
        all_rows.push((1, 0, 50));
        all_rows.push((0, 1, 50));

        let mut p = Problem::new(2);
        p.set_objective(vec![ri(c0), ri(c1)]);
        for &(a, b, rhs) in &all_rows {
            p.add_constraint(vec![ri(a), ri(b)], ri(rhs));
        }
        let s = p.solve().unwrap();

        // Brute force: candidate points are intersections of every pair of
        // constraint lines plus each line with each axis, plus the origin.
        let feasible = |x: &Rational, y: &Rational| {
            !x.is_negative()
                && !y.is_negative()
                && all_rows.iter().all(|&(a, b, rhs)| {
                    ri(a).mul_ref(x).add_ref(&ri(b).mul_ref(y)) <= ri(rhs)
                })
        };
        let mut best = Rational::zero(); // origin
        let mut consider = |x: Rational, y: Rational| {
            if feasible(&x, &y) {
                let v = ri(c0).mul_ref(&x).add_ref(&ri(c1).mul_ref(&y));
                if v > best {
                    best = v;
                }
            }
        };
        for i in 0..all_rows.len() {
            let (a1, b1, r1) = all_rows[i];
            // Axis intersections.
            if a1 != 0 {
                consider(Rational::new(r1, a1), Rational::zero());
            }
            if b1 != 0 {
                consider(Rational::zero(), Rational::new(r1, b1));
            }
            for &(a2, b2, r2) in &all_rows[i + 1..] {
                let det = a1 * b2 - a2 * b1;
                if det != 0 {
                    consider(
                        Rational::new(r1 * b2 - r2 * b1, det),
                        Rational::new(a1 * r2 - a2 * r1, det),
                    );
                }
            }
        }
        prop_assert_eq!(s.objective, best);
    }
}

#[test]
fn unbounded_when_variable_uncovered() {
    let mut p = Problem::new(3);
    p.set_objective(vec![ri(0), ri(0), ri(1)]);
    p.add_constraint(vec![ri(1), ri(1), ri(0)], ri(4));
    assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
}
