//! # bc-lp — exact linear programming over rationals
//!
//! A dense simplex solver with Bland's anti-cycling rule, computing over
//! [`bc_rational::Rational`] so results are exact.
//!
//! ## Why this exists
//!
//! Theorem 1 of the paper (the bandwidth-centric optimum) is implemented in
//! `bc-steady` as a closed-form bottom-up recursion. The steady-state rate
//! of a tree is *also* the optimum of a small linear program (per-node
//! compute-capacity constraints plus per-node outgoing-link-capacity
//! constraints). This crate provides that LP solver as an **independent
//! oracle**: property tests assert the closed form and the LP agree on
//! thousands of random trees, which is far stronger evidence of correctness
//! than unit tests of either implementation alone.
//!
//! ## Scope
//!
//! Problems of the form
//!
//! ```text
//! maximize   c · x
//! subject to A x ≤ b,   x ≥ 0,   b ≥ 0
//! ```
//!
//! All scheduling LPs in this workspace are capacity-style with nonnegative
//! right-hand sides, so the all-slack basis is feasible and no phase-1 is
//! needed. Constructing a problem with a negative right-hand side is
//! rejected at build time.
//!
//! ```
//! use bc_lp::Problem;
//! use bc_rational::Rational;
//!
//! // maximize x + y  s.t.  x ≤ 2, y ≤ 3, x + y ≤ 4
//! let r = |n| Rational::from_integer(n);
//! let mut p = Problem::new(2);
//! p.set_objective(vec![r(1), r(1)]);
//! p.add_constraint(vec![r(1), r(0)], r(2));
//! p.add_constraint(vec![r(0), r(1)], r(3));
//! p.add_constraint(vec![r(1), r(1)], r(4));
//! let sol = p.solve().unwrap();
//! assert_eq!(sol.objective, r(4));
//! ```

use bc_rational::Rational;

/// A linear program in the supported canonical form (see crate docs).
#[derive(Clone, Debug)]
pub struct Problem {
    num_vars: usize,
    objective: Vec<Rational>,
    rows: Vec<Vec<Rational>>,
    rhs: Vec<Rational>,
}

/// Solution of a [`Problem`].
#[derive(Clone, Debug)]
pub struct Solution {
    /// Optimal objective value.
    pub objective: Rational,
    /// Optimal assignment, one entry per original variable.
    pub assignment: Vec<Rational>,
    /// Number of simplex pivots performed.
    pub pivots: usize,
}

/// Errors from [`Problem::solve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is unbounded in the objective direction.
    Unbounded,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Unbounded => write!(f, "LP is unbounded"),
        }
    }
}

impl std::error::Error for LpError {}

impl Problem {
    /// Creates an empty problem over `num_vars` nonnegative variables with a
    /// zero objective.
    pub fn new(num_vars: usize) -> Self {
        Problem {
            num_vars,
            objective: vec![Rational::zero(); num_vars],
            rows: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets the maximization objective.
    pub fn set_objective(&mut self, coeffs: Vec<Rational>) {
        assert_eq!(
            coeffs.len(),
            self.num_vars,
            "objective length must equal num_vars"
        );
        self.objective = coeffs;
    }

    /// Adds `row · x ≤ rhs`. Panics if `rhs < 0` or the row length is wrong
    /// (programming errors, not data errors, in this workspace).
    pub fn add_constraint(&mut self, row: Vec<Rational>, rhs: Rational) {
        assert_eq!(row.len(), self.num_vars, "row length must equal num_vars");
        assert!(!rhs.is_negative(), "negative rhs is outside solver scope");
        self.rows.push(row);
        self.rhs.push(rhs);
    }

    /// Solves the program with Bland's rule. Exact; terminates on every
    /// input (Bland's rule excludes cycling).
    pub fn solve(&self) -> Result<Solution, LpError> {
        let n = self.num_vars;
        let m = self.rows.len();
        // Tableau layout: columns [0, n) original vars, [n, n+m) slacks,
        // column n+m the right-hand side. Row m is the objective row; we
        // maximize, so we pivot while some objective coefficient is positive.
        let width = n + m + 1;
        let mut t: Vec<Vec<Rational>> = Vec::with_capacity(m + 1);
        for i in 0..m {
            let mut row = Vec::with_capacity(width);
            row.extend(self.rows[i].iter().cloned());
            for j in 0..m {
                row.push(if i == j {
                    Rational::one()
                } else {
                    Rational::zero()
                });
            }
            row.push(self.rhs[i].clone());
            t.push(row);
        }
        let mut obj_row = Vec::with_capacity(width);
        obj_row.extend(self.objective.iter().cloned());
        obj_row.resize(width, Rational::zero());
        t.push(obj_row);

        // basis[i] = tableau column currently basic in row i.
        let mut basis: Vec<usize> = (n..n + m).collect();
        let mut pivots = 0usize;

        // Bland: entering column = lowest index with positive
        // objective-row coefficient; stop when none remains.
        while let Some(enter) = (0..n + m).find(|&j| t[m][j].is_positive()) {
            // Ratio test: min rhs_i / a_{i,enter} over positive pivots,
            // ties broken by lowest basis variable index (Bland).
            let mut leave: Option<usize> = None;
            let mut best: Option<Rational> = None;
            for i in 0..m {
                if t[i][enter].is_positive() {
                    let ratio = t[i][width - 1].div_ref(&t[i][enter]);
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            ratio < *b
                                || (ratio == *b
                                    && basis[i] < basis[leave.expect("best implies leave")])
                        }
                    };
                    if better {
                        best = Some(ratio);
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(LpError::Unbounded);
            };

            // Pivot on (leave, enter). All updates run in place on the
            // tableau cells; the pivot row is read through a split
            // borrow rather than cloned per target row.
            pivots += 1;
            let piv = t[leave][enter].clone();
            for v in t[leave].iter_mut() {
                v.div_assign_ref(&piv);
            }
            for i in 0..=m {
                if i == leave || t[i][enter].is_zero() {
                    continue;
                }
                let (row_i, pivot_row) = if i < leave {
                    let (lo, hi) = t.split_at_mut(leave);
                    (&mut lo[i], &hi[0])
                } else {
                    let (lo, hi) = t.split_at_mut(i);
                    (&mut hi[0], &lo[leave])
                };
                // Only the scalar multiplier is copied; after the sweep
                // row_i[enter] = factor − factor·1 = 0 as required.
                let factor = row_i[enter].clone();
                for (cell, pv) in row_i.iter_mut().zip(pivot_row.iter()) {
                    cell.sub_mul_assign_ref(&factor, pv);
                }
            }
            basis[leave] = enter;
        }

        let mut assignment = vec![Rational::zero(); n];
        for i in 0..m {
            if basis[i] < n {
                assignment[basis[i]] = t[i][width - 1].clone();
            }
        }
        // Objective row now holds -(optimal value) in the rhs cell.
        let objective = t[m][width - 1].neg_ref();
        Ok(Solution {
            objective,
            assignment,
            pivots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn ri(n: i128) -> Rational {
        Rational::from_integer(n)
    }

    #[test]
    fn trivial_single_variable() {
        // maximize x s.t. 2x ≤ 6
        let mut p = Problem::new(1);
        p.set_objective(vec![ri(1)]);
        p.add_constraint(vec![ri(2)], ri(6));
        let s = p.solve().unwrap();
        assert_eq!(s.objective, ri(3));
        assert_eq!(s.assignment, vec![ri(3)]);
    }

    #[test]
    fn textbook_two_variables() {
        // maximize 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36 at (2,6)
        let mut p = Problem::new(2);
        p.set_objective(vec![ri(3), ri(5)]);
        p.add_constraint(vec![ri(1), ri(0)], ri(4));
        p.add_constraint(vec![ri(0), ri(2)], ri(12));
        p.add_constraint(vec![ri(3), ri(2)], ri(18));
        let s = p.solve().unwrap();
        assert_eq!(s.objective, ri(36));
        assert_eq!(s.assignment, vec![ri(2), ri(6)]);
    }

    #[test]
    fn fractional_optimum() {
        // maximize x + y s.t. 2x + y ≤ 2, x + 2y ≤ 2 → 4/3 at (2/3, 2/3)
        let mut p = Problem::new(2);
        p.set_objective(vec![ri(1), ri(1)]);
        p.add_constraint(vec![ri(2), ri(1)], ri(2));
        p.add_constraint(vec![ri(1), ri(2)], ri(2));
        let s = p.solve().unwrap();
        assert_eq!(s.objective, r(4, 3));
        assert_eq!(s.assignment, vec![r(2, 3), r(2, 3)]);
    }

    #[test]
    fn unbounded_detected() {
        // maximize x with no binding constraint on x.
        let mut p = Problem::new(2);
        p.set_objective(vec![ri(1), ri(0)]);
        p.add_constraint(vec![ri(0), ri(1)], ri(5));
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn zero_objective_solves_to_zero() {
        let mut p = Problem::new(2);
        p.add_constraint(vec![ri(1), ri(1)], ri(10));
        let s = p.solve().unwrap();
        assert_eq!(s.objective, ri(0));
        assert_eq!(s.pivots, 0);
    }

    #[test]
    fn no_constraints_zero_objective_ok() {
        let p = Problem::new(3);
        let s = p.solve().unwrap();
        assert_eq!(s.objective, ri(0));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy trigger (Beale-like); Bland must terminate.
        let mut p = Problem::new(4);
        p.set_objective(vec![r(3, 4), ri(-150), r(1, 50), ri(-6)]);
        p.add_constraint(vec![r(1, 4), ri(-60), r(-1, 25), ri(9)], ri(0));
        p.add_constraint(vec![r(1, 2), ri(-90), r(-1, 50), ri(3)], ri(0));
        p.add_constraint(vec![ri(0), ri(0), ri(1), ri(0)], ri(1));
        let s = p.solve().unwrap();
        assert_eq!(s.objective, r(1, 20));
    }

    #[test]
    fn fork_lp_prefers_fast_link() {
        // A single-level fork: root w0=5 plus children (c=2, subtree w=2)
        // and (c=5, subtree w=8). Variables: x0, x1, x2 compute rates.
        // max x0+x1+x2 s.t. 5x0 ≤ 1, 2x1 ≤ 1, 8x2 ≤ 1, 2x1 + 5x2 ≤ 1.
        // Feeding the fast link fully (x1 = 1/2) dominates any mix that
        // feeds the slow child: 1/5 + 1/2 = 7/10.
        let mut p = Problem::new(3);
        p.set_objective(vec![ri(1), ri(1), ri(1)]);
        p.add_constraint(vec![ri(5), ri(0), ri(0)], ri(1));
        p.add_constraint(vec![ri(0), ri(2), ri(0)], ri(1));
        p.add_constraint(vec![ri(0), ri(0), ri(8)], ri(1));
        p.add_constraint(vec![ri(0), ri(2), ri(5)], ri(1));
        let s = p.solve().unwrap();
        assert_eq!(s.objective, r(7, 10));
    }

    #[test]
    #[should_panic(expected = "negative rhs")]
    fn negative_rhs_rejected() {
        let mut p = Problem::new(1);
        p.add_constraint(vec![ri(1)], ri(-1));
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn wrong_row_length_rejected() {
        let mut p = Problem::new(2);
        p.add_constraint(vec![ri(1)], ri(1));
    }

    #[test]
    fn assignment_is_feasible() {
        let mut p = Problem::new(3);
        p.set_objective(vec![ri(2), ri(3), ri(1)]);
        p.add_constraint(vec![ri(1), ri(1), ri(1)], ri(10));
        p.add_constraint(vec![ri(2), ri(1), ri(0)], ri(8));
        p.add_constraint(vec![ri(0), ri(1), ri(3)], ri(9));
        let s = p.solve().unwrap();
        let dot = |row: &[Rational]| {
            row.iter()
                .zip(&s.assignment)
                .fold(Rational::zero(), |acc, (a, x)| acc.add_ref(&a.mul_ref(x)))
        };
        assert!(dot(&[ri(1), ri(1), ri(1)]) <= ri(10));
        assert!(dot(&[ri(2), ri(1), ri(0)]) <= ri(8));
        assert!(dot(&[ri(0), ri(1), ri(3)]) <= ri(9));
    }
}
