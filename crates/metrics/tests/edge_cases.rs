//! Edge cases of the §4.1 measurement pipeline: degenerate inputs that
//! campaign code can legitimately produce (empty runs, one-task runs,
//! runs whose every window ties the optimum exactly).

use bc_metrics::{
    detect_onset, normalized_curve, onset_cdf, reached_optimal, window_rates, OnsetConfig,
};
use bc_rational::Rational;

#[test]
fn onset_cdf_of_no_runs_is_zero_everywhere() {
    // The `max(1)` divisor guard must yield 0.0 fractions, not NaN.
    let curve = onset_cdf(&[], &[0, 100, u64::MAX]);
    assert_eq!(curve, vec![(0, 0.0), (100, 0.0), (u64::MAX, 0.0)]);
    for (_, f) in curve {
        assert!(f == 0.0 && !f.is_nan());
    }
}

#[test]
fn onset_cdf_of_no_probes_is_empty() {
    assert!(onset_cdf(&[Some(400), None], &[]).is_empty());
}

#[test]
fn onset_cdf_of_all_unreached_runs_stays_zero() {
    let curve = onset_cdf(&[None, None, None], &[500, 5_000]);
    assert_eq!(curve, vec![(500, 0.0), (5_000, 0.0)]);
}

#[test]
fn window_rates_need_two_completions() {
    assert!(window_rates(&[]).is_empty());
    assert!(window_rates(&[42]).is_empty());
    // Two completions give exactly the x = 1 window [t_1, t_2].
    let rates = window_rates(&[10, 25]);
    assert_eq!(rates.len(), 1);
    assert_eq!((rates[0].window, rates[0].tasks, rates[0].span), (1, 1, 15));
}

#[test]
fn normalized_curve_mirrors_window_rates_on_tiny_inputs() {
    let optimal = Rational::new(1, 3);
    assert!(normalized_curve(&[], &optimal).is_empty());
    assert!(normalized_curve(&[7], &optimal).is_empty());
    let curve = normalized_curve(&[3, 6], &optimal);
    assert_eq!(curve.len(), 1);
    let (window, value) = curve[0];
    assert_eq!(window, 1);
    assert!((value - 1.0).abs() < 1e-12); // 1 task / 3 steps, optimal 1/3
}

#[test]
fn detect_onset_counts_exact_ties_as_crossings() {
    // Every window's rate equals the optimum exactly: 1 task per 6 steps.
    // "Goes over" includes meeting it (WindowRate::reaches is >=), so the
    // onset is the second qualifying window past the threshold.
    let times: Vec<u64> = (1..=1000).map(|k| 6 * k).collect();
    let optimal = Rational::new(1, 6);
    assert_eq!(
        detect_onset(&times, &optimal, OnsetConfig::default()),
        Some(302)
    );
    // A hair above the optimum, the same ties all fail.
    let above = Rational::new(1_000_001, 6_000_000);
    assert_eq!(detect_onset(&times, &above, OnsetConfig::default()), None);
    assert!(!reached_optimal(&times, &above, OnsetConfig::default()));
}

#[test]
fn detect_onset_on_empty_or_single_completion_is_none() {
    let optimal = Rational::new(1, 2);
    assert_eq!(detect_onset(&[], &optimal, OnsetConfig::default()), None);
    assert_eq!(detect_onset(&[9], &optimal, OnsetConfig::default()), None);
}
