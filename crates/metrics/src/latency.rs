//! Per-task latency distributions for the open-world service mode.
//!
//! A closed batch has no meaningful latency — every task is present at
//! t = 0, so "sojourn" would just restate the completion curve. Under
//! streaming arrivals each unit task has three timestamps: when
//! admission put it in the repository queue, when it left that queue
//! (taken by the root's processor or sent down a link), and when it
//! completed. This module turns those three logs into the classic
//! queueing decomposition
//!
//! ```text
//!   sojourn = queue wait + service
//!   completion[k] − admit[k] = (dispatch[k] − admit[k]) + (completion[k] − dispatch[k])
//! ```
//!
//! matched *by rank*: the engine's unit tasks are interchangeable, so
//! the k-th admitted unit is identified with the k-th dispatched and
//! k-th completed unit (all three logs are naturally sorted). In a
//! fault-free run this FIFO matching is exact; under faults a reissued
//! unit dispatches twice and the rank matching becomes a lower-bound
//! approximation (the engine's `RunResult` docs say the same).
//!
//! Everything here is exact integer/rational arithmetic: summaries keep
//! the sorted sample vector, percentiles are nearest-rank (integers),
//! and means are [`Rational`]s — no float enters until a caller asks
//! for one.

use bc_rational::Rational;

/// An exact summary of one latency sample set (timestep differences).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// The samples, sorted ascending.
    samples: Vec<u64>,
    /// Exact sum of all samples (for the exact mean).
    sum: u128,
}

impl LatencySummary {
    /// Builds a summary from raw (unsorted) samples.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        let sum = samples.iter().map(|&s| s as u128).sum();
        LatencySummary { samples, sum }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Exact mean as a rational; `None` when empty.
    pub fn mean(&self) -> Option<Rational> {
        if self.samples.is_empty() {
            return None;
        }
        Some(Rational::new(self.sum as i128, self.samples.len() as i128))
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`); `None` when empty.
    /// Nearest-rank on the exact integer samples, so no interpolation
    /// ever manufactures a latency that never occurred.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.samples.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        Some(self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)])
    }

    /// Median (nearest-rank p50).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// Tail latency (nearest-rank p99).
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<u64> {
        self.samples.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.last().copied()
    }
}

/// The rank-matched latency decomposition of one open-world run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Admission → completion.
    pub sojourn: LatencySummary,
    /// Admission → dispatch (time in the repository queue).
    pub queue_wait: LatencySummary,
    /// Dispatch → completion (transfer + compute, including any
    /// buffering below the root).
    pub service: LatencySummary,
}

/// Builds the latency decomposition from the three per-unit time logs
/// of a run (`RunResult::arrivals.admit_times`, `.dispatch_times`,
/// `RunResult::completion_times`). Logs may differ in length — under
/// `Drop` nothing is truncated (admitted = completed), but a faulted
/// run re-dispatches units — so every summary is over the first
/// `min(len)` rank-matched units of the logs it needs.
///
/// Differences use `saturating_sub` so a faulted run's approximate
/// matching can never underflow; fault-free the subtraction is exact
/// (rank k completes after it dispatches after it admits).
pub fn latency_profile(admit: &[u64], dispatch: &[u64], completion: &[u64]) -> LatencyProfile {
    let pairwise = |later: &[u64], earlier: &[u64]| {
        let n = later.len().min(earlier.len());
        LatencySummary::from_samples(
            later[..n]
                .iter()
                .zip(&earlier[..n])
                .map(|(&l, &e)| l.saturating_sub(e))
                .collect(),
        )
    };
    LatencyProfile {
        sojourn: pairwise(completion, admit),
        queue_wait: pairwise(dispatch, admit),
        service: pairwise(completion, dispatch),
    }
}

/// Exact per-class throughput: completed units of each class divided by
/// the run's end time (empty when `end_time` is 0, i.e. nothing ran).
pub fn per_class_throughput(completed_per_class: &[u64], end_time: u64) -> Vec<Rational> {
    if end_time == 0 {
        return vec![Rational::zero(); completed_per_class.len()];
    }
    completed_per_class
        .iter()
        .map(|&c| Rational::new(c as i128, end_time as i128))
        .collect()
}

/// Rolling-window service rate: at each sample instant `t = window,
/// window + stride, …` (clamped to cover the last completion), the
/// exact number of completions in `(t − window, t]` divided by the
/// window. This is the open-world utilization curve — under sustained
/// load it plateaus at the platform's service capacity, and dips mark
/// faults or arrival lulls.
///
/// Returns `(t, rate)` pairs; empty when there are no completions or
/// `window`/`stride` is 0. `completions` must be sorted ascending (the
/// engine's completion log is).
pub fn rolling_utilization(completions: &[u64], window: u64, stride: u64) -> Vec<(u64, Rational)> {
    if completions.is_empty() || window == 0 || stride == 0 {
        return Vec::new();
    }
    let end = *completions.last().unwrap();
    let mut out = Vec::new();
    let mut t = window;
    loop {
        let lo = t - window; // exclusive
        let hi = t; // inclusive
        let begin = completions.partition_point(|&c| c <= lo);
        let count = completions[begin..].partition_point(|&c| c <= hi);
        out.push((t, Rational::new(count as i128, window as i128)));
        if t >= end {
            break;
        }
        t = t.saturating_add(stride).min(end.max(window));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Hand-computed fixture: three units.
    //   admit      = [2, 5, 9]
    //   dispatch   = [3, 8, 9]
    //   completion = [7, 12, 20]
    // sojourn    = [5, 7, 11]   mean 23/3, p50 7, p99 11
    // queue wait = [1, 3, 0]    mean 4/3,  p50 1, p99 3
    // service    = [4, 4, 11]   mean 19/3, p50 4, p99 11
    #[test]
    fn hand_computed_decomposition() {
        let p = latency_profile(&[2, 5, 9], &[3, 8, 9], &[7, 12, 20]);
        assert_eq!(p.sojourn.samples(), &[5, 7, 11]);
        assert_eq!(p.queue_wait.samples(), &[0, 1, 3]);
        assert_eq!(p.service.samples(), &[4, 4, 11]);
        assert_eq!(p.sojourn.mean(), Some(Rational::new(23, 3)));
        assert_eq!(p.queue_wait.mean(), Some(Rational::new(4, 3)));
        assert_eq!(p.service.mean(), Some(Rational::new(19, 3)));
        assert_eq!(p.sojourn.p50(), Some(7));
        assert_eq!(p.sojourn.p99(), Some(11));
        assert_eq!(p.queue_wait.p50(), Some(1));
        assert_eq!(p.service.min(), Some(4));
        assert_eq!(p.service.max(), Some(11));
        // The decomposition identity holds sample-wise (fault-free):
        // sojourn sums = wait sums + service sums.
        let sum = |s: &LatencySummary| s.samples().iter().sum::<u64>();
        assert_eq!(sum(&p.sojourn), sum(&p.queue_wait) + sum(&p.service));
    }

    #[test]
    fn empty_logs_yield_empty_summaries() {
        let p = latency_profile(&[], &[], &[]);
        assert!(p.sojourn.is_empty());
        assert_eq!(p.sojourn.mean(), None);
        assert_eq!(p.sojourn.p50(), None);
        assert_eq!(p.sojourn.p99(), None);
        assert_eq!(p.sojourn.min(), None);
        assert_eq!(p.sojourn.max(), None);
    }

    #[test]
    fn single_task_summaries_are_that_task() {
        let p = latency_profile(&[4], &[6], &[16]);
        assert_eq!(p.sojourn.count(), 1);
        assert_eq!(p.sojourn.mean(), Some(Rational::new(12, 1)));
        assert_eq!(p.sojourn.p50(), Some(12));
        assert_eq!(p.sojourn.p99(), Some(12));
        assert_eq!(p.queue_wait.samples(), &[2]);
        assert_eq!(p.service.samples(), &[10]);
    }

    #[test]
    fn ragged_logs_match_on_the_common_prefix() {
        // A faulted run: 2 admissions, 3 dispatches (one reissue), 2
        // completions → every summary covers min(len) = 2 ranks.
        let p = latency_profile(&[1, 2], &[1, 3, 9], &[5, 8]);
        assert_eq!(p.sojourn.count(), 2);
        assert_eq!(p.queue_wait.count(), 2);
        assert_eq!(p.service.count(), 2);
        assert_eq!(p.queue_wait.samples(), &[0, 1]);
    }

    #[test]
    fn nearest_rank_percentiles_on_known_grid() {
        // 100 samples 1..=100: p50 = 50, p99 = 99, p100 = 100, p1 = 1.
        let s = LatencySummary::from_samples((1..=100).collect());
        assert_eq!(s.percentile(50.0), Some(50));
        assert_eq!(s.percentile(99.0), Some(99));
        assert_eq!(s.percentile(100.0), Some(100));
        assert_eq!(s.percentile(1.0), Some(1));
        assert_eq!(s.percentile(0.0), Some(1), "p0 clamps to the minimum");
    }

    #[test]
    fn per_class_throughput_is_exact() {
        let th = per_class_throughput(&[30, 12, 0], 120);
        assert_eq!(
            th,
            vec![Rational::new(1, 4), Rational::new(1, 10), Rational::zero()]
        );
        assert_eq!(per_class_throughput(&[5], 0), vec![Rational::zero()]);
        assert!(per_class_throughput(&[], 10).is_empty());
    }

    #[test]
    fn rolling_utilization_counts_windows_exactly() {
        // Completions at 2, 4, 9, 10, 10, 19; window 10, stride 5.
        // t=10: (0,10]  → {2,4,9,10,10} = 5 → 1/2
        // t=15: (5,15]  → {9,10,10}     = 3 → 3/10
        // t=19: (9,19]  → {10,10,19}    = 3 → 3/10  (clamped to end)
        let u = rolling_utilization(&[2, 4, 9, 10, 10, 19], 10, 5);
        assert_eq!(
            u,
            vec![
                (10, Rational::new(1, 2)),
                (15, Rational::new(3, 10)),
                (19, Rational::new(3, 10)),
            ]
        );
        assert!(rolling_utilization(&[], 10, 5).is_empty());
        assert!(rolling_utilization(&[3], 0, 5).is_empty());
        assert!(rolling_utilization(&[3], 10, 0).is_empty());
        // A single early completion still yields the first window.
        assert_eq!(
            rolling_utilization(&[3], 10, 5),
            vec![(10, Rational::new(1, 10))]
        );
    }
}
