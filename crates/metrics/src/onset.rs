//! The paper's empirical onset-of-optimal-steady-state detector (§4.1):
//!
//! > "We arbitrarily say that the tree has reached optimal steady state if
//! > its rate goes over the optimal steady-state rate twice after window
//! > 300. We say that the onset of optimal steady state occurs when the
//! > rate goes over the optimal steady-state rate for the second time
//! > after window 300."

use crate::windows::window_rates;
use bc_rational::Rational;

/// Parameters of the onset heuristic. Defaults are the paper's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OnsetConfig {
    /// Windows at or below this index are ignored (startup noise).
    pub window_threshold: u64,
    /// The n-th crossing after the threshold marks the onset.
    pub crossings: u32,
}

impl Default for OnsetConfig {
    fn default() -> Self {
        OnsetConfig {
            window_threshold: 300,
            crossings: 2,
        }
    }
}

/// Returns the window index at which the onset occurred, or `None` if the
/// tree never (detectably) reached its optimal steady-state rate.
///
/// The returned index is the Fig 4 x-coordinate ("number of tasks
/// completed at the beginning of the window").
pub fn detect_onset(completions: &[u64], optimal: &Rational, cfg: OnsetConfig) -> Option<u64> {
    let mut seen = 0u32;
    for w in window_rates(completions) {
        if w.window <= cfg.window_threshold {
            continue;
        }
        if w.reaches(optimal) {
            seen += 1;
            if seen >= cfg.crossings {
                return Some(w.window);
            }
        }
    }
    None
}

/// Convenience: did the run reach optimal steady state at all?
pub fn reached_optimal(completions: &[u64], optimal: &Rational, cfg: OnsetConfig) -> bool {
    detect_onset(completions, optimal, cfg).is_some()
}

/// Builds the Fig 4 style cumulative curve: for each probe `x`, the
/// fraction of runs whose onset window is ≤ `x` (runs that never reach
/// the optimum count toward no probe).
pub fn onset_cdf(onsets: &[Option<u64>], probes: &[u64]) -> Vec<(u64, f64)> {
    let n = onsets.len().max(1) as f64;
    probes
        .iter()
        .map(|&x| {
            let reached = onsets.iter().filter(|o| o.is_some_and(|w| w <= x)).count();
            (x, reached as f64 / n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Completion times at exactly `rate = 1/period` per step.
    fn steady(n: u64, period: u64) -> Vec<u64> {
        (1..=n).map(|k| k * period).collect()
    }

    #[test]
    fn steady_run_at_optimal_is_detected() {
        let times = steady(1000, 3);
        let onset = detect_onset(&times, &Rational::new(1, 3), OnsetConfig::default());
        // First two qualifying windows after 300 are 301 and 302.
        assert_eq!(onset, Some(302));
    }

    #[test]
    fn sub_optimal_run_is_rejected() {
        let times = steady(1000, 4); // rate 1/4 < optimal 1/3
        assert_eq!(
            detect_onset(&times, &Rational::new(1, 3), OnsetConfig::default()),
            None
        );
    }

    #[test]
    fn startup_spikes_before_threshold_ignored() {
        // A burst start (100 instant tasks) then a slow tail: early
        // windows are far above optimal but must not count.
        let mut times = vec![1u64; 100];
        let mut t = 1;
        for _ in 0..900u64 {
            t += 100; // far below optimal afterwards
            times.push(t);
        }
        assert_eq!(
            detect_onset(&times, &Rational::new(1, 3), OnsetConfig::default()),
            None
        );
    }

    #[test]
    fn threshold_and_crossings_are_configurable() {
        let times = steady(100, 3);
        let cfg = OnsetConfig {
            window_threshold: 10,
            crossings: 2,
        };
        assert_eq!(detect_onset(&times, &Rational::new(1, 3), cfg), Some(12));
        let one = OnsetConfig {
            window_threshold: 10,
            crossings: 1,
        };
        assert_eq!(detect_onset(&times, &Rational::new(1, 3), one), Some(11));
    }

    #[test]
    fn short_run_cannot_cross_threshold() {
        // N = 400 → windows up to 200 only; threshold 300 unreachable.
        let times = steady(400, 3);
        assert!(!reached_optimal(
            &times,
            &Rational::new(1, 3),
            OnsetConfig::default()
        ));
    }

    #[test]
    fn cdf_counts_cumulatively() {
        let onsets = vec![Some(310), Some(500), None, Some(2000)];
        let curve = onset_cdf(&onsets, &[300, 400, 1000, 3000]);
        assert_eq!(curve[0], (300, 0.0));
        assert_eq!(curve[1], (400, 0.25));
        assert_eq!(curve[2], (1000, 0.5));
        assert_eq!(curve[3], (3000, 0.75));
    }

    #[test]
    fn cdf_of_empty_input_is_zero() {
        assert_eq!(onset_cdf(&[], &[100])[0], (100, 0.0));
    }
}
