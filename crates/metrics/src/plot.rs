//! Terminal line charts for the figure binaries.
//!
//! The experiment harness is terminal-first: tables carry the exact
//! numbers, and these charts give the figures their *shape* (the curve
//! crossings and plateaus the paper's claims are about) without any
//! plotting dependency.

/// A multi-series scatter/line chart rendered with Unicode braille-free
/// ASCII, one glyph per series.
#[derive(Clone, Debug)]
pub struct Chart {
    width: usize,
    height: usize,
    series: Vec<(String, Vec<(f64, f64)>)>,
    y_max_hint: Option<f64>,
}

const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

impl Chart {
    /// Creates an empty chart of `width`×`height` character cells
    /// (plot area, excluding axes).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 10 && height >= 4, "chart too small to read");
        Chart {
            width,
            height,
            series: Vec::new(),
            y_max_hint: None,
        }
    }

    /// Fixes the y-axis maximum (otherwise auto-scaled to the data).
    pub fn y_max(mut self, y: f64) -> Self {
        assert!(y > 0.0, "y_max must be positive");
        self.y_max_hint = Some(y);
        self
    }

    /// Adds a named series.
    pub fn series(mut self, label: impl Into<String>, points: &[(f64, f64)]) -> Self {
        assert!(
            self.series.len() < GLYPHS.len(),
            "too many series for distinct glyphs"
        );
        self.series.push((label.into(), points.to_vec()));
        self
    }

    /// Renders the chart. Points outside the axis ranges are clamped to
    /// the border; NaN/infinite values are skipped.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if all.is_empty() {
            return "(empty chart)\n".to_string();
        }
        let x_min = all.iter().map(|&(x, _)| x).fold(f64::INFINITY, f64::min);
        let x_max = all
            .iter()
            .map(|&(x, _)| x)
            .fold(f64::NEG_INFINITY, f64::max);
        let y_min = 0.0f64;
        let y_max = self
            .y_max_hint
            .unwrap_or_else(|| {
                all.iter()
                    .map(|&(_, y)| y)
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .max(1e-12);
        let x_span = (x_max - x_min).max(1e-12);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, (_, pts)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si];
            for &(x, y) in pts {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = (((x - x_min) / x_span) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y.clamp(y_min, y_max) / y_max) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                let col = cx.min(self.width - 1);
                // First-come glyph wins so overlapping series stay legible.
                if grid[row][col] == ' ' {
                    grid[row][col] = glyph;
                }
            }
        }

        let mut out = String::new();
        for (r, row) in grid.iter().enumerate() {
            let y_label = if r == 0 {
                format!("{y_max:8.3}")
            } else if r == self.height - 1 {
                format!("{y_min:8.3}")
            } else {
                " ".repeat(8)
            };
            out.push_str(&y_label);
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(8));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{:8} {:<.3}{}{:>.3}\n",
            "",
            x_min,
            " ".repeat(self.width.saturating_sub(14)),
            x_max
        ));
        for (si, (label, _)) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", GLYPHS[si], label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_single_series() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64 / 100.0)).collect();
        let s = Chart::new(60, 10).series("ramp", &pts).render();
        assert!(s.contains('*'));
        assert!(s.contains("ramp"));
        // Rough shape: the ramp touches near the bottom-left and the
        // top-right.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains('*'), "top row should contain the peak");
    }

    #[test]
    fn distinct_glyphs_per_series() {
        let a = [(0.0, 1.0), (1.0, 1.0)];
        let b = [(0.0, 0.5), (1.0, 0.5)];
        let s = Chart::new(20, 6).series("a", &a).series("b", &b).render();
        assert!(s.contains('*') && s.contains('o'));
    }

    #[test]
    fn empty_chart_is_graceful() {
        let s = Chart::new(20, 6).render();
        assert_eq!(s, "(empty chart)\n");
        let s = Chart::new(20, 6).series("nan", &[(f64::NAN, 1.0)]).render();
        assert_eq!(s, "(empty chart)\n");
    }

    #[test]
    fn y_max_clamps() {
        let pts = [(0.0, 5.0), (1.0, 0.5)];
        let s = Chart::new(20, 6).y_max(1.0).series("spike", &pts).render();
        // The spike is clamped to the top row, not off-grid.
        assert!(s.lines().next().unwrap().contains('*'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_chart_rejected() {
        let _ = Chart::new(5, 2);
    }

    #[test]
    #[should_panic(expected = "too many series")]
    fn series_limit_enforced() {
        let mut c = Chart::new(20, 6);
        for i in 0..9 {
            c = c.series(format!("s{i}"), &[(0.0, 1.0)]);
        }
    }
}
