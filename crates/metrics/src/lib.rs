//! # bc-metrics — measurement methodology of the paper's evaluation
//!
//! The sliding growing window of §4.1 ([`windows`]), the empirical
//! onset-of-optimal-steady-state heuristic ([`onset`]), the recovery
//! metrics for fault-injected runs ([`recovery`]), the per-task latency
//! decomposition for open-world streamed workloads ([`latency`]), and
//! the statistics helpers (medians, histograms, table/CSV rendering)
//! the experiment harness builds tables and figures from ([`stats`]).
//!
//! ```
//! use bc_metrics::{detect_onset, OnsetConfig};
//! use bc_rational::Rational;
//!
//! // A run completing one task every 3 timesteps, 1000 tasks.
//! let times: Vec<u64> = (1..=1000).map(|k| 3 * k).collect();
//! let onset = detect_onset(&times, &Rational::new(1, 3), OnsetConfig::default());
//! assert_eq!(onset, Some(302)); // 2nd qualifying window past 300
//! ```

pub mod latency;
pub mod onset;
pub mod plot;
pub mod recovery;
pub mod stats;
pub mod timeline;
pub mod windows;

pub use latency::{
    latency_profile, per_class_throughput, rolling_utilization, LatencyProfile, LatencySummary,
};
pub use onset::{detect_onset, onset_cdf, reached_optimal, OnsetConfig};
pub use plot::Chart;
pub use recovery::{chunk_rates, degraded_fraction, time_to_rate};
pub use stats::{ascii_table, csv, median, percentile, Histogram};
pub use timeline::{fold_timelines, trace_end_time, NodeTimeline};
pub use windows::{normalized_curve, window_rates, WindowRate};
