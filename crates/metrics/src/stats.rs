//! Small statistics helpers shared by the experiment harness: medians,
//! fixed-width histograms (the Fig 6 PDFs), and ASCII/CSV rendering.

/// Median of a sample (averaging the middle pair for even sizes).
/// Returns `None` on empty input.
pub fn median(values: &[u64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2] as f64
    } else {
        (v[n / 2 - 1] + v[n / 2]) as f64 / 2.0
    })
}

/// p-th percentile (nearest-rank; `p` in `[0, 100]`).
pub fn percentile(values: &[u64], p: f64) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut v = values.to_vec();
    v.sort_unstable();
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    Some(v[rank.saturating_sub(1).min(v.len() - 1)])
}

/// A fixed-bin-width histogram over `u64` samples (used for the tree-size
/// and tree-depth PDFs of Fig 6).
#[derive(Clone, Debug)]
pub struct Histogram {
    bin_width: u64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given bin width (≥ 1).
    pub fn new(bin_width: u64) -> Self {
        assert!(bin_width >= 1, "bin width must be >= 1");
        Histogram {
            bin_width,
            counts: Vec::new(),
            total: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, value: u64) {
        let bin = (value / self.bin_width) as usize;
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(bin_start, fraction_of_samples)` for every bin, including empty
    /// interior bins (so curves plot correctly).
    pub fn pdf(&self) -> Vec<(u64, f64)> {
        let total = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 * self.bin_width, c as f64 / total))
            .collect()
    }
}

/// Renders rows as an aligned ASCII table (header + rows of equal arity).
pub fn ascii_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push_str(&fmt_row(
        widths.iter().map(|_| "-").collect::<Vec<_>>(),
        &widths,
    ));
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
    }
    out
}

/// Renders rows as CSV (naive quoting: fields with commas are quoted).
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let quote = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = header
        .iter()
        .map(|h| quote(h))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[5, 1, 3]), Some(3.0));
        assert_eq!(median(&[4, 1, 3, 2]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[7]), Some(7.0));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&v, 50.0), Some(30));
        assert_eq!(percentile(&v, 100.0), Some(50));
        assert_eq!(percentile(&v, 0.0), Some(10));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_range_checked() {
        let _ = percentile(&[1], 150.0);
    }

    #[test]
    fn histogram_bins_and_pdf() {
        let mut h = Histogram::new(10);
        for v in [0, 5, 9, 10, 25, 25] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        let pdf = h.pdf();
        assert_eq!(pdf[0], (0, 0.5)); // 0,5,9
        assert_eq!(pdf[1], (10, 1.0 / 6.0)); // 10
        assert_eq!(pdf[2], (20, 2.0 / 6.0)); // 25,25
    }

    #[test]
    fn histogram_includes_empty_interior_bins() {
        let mut h = Histogram::new(1);
        h.add(0);
        h.add(3);
        let pdf = h.pdf();
        assert_eq!(pdf.len(), 4);
        assert_eq!(pdf[1].1, 0.0);
        assert_eq!(pdf[2].1, 0.0);
    }

    #[test]
    fn ascii_table_aligns() {
        let t = ascii_table(
            &["name", "n"],
            &[
                vec!["ic3".into(), "99".into()],
                vec!["nonic".into(), "5".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn csv_quotes_commas() {
        let out = csv(&["a", "b"], &[vec!["x,y".into(), "2".into()]]);
        assert_eq!(out, "a,b\n\"x,y\",2\n");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ascii_table_rejects_ragged_rows() {
        let _ = ascii_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
