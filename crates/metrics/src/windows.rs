//! The sliding growing window of §4.1.
//!
//! > "the y-axis value at point x on the x-axis represents the average
//! > rate between the time t_x when task x is completed and time t_2x
//! > when task 2x is completed. Thus, it is (2x − x)/(t_2x − t_x)."
//!
//! Rates are kept as exact integer pairs (tasks, span) so the comparison
//! against the exact optimal rate is never a float tolerance.

use bc_rational::Rational;

/// One window's measured throughput: `tasks / span` tasks per timestep,
/// over the completion interval `[t_x, t_2x]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowRate {
    /// The window index `x` (tasks completed at the window's start).
    pub window: u64,
    /// Numerator: tasks completed inside the window (= `x`).
    pub tasks: u64,
    /// Denominator: `t_2x − t_x` timesteps (can be 0 when many tasks
    /// complete at one instant; such a window trivially exceeds any
    /// finite rate).
    pub span: u64,
}

impl WindowRate {
    /// True if this window's rate is at least `rate` ("goes over" in the
    /// paper's onset heuristic; meeting the optimum exactly counts, since
    /// no window can exceed a rate it only asymptotically approaches).
    pub fn reaches(&self, rate: &Rational) -> bool {
        if self.span == 0 {
            return true;
        }
        // tasks/span ≥ rate ⇔ tasks ≥ rate · span (both sides exact).
        let lhs = Rational::from_integer(self.tasks as i128);
        let rhs = rate.mul_ref(&Rational::from_integer(self.span as i128));
        lhs >= rhs
    }

    /// The rate as a float (plotting only).
    pub fn as_f64(&self) -> f64 {
        if self.span == 0 {
            f64::INFINITY
        } else {
            self.tasks as f64 / self.span as f64
        }
    }

    /// The rate normalized by `optimal` (plotting only).
    pub fn normalized(&self, optimal: &Rational) -> f64 {
        self.as_f64() / optimal.to_f64()
    }
}

/// Computes every window `x = 1 ..= N/2` from the global completion-time
/// sequence (`completions[k]` = time of the `(k+1)`-th completion).
pub fn window_rates(completions: &[u64]) -> Vec<WindowRate> {
    let n = completions.len();
    (1..=n / 2)
        .map(|x| WindowRate {
            window: x as u64,
            tasks: x as u64,
            span: completions[2 * x - 1] - completions[x - 1],
        })
        .collect()
}

/// Normalized rate curve for plotting (Fig 3): `(window, rate/optimal)`.
pub fn normalized_curve(completions: &[u64], optimal: &Rational) -> Vec<(u64, f64)> {
    window_rates(completions)
        .iter()
        .map(|w| (w.window, w.normalized(optimal)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_completions_give_uniform_rate() {
        // One task every 4 timesteps.
        let times: Vec<u64> = (1..=20).map(|k| 4 * k).collect();
        let rates = window_rates(&times);
        assert_eq!(rates.len(), 10);
        for w in &rates {
            assert_eq!(w.tasks, w.window);
            assert_eq!(w.span, 4 * w.window);
            assert!(w.reaches(&Rational::new(1, 4)));
            assert!(!w.reaches(&Rational::new(1, 3)));
            assert!((w.as_f64() - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn window_bounds_match_paper_definition() {
        let times = vec![10, 20, 40, 80];
        let rates = window_rates(&times);
        // x=1: [t_1, t_2] = [10, 20] → 1 task / 10 steps.
        assert_eq!(
            rates[0],
            WindowRate {
                window: 1,
                tasks: 1,
                span: 10
            }
        );
        // x=2: [t_2, t_4] = [20, 80] → 2 tasks / 60 steps.
        assert_eq!(
            rates[1],
            WindowRate {
                window: 2,
                tasks: 2,
                span: 60
            }
        );
    }

    #[test]
    fn zero_span_window_reaches_everything() {
        let w = WindowRate {
            window: 3,
            tasks: 3,
            span: 0,
        };
        assert!(w.reaches(&Rational::from_integer(1_000_000)));
        assert!(w.as_f64().is_infinite());
    }

    #[test]
    fn exact_equality_counts_as_reaching() {
        let w = WindowRate {
            window: 5,
            tasks: 5,
            span: 10,
        };
        assert!(w.reaches(&Rational::new(1, 2)));
        assert!(!w.reaches(&Rational::new(51, 100)));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(window_rates(&[]).is_empty());
        assert!(window_rates(&[5]).is_empty());
        assert_eq!(window_rates(&[5, 9]).len(), 1);
    }

    #[test]
    fn normalized_curve_is_one_at_optimal() {
        let times: Vec<u64> = (1..=100).map(|k| 2 * k).collect();
        let curve = normalized_curve(&times, &Rational::new(1, 2));
        for (_, v) in curve {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }
}
