//! Recovery metrics for fault-injected runs.
//!
//! A faulted run's completion sequence has structure the growing window
//! of §4.1 smears out: a healthy prefix, a degraded window while the
//! protocol detects and repairs the damage, and (ideally) a recovered
//! tail at the post-fault platform's optimal rate. These helpers measure
//! that structure from the completion times alone, with the same exact
//! rational comparisons the onset heuristic uses — no float tolerances.

use crate::windows::WindowRate;
use bc_rational::Rational;

/// Fixed-size chunk throughput: chunk `k` covers completions
/// `[k·chunk, (k+1)·chunk)` and its rate is `chunk / span` over the
/// chunk's completion interval (the first chunk measures from t=0, when
/// the run starts). A trailing partial chunk is dropped. Reuses
/// [`WindowRate`] so exact-rational comparisons come for free; `window`
/// holds the chunk index.
pub fn chunk_rates(completions: &[u64], chunk: usize) -> Vec<WindowRate> {
    assert!(chunk >= 1, "chunk must be >= 1");
    let n = completions.len();
    (0..n / chunk)
        .map(|k| {
            let base = if k == 0 {
                0
            } else {
                completions[k * chunk - 1]
            };
            WindowRate {
                window: k as u64,
                tasks: chunk as u64,
                span: completions[(k + 1) * chunk - 1] - base,
            }
        })
        .collect()
}

/// Fraction of fixed-size chunks whose throughput fails to reach
/// `target` — the run's degraded-window rate. 0.0 for a run that held
/// the target throughout (and, vacuously, for one shorter than a chunk).
pub fn degraded_fraction(completions: &[u64], chunk: usize, target: &Rational) -> f64 {
    let chunks = chunk_rates(completions, chunk);
    if chunks.is_empty() {
        return 0.0;
    }
    let degraded = chunks.iter().filter(|c| !c.reaches(target)).count();
    degraded as f64 / chunks.len() as f64
}

/// Time from `after` until the run first sustains `target` throughput
/// again: the earliest instant at which `window` consecutive
/// completions, all strictly later than `after`, averaged at least
/// `target` tasks per timestep (the first such window is measured from
/// `after` itself, so detection latency counts against recovery).
/// `None` if the run never recovers before finishing.
pub fn time_to_rate(
    completions: &[u64],
    after: u64,
    target: &Rational,
    window: usize,
) -> Option<u64> {
    assert!(window >= 1, "window must be >= 1");
    let idx0 = completions.partition_point(|&t| t <= after);
    for k in idx0..completions.len() {
        let Some(s) = (k + 1).checked_sub(window) else {
            continue;
        };
        if s < idx0 {
            continue;
        }
        let base = if s == idx0 { after } else { completions[s - 1] };
        let w = WindowRate {
            window: k as u64,
            tasks: window as u64,
            span: completions[k] - base,
        };
        if w.reaches(target) {
            return Some(completions[k] - after);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One task every 4 timesteps, then a 100-step stall, then one task
    /// every 2 timesteps.
    fn stall_then_sprint() -> Vec<u64> {
        let mut t: Vec<u64> = (1..=10).map(|k| 4 * k).collect(); // 4..40
        t.extend((1..=20).map(|k| 140 + 2 * k)); // 142..180
        t
    }

    #[test]
    fn chunks_cover_disjoint_intervals() {
        let times: Vec<u64> = (1..=20).map(|k| 4 * k).collect();
        let chunks = chunk_rates(&times, 5);
        assert_eq!(chunks.len(), 4);
        for (k, c) in chunks.iter().enumerate() {
            assert_eq!(c.window, k as u64);
            assert_eq!(c.tasks, 5);
            assert_eq!(c.span, 20);
            assert!(c.reaches(&Rational::new(1, 4)));
        }
    }

    #[test]
    fn partial_tail_chunk_is_dropped() {
        let times: Vec<u64> = (1..=13).map(|k| 4 * k).collect();
        assert_eq!(chunk_rates(&times, 5).len(), 2);
    }

    #[test]
    fn degraded_fraction_flags_the_stall() {
        let times = stall_then_sprint();
        // Chunks of 10: chunk 0 is the healthy 1/4 prefix, chunk 1
        // swallows the stall, chunk 2 is the sprint.
        let f = degraded_fraction(&times, 10, &Rational::new(1, 4));
        assert!((f - 1.0 / 3.0).abs() < 1e-12, "got {f}");
        assert_eq!(degraded_fraction(&times, 10, &Rational::new(1, 1000)), 0.0);
    }

    #[test]
    fn time_to_rate_measures_from_after() {
        let times = stall_then_sprint();
        // After the stall begins (t=40), the first 5 completions all
        // land by t=150, but measured from t=40 the span is 110 — not
        // yet 1/2. Recovery to 1/2 happens once enough 2-step
        // completions amortize the detection gap... never, in fact,
        // for a window anchored at t=40 — so anchor later.
        let d = time_to_rate(&times, 140, &Rational::new(1, 2), 5).expect("sprint reaches 1/2");
        assert_eq!(d, 10); // five tasks, two steps each, from t=140
                           // From t=40 the 102-step gap is charged to the first window:
                           // 5 tasks over 112 steps misses 1/2, but a later window of
                           // pure sprint completions clears it.
        let d = time_to_rate(&times, 40, &Rational::new(1, 2), 5).expect("recovers eventually");
        assert_eq!(d, 152 - 40); // window [142..152] spans 10 steps
    }

    #[test]
    fn unreached_target_is_none() {
        let times: Vec<u64> = (1..=50).map(|k| 4 * k).collect();
        assert_eq!(time_to_rate(&times, 0, &Rational::new(1, 3), 10), None);
        assert_eq!(time_to_rate(&times, 500, &Rational::new(1, 4), 10), None);
    }

    #[test]
    fn reached_immediately_counts_window_end() {
        let times: Vec<u64> = (1..=50).map(|k| 4 * k).collect();
        let d = time_to_rate(&times, 0, &Rational::new(1, 4), 10).expect("uniform rate holds");
        assert_eq!(d, 40);
    }
}
