//! Per-node timelines folded from a structured trace.
//!
//! A [`bc_simcore::trace`] event stream is the full temporal record of a
//! run; this module reduces it to per-node [`NodeTimeline`]s — busy/idle
//! span totals, preemption/resume counts, buffer high-water marks — the
//! derived view `trace_dump --format summary` prints and the
//! reconciliation tests compare against the engine's own `RunResult`
//! accounting (the two are produced by independent code paths, so their
//! exact agreement is evidence both are right).
//!
//! The fold is single-pass and tolerant of truncated traces (a
//! `RingRecorder` tail): spans left open when the records end are counted
//! in [`NodeTimeline::open_spans`] instead of silently inflating busy
//! time.

use bc_simcore::trace::{TraceEvent, TraceRecord};
use bc_simcore::Time;

/// Everything a trace says about one node, reduced to counters and span
/// totals (node = arena index; entry 0 is the repository).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeTimeline {
    /// Total timesteps the processor spent computing (closed
    /// compute-start → compute-finish spans).
    pub busy_compute: u64,
    /// Total timesteps the outbound link spent transmitting (spans opened
    /// by transfer-start/resume, closed by preempt/complete).
    pub busy_link: u64,
    /// Tasks this node finished computing (compute-finish count).
    pub tasks_computed: u64,
    /// Tasks delivered into this node's buffers (buffer-acquire count).
    pub tasks_received: u64,
    /// Transfers this node started toward children.
    pub transfers_started: u64,
    /// Transfers this node completed toward children.
    pub transfers_completed: u64,
    /// Times this node's link preempted its active transfer.
    pub preemptions: u64,
    /// Times a shelved transfer resumed on this node's link.
    pub resumes: u64,
    /// Request messages this node sent its parent.
    pub requests_sent: u64,
    /// Requests from departed children this node discarded unserved.
    pub requests_denied: u64,
    /// Peak simultaneous buffer occupancy observed in the stream.
    pub buffer_high_water: u32,
    /// Largest buffer-pool capacity observed in the stream.
    pub max_capacity: u32,
    /// Buffer occupancy after the node's last buffer event.
    pub final_held: u32,
    /// Join time, if the node joined mid-run.
    pub joined_at: Option<Time>,
    /// Leave time, if the node departed mid-run.
    pub left_at: Option<Time>,
    /// Compute/transmit spans still open when the records ended — 0 for a
    /// complete trace of a finished run; nonzero only for truncated
    /// (ring-buffer) tails.
    pub open_spans: u32,
}

impl NodeTimeline {
    /// Processor idle time over a run of length `end_time`.
    pub fn idle_compute(&self, end_time: Time) -> u64 {
        end_time.saturating_sub(self.busy_compute)
    }

    /// Outbound-link idle time over a run of length `end_time`.
    pub fn idle_link(&self, end_time: Time) -> u64 {
        end_time.saturating_sub(self.busy_link)
    }
}

/// Time of the last record (the makespan, for a complete trace of a
/// finished run — the final event is the last task's compute-finish).
pub fn trace_end_time(records: &[TraceRecord]) -> Time {
    records.last().map_or(0, |r| r.time)
}

/// Folds a trace into per-node timelines, indexed by arena index (the
/// vector covers every node mentioned by any event).
pub fn fold_timelines(records: &[TraceRecord]) -> Vec<NodeTimeline> {
    // Per-node open-span state: when the current compute / transmit span
    // began. The link transmits at most one transfer at a time, so one
    // open span per node suffices for both resources.
    let mut timelines: Vec<NodeTimeline> = Vec::new();
    let mut compute_open: Vec<Option<Time>> = Vec::new();
    let mut link_open: Vec<Option<Time>> = Vec::new();
    let ensure = |timelines: &mut Vec<NodeTimeline>,
                  compute_open: &mut Vec<Option<Time>>,
                  link_open: &mut Vec<Option<Time>>,
                  node: u32| {
        let need = node as usize + 1;
        if timelines.len() < need {
            timelines.resize_with(need, NodeTimeline::default);
            compute_open.resize(need, None);
            link_open.resize(need, None);
        }
    };
    for r in records {
        let i = r.event.node() as usize;
        ensure(
            &mut timelines,
            &mut compute_open,
            &mut link_open,
            r.event.node(),
        );
        match r.event {
            TraceEvent::ComputeStart { .. } => {
                // A start over an open span only happens in truncated
                // tails that lost the matching finish.
                if compute_open[i].replace(r.time).is_some() {
                    timelines[i].open_spans += 1;
                }
            }
            TraceEvent::ComputeFinish { .. } => {
                timelines[i].tasks_computed += 1;
                if let Some(began) = compute_open[i].take() {
                    timelines[i].busy_compute += r.time - began;
                } else {
                    timelines[i].open_spans += 1; // finish without a start
                }
            }
            TraceEvent::TransferStart { .. } => {
                timelines[i].transfers_started += 1;
                if link_open[i].replace(r.time).is_some() {
                    timelines[i].open_spans += 1;
                }
            }
            TraceEvent::TransferResume { .. } => {
                timelines[i].resumes += 1;
                if link_open[i].replace(r.time).is_some() {
                    timelines[i].open_spans += 1;
                }
            }
            TraceEvent::TransferPreempt { .. } => {
                timelines[i].preemptions += 1;
                if let Some(began) = link_open[i].take() {
                    timelines[i].busy_link += r.time - began;
                } else {
                    timelines[i].open_spans += 1;
                }
            }
            TraceEvent::TransferComplete { .. } => {
                timelines[i].transfers_completed += 1;
                // After a preempt-at-zero-remaining the span was already
                // closed by the preempt; the completion adds no time.
                if let Some(began) = link_open[i].take() {
                    timelines[i].busy_link += r.time - began;
                }
            }
            TraceEvent::BufferAcquire { held, capacity, .. } => {
                timelines[i].tasks_received += 1;
                timelines[i].buffer_high_water = timelines[i].buffer_high_water.max(held);
                timelines[i].max_capacity = timelines[i].max_capacity.max(capacity);
                timelines[i].final_held = held;
            }
            TraceEvent::BufferRelease { held, capacity, .. } => {
                timelines[i].buffer_high_water = timelines[i].buffer_high_water.max(held);
                timelines[i].max_capacity = timelines[i].max_capacity.max(capacity);
                timelines[i].final_held = held;
            }
            TraceEvent::Request { count, .. } => {
                timelines[i].requests_sent += u64::from(count);
            }
            TraceEvent::RequestDeny { count, .. } => {
                timelines[i].requests_denied += u64::from(count);
            }
            TraceEvent::NodeJoin { node, parent } => {
                ensure(
                    &mut timelines,
                    &mut compute_open,
                    &mut link_open,
                    parent.max(node),
                );
                timelines[node as usize].joined_at = Some(r.time);
            }
            TraceEvent::NodeLeave { node, .. } => {
                timelines[node as usize].left_at = Some(r.time);
                // Whatever the departed node was doing stops counting.
                compute_open[node as usize] = None;
                link_open[node as usize] = None;
            }
            TraceEvent::TransferAbort { .. } => {
                // The sender transmitted until the reset; the span closes
                // here but delivers nothing.
                if let Some(began) = link_open[i].take() {
                    timelines[i].busy_link += r.time - began;
                }
            }
            TraceEvent::NodeCrash { node, .. } => {
                timelines[node as usize].left_at = Some(r.time);
                compute_open[node as usize] = None;
                link_open[node as usize] = None;
            }
            // Fault/recovery bookkeeping events carry no span state.
            TraceEvent::RequestLoss { .. }
            | TraceEvent::RequestRetry { .. }
            | TraceEvent::LinkDown { .. }
            | TraceEvent::LinkUp { .. }
            | TraceEvent::TaskReissue { .. }
            | TraceEvent::ChildDead { .. }
            | TraceEvent::ChildRevived { .. }
            | TraceEvent::DuplicateDrop { .. }
            | TraceEvent::JoinDenied { .. }
            | TraceEvent::TaskArrival { .. }
            | TraceEvent::TaskAdmit { .. }
            | TraceEvent::TaskReject { .. }
            | TraceEvent::TaskDefer { .. } => {}
        }
    }
    for i in 0..timelines.len() {
        timelines[i].open_spans +=
            u32::from(compute_open[i].is_some()) + u32::from(link_open[i].is_some());
    }
    timelines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time: Time, event: TraceEvent) -> TraceRecord {
        TraceRecord { time, event }
    }

    #[test]
    fn folds_compute_and_link_spans() {
        let records = vec![
            rec(0, TraceEvent::Request { node: 1, count: 2 }),
            rec(
                0,
                TraceEvent::TransferStart {
                    node: 0,
                    child: 1,
                    work: 3,
                },
            ),
            rec(
                3,
                TraceEvent::TransferComplete {
                    node: 0,
                    child: 1,
                    work: 3,
                },
            ),
            rec(
                3,
                TraceEvent::BufferAcquire {
                    node: 1,
                    held: 1,
                    capacity: 2,
                },
            ),
            rec(
                3,
                TraceEvent::BufferRelease {
                    node: 1,
                    held: 0,
                    capacity: 2,
                },
            ),
            rec(3, TraceEvent::ComputeStart { node: 1 }),
            rec(8, TraceEvent::ComputeFinish { node: 1 }),
        ];
        let tl = fold_timelines(&records);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].busy_link, 3);
        assert_eq!(tl[0].transfers_started, 1);
        assert_eq!(tl[0].transfers_completed, 1);
        assert_eq!(tl[1].busy_compute, 5);
        assert_eq!(tl[1].tasks_computed, 1);
        assert_eq!(tl[1].tasks_received, 1);
        assert_eq!(tl[1].requests_sent, 2);
        assert_eq!(tl[1].buffer_high_water, 1);
        assert_eq!(tl[1].max_capacity, 2);
        assert_eq!(tl[1].final_held, 0);
        assert_eq!(tl[1].open_spans, 0);
        assert_eq!(tl[1].idle_compute(trace_end_time(&records)), 3);
        assert_eq!(trace_end_time(&records), 8);
    }

    #[test]
    fn preempt_resume_spans_add_up() {
        // Transmit 2 of 5, shelve for 4, resume and finish the last 3.
        let records = vec![
            rec(
                0,
                TraceEvent::TransferStart {
                    node: 0,
                    child: 2,
                    work: 5,
                },
            ),
            rec(
                2,
                TraceEvent::TransferPreempt {
                    node: 0,
                    child: 2,
                    remaining: 3,
                },
            ),
            rec(
                2,
                TraceEvent::TransferStart {
                    node: 0,
                    child: 1,
                    work: 4,
                },
            ),
            rec(
                6,
                TraceEvent::TransferComplete {
                    node: 0,
                    child: 1,
                    work: 4,
                },
            ),
            rec(
                6,
                TraceEvent::TransferResume {
                    node: 0,
                    child: 2,
                    remaining: 3,
                },
            ),
            rec(
                9,
                TraceEvent::TransferComplete {
                    node: 0,
                    child: 2,
                    work: 5,
                },
            ),
        ];
        let tl = fold_timelines(&records);
        assert_eq!(tl[0].busy_link, 2 + 4 + 3);
        assert_eq!(tl[0].preemptions, 1);
        assert_eq!(tl[0].resumes, 1);
        assert_eq!(tl[0].transfers_started, 2);
        assert_eq!(tl[0].transfers_completed, 2);
        assert_eq!(tl[0].open_spans, 0);
    }

    #[test]
    fn preempt_at_zero_then_complete_counts_once() {
        let records = vec![
            rec(
                0,
                TraceEvent::TransferStart {
                    node: 0,
                    child: 1,
                    work: 4,
                },
            ),
            rec(
                4,
                TraceEvent::TransferPreempt {
                    node: 0,
                    child: 1,
                    remaining: 0,
                },
            ),
            rec(
                4,
                TraceEvent::TransferComplete {
                    node: 0,
                    child: 1,
                    work: 4,
                },
            ),
        ];
        let tl = fold_timelines(&records);
        assert_eq!(tl[0].busy_link, 4, "the completion must not double-count");
        assert_eq!(tl[0].open_spans, 0);
    }

    #[test]
    fn truncated_tail_reports_open_spans() {
        // A ring tail that lost the compute-start and keeps an unfinished
        // transfer open at the end.
        let records = vec![
            rec(7, TraceEvent::ComputeFinish { node: 1 }),
            rec(
                8,
                TraceEvent::TransferStart {
                    node: 0,
                    child: 1,
                    work: 9,
                },
            ),
        ];
        let tl = fold_timelines(&records);
        assert_eq!(tl[1].tasks_computed, 1);
        assert_eq!(tl[1].busy_compute, 0, "orphan finish adds no span");
        assert_eq!(tl[1].open_spans, 1);
        assert_eq!(tl[0].open_spans, 1, "unfinished transfer is flagged");
    }

    #[test]
    fn join_and_leave_are_stamped() {
        let records = vec![
            rec(5, TraceEvent::NodeJoin { node: 3, parent: 0 }),
            rec(
                9,
                TraceEvent::NodeLeave {
                    node: 3,
                    reclaimed: 2,
                },
            ),
        ];
        let tl = fold_timelines(&records);
        assert_eq!(tl.len(), 4);
        assert_eq!(tl[3].joined_at, Some(5));
        assert_eq!(tl[3].left_at, Some(9));
    }

    #[test]
    fn empty_trace_folds_to_nothing() {
        assert!(fold_timelines(&[]).is_empty());
        assert_eq!(trace_end_time(&[]), 0);
    }
}
