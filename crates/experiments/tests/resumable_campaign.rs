//! Kill/resume bit-identity for durable streaming sweeps.
//!
//! A checkpointed grid sweep stopped after *any* number of shards and
//! relaunched with `resume` must produce per-cell aggregates
//! **bit-identical** to an uninterrupted run — proptested over kill
//! points, thread counts, and shard sizes (the accumulators are exact
//! integers and their merge is associative with `default()` as
//! identity, so this is provable, and here we pin it empirically).
//!
//! Thread counts are exercised with rayon pools scoped per assertion;
//! determinism across pool sizes is the engine's existing contract,
//! re-checked here through the checkpointed path.

use bc_engine::durability::CheckpointError;
use bc_engine::SimConfig;
use bc_experiments::campaign::{
    run_grid_streaming, run_grid_streaming_checkpointed, CampaignGrid, CheckpointPolicy,
    ResumeError,
};
use bc_metrics::OnsetConfig;
use proptest::prelude::*;

/// A grid small enough to sweep hundreds of times under proptest but
/// with several cells and shards so kill points land mid-cell, at cell
/// boundaries, and mid-sweep.
fn tiny_grid(seed: u64, trees_per_cell: usize) -> CampaignGrid {
    CampaignGrid {
        max_nodes: vec![10, 20],
        tasks: vec![200],
        buffers: vec![2, 3],
        comm_max: vec![8],
        compute_scale: vec![100],
        trees_per_cell,
        seed,
        onset: OnsetConfig {
            window_threshold: 50,
            crossings: 2,
        },
    }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    // Proptest reruns cases; a per-case unique suffix keeps directories
    // from bleeding between iterations.
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bc-resume-prop-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stop after `kill_after` shards (any point in the work list, a
    /// deterministic stand-in for SIGKILL at a shard boundary), resume
    /// in a pool with a different thread count, and demand the final
    /// per-cell aggregates equal the uninterrupted single-invocation
    /// run bit for bit.
    #[test]
    fn kill_anywhere_resume_is_bit_identical(
        seed in 0u64..10_000,
        trees_per_cell in 3usize..7,
        shard_size in 1usize..4,
        kill_after in 0usize..16,
        every in 1usize..4,
        threads_a in 1usize..4,
        threads_b in 1usize..4,
    ) {
        let grid = tiny_grid(seed, trees_per_cell);
        let reference = run_grid_streaming(&grid, shard_size, |c| {
            SimConfig::interruptible(c.buffers, c.tasks)
        });

        let dir = fresh_dir("kill");
        let mut policy = CheckpointPolicy::new(&dir, every);
        policy.stop_after_shards = Some(kill_after);
        // The vendored rayon shim has one global worker-count knob;
        // flipping it between invocations is exactly the point — the
        // aggregates must not care.
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads_a)
            .build_global()
            .unwrap();
        let partial = run_grid_streaming_checkpointed(
            &grid,
            shard_size,
            |c| SimConfig::interruptible(c.buffers, c.tasks),
            &policy,
        ).unwrap();
        prop_assert_eq!(partial.shards_done, kill_after.min(partial.shards_total));

        let policy = CheckpointPolicy::new(&dir, every).resuming(true);
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads_b)
            .build_global()
            .unwrap();
        let full = run_grid_streaming_checkpointed(
            &grid,
            shard_size,
            |c| SimConfig::interruptible(c.buffers, c.tasks),
            &policy,
        ).unwrap();
        rayon::ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
        prop_assert!(full.completed);
        if kill_after > 0 {
            prop_assert!(full.resumed_from_generation.is_some());
        }
        prop_assert_eq!(full.results, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Resume after the newest checkpoint generation was torn (truncated
    /// to a random fraction) or bit-flipped: the corruption is detected,
    /// the sweep falls back to the previous good generation, and the
    /// final aggregates are still bit-identical. With only one (now
    /// corrupt) generation, the failure is a typed error — never a
    /// panic, never silent garbage.
    #[test]
    fn corrupt_newest_generation_falls_back_bit_identically(
        seed in 0u64..10_000,
        kill_after in 2usize..10,
        cut_num in 1usize..9,
        flip_coin in 0u8..2,
        flip_byte in 0usize..1_000_000,
    ) {
        let grid = tiny_grid(seed, 4);
        let shard_size = 2;
        let reference = run_grid_streaming(&grid, shard_size, |c| {
            SimConfig::interruptible(c.buffers, c.tasks)
        });

        let dir = fresh_dir("corrupt");
        let mut policy = CheckpointPolicy::new(&dir, 1);
        policy.stop_after_shards = Some(kill_after);
        policy.keep = 16; // retain every generation for this leg
        run_grid_streaming_checkpointed(
            &grid,
            shard_size,
            |c| SimConfig::interruptible(c.buffers, c.tasks),
            &policy,
        ).unwrap();

        // Corrupt the newest generation file.
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "bcc"))
            .collect();
        files.sort();
        prop_assert!(!files.is_empty());
        let newest = files.last().unwrap();
        let bytes = std::fs::read(newest).unwrap();
        if flip_coin == 1 {
            let mut bad = bytes.clone();
            let at = flip_byte % bad.len();
            bad[at] ^= 0x40;
            std::fs::write(newest, &bad).unwrap();
        } else {
            std::fs::write(newest, &bytes[..bytes.len() * cut_num / 10]).unwrap();
        }

        let mut policy = CheckpointPolicy::new(&dir, 1).resuming(true);
        policy.keep = 16;
        let full = run_grid_streaming_checkpointed(
            &grid,
            shard_size,
            |c| SimConfig::interruptible(c.buffers, c.tasks),
            &policy,
        ).unwrap();
        prop_assert!(full.completed);
        prop_assert_eq!(full.results, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// All generations corrupt → typed `NoUsableGeneration`, not a panic.
#[test]
fn all_generations_corrupt_is_a_typed_error() {
    let grid = tiny_grid(7, 3);
    let dir = fresh_dir("allbad");
    let mut policy = CheckpointPolicy::new(&dir, 1);
    policy.stop_after_shards = Some(3);
    run_grid_streaming_checkpointed(
        &grid,
        2,
        |c| SimConfig::interruptible(c.buffers, c.tasks),
        &policy,
    )
    .unwrap();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|x| x == "bcc") {
            std::fs::write(&path, b"not a checkpoint at all").unwrap();
        }
    }
    let policy = CheckpointPolicy::new(&dir, 1).resuming(true);
    match run_grid_streaming_checkpointed(
        &grid,
        2,
        |c| SimConfig::interruptible(c.buffers, c.tasks),
        &policy,
    ) {
        Err(ResumeError::Checkpoint(CheckpointError::NoUsableGeneration)) => {}
        other => panic!("expected NoUsableGeneration, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mid-sweep kill between checkpoint boundaries only ever *repeats*
/// work: resuming replays at most `every_shards` shards and the counts
/// never double (the cursor and the accumulators move atomically,
/// within one container write).
#[test]
fn counts_never_double_across_repeated_kills() {
    let grid = tiny_grid(99, 5);
    let shard_size = 2;
    let reference = run_grid_streaming(&grid, shard_size, |c| {
        SimConfig::interruptible(c.buffers, c.tasks)
    });
    let dir = fresh_dir("repeat");
    // Kill after every single shard until the sweep completes.
    let mut kills = 0usize;
    loop {
        let mut policy = CheckpointPolicy::new(&dir, 1).resuming(true);
        policy.stop_after_shards = Some(1);
        let outcome = run_grid_streaming_checkpointed(
            &grid,
            shard_size,
            |c| SimConfig::interruptible(c.buffers, c.tasks),
            &policy,
        )
        .unwrap();
        if outcome.completed {
            assert_eq!(outcome.results, reference);
            break;
        }
        kills += 1;
        assert!(kills < 1000, "sweep never completed");
    }
    assert!(kills > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
