//! Reconciliation of the two latency bookkeepers: the engine's
//! `ArrivalStats` accumulators (admit/dispatch logs filled in by the
//! kernel as it runs) against logs re-derived by folding the emitted
//! trace. Both views of the same run must produce bit-identical
//! [`LatencyProfile`]s — if the kernel's accounting and its telemetry
//! ever disagree, one of them is lying.

use bc_engine::{
    AdmissionPolicy, ArrivalPlan, ArrivalProcess, SimConfig, SimWorkspace, Simulation, TaskClass,
};
use bc_metrics::latency_profile;
use bc_platform::RandomTreeConfig;
use bc_simcore::{TraceEvent, VecSink};
use proptest::prelude::*;

fn arb_plan() -> impl Strategy<Value = ArrivalPlan> {
    (
        any::<u64>(),
        (1u64..6, 1u64..25),                    // poisson mean_gap, count
        (0u64..20, 1u64..12, 1u64..3, 1u64..4), // burst phase, period, size, bursts
        (1u64..3, 4u64..10),                    // burst width, queue cap
        any::<bool>(),
    )
        .prop_map(
            |(seed, (mean_gap, count), (phase, period, size, bursts), (width, cap), defer)| {
                ArrivalPlan {
                    seed,
                    classes: vec![
                        TaskClass {
                            name: "p".into(),
                            work_units: 1,
                            process: ArrivalProcess::Poisson { mean_gap, count },
                        },
                        TaskClass {
                            name: "b".into(),
                            work_units: width,
                            process: ArrivalProcess::Burst {
                                phase,
                                period,
                                size,
                                bursts,
                            },
                        },
                    ],
                    queue_cap: cap,
                    policy: if defer {
                        AdmissionPolicy::Defer
                    } else {
                        AdmissionPolicy::Drop
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Folding the trace reproduces the accumulators' latency profile
    /// exactly: admissions from `TaskAdmit` (expanded by units),
    /// completions from `ComputeFinish`, and — in the non-interruptible
    /// protocol, where a root take and its `TransferStart` share an
    /// instant — dispatches from root `ComputeStart`/`TransferStart`
    /// events, all in stream order. (Interruptibly, a root dispatch
    /// fills a slot whose transfer may only *activate* later, so the
    /// trace legitimately cannot reconstruct dispatch instants; the
    /// sojourn reconciliation still must hold.)
    #[test]
    fn trace_fold_matches_accumulator_profile(
        plan in arb_plan(),
        tree_seed in 0u64..1_000_000,
        interruptible in any::<bool>(),
    ) {
        let tree = RandomTreeConfig {
            min_nodes: 3,
            max_nodes: 9,
            comm_min: 1,
            comm_max: 7,
            compute_scale: 25,
        }
        .generate(tree_seed);
        let base = if interruptible {
            SimConfig::interruptible(2, 1)
        } else {
            SimConfig::non_interruptible_fixed(2, 1)
        };
        let cfg = base.with_arrivals(plan).with_checked(false);
        let sim = Simulation::traced(tree, cfg, SimWorkspace::new(), VecSink::new());
        let (result, _, sink) = sim.run_traced();

        let mut admit = Vec::new();
        let mut dispatch = Vec::new();
        let mut completion = Vec::new();
        for r in &sink.records {
            match r.event {
                TraceEvent::TaskAdmit { units, .. } => {
                    admit.extend(std::iter::repeat_n(r.time, units as usize));
                }
                // A unit leaves the repository queue by being computed
                // at the root or sent down a root link.
                TraceEvent::ComputeStart { node: 0 } => dispatch.push(r.time),
                TraceEvent::TransferStart { node: 0, .. } => dispatch.push(r.time),
                TraceEvent::ComputeFinish { .. } => completion.push(r.time),
                _ => {}
            }
        }

        let ar = &result.arrivals;
        prop_assert_eq!(&admit, &ar.admit_times, "admission log diverged");
        prop_assert_eq!(&completion, &result.completion_times, "completion log diverged");

        let from_accum = latency_profile(
            &ar.admit_times,
            &ar.dispatch_times,
            &result.completion_times,
        );
        // Sojourns need only the admit and completion logs, so the
        // trace-folded profile must agree bit for bit in both protocols.
        let from_trace = latency_profile(&admit, &dispatch, &completion);
        prop_assert_eq!(&from_trace.sojourn, &from_accum.sojourn);

        if !interruptible {
            prop_assert_eq!(&dispatch, &ar.dispatch_times, "dispatch log diverged");
            prop_assert_eq!(&from_trace, &from_accum);
        }
        // Fault-free, the decomposition identity holds sample-wise.
        let sum = |s: &[u64]| s.iter().sum::<u64>();
        prop_assert_eq!(
            sum(from_accum.sojourn.samples()),
            sum(from_accum.queue_wait.samples()) + sum(from_accum.service.samples())
        );
    }
}
