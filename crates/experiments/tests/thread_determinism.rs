//! The `split_seed` contract, end to end: a campaign's results are a pure
//! function of `(seed, tree_config, protocol)` — the worker-thread count
//! (and therefore which worker simulates which tree, with which reused
//! workspace) must not change a single bit of any summary. The streaming
//! sharded engine extends the contract: its merged accumulator must be
//! bit-identical to folding the materialized campaign, again at every
//! thread count.

use bc_engine::{AdmissionPolicy, ArrivalPlan, ArrivalProcess, SimConfig, TaskClass};
use bc_experiments::campaign::{
    accumulate_materialized, run_campaign, run_campaign_streaming, run_campaign_with_results,
    CampaignConfig, TreeRun,
};
use bc_metrics::OnsetConfig;
use bc_platform::RandomTreeConfig;
use std::sync::Mutex;

/// Both tests below mutate the process-wide worker-pool override
/// (`build_global` on the vendored shim is a settable global), so they
/// must not run concurrently within this test binary.
static POOL: Mutex<()> = Mutex::new(());

fn campaign() -> CampaignConfig {
    CampaignConfig {
        trees: 24,
        tasks: 1_500,
        seed: 2003,
        tree_config: RandomTreeConfig {
            min_nodes: 10,
            max_nodes: 60,
            comm_min: 1,
            comm_max: 20,
            compute_scale: 500,
        },
        onset: OnsetConfig::default(),
    }
}

fn set_threads(threads: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .unwrap();
}

/// Every field a campaign reports, for exact comparison.
fn fingerprint(runs: &[TreeRun]) -> Vec<(usize, Option<u64>, u64, u64, u32, String)> {
    runs.iter()
        .map(|r| {
            (
                r.index,
                r.onset,
                r.end_time,
                r.events,
                r.max_buffers,
                format!("{:?}", r.optimal_rate),
            )
        })
        .collect()
}

/// An open-world config for the arrival-leg tests below: a Poisson
/// background plus a burst class that overruns the queue, deferred. The
/// plan is a pure function of the campaign seed, so every worker
/// regenerates the same schedule.
fn arrival_config(seed: u64) -> SimConfig {
    let plan = ArrivalPlan {
        seed,
        classes: vec![
            TaskClass {
                name: "background".into(),
                work_units: 1,
                process: ArrivalProcess::Poisson {
                    mean_gap: 3,
                    count: 200,
                },
            },
            TaskClass {
                name: "burst".into(),
                work_units: 4,
                process: ArrivalProcess::Burst {
                    phase: 10,
                    period: 30,
                    size: 3,
                    bursts: 10,
                },
            },
        ],
        queue_cap: 6,
        policy: AdmissionPolicy::Defer,
    };
    SimConfig::interruptible(3, 1).with_arrivals(plan)
}

#[test]
fn campaign_summaries_are_bit_identical_across_thread_counts() {
    let _pool = POOL.lock().unwrap();
    let c = campaign();
    let mut baselines: Vec<Vec<_>> = Vec::new();
    for threads in [1usize, 2, 4, 7] {
        set_threads(threads);
        assert_eq!(rayon::current_num_threads(), threads);
        let ic = run_campaign(&c, |t| SimConfig::interruptible(3, t));
        let nonic = run_campaign(&c, |t| SimConfig::non_interruptible(1, t));
        let arrivals = run_campaign(&c, |_| arrival_config(c.seed));
        baselines.push(fingerprint(&ic));
        baselines.push(fingerprint(&nonic));
        baselines.push(fingerprint(&arrivals));
    }
    // Restore automatic sizing; the global override outlives the test.
    set_threads(0);
    for group in baselines.chunks(3).skip(1) {
        assert_eq!(
            baselines[0], group[0],
            "IC campaign differs from the single-thread baseline"
        );
        assert_eq!(
            baselines[1], group[1],
            "non-IC campaign differs from the single-thread baseline"
        );
        assert_eq!(
            baselines[2], group[2],
            "open-world campaign differs from the single-thread baseline"
        );
    }
}

/// The streaming half of the contract: at 1/2/4/7 worker threads and
/// across shard sizes (including ones that leave a ragged final shard),
/// the streamed accumulator equals the materialized fold bit for bit —
/// the shard → worker assignment must be invisible in the aggregate.
#[test]
fn streamed_campaign_is_bit_identical_to_materialized_across_thread_counts() {
    let _pool = POOL.lock().unwrap();
    let c = campaign();
    set_threads(1);
    let reference = accumulate_materialized(&run_campaign_with_results(&c, |t| {
        SimConfig::interruptible(3, t)
    }));
    for threads in [1usize, 2, 4, 7] {
        set_threads(threads);
        assert_eq!(rayon::current_num_threads(), threads);
        for shard_size in [1usize, 5, 8, 24, 100] {
            let streamed =
                run_campaign_streaming(&c, shard_size, |t| SimConfig::interruptible(3, t));
            assert_eq!(
                streamed, reference,
                "streamed aggregate diverged at {threads} threads, shard size {shard_size}"
            );
        }
    }
    set_threads(0);
}

/// The same contract for the open-world arrival leg: the batch
/// (materialized) and streaming sharded entry points agree bit for bit
/// on a streamed-workload campaign at 1/2/4 worker threads.
#[test]
fn arrival_campaign_is_bit_identical_across_entry_points_and_threads() {
    let _pool = POOL.lock().unwrap();
    let c = campaign();
    set_threads(1);
    let reference =
        accumulate_materialized(&run_campaign_with_results(&c, |_| arrival_config(c.seed)));
    for threads in [1usize, 2, 4] {
        set_threads(threads);
        assert_eq!(rayon::current_num_threads(), threads);
        for shard_size in [1usize, 8, 24] {
            let streamed = run_campaign_streaming(&c, shard_size, |_| arrival_config(c.seed));
            assert_eq!(
                streamed, reference,
                "open-world streamed aggregate diverged at {threads} threads, \
                 shard size {shard_size}"
            );
        }
    }
    set_threads(0);
}
