//! The `split_seed` contract, end to end: a campaign's results are a pure
//! function of `(seed, tree_config, protocol)` — the worker-thread count
//! (and therefore which worker simulates which tree, with which reused
//! workspace) must not change a single bit of any summary. The streaming
//! sharded engine extends the contract: its merged accumulator must be
//! bit-identical to folding the materialized campaign, again at every
//! thread count.

use bc_engine::SimConfig;
use bc_experiments::campaign::{
    accumulate_materialized, run_campaign, run_campaign_streaming, run_campaign_with_results,
    CampaignConfig, TreeRun,
};
use bc_metrics::OnsetConfig;
use bc_platform::RandomTreeConfig;
use std::sync::Mutex;

/// Both tests below mutate the process-wide worker-pool override
/// (`build_global` on the vendored shim is a settable global), so they
/// must not run concurrently within this test binary.
static POOL: Mutex<()> = Mutex::new(());

fn campaign() -> CampaignConfig {
    CampaignConfig {
        trees: 24,
        tasks: 1_500,
        seed: 2003,
        tree_config: RandomTreeConfig {
            min_nodes: 10,
            max_nodes: 60,
            comm_min: 1,
            comm_max: 20,
            compute_scale: 500,
        },
        onset: OnsetConfig::default(),
    }
}

fn set_threads(threads: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .unwrap();
}

/// Every field a campaign reports, for exact comparison.
fn fingerprint(runs: &[TreeRun]) -> Vec<(usize, Option<u64>, u64, u64, u32, String)> {
    runs.iter()
        .map(|r| {
            (
                r.index,
                r.onset,
                r.end_time,
                r.events,
                r.max_buffers,
                format!("{:?}", r.optimal_rate),
            )
        })
        .collect()
}

#[test]
fn campaign_summaries_are_bit_identical_across_thread_counts() {
    let _pool = POOL.lock().unwrap();
    let c = campaign();
    let mut baselines: Vec<Vec<_>> = Vec::new();
    for threads in [1usize, 2, 4, 7] {
        set_threads(threads);
        assert_eq!(rayon::current_num_threads(), threads);
        let ic = run_campaign(&c, |t| SimConfig::interruptible(3, t));
        let nonic = run_campaign(&c, |t| SimConfig::non_interruptible(1, t));
        baselines.push(fingerprint(&ic));
        baselines.push(fingerprint(&nonic));
    }
    // Restore automatic sizing; the global override outlives the test.
    set_threads(0);
    for pair in baselines.chunks(2).skip(1) {
        assert_eq!(
            baselines[0], pair[0],
            "IC campaign differs from the single-thread baseline"
        );
        assert_eq!(
            baselines[1], pair[1],
            "non-IC campaign differs from the single-thread baseline"
        );
    }
}

/// The streaming half of the contract: at 1/2/4/7 worker threads and
/// across shard sizes (including ones that leave a ragged final shard),
/// the streamed accumulator equals the materialized fold bit for bit —
/// the shard → worker assignment must be invisible in the aggregate.
#[test]
fn streamed_campaign_is_bit_identical_to_materialized_across_thread_counts() {
    let _pool = POOL.lock().unwrap();
    let c = campaign();
    set_threads(1);
    let reference = accumulate_materialized(&run_campaign_with_results(&c, |t| {
        SimConfig::interruptible(3, t)
    }));
    for threads in [1usize, 2, 4, 7] {
        set_threads(threads);
        assert_eq!(rayon::current_num_threads(), threads);
        for shard_size in [1usize, 5, 8, 24, 100] {
            let streamed =
                run_campaign_streaming(&c, shard_size, |t| SimConfig::interruptible(3, t));
            assert_eq!(
                streamed, reference,
                "streamed aggregate diverged at {threads} threads, shard size {shard_size}"
            );
        }
    }
    set_threads(0);
}
