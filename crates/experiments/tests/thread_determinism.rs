//! The `split_seed` contract, end to end: a campaign's results are a pure
//! function of `(seed, tree_config, protocol)` — the worker-thread count
//! (and therefore which worker simulates which tree, with which reused
//! workspace) must not change a single bit of any summary.

use bc_engine::SimConfig;
use bc_experiments::campaign::{run_campaign, CampaignConfig, TreeRun};
use bc_metrics::OnsetConfig;
use bc_platform::RandomTreeConfig;

fn campaign() -> CampaignConfig {
    CampaignConfig {
        trees: 24,
        tasks: 1_500,
        seed: 2003,
        tree_config: RandomTreeConfig {
            min_nodes: 10,
            max_nodes: 60,
            comm_min: 1,
            comm_max: 20,
            compute_scale: 500,
        },
        onset: OnsetConfig::default(),
    }
}

/// Every field a campaign reports, for exact comparison.
fn fingerprint(runs: &[TreeRun]) -> Vec<(usize, Option<u64>, u64, u64, u32, String)> {
    runs.iter()
        .map(|r| {
            (
                r.index,
                r.onset,
                r.end_time,
                r.events,
                r.max_buffers,
                format!("{:?}", r.optimal_rate),
            )
        })
        .collect()
}

#[test]
fn campaign_summaries_are_bit_identical_across_thread_counts() {
    let c = campaign();
    let mut baselines: Vec<Vec<_>> = Vec::new();
    for threads in [1usize, 2, 4, 7] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .unwrap();
        assert_eq!(rayon::current_num_threads(), threads);
        let ic = run_campaign(&c, |t| SimConfig::interruptible(3, t));
        let nonic = run_campaign(&c, |t| SimConfig::non_interruptible(1, t));
        baselines.push(fingerprint(&ic));
        baselines.push(fingerprint(&nonic));
    }
    // Restore automatic sizing for other tests in this binary (none today,
    // but the global override outlives the test).
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .unwrap();
    for pair in baselines.chunks(2).skip(1) {
        assert_eq!(
            baselines[0], pair[0],
            "IC campaign differs from the single-thread baseline"
        );
        assert_eq!(
            baselines[1], pair[1],
            "non-IC campaign differs from the single-thread baseline"
        );
    }
}
