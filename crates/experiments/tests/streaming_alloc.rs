//! Extends the engine's counting-allocator discipline to the streaming
//! campaign loop: folding into a [`CampaignAccumulator`] is *exactly*
//! allocation-free, and a whole streaming sharded campaign allocates
//! O(trees) — per-tree setup (generation, analysis, result summary),
//! never per event. A campaign whose runs process ~8x the events must
//! not allocate meaningfully more than one with short runs.
//!
//! The vendored worker shim runs inline on the calling thread at one
//! worker, so a thread-local counter observes every allocation the
//! streaming engine makes.

use bc_engine::SimConfig;
use bc_experiments::campaign::{
    accumulate_materialized, run_campaign_streaming, run_campaign_with_results,
    CampaignAccumulator, CampaignConfig,
};
use bc_metrics::OnsetConfig;
use bc_platform::RandomTreeConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

thread_local! {
    // const-init: no lazy initialization, so reading the counter from
    // inside `alloc` cannot itself allocate or recurse.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

static COUNTING: AtomicBool = AtomicBool::new(false);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.with(|c| c.set(c.get() + 1));
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.with(|c| c.set(c.get() + 1));
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn campaign(tasks: u64) -> CampaignConfig {
    CampaignConfig {
        trees: 12,
        tasks,
        seed: 2003,
        tree_config: RandomTreeConfig {
            min_nodes: 5,
            max_nodes: 40,
            comm_min: 1,
            comm_max: 15,
            compute_scale: 200,
        },
        onset: OnsetConfig {
            window_threshold: 100,
            crossings: 2,
        },
    }
}

/// The accumulator itself is integer arithmetic: merging shard
/// accumulators performs **zero** heap allocations, and folding a run's
/// summary in costs at most a tiny constant (converting an oversized
/// exact rational rate to fixed point can allocate a scratch bignum —
/// nothing that scales with events). This is what lets the streaming
/// engine retire each tree's result immediately without any aggregation
/// cost showing up per event.
#[test]
fn fold_is_constant_and_merge_is_allocation_free() {
    let runs = run_campaign_with_results(&campaign(500), |t| SimConfig::interruptible(3, t));
    let (a, b) = runs.split_at(runs.len() / 2);

    COUNTING.store(true, Ordering::SeqCst);
    let fold_before = allocs();
    let mut left = CampaignAccumulator::new();
    for (run, result) in a {
        left.fold_summary(run, result);
    }
    let mut right = CampaignAccumulator::new();
    for (run, result) in b {
        right.fold_summary(run, result);
    }
    let fold_allocs = allocs() - fold_before;

    let merge_before = allocs();
    let mut total = left.clone();
    total.merge(&right);
    let merge_allocs = allocs() - merge_before;
    COUNTING.store(false, Ordering::SeqCst);

    assert_eq!(merge_allocs, 0, "accumulator merge allocated");
    assert!(
        fold_allocs <= 4 * runs.len() as u64,
        "fold allocated {fold_allocs} times over {} runs — more than the \
         small per-run constant the rate conversion can justify",
        runs.len()
    );
    assert_eq!(total, accumulate_materialized(&runs));
}

/// End to end: a streaming sharded campaign allocates per *tree*
/// (generation, oracle analysis, summary vectors), not per *event*.
/// Scaling each run's event count ~8x must leave the campaign's
/// allocation count essentially unchanged — the steady-state event loop
/// inside each shard is allocation-free after the workspace arenas warm
/// up, exactly as the engine's `alloc_free` suite proves for single
/// runs.
#[test]
fn streaming_campaign_allocates_per_tree_not_per_event() {
    // One inline worker so the thread-local counter sees the whole run.
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build_global()
        .unwrap();

    let measure = |tasks: u64| {
        let c = campaign(tasks);
        // Warm-up pass: libstd and the generator lazily initialize some
        // one-time state (thread RNG, etc.) the first time through.
        let _ = run_campaign_streaming(&c, 4, |t| SimConfig::interruptible(3, t));
        COUNTING.store(true, Ordering::SeqCst);
        let before = allocs();
        let acc = run_campaign_streaming(&c, 4, |t| SimConfig::interruptible(3, t));
        let after = allocs();
        COUNTING.store(false, Ordering::SeqCst);
        (after - before, acc.run_stats.events)
    };

    let (allocs_short, events_short) = measure(500);
    let (allocs_long, events_long) = measure(4_000);

    // Premise: the long campaign really does far more simulation work,
    // and the counter really is observing the inline worker.
    assert!(
        events_long >= events_short * 4,
        "expected ~8x events, got {events_short} vs {events_long}"
    );
    assert!(
        allocs_short > c_trees(),
        "counter saw almost nothing ({allocs_short} allocations) — \
         streaming no longer runs inline at one worker?"
    );

    // The claim: allocations track trees, not events. Everything that
    // allocates (tree generation, Theorem-1 analysis, per-run summary
    // vectors) happens once per tree; the event loop itself is
    // allocation-free, so 8x the events must not even double the count.
    assert!(
        allocs_long < allocs_short * 2,
        "streaming campaign allocations scaled with events: \
         {allocs_short} allocations over {events_short} events vs \
         {allocs_long} over {events_long}"
    );
}

fn c_trees() -> u64 {
    campaign(500).trees as u64
}
