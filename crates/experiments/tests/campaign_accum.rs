//! Property tests for [`CampaignAccumulator`] over **real** campaign
//! output: merge is associative and commutative with `new()` as the
//! identity, any sharding of the materialized runs folds to the same
//! accumulator, and the streaming sharded engine reproduces the
//! materialized aggregate bit for bit at arbitrary shard sizes.
//!
//! The campaign is simulated once (`OnceLock`) and the properties
//! exercise the algebra over its `(TreeRun, RunResult)` pairs, so 256
//! cases stay cheap; only the streaming property re-runs simulations
//! and therefore caps its case count.

use bc_engine::RunResult;
use bc_engine::SimConfig;
use bc_experiments::campaign::{
    accumulate_materialized, run_campaign_streaming, run_campaign_with_results,
    CampaignAccumulator, CampaignConfig, TreeRun,
};
use bc_metrics::OnsetConfig;
use bc_platform::RandomTreeConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

fn campaign() -> CampaignConfig {
    CampaignConfig {
        trees: 18,
        tasks: 400,
        seed: 2003,
        tree_config: RandomTreeConfig {
            min_nodes: 5,
            max_nodes: 40,
            comm_min: 1,
            comm_max: 15,
            compute_scale: 200,
        },
        // ≤400-task runs need a window the size of the run to ever
        // detect onset (the 10k-task default window of 300 would not).
        onset: OnsetConfig {
            window_threshold: 100,
            crossings: 2,
        },
    }
}

/// The materialized campaign, simulated exactly once for all properties.
fn materialized() -> &'static [(TreeRun, RunResult)] {
    static RUNS: OnceLock<Vec<(TreeRun, RunResult)>> = OnceLock::new();
    RUNS.get_or_init(|| run_campaign_with_results(&campaign(), |t| SimConfig::interruptible(3, t)))
}

fn fold_all(pairs: &[(TreeRun, RunResult)]) -> CampaignAccumulator {
    let mut acc = CampaignAccumulator::new();
    for (run, result) in pairs {
        acc.fold_summary(run, result);
    }
    acc
}

proptest! {
    /// Any two cut points shard the campaign into three accumulators
    /// that merge back to the sequential fold regardless of association
    /// or order.
    #[test]
    fn merge_is_associative_and_commutative(cut_a in 0usize..19, cut_b in 0usize..19) {
        let runs = materialized();
        let whole = accumulate_materialized(runs);
        let (i, j) = (cut_a.min(cut_b), cut_a.max(cut_b));
        let shards = [&runs[..i], &runs[i..j], &runs[j..]].map(fold_all);

        let mut left = shards[0].clone();
        left.merge(&shards[1]);
        left.merge(&shards[2]);
        prop_assert_eq!(&left, &whole);

        let mut tail = shards[1].clone();
        tail.merge(&shards[2]);
        let mut right = shards[0].clone();
        right.merge(&tail);
        prop_assert_eq!(&right, &whole, "merge must be associative");

        let mut rev = shards[2].clone();
        rev.merge(&shards[1]);
        rev.merge(&shards[0]);
        prop_assert_eq!(&rev, &whole, "merge must be commutative");
    }

    /// `new()` is the merge identity on both sides, anywhere in a chain.
    #[test]
    fn identity_can_be_inserted_anywhere(cut in 0usize..19) {
        let runs = materialized();
        let whole = accumulate_materialized(runs);
        let (a, b) = runs.split_at(cut.min(runs.len()));

        let mut acc = CampaignAccumulator::new();
        acc.merge(&fold_all(a));
        acc.merge(&CampaignAccumulator::new());
        acc.merge(&fold_all(b));
        prop_assert_eq!(&acc, &whole);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The streaming sharded engine is bit-identical to folding the
    /// materialized campaign, at arbitrary shard sizes (including
    /// degenerate size 1 and sizes past the tree count).
    #[test]
    fn streaming_matches_materialized_at_arbitrary_shard_size(shard_size in 1usize..25) {
        let c = campaign();
        let reference = accumulate_materialized(materialized());
        let streamed = run_campaign_streaming(&c, shard_size, |t| SimConfig::interruptible(3, t));
        prop_assert_eq!(&streamed, &reference);
    }
}
