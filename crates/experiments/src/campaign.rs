//! Shared campaign infrastructure: run one protocol over many random
//! trees in parallel and summarize each run.
//!
//! Reproducibility: tree `i` of a campaign is generated from
//! `split_seed(campaign_seed, i)`, so any subset of a campaign can be
//! re-run independently and results never depend on thread scheduling.

use bc_engine::durability::{fnv1a64, CheckpointError, CheckpointKind, CheckpointStore};
use bc_engine::{RunResult, RunStatsAccumulator, SimConfig, SimWorkspace};
use bc_metrics::{detect_onset, OnsetConfig};
use bc_platform::{RandomTreeConfig, Tree, UsedStats};
use bc_rational::Rational;
use bc_simcore::split_seed;
use bc_steady::SteadyState;
use rayon::prelude::*;

/// Log-2 bucket count of the streaming histograms (onset times up to
/// 2^15 and buffer pools up to 2^15 resolve to distinct buckets; larger
/// values saturate into the last one).
pub const HIST_BUCKETS: usize = 16;

/// Configuration of a multi-tree campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of random trees.
    pub trees: usize,
    /// Tasks per application run.
    pub tasks: u64,
    /// Campaign seed (tree `i` uses `split_seed(seed, i)`).
    pub seed: u64,
    /// Random-tree generator parameters (§4.1).
    pub tree_config: RandomTreeConfig,
    /// Onset-detection parameters (§4.1 heuristic).
    pub onset: OnsetConfig,
}

impl CampaignConfig {
    /// The paper's campaign shape with a configurable tree count
    /// (25 000 at full paper scale).
    pub fn paper(trees: usize, tasks: u64, seed: u64) -> Self {
        CampaignConfig {
            trees,
            tasks,
            seed,
            tree_config: RandomTreeConfig::default(),
            onset: OnsetConfig::default(),
        }
    }

    /// The tree for campaign index `i`.
    pub fn tree(&self, i: usize) -> Tree {
        campaign_tree(&self.tree_config, self.seed, i)
    }

    /// Generates and analyzes tree `i` exactly once; the result is shared
    /// by the Theorem 1 oracle and every simulation run over the tree.
    pub fn prepare(&self, i: usize) -> PreparedTree {
        let tree = self.tree(i);
        let analysis = SteadyState::analyze(&tree);
        PreparedTree {
            index: i,
            tree,
            analysis,
        }
    }

    /// Prepares the whole campaign population in parallel.
    pub fn prepare_all(&self) -> Vec<PreparedTree> {
        (0..self.trees)
            .into_par_iter()
            .map(|i| self.prepare(i))
            .collect()
    }
}

/// The canonical campaign indexing scheme: tree `i` of a population
/// seeded by `seed`. Every experiment that walks a tree population uses
/// this one function, so index `i` names the same platform everywhere.
pub fn campaign_tree(tree_config: &RandomTreeConfig, seed: u64, i: usize) -> Tree {
    tree_config.generate(split_seed(seed, i as u64))
}

/// A campaign tree plus its steady-state analysis, generated once and
/// reused across protocols (multi-protocol experiments like Table 1 and
/// Fig 6 previously regenerated and re-analyzed every tree per protocol).
#[derive(Clone, Debug)]
pub struct PreparedTree {
    /// Campaign index of the tree.
    pub index: usize,
    /// The generated platform.
    pub tree: Tree,
    /// Theorem 1 analysis of the tree (the oracle side).
    pub analysis: SteadyState,
}

/// Summary of one simulated tree (completion times are reduced to the
/// onset verdict and buffer statistics to keep big campaigns in memory).
#[derive(Clone, Debug)]
pub struct TreeRun {
    /// Campaign index of the tree.
    pub index: usize,
    /// Node count.
    pub nodes: usize,
    /// Tree depth.
    pub depth: usize,
    /// Exact optimal steady-state rate from Theorem 1.
    pub optimal_rate: Rational,
    /// Onset window (None = never reached optimal steady state).
    pub onset: Option<u64>,
    /// Global max buffer-pool size across nodes.
    pub max_buffers: u32,
    /// `(tasks_completed, global max buffers so far)` checkpoints.
    pub checkpoint_max_buffers: Vec<(u64, u32)>,
    /// Size/depth of the ancestor-closed hull of nodes that computed ≥ 1
    /// task (Fig 6's "used nodes").
    pub used: UsedStats,
    /// Wall-clock of the simulated run in timesteps.
    pub end_time: u64,
    /// Simulator effort.
    pub events: u64,
}

impl TreeRun {
    /// Did this run reach the optimal steady-state rate?
    pub fn reached(&self) -> bool {
        self.onset.is_some()
    }
}

/// Runs `make_config(tasks)`-configured simulations over every tree of
/// the campaign, in parallel, and summarizes each.
pub fn run_campaign(
    campaign: &CampaignConfig,
    make_config: impl Fn(u64) -> SimConfig + Sync,
) -> Vec<TreeRun> {
    run_campaign_prepared(&campaign.prepare_all(), campaign, make_config)
}

/// Like [`run_campaign`], but over an already-prepared population: the
/// trees and their oracle analyses are shared, not regenerated. Callers
/// running several protocols over the same population should prepare once
/// and call this per protocol.
pub fn run_campaign_prepared(
    prepared: &[PreparedTree],
    campaign: &CampaignConfig,
    make_config: impl Fn(u64) -> SimConfig + Sync,
) -> Vec<TreeRun> {
    prepared
        .par_iter()
        .map_init(SimWorkspace::new, |ws, p| {
            // Each worker thread keeps one workspace for its whole share
            // of the campaign, so after its first few trees warm the
            // arenas the event loop never allocates (see the engine's
            // `alloc_free` test). Results are identical at any thread
            // count: each run depends only on its tree and config.
            let result = ws.run(p.tree.clone(), make_config(campaign.tasks));
            summarize(p.index, &p.tree, &p.analysis, &result, campaign.onset)
        })
        .collect()
}

/// Summarizes one finished run.
pub fn summarize(
    index: usize,
    tree: &Tree,
    analysis: &SteadyState,
    result: &RunResult,
    onset_cfg: OnsetConfig,
) -> TreeRun {
    let optimal = analysis.optimal_rate();
    let onset = detect_onset(&result.completion_times, &optimal, onset_cfg);
    TreeRun {
        index,
        nodes: tree.len(),
        depth: tree.depth(),
        optimal_rate: optimal,
        onset,
        max_buffers: result.max_buffers(),
        checkpoint_max_buffers: result.checkpoint_max_buffers.clone(),
        used: tree.used_subtree_stats(&result.used_nodes()),
        end_time: result.end_time,
        events: result.events_processed,
    }
}

/// Fraction of runs that reached the optimal steady state.
pub fn fraction_reached(runs: &[TreeRun]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().filter(|r| r.reached()).count() as f64 / runs.len() as f64
}

// ---------------------------------------------------------------------------
// Streaming sharded campaigns
// ---------------------------------------------------------------------------

/// Log-2 histogram bucket of a value: 0 → 0, otherwise
/// `floor(log2(v)) + 1`, saturating into the last bucket.
fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Exact, mergeable aggregate of a campaign — everything the reports
/// derive from a `Vec<TreeRun>`, folded into integer counters so a
/// streamed sharded campaign never materializes per-tree results.
///
/// Like [`bc_engine::RunStatsAccumulator`] (embedded here for the raw
/// engine facts), every field is an integer sum/min/max/histogram, so
/// `merge` is exact, associative, and commutative, and `default()` is
/// the merge identity: a sharded streamed campaign produces
/// **bit-identical** aggregates to folding the materialized
/// [`TreeRun`]s, at any thread count and any shard size. The optimal
/// rate is accumulated in fixed point (microtasks per timestep, rounded
/// from the correctly-rounded `to_f64` of the exact rational) for the
/// same reason — an `f64` sum would be grouping-sensitive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignAccumulator {
    /// Raw engine-level facts (events, end times, buffers, faults).
    pub run_stats: RunStatsAccumulator,
    /// Runs that reached the optimal steady-state rate.
    pub reached: u64,
    /// Sum of onset times over reached runs.
    pub onset_sum: u128,
    /// Largest onset time seen.
    pub onset_max: u64,
    /// Log-2 histogram of onset times (reached runs only).
    pub onset_hist: [u64; HIST_BUCKETS],
    /// Log-2 histogram of per-run global max buffer-pool sizes.
    pub max_buffers_hist: [u64; HIST_BUCKETS],
    /// Sum of node counts.
    pub nodes_sum: u128,
    /// Largest node count.
    pub nodes_max: u64,
    /// Sum of tree depths.
    pub depth_sum: u128,
    /// Largest tree depth.
    pub depth_max: u64,
    /// Sum of used-hull sizes (Fig 6's "used nodes").
    pub used_size_sum: u128,
    /// Sum of used-hull depths.
    pub used_depth_sum: u128,
    /// Sum of optimal rates in fixed point (microtasks per timestep,
    /// `round(rate * 1e6)` per tree).
    pub rate_micros_sum: u128,
}

impl Default for CampaignAccumulator {
    fn default() -> Self {
        CampaignAccumulator {
            run_stats: RunStatsAccumulator::default(),
            reached: 0,
            onset_sum: 0,
            onset_max: 0,
            onset_hist: [0; HIST_BUCKETS],
            max_buffers_hist: [0; HIST_BUCKETS],
            nodes_sum: 0,
            nodes_max: 0,
            depth_sum: 0,
            depth_max: 0,
            used_size_sum: 0,
            used_depth_sum: 0,
            rate_micros_sum: 0,
        }
    }
}

impl CampaignAccumulator {
    /// The merge identity (an accumulator over zero trees).
    pub fn new() -> Self {
        Self::default()
    }

    /// Trees folded in.
    pub fn trees(&self) -> u64 {
        self.run_stats.runs
    }

    /// Folds one summarized run in. The streaming path and the
    /// materialized path both funnel through this, so their aggregates
    /// agree bit for bit by construction.
    pub fn fold_summary(&mut self, run: &TreeRun, result: &RunResult) {
        self.run_stats.fold(result);
        if let Some(onset) = run.onset {
            self.reached += 1;
            self.onset_sum += onset as u128;
            self.onset_max = self.onset_max.max(onset);
            self.onset_hist[log2_bucket(onset)] += 1;
        }
        self.max_buffers_hist[log2_bucket(run.max_buffers as u64)] += 1;
        self.nodes_sum += run.nodes as u128;
        self.nodes_max = self.nodes_max.max(run.nodes as u64);
        self.depth_sum += run.depth as u128;
        self.depth_max = self.depth_max.max(run.depth as u64);
        self.used_size_sum += run.used.size as u128;
        self.used_depth_sum += run.used.depth as u128;
        self.rate_micros_sum += (run.optimal_rate.to_f64() * 1e6).round() as u128;
    }

    /// Summarizes and folds one raw run (the streaming path: nothing of
    /// the run outlives this call).
    pub fn record(
        &mut self,
        index: usize,
        tree: &Tree,
        analysis: &SteadyState,
        result: &RunResult,
        onset_cfg: OnsetConfig,
    ) {
        let run = summarize(index, tree, analysis, result, onset_cfg);
        self.fold_summary(&run, result);
    }

    /// Merges another accumulator in (exact; associative and
    /// commutative; `default()` is the identity).
    pub fn merge(&mut self, other: &Self) {
        self.run_stats.merge(&other.run_stats);
        self.reached += other.reached;
        self.onset_sum += other.onset_sum;
        self.onset_max = self.onset_max.max(other.onset_max);
        for (a, b) in self.onset_hist.iter_mut().zip(&other.onset_hist) {
            *a += b;
        }
        for (a, b) in self
            .max_buffers_hist
            .iter_mut()
            .zip(&other.max_buffers_hist)
        {
            *a += b;
        }
        self.nodes_sum += other.nodes_sum;
        self.nodes_max = self.nodes_max.max(other.nodes_max);
        self.depth_sum += other.depth_sum;
        self.depth_max = self.depth_max.max(other.depth_max);
        self.used_size_sum += other.used_size_sum;
        self.used_depth_sum += other.used_depth_sum;
        self.rate_micros_sum += other.rate_micros_sum;
    }

    /// Fraction of folded runs that reached the optimal rate.
    pub fn fraction_reached(&self) -> f64 {
        if self.trees() == 0 {
            return 0.0;
        }
        self.reached as f64 / self.trees() as f64
    }

    /// Mean onset time over reached runs (0 when none reached).
    pub fn mean_onset(&self) -> f64 {
        if self.reached == 0 {
            return 0.0;
        }
        self.onset_sum as f64 / self.reached as f64
    }

    /// Mean node count (0 when empty).
    pub fn mean_nodes(&self) -> f64 {
        if self.trees() == 0 {
            return 0.0;
        }
        self.nodes_sum as f64 / self.trees() as f64
    }

    /// Mean optimal rate (tasks per timestep; 0 when empty).
    pub fn mean_optimal_rate(&self) -> f64 {
        if self.trees() == 0 {
            return 0.0;
        }
        self.rate_micros_sum as f64 / 1e6 / self.trees() as f64
    }
}

/// Like [`run_campaign`], but keeps each tree's raw [`RunResult`]
/// alongside its summary — the fully **materialized** campaign mode.
/// This is what a post-hoc aggregation needs to compute everything a
/// [`CampaignAccumulator`] holds, and the memory baseline the streaming
/// mode is benchmarked (and tested bit-identical) against.
pub fn run_campaign_with_results(
    campaign: &CampaignConfig,
    make_config: impl Fn(u64) -> SimConfig + Sync,
) -> Vec<(TreeRun, RunResult)> {
    campaign
        .prepare_all()
        .par_iter()
        .map_init(SimWorkspace::new, |ws, p| {
            let result = ws.run(p.tree.clone(), make_config(campaign.tasks));
            let run = summarize(p.index, &p.tree, &p.analysis, &result, campaign.onset);
            (run, result)
        })
        .collect()
}

/// Folds a materialized campaign into an accumulator, tree-index order.
/// This is the reference the streaming path is tested bit-identical
/// against — note it needs the raw `RunResult`s kept alive, which is
/// exactly what the streaming path exists to avoid.
pub fn accumulate_materialized(runs: &[(TreeRun, RunResult)]) -> CampaignAccumulator {
    let mut acc = CampaignAccumulator::new();
    for (run, result) in runs {
        acc.fold_summary(run, result);
    }
    acc
}

/// Runs a campaign in streaming sharded mode: trees are processed in
/// contiguous shards of `shard_size`, each worker folding its shard
/// into a [`CampaignAccumulator`] (per-tree results die immediately),
/// and shard accumulators are merged in shard order. Peak memory is
/// `O(trees / shard_size)` accumulators plus one in-flight tree per
/// worker — sub-linear in tree count — instead of `O(trees)` summaries.
///
/// Results are bit-identical to folding the materialized path's output
/// through the same accumulator, at any thread count and shard size.
pub fn run_campaign_streaming(
    campaign: &CampaignConfig,
    shard_size: usize,
    make_config: impl Fn(u64) -> SimConfig + Sync,
) -> CampaignAccumulator {
    assert!(shard_size >= 1, "shard_size must be at least 1");
    let shards = campaign.trees.div_ceil(shard_size);
    let shard_accs: Vec<CampaignAccumulator> = (0..shards)
        .into_par_iter()
        .map_init(SimWorkspace::new, |ws, s| {
            let start = s * shard_size;
            let end = ((s + 1) * shard_size).min(campaign.trees);
            let mut acc = CampaignAccumulator::new();
            for i in start..end {
                let p = campaign.prepare(i);
                let result = ws.run(p.tree.clone(), make_config(campaign.tasks));
                acc.record(i, &p.tree, &p.analysis, &result, campaign.onset);
            }
            acc
        })
        .collect();
    // Deterministic shard-order merge (collect preserves input order).
    let mut total = CampaignAccumulator::new();
    for acc in &shard_accs {
        total.merge(acc);
    }
    total
}

// ---------------------------------------------------------------------------
// Parameter-grid sweeps
// ---------------------------------------------------------------------------

/// A parameter grid over the paper's campaign knobs: tree size `m`,
/// task count `n`, buffer allowance `b`, communication-delay range `d`,
/// and compute scale `x`. The cartesian product of the axes defines the
/// grid's cells; each cell simulates `trees_per_cell` random trees
/// seeded from `split_seed(seed, cell_index)`, so any cell can be
/// re-run independently of the rest of the sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignGrid {
    /// Tree-size axis `m` (max nodes; min nodes is `min(10, m)`).
    pub max_nodes: Vec<usize>,
    /// Task-count axis `n`.
    pub tasks: Vec<u64>,
    /// Buffer-allowance axis `b` (the protocol's FB threshold).
    pub buffers: Vec<u32>,
    /// Communication-delay axis `d` (comm times uniform in `[1, d]`).
    pub comm_max: Vec<u64>,
    /// Compute-scale axis `x` (compute times uniform in `[x/100, x]`).
    pub compute_scale: Vec<u64>,
    /// Random trees per cell.
    pub trees_per_cell: usize,
    /// Sweep seed.
    pub seed: u64,
    /// Onset-detection parameters shared by every cell.
    pub onset: OnsetConfig,
}

impl CampaignGrid {
    /// A small default grid: 16 cells spanning tree size, buffers,
    /// delay spread, and compute scale at a fixed task count.
    pub fn default_grid(trees_per_cell: usize, seed: u64) -> Self {
        CampaignGrid {
            max_nodes: vec![30, 120],
            tasks: vec![500],
            buffers: vec![2, 3],
            comm_max: vec![10, 30],
            compute_scale: vec![100, 500],
            trees_per_cell,
            seed,
            // The paper's threshold (300 windows) assumes 10_000-task
            // runs; grid cells run a few hundred tasks, so the startup
            // exclusion is scaled down proportionally.
            onset: OnsetConfig {
                window_threshold: 100,
                crossings: 2,
            },
        }
    }

    /// The grid's cells in canonical (m, n, b, d, x) nested order.
    pub fn cells(&self) -> Vec<GridCell> {
        let mut cells = Vec::new();
        for &m in &self.max_nodes {
            for &n in &self.tasks {
                for &b in &self.buffers {
                    for &d in &self.comm_max {
                        for &x in &self.compute_scale {
                            cells.push(GridCell {
                                index: cells.len(),
                                max_nodes: m,
                                tasks: n,
                                buffers: b,
                                comm_max: d,
                                compute_scale: x,
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// Total trees the sweep will simulate.
    pub fn total_trees(&self) -> usize {
        self.max_nodes.len()
            * self.tasks.len()
            * self.buffers.len()
            * self.comm_max.len()
            * self.compute_scale.len()
            * self.trees_per_cell
    }

    /// The per-cell campaign: tree `i` of a cell is seeded from the
    /// cell's own `split_seed(grid.seed, cell_index)` stream, so cells
    /// are independent and individually reproducible.
    pub fn cell_campaign(&self, cell: &GridCell) -> CampaignConfig {
        CampaignConfig {
            trees: self.trees_per_cell,
            tasks: cell.tasks,
            seed: split_seed(self.seed, cell.index as u64),
            tree_config: RandomTreeConfig {
                min_nodes: cell.max_nodes.min(10),
                max_nodes: cell.max_nodes,
                comm_min: 1,
                comm_max: cell.comm_max,
                compute_scale: cell.compute_scale,
            },
            onset: self.onset,
        }
    }
}

/// One point of a [`CampaignGrid`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridCell {
    /// Position in the canonical cell order.
    pub index: usize,
    /// Tree-size parameter `m`.
    pub max_nodes: usize,
    /// Task count `n`.
    pub tasks: u64,
    /// Buffer allowance `b`.
    pub buffers: u32,
    /// Communication-delay bound `d`.
    pub comm_max: u64,
    /// Compute scale `x`.
    pub compute_scale: u64,
}

/// Runs a whole grid sweep in streaming sharded mode and returns one
/// accumulator per cell (cell order).
///
/// The (cell, shard) pairs of the entire sweep are flattened into one
/// parallel work queue, so workers stay busy across cell boundaries and
/// each worker's `SimWorkspace` stays thread-affine for the whole
/// sweep. Shard accumulators are merged into their cells in canonical
/// shard order, keeping the per-cell aggregates bit-identical at any
/// thread count.
pub fn run_grid_streaming(
    grid: &CampaignGrid,
    shard_size: usize,
    make_config: impl Fn(&GridCell) -> SimConfig + Sync,
) -> Vec<(GridCell, CampaignAccumulator)> {
    assert!(shard_size >= 1, "shard_size must be at least 1");
    let cells = grid.cells();
    let campaigns: Vec<CampaignConfig> = cells.iter().map(|c| grid.cell_campaign(c)).collect();
    // Flatten (cell, shard) tasks in canonical order.
    let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
    for (ci, _) in cells.iter().enumerate() {
        let mut start = 0;
        while start < grid.trees_per_cell {
            let end = (start + shard_size).min(grid.trees_per_cell);
            tasks.push((ci, start, end));
            start = end;
        }
    }
    let cells_ref = &cells;
    let campaigns_ref = &campaigns;
    let make_config_ref = &make_config;
    let shard_accs: Vec<(usize, CampaignAccumulator)> = tasks
        .into_par_iter()
        .map_init(SimWorkspace::new, move |ws, (ci, start, end)| {
            let cell = &cells_ref[ci];
            let campaign = &campaigns_ref[ci];
            let mut acc = CampaignAccumulator::new();
            for i in start..end {
                let p = campaign.prepare(i);
                let result = ws.run(p.tree.clone(), make_config_ref(cell));
                acc.record(i, &p.tree, &p.analysis, &result, campaign.onset);
            }
            (ci, acc)
        })
        .collect();
    // Merge shards into cells in canonical order.
    let mut out: Vec<(GridCell, CampaignAccumulator)> = cells
        .into_iter()
        .map(|c| (c, CampaignAccumulator::new()))
        .collect();
    for (ci, acc) in &shard_accs {
        out[*ci].1.merge(acc);
    }
    out
}

// ---------------------------------------------------------------------------
// Durable, resumable streaming
// ---------------------------------------------------------------------------

/// Accumulator-state byte form, fixed-width little-endian in field
/// order (integrity is the `BCCK` container's job).
impl CampaignAccumulator {
    /// Appends the canonical byte form to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.run_stats.encode_into(out);
        out.extend_from_slice(&self.reached.to_le_bytes());
        out.extend_from_slice(&self.onset_sum.to_le_bytes());
        out.extend_from_slice(&self.onset_max.to_le_bytes());
        for v in &self.onset_hist {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.max_buffers_hist {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.nodes_sum.to_le_bytes());
        out.extend_from_slice(&self.nodes_max.to_le_bytes());
        out.extend_from_slice(&self.depth_sum.to_le_bytes());
        out.extend_from_slice(&self.depth_max.to_le_bytes());
        out.extend_from_slice(&self.used_size_sum.to_le_bytes());
        out.extend_from_slice(&self.used_depth_sum.to_le_bytes());
        out.extend_from_slice(&self.rate_micros_sum.to_le_bytes());
    }

    /// Decodes one accumulator from the front of `input`, advancing
    /// past the consumed bytes. `None` on truncation.
    pub fn decode_from(input: &mut &[u8]) -> Option<Self> {
        let run_stats = RunStatsAccumulator::decode_from(input)?;
        fn u64le(input: &mut &[u8]) -> Option<u64> {
            let (head, rest) = input.split_at_checked(8)?;
            *input = rest;
            Some(u64::from_le_bytes(head.try_into().unwrap()))
        }
        fn u128le(input: &mut &[u8]) -> Option<u128> {
            let (head, rest) = input.split_at_checked(16)?;
            *input = rest;
            Some(u128::from_le_bytes(head.try_into().unwrap()))
        }
        let reached = u64le(input)?;
        let onset_sum = u128le(input)?;
        let onset_max = u64le(input)?;
        let mut onset_hist = [0u64; HIST_BUCKETS];
        for v in &mut onset_hist {
            *v = u64le(input)?;
        }
        let mut max_buffers_hist = [0u64; HIST_BUCKETS];
        for v in &mut max_buffers_hist {
            *v = u64le(input)?;
        }
        Some(CampaignAccumulator {
            run_stats,
            reached,
            onset_sum,
            onset_max,
            onset_hist,
            max_buffers_hist,
            nodes_sum: u128le(input)?,
            nodes_max: u64le(input)?,
            depth_sum: u128le(input)?,
            depth_max: u64le(input)?,
            used_size_sum: u128le(input)?,
            used_depth_sum: u128le(input)?,
            rate_micros_sum: u128le(input)?,
        })
    }
}

/// Why a resumable sweep could not start from (or write to) its
/// checkpoint directory.
#[derive(Debug)]
pub enum ResumeError {
    /// The durable store failed (io, corruption with no fallback, ...).
    Checkpoint(CheckpointError),
    /// A verified payload didn't parse as a campaign checkpoint — a
    /// format drift between writer and reader versions.
    Format(&'static str),
    /// The checkpoint belongs to a different sweep (different grid
    /// parameters, seed, or shard size) — resuming would silently mix
    /// incompatible aggregates.
    FingerprintMismatch {
        /// Fingerprint of the sweep being launched.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        found: u64,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Checkpoint(e) => write!(f, "resume: {e}"),
            ResumeError::Format(what) => write!(f, "resume: malformed checkpoint ({what})"),
            ResumeError::FingerprintMismatch { expected, found } => write!(
                f,
                "resume: checkpoint is from a different sweep \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<CheckpointError> for ResumeError {
    fn from(e: CheckpointError) -> Self {
        ResumeError::Checkpoint(e)
    }
}

/// Campaign-checkpoint payload format revision.
const CAMPAIGN_CKPT_VERSION: u8 = 1;

/// Durability knobs for a resumable streaming sweep.
#[derive(Debug)]
pub struct CheckpointPolicy {
    /// Directory the generation files live in.
    pub dir: std::path::PathBuf,
    /// Save a generation after every `every_shards` completed
    /// (cell, shard) work items (min 1).
    pub every_shards: usize,
    /// Continue from the newest good generation instead of starting
    /// fresh. Without this, existing checkpoints are ignored (and
    /// overwritten as new generations land).
    pub resume: bool,
    /// Stop (checkpointing first) after this many work items were
    /// processed *in this invocation* — the deterministic stand-in for
    /// a kill, used by the equivalence tests and the chaos harness's
    /// bounded legs. `None` runs to completion.
    pub stop_after_shards: Option<usize>,
    /// Generations to retain (min 1; 2+ recommended so a torn newest
    /// generation can fall back).
    pub keep: usize,
}

impl CheckpointPolicy {
    /// A policy with the defaults the CLI uses: checkpoint every
    /// `every_shards`, keep 2 generations, fresh start.
    pub fn new(dir: impl Into<std::path::PathBuf>, every_shards: usize) -> Self {
        CheckpointPolicy {
            dir: dir.into(),
            every_shards: every_shards.max(1),
            resume: false,
            stop_after_shards: None,
            keep: 2,
        }
    }

    /// Enable resuming from the newest good generation.
    pub fn resuming(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }
}

/// What a resumable sweep invocation did.
#[derive(Debug)]
pub struct ResumableOutcome<T> {
    /// Per-cell aggregates (final iff `completed`).
    pub results: T,
    /// Whether the sweep ran to the end (false = stopped by
    /// `stop_after_shards`; relaunch with `resume` to continue).
    pub completed: bool,
    /// Work items done over all invocations (the cursor).
    pub shards_done: usize,
    /// Total work items in the sweep.
    pub shards_total: usize,
    /// Generation the invocation resumed from, if any.
    pub resumed_from_generation: Option<u64>,
}

/// Fingerprint of a grid sweep's identity: every parameter that shapes
/// the flattened work list or the per-tree runs. Two invocations with
/// equal fingerprints partition identical work identically.
fn grid_fingerprint(grid: &CampaignGrid, shard_size: usize) -> u64 {
    let mut b = Vec::new();
    let axis_u64 = |b: &mut Vec<u8>, vs: &[u64]| {
        b.extend_from_slice(&(vs.len() as u64).to_le_bytes());
        for &v in vs {
            b.extend_from_slice(&v.to_le_bytes());
        }
    };
    axis_u64(
        &mut b,
        &grid.max_nodes.iter().map(|&m| m as u64).collect::<Vec<_>>(),
    );
    axis_u64(&mut b, &grid.tasks);
    axis_u64(
        &mut b,
        &grid.buffers.iter().map(|&v| v as u64).collect::<Vec<_>>(),
    );
    axis_u64(&mut b, &grid.comm_max);
    axis_u64(&mut b, &grid.compute_scale);
    b.extend_from_slice(&(grid.trees_per_cell as u64).to_le_bytes());
    b.extend_from_slice(&grid.seed.to_le_bytes());
    b.extend_from_slice(&grid.onset.window_threshold.to_le_bytes());
    b.extend_from_slice(&grid.onset.crossings.to_le_bytes());
    b.extend_from_slice(&(shard_size as u64).to_le_bytes());
    fnv1a64(&b)
}

fn encode_grid_checkpoint(
    fingerprint: u64,
    cursor: usize,
    cells: &[(GridCell, CampaignAccumulator)],
) -> Vec<u8> {
    let mut b = Vec::new();
    b.push(CAMPAIGN_CKPT_VERSION);
    b.extend_from_slice(&fingerprint.to_le_bytes());
    b.extend_from_slice(&(cursor as u64).to_le_bytes());
    b.extend_from_slice(&(cells.len() as u64).to_le_bytes());
    for (_, acc) in cells {
        acc.encode_into(&mut b);
    }
    b
}

fn decode_grid_checkpoint(
    mut input: &[u8],
    expected_fingerprint: u64,
    expected_cells: usize,
) -> Result<(usize, Vec<CampaignAccumulator>), ResumeError> {
    let input = &mut input;
    fn u64le(input: &mut &[u8]) -> Result<u64, ResumeError> {
        let (head, rest) = input
            .split_at_checked(8)
            .ok_or(ResumeError::Format("truncated header"))?;
        *input = rest;
        Ok(u64::from_le_bytes(head.try_into().unwrap()))
    }
    let (version, rest) = input
        .split_first()
        .ok_or(ResumeError::Format("empty payload"))?;
    *input = rest;
    if *version != CAMPAIGN_CKPT_VERSION {
        return Err(ResumeError::Format("unknown payload version"));
    }
    let found = u64le(input)?;
    if found != expected_fingerprint {
        return Err(ResumeError::FingerprintMismatch {
            expected: expected_fingerprint,
            found,
        });
    }
    let cursor = u64le(input)? as usize;
    let n_cells = u64le(input)? as usize;
    if n_cells != expected_cells {
        return Err(ResumeError::Format("cell count mismatch"));
    }
    let mut accs = Vec::with_capacity(n_cells);
    for _ in 0..n_cells {
        accs.push(
            CampaignAccumulator::decode_from(input)
                .ok_or(ResumeError::Format("truncated accumulator"))?,
        );
    }
    if !input.is_empty() {
        return Err(ResumeError::Format("trailing bytes"));
    }
    Ok((cursor, accs))
}

/// [`run_grid_streaming`] with durable progress: after every
/// `policy.every_shards` completed (cell, shard) work items the
/// per-cell accumulators and the work-list cursor are written
/// atomically to `policy.dir` (generation files, checksummed — see
/// [`bc_engine::durability`]). A killed sweep relaunched with
/// `policy.resume` picks up at the last checkpointed cursor and
/// produces final per-cell aggregates **bit-identical** to an
/// uninterrupted run: work items are deterministic in their (cell,
/// shard) coordinates alone, and the chunked merge performs the same
/// per-cell merge sequence as the unchunked one (the accumulators'
/// merge being associative with `default()` as identity).
///
/// At most `every_shards` work items are re-simulated after a crash —
/// re-running a shard is idempotent by determinism, so a kill *between*
/// checkpoint boundaries costs duplicated work, never duplicated
/// counts.
pub fn run_grid_streaming_checkpointed(
    grid: &CampaignGrid,
    shard_size: usize,
    make_config: impl Fn(&GridCell) -> SimConfig + Sync,
    policy: &CheckpointPolicy,
) -> Result<ResumableOutcome<Vec<(GridCell, CampaignAccumulator)>>, ResumeError> {
    assert!(shard_size >= 1, "shard_size must be at least 1");
    let cells = grid.cells();
    let campaigns: Vec<CampaignConfig> = cells.iter().map(|c| grid.cell_campaign(c)).collect();
    let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
    for (ci, _) in cells.iter().enumerate() {
        let mut start = 0;
        while start < grid.trees_per_cell {
            let end = (start + shard_size).min(grid.trees_per_cell);
            tasks.push((ci, start, end));
            start = end;
        }
    }
    let fingerprint = grid_fingerprint(grid, shard_size);
    let mut store =
        CheckpointStore::open(&policy.dir, "grid", CheckpointKind::Campaign, policy.keep)?;

    let mut out: Vec<(GridCell, CampaignAccumulator)> = cells
        .iter()
        .cloned()
        .map(|c| (c, CampaignAccumulator::new()))
        .collect();
    let mut cursor = 0usize;
    let mut resumed_from_generation = None;
    if policy.resume {
        if let Some(loaded) = store.load_latest()? {
            let (saved_cursor, accs) =
                decode_grid_checkpoint(&loaded.payload, fingerprint, cells.len())?;
            if saved_cursor > tasks.len() {
                return Err(ResumeError::Format("cursor beyond work list"));
            }
            for ((_, slot), acc) in out.iter_mut().zip(accs) {
                *slot = acc;
            }
            cursor = saved_cursor;
            resumed_from_generation = Some(loaded.generation);
        }
    }

    let cells_ref = &cells;
    let campaigns_ref = &campaigns;
    let make_config_ref = &make_config;
    let mut done_this_run = 0usize;
    let every = policy.every_shards.max(1);
    while cursor < tasks.len() {
        let mut chunk_end = (cursor + every).min(tasks.len());
        if let Some(stop) = policy.stop_after_shards {
            let left = stop.saturating_sub(done_this_run);
            if left == 0 {
                break;
            }
            chunk_end = chunk_end.min(cursor + left);
        }
        let chunk_accs: Vec<(usize, CampaignAccumulator)> = tasks[cursor..chunk_end]
            .par_iter()
            .map_init(SimWorkspace::new, move |ws, &(ci, start, end)| {
                let cell = &cells_ref[ci];
                let campaign = &campaigns_ref[ci];
                let mut acc = CampaignAccumulator::new();
                for i in start..end {
                    let p = campaign.prepare(i);
                    let result = ws.run(p.tree.clone(), make_config_ref(cell));
                    acc.record(i, &p.tree, &p.analysis, &result, campaign.onset);
                }
                (ci, acc)
            })
            .collect();
        // Same canonical merge order as the unchunked path: work-list
        // order, grouped — merge associativity makes the grouping moot.
        for (ci, acc) in &chunk_accs {
            out[*ci].1.merge(acc);
        }
        done_this_run += chunk_end - cursor;
        cursor = chunk_end;
        store.save(&encode_grid_checkpoint(fingerprint, cursor, &out))?;
    }

    Ok(ResumableOutcome {
        completed: cursor == tasks.len(),
        shards_done: cursor,
        shards_total: tasks.len(),
        resumed_from_generation,
        results: out,
    })
}

/// Single-campaign counterpart of [`run_grid_streaming_checkpointed`]:
/// [`run_campaign_streaming`] with the shard cursor and the (single)
/// accumulator persisted on the same cadence and the same resume
/// semantics. Implemented as a one-cell grid-shaped work list over the
/// campaign's own shards.
pub fn run_campaign_streaming_checkpointed(
    campaign: &CampaignConfig,
    shard_size: usize,
    make_config: impl Fn(u64) -> SimConfig + Sync,
    policy: &CheckpointPolicy,
) -> Result<ResumableOutcome<CampaignAccumulator>, ResumeError> {
    assert!(shard_size >= 1, "shard_size must be at least 1");
    let mut b = Vec::new();
    b.extend_from_slice(&(campaign.trees as u64).to_le_bytes());
    b.extend_from_slice(&campaign.tasks.to_le_bytes());
    b.extend_from_slice(&campaign.seed.to_le_bytes());
    b.extend_from_slice(&(campaign.tree_config.min_nodes as u64).to_le_bytes());
    b.extend_from_slice(&(campaign.tree_config.max_nodes as u64).to_le_bytes());
    b.extend_from_slice(&campaign.tree_config.comm_min.to_le_bytes());
    b.extend_from_slice(&campaign.tree_config.comm_max.to_le_bytes());
    b.extend_from_slice(&campaign.tree_config.compute_scale.to_le_bytes());
    b.extend_from_slice(&campaign.onset.window_threshold.to_le_bytes());
    b.extend_from_slice(&campaign.onset.crossings.to_le_bytes());
    b.extend_from_slice(&(shard_size as u64).to_le_bytes());
    let fingerprint = fnv1a64(&b);

    let shards = campaign.trees.div_ceil(shard_size);
    let mut store = CheckpointStore::open(
        &policy.dir,
        "campaign",
        CheckpointKind::Campaign,
        policy.keep,
    )?;
    let mut acc = CampaignAccumulator::new();
    let mut cursor = 0usize;
    let mut resumed_from_generation = None;
    if policy.resume {
        if let Some(loaded) = store.load_latest()? {
            let (saved_cursor, mut accs) = decode_grid_checkpoint(&loaded.payload, fingerprint, 1)?;
            if saved_cursor > shards {
                return Err(ResumeError::Format("cursor beyond work list"));
            }
            acc = accs.pop().unwrap();
            cursor = saved_cursor;
            resumed_from_generation = Some(loaded.generation);
        }
    }

    let make_config_ref = &make_config;
    let mut done_this_run = 0usize;
    let every = policy.every_shards.max(1);
    while cursor < shards {
        let mut chunk_end = (cursor + every).min(shards);
        if let Some(stop) = policy.stop_after_shards {
            let left = stop.saturating_sub(done_this_run);
            if left == 0 {
                break;
            }
            chunk_end = chunk_end.min(cursor + left);
        }
        let chunk_accs: Vec<CampaignAccumulator> = (cursor..chunk_end)
            .into_par_iter()
            .map_init(SimWorkspace::new, move |ws, s| {
                let start = s * shard_size;
                let end = ((s + 1) * shard_size).min(campaign.trees);
                let mut acc = CampaignAccumulator::new();
                for i in start..end {
                    let p = campaign.prepare(i);
                    let result = ws.run(p.tree.clone(), make_config_ref(campaign.tasks));
                    acc.record(i, &p.tree, &p.analysis, &result, campaign.onset);
                }
                acc
            })
            .collect();
        for shard_acc in &chunk_accs {
            acc.merge(shard_acc);
        }
        done_this_run += chunk_end - cursor;
        cursor = chunk_end;
        let mut payload = Vec::new();
        payload.push(CAMPAIGN_CKPT_VERSION);
        payload.extend_from_slice(&fingerprint.to_le_bytes());
        payload.extend_from_slice(&(cursor as u64).to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes());
        acc.encode_into(&mut payload);
        store.save(&payload)?;
    }

    Ok(ResumableOutcome {
        completed: cursor == shards,
        shards_done: cursor,
        shards_total: shards,
        resumed_from_generation,
        results: acc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> CampaignConfig {
        CampaignConfig {
            trees: 8,
            tasks: 800,
            seed: 42,
            tree_config: RandomTreeConfig {
                min_nodes: 5,
                max_nodes: 30,
                comm_min: 1,
                comm_max: 10,
                compute_scale: 100,
            },
            onset: OnsetConfig {
                window_threshold: 100,
                crossings: 2,
            },
        }
    }

    #[test]
    fn campaign_is_deterministic_and_parallel_safe() {
        let c = tiny_campaign();
        let a = run_campaign(&c, |t| SimConfig::interruptible(3, t));
        let b = run_campaign(&c, |t| SimConfig::interruptible(3, t));
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.onset, y.onset);
            assert_eq!(x.end_time, y.end_time);
            assert_eq!(x.events, y.events);
        }
    }

    #[test]
    fn trees_differ_across_indices() {
        let c = tiny_campaign();
        assert_ne!(
            (c.tree(0).len(), c.tree(0).depth()),
            (c.tree(1).len(), c.tree(1).depth()),
        );
    }

    #[test]
    fn ic3_reaches_optimal_on_most_small_trees() {
        let c = tiny_campaign();
        let runs = run_campaign(&c, |t| SimConfig::interruptible(3, t));
        let frac = fraction_reached(&runs);
        assert!(frac >= 0.5, "IC/FB=3 reached only {frac}");
    }

    #[test]
    fn streaming_matches_materialized_at_every_shard_size() {
        let c = tiny_campaign();
        let materialized = run_campaign_with_results(&c, |t| SimConfig::interruptible(3, t));
        let reference = accumulate_materialized(&materialized);
        assert_eq!(reference.trees(), 8);
        assert!(reference.fraction_reached() > 0.0);
        for shard_size in [1usize, 3, 8, 64] {
            let streamed =
                run_campaign_streaming(&c, shard_size, |t| SimConfig::interruptible(3, t));
            assert_eq!(
                streamed, reference,
                "streamed aggregate differs at shard_size {shard_size}"
            );
        }
    }

    #[test]
    fn accumulator_merge_is_exact_over_shard_groupings() {
        let c = tiny_campaign();
        let materialized = run_campaign_with_results(&c, |t| SimConfig::interruptible(3, t));
        let whole = accumulate_materialized(&materialized);
        let (a, b) = materialized.split_at(3);
        let mut left = accumulate_materialized(a);
        let right = accumulate_materialized(b);
        left.merge(&right);
        assert_eq!(left, whole);
        // Identity.
        let mut with_id = whole.clone();
        with_id.merge(&CampaignAccumulator::default());
        assert_eq!(with_id, whole);
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bc-campaign-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn accumulator_codec_roundtrips() {
        let c = tiny_campaign();
        let acc = run_campaign_streaming(&c, 3, |t| SimConfig::interruptible(3, t));
        let mut bytes = Vec::new();
        acc.encode_into(&mut bytes);
        let mut input = bytes.as_slice();
        let decoded = CampaignAccumulator::decode_from(&mut input).unwrap();
        assert_eq!(decoded, acc);
        assert!(input.is_empty());
        for cut in 0..bytes.len() {
            let mut short = &bytes[..cut];
            assert!(CampaignAccumulator::decode_from(&mut short).is_none());
        }
    }

    #[test]
    fn checkpointed_campaign_interrupted_resume_is_bit_identical() {
        let c = tiny_campaign();
        let reference = run_campaign_streaming(&c, 2, |t| SimConfig::interruptible(3, t));

        let dir = ckpt_dir("campaign");
        // Stop after 1 shard, then resume to completion.
        let mut policy = CheckpointPolicy::new(&dir, 1);
        policy.stop_after_shards = Some(1);
        let partial =
            run_campaign_streaming_checkpointed(&c, 2, |t| SimConfig::interruptible(3, t), &policy)
                .unwrap();
        assert!(!partial.completed);
        assert_eq!(partial.shards_done, 1);

        let policy = CheckpointPolicy::new(&dir, 1).resuming(true);
        let full =
            run_campaign_streaming_checkpointed(&c, 2, |t| SimConfig::interruptible(3, t), &policy)
                .unwrap();
        assert!(full.completed);
        assert!(full.resumed_from_generation.is_some());
        assert_eq!(full.results, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_resume_rejects_different_sweep() {
        let c = tiny_campaign();
        let dir = ckpt_dir("fingerprint");
        let mut policy = CheckpointPolicy::new(&dir, 1);
        policy.stop_after_shards = Some(1);
        run_campaign_streaming_checkpointed(&c, 2, |t| SimConfig::interruptible(3, t), &policy)
            .unwrap();
        // Same directory, different seed: resume must refuse.
        let mut other = c.clone();
        other.seed ^= 0xDEAD;
        let policy = CheckpointPolicy::new(&dir, 1).resuming(true);
        match run_campaign_streaming_checkpointed(
            &other,
            2,
            |t| SimConfig::interruptible(3, t),
            &policy,
        ) {
            Err(ResumeError::FingerprintMismatch { .. }) => {}
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_cells_enumerate_cartesian_product_in_order() {
        let grid = CampaignGrid::default_grid(5, 7);
        let cells = grid.cells();
        assert_eq!(cells.len(), 16);
        assert_eq!(grid.total_trees(), 80);
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
        // Innermost axis (x) varies fastest.
        assert_eq!(cells[0].compute_scale, 100);
        assert_eq!(cells[1].compute_scale, 500);
        assert_eq!(cells[0].comm_max, cells[1].comm_max);
        // Cells get distinct seed streams.
        assert_ne!(
            grid.cell_campaign(&cells[0]).seed,
            grid.cell_campaign(&cells[1]).seed
        );
    }

    #[test]
    fn grid_sweep_is_deterministic_and_streams_per_cell() {
        let grid = CampaignGrid {
            max_nodes: vec![12, 25],
            tasks: vec![400],
            buffers: vec![2, 3],
            comm_max: vec![8],
            compute_scale: vec![100],
            trees_per_cell: 4,
            seed: 99,
            onset: OnsetConfig {
                window_threshold: 50,
                crossings: 2,
            },
        };
        let a = run_grid_streaming(&grid, 2, |c| SimConfig::interruptible(c.buffers, c.tasks));
        let b = run_grid_streaming(&grid, 3, |c| SimConfig::interruptible(c.buffers, c.tasks));
        assert_eq!(a.len(), 4);
        for ((cell_a, acc_a), (cell_b, acc_b)) in a.iter().zip(&b) {
            assert_eq!(cell_a, cell_b);
            assert_eq!(
                acc_a, acc_b,
                "cell {} differs across shard sizes",
                cell_a.index
            );
            assert_eq!(acc_a.trees(), 4);
        }
        // And each cell matches its own standalone streaming campaign.
        for (cell, acc) in &a {
            let standalone = run_campaign_streaming(&grid.cell_campaign(cell), 4, |t| {
                SimConfig::interruptible(cell.buffers, t)
            });
            assert_eq!(&standalone, acc, "cell {} standalone mismatch", cell.index);
        }
    }
}
