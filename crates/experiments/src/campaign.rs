//! Shared campaign infrastructure: run one protocol over many random
//! trees in parallel and summarize each run.
//!
//! Reproducibility: tree `i` of a campaign is generated from
//! `split_seed(campaign_seed, i)`, so any subset of a campaign can be
//! re-run independently and results never depend on thread scheduling.

use bc_engine::{RunResult, SimConfig, SimWorkspace};
use bc_metrics::{detect_onset, OnsetConfig};
use bc_platform::{RandomTreeConfig, Tree, UsedStats};
use bc_rational::Rational;
use bc_simcore::split_seed;
use bc_steady::SteadyState;
use rayon::prelude::*;

/// Configuration of a multi-tree campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of random trees.
    pub trees: usize,
    /// Tasks per application run.
    pub tasks: u64,
    /// Campaign seed (tree `i` uses `split_seed(seed, i)`).
    pub seed: u64,
    /// Random-tree generator parameters (§4.1).
    pub tree_config: RandomTreeConfig,
    /// Onset-detection parameters (§4.1 heuristic).
    pub onset: OnsetConfig,
}

impl CampaignConfig {
    /// The paper's campaign shape with a configurable tree count
    /// (25 000 at full paper scale).
    pub fn paper(trees: usize, tasks: u64, seed: u64) -> Self {
        CampaignConfig {
            trees,
            tasks,
            seed,
            tree_config: RandomTreeConfig::default(),
            onset: OnsetConfig::default(),
        }
    }

    /// The tree for campaign index `i`.
    pub fn tree(&self, i: usize) -> Tree {
        campaign_tree(&self.tree_config, self.seed, i)
    }

    /// Generates and analyzes tree `i` exactly once; the result is shared
    /// by the Theorem 1 oracle and every simulation run over the tree.
    pub fn prepare(&self, i: usize) -> PreparedTree {
        let tree = self.tree(i);
        let analysis = SteadyState::analyze(&tree);
        PreparedTree {
            index: i,
            tree,
            analysis,
        }
    }

    /// Prepares the whole campaign population in parallel.
    pub fn prepare_all(&self) -> Vec<PreparedTree> {
        (0..self.trees)
            .into_par_iter()
            .map(|i| self.prepare(i))
            .collect()
    }
}

/// The canonical campaign indexing scheme: tree `i` of a population
/// seeded by `seed`. Every experiment that walks a tree population uses
/// this one function, so index `i` names the same platform everywhere.
pub fn campaign_tree(tree_config: &RandomTreeConfig, seed: u64, i: usize) -> Tree {
    tree_config.generate(split_seed(seed, i as u64))
}

/// A campaign tree plus its steady-state analysis, generated once and
/// reused across protocols (multi-protocol experiments like Table 1 and
/// Fig 6 previously regenerated and re-analyzed every tree per protocol).
#[derive(Clone, Debug)]
pub struct PreparedTree {
    /// Campaign index of the tree.
    pub index: usize,
    /// The generated platform.
    pub tree: Tree,
    /// Theorem 1 analysis of the tree (the oracle side).
    pub analysis: SteadyState,
}

/// Summary of one simulated tree (completion times are reduced to the
/// onset verdict and buffer statistics to keep big campaigns in memory).
#[derive(Clone, Debug)]
pub struct TreeRun {
    /// Campaign index of the tree.
    pub index: usize,
    /// Node count.
    pub nodes: usize,
    /// Tree depth.
    pub depth: usize,
    /// Exact optimal steady-state rate from Theorem 1.
    pub optimal_rate: Rational,
    /// Onset window (None = never reached optimal steady state).
    pub onset: Option<u64>,
    /// Global max buffer-pool size across nodes.
    pub max_buffers: u32,
    /// `(tasks_completed, global max buffers so far)` checkpoints.
    pub checkpoint_max_buffers: Vec<(u64, u32)>,
    /// Size/depth of the ancestor-closed hull of nodes that computed ≥ 1
    /// task (Fig 6's "used nodes").
    pub used: UsedStats,
    /// Wall-clock of the simulated run in timesteps.
    pub end_time: u64,
    /// Simulator effort.
    pub events: u64,
}

impl TreeRun {
    /// Did this run reach the optimal steady-state rate?
    pub fn reached(&self) -> bool {
        self.onset.is_some()
    }
}

/// Runs `make_config(tasks)`-configured simulations over every tree of
/// the campaign, in parallel, and summarizes each.
pub fn run_campaign(
    campaign: &CampaignConfig,
    make_config: impl Fn(u64) -> SimConfig + Sync,
) -> Vec<TreeRun> {
    run_campaign_prepared(&campaign.prepare_all(), campaign, make_config)
}

/// Like [`run_campaign`], but over an already-prepared population: the
/// trees and their oracle analyses are shared, not regenerated. Callers
/// running several protocols over the same population should prepare once
/// and call this per protocol.
pub fn run_campaign_prepared(
    prepared: &[PreparedTree],
    campaign: &CampaignConfig,
    make_config: impl Fn(u64) -> SimConfig + Sync,
) -> Vec<TreeRun> {
    prepared
        .par_iter()
        .map_init(SimWorkspace::new, |ws, p| {
            // Each worker thread keeps one workspace for its whole share
            // of the campaign, so after its first few trees warm the
            // arenas the event loop never allocates (see the engine's
            // `alloc_free` test). Results are identical at any thread
            // count: each run depends only on its tree and config.
            let result = ws.run(p.tree.clone(), make_config(campaign.tasks));
            summarize(p.index, &p.tree, &p.analysis, &result, campaign.onset)
        })
        .collect()
}

/// Summarizes one finished run.
pub fn summarize(
    index: usize,
    tree: &Tree,
    analysis: &SteadyState,
    result: &RunResult,
    onset_cfg: OnsetConfig,
) -> TreeRun {
    let optimal = analysis.optimal_rate();
    let onset = detect_onset(&result.completion_times, &optimal, onset_cfg);
    TreeRun {
        index,
        nodes: tree.len(),
        depth: tree.depth(),
        optimal_rate: optimal,
        onset,
        max_buffers: result.max_buffers(),
        checkpoint_max_buffers: result.checkpoint_max_buffers.clone(),
        used: tree.used_subtree_stats(&result.used_nodes()),
        end_time: result.end_time,
        events: result.events_processed,
    }
}

/// Fraction of runs that reached the optimal steady state.
pub fn fraction_reached(runs: &[TreeRun]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().filter(|r| r.reached()).count() as f64 / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> CampaignConfig {
        CampaignConfig {
            trees: 8,
            tasks: 800,
            seed: 42,
            tree_config: RandomTreeConfig {
                min_nodes: 5,
                max_nodes: 30,
                comm_min: 1,
                comm_max: 10,
                compute_scale: 100,
            },
            onset: OnsetConfig {
                window_threshold: 100,
                crossings: 2,
            },
        }
    }

    #[test]
    fn campaign_is_deterministic_and_parallel_safe() {
        let c = tiny_campaign();
        let a = run_campaign(&c, |t| SimConfig::interruptible(3, t));
        let b = run_campaign(&c, |t| SimConfig::interruptible(3, t));
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.onset, y.onset);
            assert_eq!(x.end_time, y.end_time);
            assert_eq!(x.events, y.events);
        }
    }

    #[test]
    fn trees_differ_across_indices() {
        let c = tiny_campaign();
        assert_ne!(
            (c.tree(0).len(), c.tree(0).depth()),
            (c.tree(1).len(), c.tree(1).depth()),
        );
    }

    #[test]
    fn ic3_reaches_optimal_on_most_small_trees() {
        let c = tiny_campaign();
        let runs = run_campaign(&c, |t| SimConfig::interruptible(3, t));
        let frac = fraction_reached(&runs);
        assert!(frac >= 0.5, "IC/FB=3 reached only {frac}");
    }
}
