//! Extension experiment: startup-time analysis.
//!
//! §4.2.1 reports, from "other simulations not displayed here", that
//! *"for all protocols the startup time increases as the computation-to-
//! communication ratio increases"*, and that non-IC has much longer
//! startup phases than IC. This experiment makes that claim a measured
//! artifact: the distribution of onset windows per ratio class per
//! protocol.

use crate::campaign::{run_campaign, CampaignConfig, TreeRun};
use bc_engine::SimConfig;
use bc_metrics::{ascii_table, median, percentile};

/// One (class, protocol) cell's startup distribution.
#[derive(Clone, Debug)]
pub struct StartupCell {
    /// Computation scale `x`.
    pub compute_scale: u64,
    /// Protocol label.
    pub protocol: String,
    /// Onset windows of the runs that reached optimal steady state.
    pub onsets: Vec<u64>,
    /// Number of runs in the cell.
    pub total_runs: usize,
}

impl StartupCell {
    /// Median onset window (startup length proxy) among reaching runs.
    pub fn median_onset(&self) -> Option<f64> {
        median(&self.onsets)
    }

    /// 90th percentile onset window.
    pub fn p90_onset(&self) -> Option<u64> {
        percentile(&self.onsets, 90.0)
    }
}

/// Experiment output.
#[derive(Clone, Debug)]
pub struct Startup {
    /// All cells: classes outer, protocols inner.
    pub cells: Vec<StartupCell>,
}

fn onsets(runs: &[TreeRun]) -> Vec<u64> {
    runs.iter().filter_map(|r| r.onset).collect()
}

/// Runs the experiment over the Fig 5 ratio classes.
pub fn run(campaign: &CampaignConfig) -> Startup {
    let mut cells = Vec::new();
    for &x in &crate::fig5::CLASSES {
        let mut class_campaign = campaign.clone();
        class_campaign.tree_config = campaign.tree_config.with_compute_scale(x);
        class_campaign.seed = campaign.seed.wrapping_add(x);
        for (protocol, cfg) in [
            ("IC, FB=3", SimConfig::interruptible(3, campaign.tasks)),
            (
                "non-IC, IB=1",
                SimConfig::non_interruptible(1, campaign.tasks),
            ),
        ] {
            let runs = run_campaign(&class_campaign, |_| cfg.clone());
            cells.push(StartupCell {
                compute_scale: x,
                protocol: protocol.to_string(),
                onsets: onsets(&runs),
                total_runs: runs.len(),
            });
        }
    }
    Startup { cells }
}

/// Renders the startup table.
pub fn render(s: &Startup) -> String {
    let mut out = String::new();
    out.push_str("Startup time by ratio class (onset window of runs that reached optimal)\n\n");
    let rows: Vec<Vec<String>> = s
        .cells
        .iter()
        .map(|c| {
            vec![
                format!("x={}", c.compute_scale),
                c.protocol.clone(),
                format!("{}/{}", c.onsets.len(), c.total_runs),
                c.median_onset().map_or("-".into(), |m| format!("{m:.0}")),
                c.p90_onset().map_or("-".into(), |p| p.to_string()),
            ]
        })
        .collect();
    out.push_str(&ascii_table(
        &["class", "protocol", "reached", "median onset", "p90 onset"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_metrics::OnsetConfig;
    use bc_platform::RandomTreeConfig;

    #[test]
    fn startup_grows_with_ratio_for_ic() {
        let campaign = CampaignConfig {
            trees: 16,
            tasks: 2_000,
            seed: 77,
            tree_config: RandomTreeConfig {
                min_nodes: 10,
                max_nodes: 80,
                comm_min: 1,
                comm_max: 100,
                compute_scale: 0, // per class
            },
            onset: OnsetConfig {
                window_threshold: 150,
                crossings: 2,
            },
        };
        let s = run(&campaign);
        assert_eq!(s.cells.len(), 8);
        // Compare IC cells at the lowest and highest ratio classes: the
        // median onset should not shrink as x rises (the paper's claim).
        let ic_low = s
            .cells
            .iter()
            .find(|c| c.compute_scale == 500 && c.protocol.starts_with("IC"))
            .unwrap();
        let ic_high = s
            .cells
            .iter()
            .find(|c| c.compute_scale == 10_000 && c.protocol.starts_with("IC"))
            .unwrap();
        if let (Some(low), Some(high)) = (ic_low.median_onset(), ic_high.median_onset()) {
            assert!(
                high >= low * 0.8,
                "startup should not collapse with ratio: low {low} high {high}"
            );
        }
        let rendered = render(&s);
        assert!(rendered.contains("median onset"));
    }
}
