//! Figure 7: adaptability on the Figure 1 platform.
//!
//! 1 000 fixed-size independent tasks under the non-interruptible
//! protocol with two fixed buffers. Three scenarios: the unchanged
//! platform; communication contention (c₁: 1 → 3 after 200 tasks); and
//! processor contention relief (w₁: 3 → 1 after 200 tasks). For each
//! scenario the figure plots tasks-completed against timesteps, with the
//! optimal steady-state slopes of each platform phase as dashed lines.

use bc_engine::{ChangeKind, PlannedChange, SimConfig, Simulation};
use bc_metrics::{ascii_table, Chart};
use bc_platform::examples::{fig1_p1, fig1_tree};
use bc_rational::Rational;
use bc_steady::SteadyState;

/// One scenario's trace and reference rates.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display label.
    pub label: String,
    /// Completion times: entry `k` is when task `k+1` finished.
    pub completion_times: Vec<u64>,
    /// Optimal steady-state rate before the change.
    pub optimal_before: Rational,
    /// Optimal steady-state rate after the change (same as before for the
    /// unchanged scenario).
    pub optimal_after: Rational,
}

impl Scenario {
    /// Measured rate between task `from` and task `to` (1-indexed).
    pub fn measured_rate(&self, from: usize, to: usize) -> f64 {
        let t0 = self.completion_times[from - 1];
        let t1 = self.completion_times[to - 1];
        (to - from) as f64 / (t1 - t0) as f64
    }
}

/// Figure 7 output: the three scenarios.
#[derive(Clone, Debug)]
pub struct Fig7 {
    /// Unchanged, comm-contention, processor-contention scenarios.
    pub scenarios: Vec<Scenario>,
    /// The task count after which changes apply.
    pub change_at: u64,
}

/// Runs the three scenarios (tasks defaults to the paper's 1 000).
pub fn run(tasks: u64, change_at: u64) -> Fig7 {
    let base_opt = SteadyState::analyze(&fig1_tree()).optimal_rate();

    let mut scenarios = Vec::new();

    // Unchanged platform.
    let r = Simulation::new(fig1_tree(), SimConfig::non_interruptible_fixed(2, tasks)).run();
    scenarios.push(Scenario {
        label: "c1=1, w1=3 (unchanged)".into(),
        completion_times: r.completion_times,
        optimal_before: base_opt.clone(),
        optimal_after: base_opt.clone(),
    });

    // Communication contention: c1 1 → 3.
    let cfg = SimConfig::non_interruptible_fixed(2, tasks).with_change(PlannedChange {
        after_tasks: change_at,
        node: fig1_p1(),
        kind: ChangeKind::CommTime(3),
    });
    let mut t = fig1_tree();
    t.set_comm_time(fig1_p1(), 3);
    let after_opt = SteadyState::analyze(&t).optimal_rate();
    let r = Simulation::new(fig1_tree(), cfg).run();
    scenarios.push(Scenario {
        label: format!("at {change_at} tasks, c1=3"),
        completion_times: r.completion_times,
        optimal_before: base_opt.clone(),
        optimal_after: after_opt,
    });

    // Processor contention relief: w1 3 → 1.
    let cfg = SimConfig::non_interruptible_fixed(2, tasks).with_change(PlannedChange {
        after_tasks: change_at,
        node: fig1_p1(),
        kind: ChangeKind::ComputeTime(1),
    });
    let mut t = fig1_tree();
    t.set_compute_time(fig1_p1(), 1);
    let after_opt = SteadyState::analyze(&t).optimal_rate();
    let r = Simulation::new(fig1_tree(), cfg).run();
    scenarios.push(Scenario {
        label: format!("at {change_at} tasks, w1=1"),
        completion_times: r.completion_times,
        optimal_before: base_opt,
        optimal_after: after_opt,
    });

    Fig7 {
        scenarios,
        change_at,
    }
}

/// Renders the overall trace (sampled) plus the detail around the change,
/// with optimal rates as reference slopes.
pub fn render(fig: &Fig7) -> String {
    let mut out = String::new();
    out.push_str("Figure 7 — adaptability on the Fig 1 platform (non-IC, FB=2)\n\n");
    for s in &fig.scenarios {
        out.push_str(&format!(
            "{}\n  optimal rate before: {} (≈{:.3}); after: {} (≈{:.3})\n",
            s.label,
            s.optimal_before,
            s.optimal_before.to_f64(),
            s.optimal_after,
            s.optimal_after.to_f64(),
        ));
    }
    out.push_str("\n(a) overall — tasks completed at sampled timesteps:\n");
    let max_t = fig
        .scenarios
        .iter()
        .map(|s| *s.completion_times.last().unwrap())
        .max()
        .unwrap();
    let header: Vec<String> = std::iter::once("timestep".to_string())
        .chain(fig.scenarios.iter().map(|s| s.label.clone()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let step = (max_t / 20).max(1);
    let rows: Vec<Vec<String>> = (0..=20u64)
        .map(|k| {
            let t = k * step;
            let mut row = vec![t.to_string()];
            for s in &fig.scenarios {
                let done = s.completion_times.partition_point(|&ct| ct <= t);
                row.push(done.to_string());
            }
            row
        })
        .collect();
    out.push_str(&ascii_table(&header_refs, &rows));

    out.push_str("\n(b) detail — measured vs optimal rates after the change:\n");
    let n = fig.scenarios[0].completion_times.len();
    let lo = (fig.change_at as usize + n) / 2; // middle of the post-change run
    let hi = n * 9 / 10;
    let rows: Vec<Vec<String>> = fig
        .scenarios
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                format!("{:.3}", s.measured_rate(lo.max(2), hi)),
                format!("{:.3}", s.optimal_after.to_f64()),
            ]
        })
        .collect();
    out.push_str(&ascii_table(
        &["scenario", "measured rate", "optimal rate"],
        &rows,
    ));
    out.push_str("\nshape (tasks completed vs timesteps):\n");
    let total = fig.scenarios[0].completion_times.len() as f64;
    let mut chart = Chart::new(64, 14).y_max(total);
    for s in &fig.scenarios {
        let pts: Vec<(f64, f64)> = s
            .completion_times
            .iter()
            .enumerate()
            .step_by((s.completion_times.len() / 200).max(1))
            .map(|(k, &t)| (t as f64, (k + 1) as f64))
            .collect();
        chart = chart.series(s.label.clone(), &pts);
    }
    out.push_str(&chart.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_tracks_each_optimal_slope() {
        let fig = run(1000, 200);
        assert_eq!(fig.scenarios.len(), 3);
        for s in &fig.scenarios {
            assert_eq!(s.completion_times.len(), 1000);
            // Post-change steady rate within 10% of the new optimum.
            let measured = s.measured_rate(600, 950);
            let optimal = s.optimal_after.to_f64();
            assert!(
                (measured - optimal).abs() / optimal < 0.10,
                "{}: measured {measured} vs optimal {optimal}",
                s.label
            );
        }
        // Ordering: degraded c1 is slower than base; improved w1 faster.
        let base = fig.scenarios[0].completion_times.last().unwrap();
        let slow = fig.scenarios[1].completion_times.last().unwrap();
        let fast = fig.scenarios[2].completion_times.last().unwrap();
        assert!(slow > base);
        assert!(fast < base);
        let rendered = render(&fig);
        assert!(rendered.contains("adaptability"));
    }

    #[test]
    fn pre_change_phases_are_identical() {
        let fig = run(400, 200);
        let a = &fig.scenarios[0].completion_times[..150];
        let b = &fig.scenarios[1].completion_times[..150];
        let c = &fig.scenarios[2].completion_times[..150];
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}
