//! Table 2: median and maximum buffers used by non-IC/IB=1, across the
//! four computation-scale classes and at 100 / 1 000 / 4 000 completed
//! tasks.
//!
//! Paper numbers (1 000 trees per class, 4 000 tasks):
//!
//! ```text
//! x        median@100  median@1000  median@4000   max
//! 500           3            3            3        165
//! 1 000         4            5            5        472
//! 5 000       150          212          218       1535
//! 10 000      551          560          561       1951
//! ```
//!
//! The shape to reproduce: medians rise steeply with `x`, plateau after
//! startup, and the maxima dwarf the 3 buffers IC needs.

use crate::campaign::{run_campaign, CampaignConfig, TreeRun};
use bc_core::GrowthGate;
use bc_engine::SimConfig;
use bc_metrics::{ascii_table, median};

/// The checkpoint task counts of the paper.
pub const CHECKPOINTS: [u64; 3] = [100, 1_000, 4_000];

/// One class's buffer statistics.
#[derive(Clone, Debug)]
pub struct ClassBuffers {
    /// The class's computation scale `x`.
    pub compute_scale: u64,
    /// Median (across trees) of the per-tree max buffers at each
    /// checkpoint.
    pub medians: Vec<(u64, f64)>,
    /// Largest pool any node of any tree reached over the full run.
    pub max: u32,
    /// Raw per-tree runs.
    pub runs: Vec<TreeRun>,
}

/// Table 2 data.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// One entry per class, ascending `x`.
    pub classes: Vec<ClassBuffers>,
}

/// Runs non-IC/IB=1 over each class with buffer checkpoints, under the
/// default growth gate.
pub fn run(campaign: &CampaignConfig) -> Table2 {
    run_gated(campaign, GrowthGate::default())
}

/// Runs with an explicit growth gate (DESIGN.md §6 calibration).
pub fn run_gated(campaign: &CampaignConfig, gate: GrowthGate) -> Table2 {
    let checkpoints: Vec<u64> = CHECKPOINTS
        .iter()
        .copied()
        .filter(|&c| c <= campaign.tasks)
        .collect();
    let classes = crate::fig5::CLASSES
        .iter()
        .map(|&x| {
            let mut class_campaign = campaign.clone();
            class_campaign.tree_config = campaign.tree_config.with_compute_scale(x);
            class_campaign.seed = campaign.seed.wrapping_add(x);
            let cps = checkpoints.clone();
            let runs = run_campaign(&class_campaign, move |t| {
                SimConfig::non_interruptible_gated(1, gate, t).with_checkpoints(cps.clone())
            });
            let medians = checkpoints
                .iter()
                .map(|&cp| {
                    let at: Vec<u64> = runs
                        .iter()
                        .filter_map(|r| {
                            r.checkpoint_max_buffers
                                .iter()
                                .find(|&&(c, _)| c == cp)
                                .map(|&(_, b)| b as u64)
                        })
                        .collect();
                    (cp, median(&at).unwrap_or(0.0))
                })
                .collect();
            let max = runs.iter().map(|r| r.max_buffers).max().unwrap_or(0);
            ClassBuffers {
                compute_scale: x,
                medians,
                max,
                runs,
            }
        })
        .collect();
    Table2 { classes }
}

/// Renders the paper's table shape.
pub fn render(t: &Table2) -> String {
    let mut out = String::new();
    out.push_str("Table 2 — buffers used by non-IC, IB=1 (median per checkpoint, overall max)\n\n");
    let mut header: Vec<String> = vec!["x".into()];
    if let Some(first) = t.classes.first() {
        header.extend(first.medians.iter().map(|(cp, _)| format!("median@{cp}")));
    }
    header.push("max".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = t
        .classes
        .iter()
        .map(|c| {
            let mut row = vec![c.compute_scale.to_string()];
            row.extend(c.medians.iter().map(|(_, m)| format!("{m:.0}")));
            row.push(c.max.to_string());
            row
        })
        .collect();
    out.push_str(&ascii_table(&header_refs, &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_metrics::OnsetConfig;
    use bc_platform::RandomTreeConfig;

    #[test]
    fn buffer_usage_rises_with_compute_scale() {
        let campaign = CampaignConfig {
            trees: 8,
            tasks: 1_000,
            seed: 23,
            tree_config: RandomTreeConfig {
                min_nodes: 20,
                max_nodes: 80,
                comm_min: 1,
                comm_max: 100,
                compute_scale: 0, // per class
            },
            onset: OnsetConfig::default(),
        };
        let t = run(&campaign);
        assert_eq!(t.classes.len(), 4);
        // Median at the last checkpoint grows with x (the paper's 3 → 551
        // sweep); allow equality for adjacent small classes.
        let finals: Vec<f64> = t
            .classes
            .iter()
            .map(|c| c.medians.last().unwrap().1)
            .collect();
        assert!(
            finals[3] > finals[0],
            "x=10000 median {} should exceed x=500 median {}",
            finals[3],
            finals[0]
        );
        // Max dwarfs IC's 3 buffers at the top class.
        assert!(t.classes[3].max > 3);
        // Checkpoint medians are nondecreasing within a class.
        for c in &t.classes {
            let ms: Vec<f64> = c.medians.iter().map(|&(_, m)| m).collect();
            assert!(ms.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        }
        let rendered = render(&t);
        assert!(rendered.contains("median@100"));
    }
}
