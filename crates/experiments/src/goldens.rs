//! Golden-trace scenarios: the canonical platform trees × protocol
//! variants whose full event streams are committed under `tests/golden/`
//! and diffed byte-exactly by `tests/golden_traces.rs`.
//!
//! The scenario set covers the paper's reference platforms — the Fig 1(b)
//! tree of §4.2.3 and the first Table 1 campaign trees (the §4.1 random
//! distribution at the campaign seed) — under every protocol variant the
//! paper evaluates: non-interruptible with one growable initial buffer,
//! and interruptible with FB ∈ {1, 2, 3}. A committed trace freezes the
//! *entire temporal behavior* of a run, so any change to scheduling
//! order, tie-breaking, growth timing, or event ordering shows up as a
//! one-line diff in CI — the strongest cheap regression net the
//! deterministic engine admits.
//!
//! Regenerating after an intentional behavior change:
//!
//! ```text
//! BLESS=1 cargo test --test golden_traces
//! ```
//!
//! (see CONTRIBUTING.md — bless only with a review of the diff).

use crate::campaign::campaign_tree;
use bc_engine::{SimConfig, SimWorkspace, Simulation, VecSink};
use bc_platform::examples::fig1_tree;
use bc_platform::generator::RandomTreeConfig;
use bc_platform::Tree;
use bc_simcore::trace::TraceRecord;

/// Campaign seed the Table 1 golden trees are drawn at (the repo-wide
/// experiment seed).
pub const GOLDEN_SEED: u64 = 2003;

/// Table 1 campaign trees included in the golden set (tree `i` =
/// `campaign_tree(&RandomTreeConfig::default(), GOLDEN_SEED, i)`).
pub const GOLDEN_TABLE1_TREES: usize = 3;

/// Tasks per golden run — small enough to keep committed traces
/// reviewable, large enough that every run reaches steady state past the
/// startup transient.
pub const GOLDEN_TASKS: u64 = 40;

/// The golden platform trees, named: `fig1` plus `table1-<i>`.
pub fn golden_trees() -> Vec<(String, Tree)> {
    let mut out = vec![("fig1".to_string(), fig1_tree())];
    let cfg = RandomTreeConfig::default();
    for i in 0..GOLDEN_TABLE1_TREES {
        out.push((format!("table1-{i}"), campaign_tree(&cfg, GOLDEN_SEED, i)));
    }
    out
}

/// The golden protocol variants: the non-IC protocol (IB=1, growable,
/// §3.1) and the IC protocol at each paper buffer size (§3.2).
pub fn golden_variants(tasks: u64) -> Vec<(&'static str, SimConfig)> {
    vec![
        ("nonic-ib1", SimConfig::non_interruptible(1, tasks)),
        ("ic-fb1", SimConfig::interruptible(1, tasks)),
        ("ic-fb2", SimConfig::interruptible(2, tasks)),
        ("ic-fb3", SimConfig::interruptible(3, tasks)),
    ]
}

/// All `(scenario_name, tree, config)` combinations of the golden set;
/// the committed file is `tests/golden/<scenario_name>.jsonl`.
pub fn golden_scenarios() -> Vec<(String, Tree, SimConfig)> {
    let mut out = Vec::new();
    for (tree_name, tree) in golden_trees() {
        for (variant, cfg) in golden_variants(GOLDEN_TASKS) {
            out.push((format!("{tree_name}-{variant}"), tree.clone(), cfg.clone()));
        }
    }
    out
}

/// Runs one simulation with a recording sink and returns its full trace.
pub fn record_trace(tree: &Tree, cfg: &SimConfig) -> Vec<TraceRecord> {
    let sim = Simulation::traced(
        tree.clone(),
        cfg.clone(),
        SimWorkspace::new(),
        VecSink::new(),
    );
    let (_result, _ws, sink) = sim.run_traced();
    sink.records
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_simcore::trace;

    #[test]
    fn scenario_set_covers_trees_times_variants() {
        let scenarios = golden_scenarios();
        assert_eq!(scenarios.len(), (1 + GOLDEN_TABLE1_TREES) * 4);
        let names: Vec<&str> = scenarios.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"fig1-nonic-ib1"));
        assert!(names.contains(&"table1-2-ic-fb3"));
    }

    #[test]
    fn recorded_traces_are_reproducible_and_parse_back() {
        let (_, tree, cfg) = golden_scenarios().swap_remove(1); // fig1-ic-fb1
        let a = record_trace(&tree, &cfg);
        let b = record_trace(&tree, &cfg);
        assert_eq!(a, b, "same tree + config must trace identically");
        assert!(!a.is_empty());
        let text = trace::to_jsonl(&a);
        assert_eq!(trace::from_jsonl(&text).unwrap(), a);
    }
}
