//! Minimal flag parsing shared by the experiment binaries.
//!
//! Flags: `--trees N`, `--tasks N`, `--seed N`, `--full` (paper-scale
//! campaign), `--threads N` (campaign worker threads), `--out DIR` (also
//! write CSV artifacts there).

use bc_core::GrowthGate;
use std::path::PathBuf;

/// Parsed command line for an experiment binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cli {
    /// Number of trees (or graphs) to simulate.
    pub trees: usize,
    /// Tasks per run.
    pub tasks: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Paper-scale run requested.
    pub full: bool,
    /// Non-IC growth gate (see `bc_core::GrowthGate`; DESIGN.md §6).
    pub gate: GrowthGate,
    /// Campaign worker threads (None = all cores). Campaign results are
    /// bit-identical at any thread count; this only trades wall-clock.
    pub threads: Option<usize>,
    /// Directory for CSV artifacts.
    pub out: Option<PathBuf>,
}

/// Defaults an experiment passes to [`parse`].
#[derive(Clone, Copy, Debug)]
pub struct Defaults {
    /// Default tree count.
    pub trees: usize,
    /// Tree count under `--full` (paper scale).
    pub full_trees: usize,
    /// Default (and paper) task count.
    pub tasks: u64,
}

/// Parses `args` (without the program name). Panics with a usage message
/// on unknown flags — these are developer-facing binaries.
pub fn parse(args: impl IntoIterator<Item = String>, defaults: Defaults) -> Cli {
    let mut cli = Cli {
        trees: defaults.trees,
        tasks: defaults.tasks,
        seed: 2003, // IPDPS'03
        full: false,
        gate: GrowthGate::default(),
        threads: None,
        out: None,
    };
    let mut it = args.into_iter();
    let mut explicit_trees = false;
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--trees" => {
                cli.trees = value("--trees").parse().expect("--trees must be a number");
                explicit_trees = true;
            }
            "--tasks" => cli.tasks = value("--tasks").parse().expect("--tasks must be a number"),
            "--seed" => cli.seed = value("--seed").parse().expect("--seed must be a number"),
            "--full" => cli.full = true,
            "--gate" => {
                cli.gate = match value("--gate").as_str() {
                    "every" => GrowthGate::EveryEvent,
                    "arrival" => GrowthGate::OncePerArrival,
                    "filled" => GrowthGate::AfterPoolFilled,
                    other => panic!("unknown gate {other}; use every|arrival|filled"),
                };
            }
            "--threads" => {
                let n: usize = value("--threads")
                    .parse()
                    .expect("--threads must be a number");
                assert!(n > 0, "--threads must be at least 1");
                cli.threads = Some(n);
            }
            "--out" => cli.out = Some(PathBuf::from(value("--out"))),
            "--help" | "-h" => {
                println!(
                    "flags: --trees N --tasks N --seed N --full --gate every|arrival|filled --threads N --out DIR\n\
                     defaults: trees={} (full: {}), tasks={}, seed=2003",
                    defaults.trees, defaults.full_trees, defaults.tasks
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    if cli.full && !explicit_trees {
        cli.trees = defaults.full_trees;
    }
    if let Some(n) = cli.threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("configure worker threads");
    }
    cli
}

/// Writes `content` as `<out>/<name>` when `--out` was given.
pub fn write_artifact(cli: &Cli, name: &str, content: &str) {
    if let Some(dir) = &cli.out {
        std::fs::create_dir_all(dir).expect("create --out directory");
        let path = dir.join(name);
        std::fs::write(&path, content).expect("write artifact");
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: Defaults = Defaults {
        trees: 100,
        full_trees: 25_000,
        tasks: 10_000,
    };

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply() {
        let cli = parse(args(&[]), D);
        assert_eq!(cli.trees, 100);
        assert_eq!(cli.tasks, 10_000);
        assert_eq!(cli.seed, 2003);
        assert!(!cli.full);
        assert!(cli.out.is_none());
    }

    #[test]
    fn flags_override() {
        let cli = parse(args(&["--trees", "7", "--tasks", "55", "--seed", "9"]), D);
        assert_eq!((cli.trees, cli.tasks, cli.seed), (7, 55, 9));
        assert_eq!(cli.gate, GrowthGate::EveryEvent);
        let cli = parse(args(&["--gate", "filled"]), D);
        assert_eq!(cli.gate, GrowthGate::AfterPoolFilled);
    }

    #[test]
    fn full_scales_trees_unless_explicit() {
        let cli = parse(args(&["--full"]), D);
        assert_eq!(cli.trees, 25_000);
        let cli = parse(args(&["--full", "--trees", "12"]), D);
        assert_eq!(cli.trees, 12);
    }

    #[test]
    fn threads_flag_parses_and_configures_pool() {
        let cli = parse(args(&["--threads", "2"]), D);
        assert_eq!(cli.threads, Some(2));
        assert_eq!(rayon::current_num_threads(), 2);
        // Restore automatic sizing for any test that runs after this one.
        rayon::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(args(&["--bogus"]), D);
    }
}
