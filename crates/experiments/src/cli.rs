//! Minimal flag parsing shared by the experiment binaries.
//!
//! Flags: `--trees N`, `--tasks N`, `--seed N`, `--full` (paper-scale
//! campaign), `--threads N` (campaign worker threads), `--stream`
//! (streaming sharded campaign mode: fold into accumulators instead of
//! materializing per-tree results), `--shard-size N` (trees per
//! streaming shard), `--out DIR` (also write CSV artifacts there).
//!
//! Binaries call [`parse`], which on a bad command line prints a
//! one-line error plus usage to **stderr** and exits with code 2 (the
//! conventional usage-error status), and honors `--help` on stdout with
//! exit 0. The fallible core is [`try_parse`], which the tests (and any
//! embedding) use directly.

use bc_core::GrowthGate;
#[cfg(test)]
use std::path::Path;
use std::path::PathBuf;

/// Parsed command line for an experiment binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cli {
    /// Number of trees (or graphs) to simulate.
    pub trees: usize,
    /// Tasks per run.
    pub tasks: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Paper-scale run requested.
    pub full: bool,
    /// Non-IC growth gate (see `bc_core::GrowthGate`; DESIGN.md §6).
    pub gate: GrowthGate,
    /// Campaign worker threads (None = all cores). Campaign results are
    /// bit-identical at any thread count; this only trades wall-clock.
    pub threads: Option<usize>,
    /// Streaming sharded campaign mode: aggregate through mergeable
    /// accumulators, never materializing per-tree results (sub-linear
    /// memory; bit-identical aggregates).
    pub stream: bool,
    /// Trees per streaming shard.
    pub shard_size: usize,
    /// Directory for CSV artifacts.
    pub out: Option<PathBuf>,
    /// Durable-checkpoint directory for resumable streaming campaigns
    /// (None = no checkpointing; the fault-free hot path is untouched).
    pub checkpoint_dir: Option<PathBuf>,
    /// Shards between checkpoint generations.
    pub checkpoint_every: usize,
    /// Continue from the newest good checkpoint generation.
    pub resume: bool,
}

/// Defaults an experiment passes to [`parse`].
#[derive(Clone, Copy, Debug)]
pub struct Defaults {
    /// Default tree count.
    pub trees: usize,
    /// Tree count under `--full` (paper scale).
    pub full_trees: usize,
    /// Default (and paper) task count.
    pub tasks: u64,
}

/// Why [`try_parse`] did not produce a [`Cli`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h` was given; the caller should print usage and exit 0.
    Help,
    /// The command line is malformed; the message names the offense.
    Usage(String),
}

fn usage_line(defaults: Defaults) -> String {
    format!(
        "flags: --trees N --tasks N --seed N --full --gate every|arrival|filled --threads N \
         --stream --shard-size N --out DIR \
         --checkpoint-dir DIR --checkpoint-every N --resume\n\
         defaults: trees={} (full: {}), tasks={}, seed=2003, shard-size=512, \
         checkpoint-every=8",
        defaults.trees, defaults.full_trees, defaults.tasks
    )
}

/// Parses `args` (without the program name). Returns [`CliError::Usage`]
/// on unknown flags or malformed values and [`CliError::Help`] for
/// `--help`. Does not touch the process (no printing, no exit, no
/// thread-pool configuration) — that is [`parse`]'s job.
pub fn try_parse(
    args: impl IntoIterator<Item = String>,
    defaults: Defaults,
) -> Result<Cli, CliError> {
    let mut cli = Cli {
        trees: defaults.trees,
        tasks: defaults.tasks,
        seed: 2003, // IPDPS'03
        full: false,
        gate: GrowthGate::default(),
        threads: None,
        stream: false,
        shard_size: 512,
        out: None,
        checkpoint_dir: None,
        checkpoint_every: 8,
        resume: false,
    };
    let mut it = args.into_iter();
    let mut explicit_trees = false;
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| CliError::Usage(format!("{name} requires a value")))
        };
        let number = |name: &str, raw: String| {
            raw.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("{name} must be a number, got {raw:?}")))
        };
        match arg.as_str() {
            "--trees" => {
                cli.trees = number("--trees", value("--trees")?)? as usize;
                explicit_trees = true;
            }
            "--tasks" => cli.tasks = number("--tasks", value("--tasks")?)?,
            "--seed" => cli.seed = number("--seed", value("--seed")?)?,
            "--full" => cli.full = true,
            "--gate" => {
                cli.gate = match value("--gate")?.as_str() {
                    "every" => GrowthGate::EveryEvent,
                    "arrival" => GrowthGate::OncePerArrival,
                    "filled" => GrowthGate::AfterPoolFilled,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown gate {other}; use every|arrival|filled"
                        )))
                    }
                };
            }
            "--threads" => {
                let n = number("--threads", value("--threads")?)? as usize;
                if n == 0 {
                    return Err(CliError::Usage("--threads must be at least 1".into()));
                }
                cli.threads = Some(n);
            }
            "--stream" => cli.stream = true,
            "--shard-size" => {
                let n = number("--shard-size", value("--shard-size")?)? as usize;
                if n == 0 {
                    return Err(CliError::Usage("--shard-size must be at least 1".into()));
                }
                cli.shard_size = n;
            }
            "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
            "--checkpoint-dir" => {
                cli.checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir")?))
            }
            "--checkpoint-every" => {
                let n = number("--checkpoint-every", value("--checkpoint-every")?)? as usize;
                if n == 0 {
                    return Err(CliError::Usage(
                        "--checkpoint-every must be at least 1".into(),
                    ));
                }
                cli.checkpoint_every = n;
            }
            "--resume" => cli.resume = true,
            "--help" | "-h" => return Err(CliError::Help),
            other => return Err(CliError::Usage(format!("unknown flag {other}"))),
        }
    }
    if cli.full && !explicit_trees {
        cli.trees = defaults.full_trees;
    }
    Ok(cli)
}

/// Parses `args` for a binary: on success configures the worker pool (if
/// `--threads` was given) and returns the [`Cli`]; on `--help` prints
/// usage to stdout and exits 0; on a usage error prints the error and
/// usage to stderr and exits 2.
pub fn parse(args: impl IntoIterator<Item = String>, defaults: Defaults) -> Cli {
    let cli = match try_parse(args, defaults) {
        Ok(cli) => cli,
        Err(CliError::Help) => {
            println!("{}", usage_line(defaults));
            std::process::exit(0);
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage_line(defaults));
            std::process::exit(2);
        }
    };
    if let Some(n) = cli.threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("configure worker threads");
    }
    cli
}

/// Writes `content` as `<out>/<name>` when `--out` was given.
pub fn write_artifact(cli: &Cli, name: &str, content: &str) {
    if let Some(dir) = &cli.out {
        std::fs::create_dir_all(dir).expect("create --out directory");
        let path = dir.join(name);
        std::fs::write(&path, content).expect("write artifact");
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: Defaults = Defaults {
        trees: 100,
        full_trees: 25_000,
        tasks: 10_000,
    };

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply() {
        let cli = try_parse(args(&[]), D).unwrap();
        assert_eq!(cli.trees, 100);
        assert_eq!(cli.tasks, 10_000);
        assert_eq!(cli.seed, 2003);
        assert!(!cli.full);
        assert!(cli.out.is_none());
    }

    #[test]
    fn flags_override() {
        let cli = try_parse(args(&["--trees", "7", "--tasks", "55", "--seed", "9"]), D).unwrap();
        assert_eq!((cli.trees, cli.tasks, cli.seed), (7, 55, 9));
        assert_eq!(cli.gate, GrowthGate::EveryEvent);
        let cli = try_parse(args(&["--gate", "filled"]), D).unwrap();
        assert_eq!(cli.gate, GrowthGate::AfterPoolFilled);
    }

    #[test]
    fn full_scales_trees_unless_explicit() {
        let cli = try_parse(args(&["--full"]), D).unwrap();
        assert_eq!(cli.trees, 25_000);
        let cli = try_parse(args(&["--full", "--trees", "12"]), D).unwrap();
        assert_eq!(cli.trees, 12);
    }

    #[test]
    fn threads_flag_parses() {
        let cli = try_parse(args(&["--threads", "2"]), D).unwrap();
        assert_eq!(cli.threads, Some(2));
        assert_eq!(
            try_parse(args(&["--threads", "0"]), D),
            Err(CliError::Usage("--threads must be at least 1".into()))
        );
    }

    #[test]
    fn streaming_flags_parse() {
        let cli = try_parse(args(&[]), D).unwrap();
        assert!(!cli.stream);
        assert_eq!(cli.shard_size, 512);
        let cli = try_parse(args(&["--stream", "--shard-size", "64"]), D).unwrap();
        assert!(cli.stream);
        assert_eq!(cli.shard_size, 64);
        assert_eq!(
            try_parse(args(&["--shard-size", "0"]), D),
            Err(CliError::Usage("--shard-size must be at least 1".into()))
        );
    }

    #[test]
    fn checkpoint_flags_parse() {
        let cli = try_parse(args(&[]), D).unwrap();
        assert!(cli.checkpoint_dir.is_none());
        assert_eq!(cli.checkpoint_every, 8);
        assert!(!cli.resume);
        let cli = try_parse(
            args(&[
                "--checkpoint-dir",
                "ckpt",
                "--checkpoint-every",
                "3",
                "--resume",
            ]),
            D,
        )
        .unwrap();
        assert_eq!(cli.checkpoint_dir.as_deref(), Some(Path::new("ckpt")));
        assert_eq!(cli.checkpoint_every, 3);
        assert!(cli.resume);
        assert_eq!(
            try_parse(args(&["--checkpoint-every", "0"]), D),
            Err(CliError::Usage(
                "--checkpoint-every must be at least 1".into()
            ))
        );
    }

    #[test]
    fn help_is_not_an_error_exit() {
        assert_eq!(try_parse(args(&["--help"]), D), Err(CliError::Help));
        assert_eq!(try_parse(args(&["-h"]), D), Err(CliError::Help));
    }

    #[test]
    fn malformed_command_lines_are_usage_errors() {
        for bad in [
            vec!["--bogus"],
            vec!["--trees"],
            vec!["--trees", "many"],
            vec!["--tasks", "-3"],
            vec!["--seed", "0x10"],
            vec!["--gate", "sometimes"],
        ] {
            match try_parse(args(&bad), D) {
                Err(CliError::Usage(msg)) => {
                    assert!(!msg.is_empty(), "empty message for {bad:?}")
                }
                other => panic!("{bad:?} parsed as {other:?}"),
            }
        }
    }
}
