//! Extension experiment: elasticity of the autonomous protocol.
//!
//! §3 argues autonomous scheduling suits overlays that "grow and
//! reconfigure itself dynamically"; §6 defers measuring resilience
//! under "dynamically evolving pools of resources" to future work. This
//! experiment does that measurement: on each random platform a strong
//! subtree joins mid-run and an original subtree later departs (its
//! tasks re-dispatched by the repository). For each of the three
//! topology phases we compare the measured phase rate against that
//! phase's own Theorem 1 optimum.

use bc_engine::{ChangeKind, PlannedChange, SimConfig, Simulation};
use bc_metrics::ascii_table;
use bc_platform::{NodeId, RandomTreeConfig};
use bc_steady::{without_subtree, SteadyState};
use rayon::prelude::*;

/// Configuration of the elasticity experiment.
#[derive(Clone, Debug)]
pub struct ElasticityConfig {
    /// Number of random platforms.
    pub trees: usize,
    /// Tasks per run (split across three phases).
    pub tasks: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Base-platform generator.
    pub tree_config: RandomTreeConfig,
    /// The joining worker's uplink and compute times.
    pub join_comm: u64,
    /// Compute time of the joining worker.
    pub join_compute: u64,
}

impl Default for ElasticityConfig {
    fn default() -> Self {
        ElasticityConfig {
            trees: 40,
            tasks: 6_000,
            seed: 2003,
            tree_config: RandomTreeConfig {
                min_nodes: 5,
                max_nodes: 60,
                comm_min: 1,
                comm_max: 20,
                compute_scale: 300,
            },
            join_comm: 1,
            join_compute: 2,
        }
    }
}

/// Tracking ratios (measured rate / phase optimum) for one platform.
#[derive(Clone, Copy, Debug)]
pub struct TreeElasticity {
    /// Before the join.
    pub base: f64,
    /// After the join, before the departure.
    pub joined: f64,
    /// After the departure.
    pub departed: f64,
}

/// Experiment output.
#[derive(Clone, Debug)]
pub struct Elasticity {
    /// Per-platform tracking ratios.
    pub per_tree: Vec<TreeElasticity>,
}

fn phase_rate(times: &[u64], from: usize, to: usize) -> f64 {
    let span = (times[to - 1] - times[from - 1]).max(1);
    (to - from) as f64 / span as f64
}

fn run_one(cfg: &ElasticityConfig, index: usize) -> TreeElasticity {
    let tree = crate::campaign::campaign_tree(&cfg.tree_config, cfg.seed, index);
    let t_join = cfg.tasks / 3;
    let t_leave = 2 * cfg.tasks / 3;
    // The departing subtree: node 1 (always exists; trees have ≥ 5 nodes).
    let victim = NodeId(1);
    // The joiner attaches under the root; its id is the next arena index.
    let joined_id = NodeId(tree.len() as u32);

    // Reference optima per phase.
    let base_opt = SteadyState::analyze(&tree).optimal_rate().to_f64();
    let mut joined_tree = tree.clone();
    let added = joined_tree.add_child(NodeId::ROOT, cfg.join_comm, cfg.join_compute);
    debug_assert_eq!(added, joined_id);
    let joined_opt = SteadyState::analyze(&joined_tree).optimal_rate().to_f64();
    let departed_tree = without_subtree(&joined_tree, victim);
    let departed_opt = SteadyState::analyze(&departed_tree).optimal_rate().to_f64();

    let sim_cfg = SimConfig::interruptible(3, cfg.tasks)
        .with_change(PlannedChange {
            after_tasks: t_join,
            node: NodeId::ROOT,
            kind: ChangeKind::Join {
                comm: cfg.join_comm,
                compute: cfg.join_compute,
            },
        })
        .with_change(PlannedChange {
            after_tasks: t_leave,
            node: victim,
            kind: ChangeKind::Leave,
        });
    let run = Simulation::new(tree, sim_cfg).run();
    let t = &run.completion_times;
    let n = cfg.tasks as usize;

    // Sample each phase away from its boundaries (re-convergence windows).
    let mid = |a: usize, b: usize| -> (usize, usize) {
        let w = b - a;
        (a + w / 4, b - w / 8)
    };
    let (b0, b1) = mid(1, t_join as usize);
    let (j0, j1) = mid(t_join as usize, t_leave as usize);
    let (d0, d1) = mid(t_leave as usize, n);
    TreeElasticity {
        base: phase_rate(t, b0, b1) / base_opt,
        joined: phase_rate(t, j0, j1) / joined_opt,
        departed: phase_rate(t, d0, d1) / departed_opt,
    }
}

/// Runs the experiment.
pub fn run(cfg: &ElasticityConfig) -> Elasticity {
    let per_tree = (0..cfg.trees)
        .into_par_iter()
        .map(|i| run_one(cfg, i))
        .collect();
    Elasticity { per_tree }
}

fn summarize(values: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
    let n = values.clone().count().max(1) as f64;
    let mean = values.clone().sum::<f64>() / n;
    let min = values.fold(f64::INFINITY, f64::min);
    (mean, min)
}

/// Renders per-phase tracking statistics.
pub fn render(e: &Elasticity) -> String {
    let mut out = String::new();
    out.push_str(
        "Elasticity — measured phase rate / that phase's Theorem 1 optimum (IC, FB=3)\n\n",
    );
    let rows: Vec<Vec<String>> = [
        (
            "base platform",
            e.per_tree.iter().map(|t| t.base).collect::<Vec<_>>(),
        ),
        ("after join", e.per_tree.iter().map(|t| t.joined).collect()),
        (
            "after departure",
            e.per_tree.iter().map(|t| t.departed).collect(),
        ),
    ]
    .into_iter()
    .map(|(label, vals)| {
        let (mean, min) = summarize(vals.iter().copied());
        vec![
            label.to_string(),
            format!("{:.3}", mean),
            format!("{:.3}", min),
        ]
    })
    .collect();
    out.push_str(&ascii_table(
        &["phase", "mean tracking", "worst tracking"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_tracks_every_topology_phase() {
        let cfg = ElasticityConfig {
            trees: 10,
            tasks: 3_000,
            ..ElasticityConfig::default()
        };
        let e = run(&cfg);
        assert_eq!(e.per_tree.len(), 10);
        let (mean_base, _) = summarize(e.per_tree.iter().map(|t| t.base));
        let (mean_joined, _) = summarize(e.per_tree.iter().map(|t| t.joined));
        let (mean_departed, min_departed) = summarize(e.per_tree.iter().map(|t| t.departed));
        for (label, v) in [
            ("base", mean_base),
            ("joined", mean_joined),
            ("departed", mean_departed),
        ] {
            assert!(
                v > 0.85 && v < 1.05,
                "{label} phase mean tracking {v:.3} out of band"
            );
        }
        assert!(min_departed > 0.6, "worst departed tracking {min_departed}");
        let rendered = render(&e);
        assert!(rendered.contains("after departure"));
    }
}
