//! Figure 4: "Achieving Maximal Steady State" — for each protocol
//! variant, the cumulative fraction of trees whose onset of optimal
//! steady state occurred within x completed tasks.
//!
//! Paper setup: 10 000 tasks on 25 000 random trees (m=10, n=500, b=1,
//! d=100, x=10 000); variants non-IC/IB=1, IC/FB=1, IC/FB=2, IC/FB=3.
//! Headline numbers: IC/FB=3 reaches the optimal rate in 99.57 % of
//! trees, IC/FB=2 98.51 %, IC/FB=1 ~82 %, non-IC/IB=1 20.18 %.

use crate::campaign::{fraction_reached, run_campaign, CampaignConfig, TreeRun};
use bc_core::GrowthGate;
use bc_engine::SimConfig;
use bc_metrics::{ascii_table, onset_cdf, Chart};

/// One protocol variant's label and campaign results.
#[derive(Clone, Debug)]
pub struct VariantResult {
    /// Display label, e.g. `"IC, FB=3"`.
    pub label: String,
    /// Per-tree summaries.
    pub runs: Vec<TreeRun>,
}

impl VariantResult {
    /// Fraction of trees that reached the optimal steady state.
    pub fn fraction_reached(&self) -> f64 {
        fraction_reached(&self.runs)
    }

    /// Fig 4 CDF: `(x, fraction with onset ≤ x)` at the given probes.
    pub fn cdf(&self, probes: &[u64]) -> Vec<(u64, f64)> {
        let onsets: Vec<Option<u64>> = self.runs.iter().map(|r| r.onset).collect();
        onset_cdf(&onsets, probes)
    }
}

/// Full Figure 4 output.
#[derive(Clone, Debug)]
pub struct Fig4 {
    /// The four protocol variants, paper order.
    pub variants: Vec<VariantResult>,
    /// Probe positions (tasks completed at window start).
    pub probes: Vec<u64>,
}

/// The four protocol variants of Fig 4, paper order.
pub fn paper_variants(tasks: u64) -> Vec<(String, SimConfig)> {
    variants_gated(tasks, GrowthGate::default())
}

/// The four variants with an explicit non-IC growth gate.
pub fn variants_gated(tasks: u64, gate: GrowthGate) -> Vec<(String, SimConfig)> {
    vec![
        (
            "non-IC, IB=1".to_string(),
            SimConfig::non_interruptible_gated(1, gate, tasks),
        ),
        ("IC, FB=1".to_string(), SimConfig::interruptible(1, tasks)),
        ("IC, FB=2".to_string(), SimConfig::interruptible(2, tasks)),
        ("IC, FB=3".to_string(), SimConfig::interruptible(3, tasks)),
    ]
}

/// Runs the Fig 4 experiment under the default growth gate.
pub fn run(campaign: &CampaignConfig) -> Fig4 {
    run_gated(campaign, GrowthGate::default())
}

/// Runs Fig 4 with an explicit non-IC growth gate.
pub fn run_gated(campaign: &CampaignConfig, gate: GrowthGate) -> Fig4 {
    let variants = variants_gated(campaign.tasks, gate)
        .into_iter()
        .map(|(label, cfg)| VariantResult {
            label,
            runs: run_campaign(campaign, |_| cfg.clone()),
        })
        .collect();
    // Probe grid matching the figure's axis (0..5000 for 10 000 tasks).
    let max_x = campaign.tasks / 2;
    let probes: Vec<u64> = (1..=50).map(|k| k * max_x / 50).collect();
    Fig4 { variants, probes }
}

/// Renders the summary table and CDF series.
pub fn render(fig: &Fig4) -> String {
    let mut out = String::new();
    out.push_str("Figure 4 — fraction of trees reaching optimal steady state\n\n");
    let rows: Vec<Vec<String>> = fig
        .variants
        .iter()
        .map(|v| {
            vec![
                v.label.clone(),
                format!("{:.2}%", 100.0 * v.fraction_reached()),
            ]
        })
        .collect();
    out.push_str(&ascii_table(&["variant", "reached optimal"], &rows));
    out.push_str("\nCDF (x = tasks completed at window start; y = % of trees):\n");
    let mut header: Vec<String> = vec!["x".into()];
    header.extend(fig.variants.iter().map(|v| v.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let curves: Vec<Vec<(u64, f64)>> = fig.variants.iter().map(|v| v.cdf(&fig.probes)).collect();
    let rows: Vec<Vec<String>> = fig
        .probes
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let mut row = vec![x.to_string()];
            row.extend(curves.iter().map(|c| format!("{:.1}%", 100.0 * c[i].1)));
            row
        })
        .collect();
    out.push_str(&ascii_table(&header_refs, &rows));
    out.push_str("\nshape (y = fraction of trees at optimal, x = tasks completed):\n");
    let mut chart = Chart::new(64, 14).y_max(1.0);
    for (v, curve) in fig.variants.iter().zip(&curves) {
        let pts: Vec<(f64, f64)> = curve.iter().map(|&(x, y)| (x as f64, y)).collect();
        chart = chart.series(v.label.clone(), &pts);
    }
    out.push_str(&chart.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_metrics::OnsetConfig;
    use bc_platform::RandomTreeConfig;

    /// A miniature Fig 4 run: small trees, short application, relaxed
    /// onset threshold — checks the *ordering* of the variants, which is
    /// the figure's claim.
    #[test]
    fn variant_ordering_matches_paper() {
        let campaign = CampaignConfig {
            trees: 24,
            tasks: 1200,
            seed: 7,
            tree_config: RandomTreeConfig {
                min_nodes: 5,
                max_nodes: 60,
                comm_min: 1,
                comm_max: 20,
                compute_scale: 500,
            },
            onset: OnsetConfig {
                window_threshold: 150,
                crossings: 2,
            },
        };
        let fig = run(&campaign);
        assert_eq!(fig.variants.len(), 4);
        let pct: Vec<f64> = fig.variants.iter().map(|v| v.fraction_reached()).collect();
        // At paper scale FB3 ≥ FB2 ≥ FB1 ≫ non-IC. At this miniature
        // scale FB3's longer startup (a paper-documented effect) can cost
        // it a tree or two against FB2, so allow small slack on the
        // FB3/FB2 comparison and require the large-margin claims exactly.
        assert!(pct[3] >= pct[2] - 0.1, "FB3 {} ≪ FB2 {}", pct[3], pct[2]);
        assert!(pct[2] >= pct[1] - 1e-9, "FB2 {} < FB1 {}", pct[2], pct[1]);
        assert!(pct[3] >= 0.85, "FB3 unexpectedly low: {}", pct[3]);
        assert!(pct[3] > pct[0], "FB3 {} vs non-IC {}", pct[3], pct[0]);
        let rendered = render(&fig);
        assert!(rendered.contains("IC, FB=3"));
    }
}
