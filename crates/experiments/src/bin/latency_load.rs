//! Runs the latency-under-sustained-load sweep (open-world extension)
//! and optionally refreshes the committed `BENCH_latency.json`.

use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::latency_load::{self, LatencyLoadConfig};

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 32,
            full_trees: 256,
            tasks: 120,
        },
    );
    let cfg = LatencyLoadConfig {
        trees: cli.trees,
        tasks: cli.tasks,
        seed: cli.seed,
        ..LatencyLoadConfig::default()
    };
    let report = latency_load::run(&cfg);
    print!("{}", latency_load::render(&report));
    write_artifact(&cli, "latency_load.json", &latency_load::to_json(&report));
}
