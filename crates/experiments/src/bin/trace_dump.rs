//! Record, render, and diff structured traces.
//!
//! Modes:
//!
//! * record (default) — run one scenario and emit its trace:
//!   `trace_dump --tree fig1 --variant ic-fb2 [--tasks N]
//!   [--format jsonl|binary|pretty|summary] [--out FILE]`.
//!   `--tree` names a golden platform (see `--list`); `--spec` takes an
//!   explicit `root|parent:comm:compute;...` case spec (the fuzzer's
//!   reproducer format) instead.
//! * `--list` — print the golden trees and the known variants.
//! * `--diff A B` — compare two JSONL trace files; prints the first
//!   divergence with context and exits 1 if they differ.
//!
//! See EXPERIMENTS.md ("Dumping and diffing traces") for the workflow.

use bc_engine::SimConfig;
use bc_experiments::fuzz::{variant_by_name, variants, CaseSpec};
use bc_experiments::goldens::{golden_trees, golden_variants, record_trace, GOLDEN_TASKS};
use bc_metrics::{fold_timelines, trace_end_time};
use bc_platform::Tree;
use bc_simcore::trace::{self, TraceRecord};
use std::io::Write;
use std::process::ExitCode;

struct Args {
    tree: Option<String>,
    spec: Option<String>,
    variant: Option<String>,
    tasks: u64,
    format: Format,
    out: Option<String>,
    list: bool,
    diff: Option<(String, String)>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Jsonl,
    Binary,
    Pretty,
    Summary,
}

const USAGE: &str = "usage: trace_dump --tree NAME|--spec SPEC --variant NAME [--tasks N]\n\
                     \x20                 [--format jsonl|binary|pretty|summary] [--out FILE]\n\
                     \x20      trace_dump --list\n\
                     \x20      trace_dump --diff A.jsonl B.jsonl\n\
                     defaults: tasks=40, format=pretty";

fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Args, Option<String>> {
    let mut out = Args {
        tree: None,
        spec: None,
        variant: None,
        tasks: GOLDEN_TASKS,
        format: Format::Pretty,
        out: None,
        list: false,
        diff: None,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| Some(format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--tree" => out.tree = Some(value("--tree")?),
            "--spec" => out.spec = Some(value("--spec")?),
            "--variant" => out.variant = Some(value("--variant")?),
            "--tasks" => {
                let raw = value("--tasks")?;
                out.tasks = raw
                    .parse::<u64>()
                    .map_err(|_| Some(format!("--tasks must be a number, got {raw:?}")))?
                    .max(1);
            }
            "--format" => {
                out.format = match value("--format")?.as_str() {
                    "jsonl" => Format::Jsonl,
                    "binary" => Format::Binary,
                    "pretty" => Format::Pretty,
                    "summary" => Format::Summary,
                    other => {
                        return Err(Some(format!(
                            "unknown format {other:?}; use jsonl, binary, pretty, or summary"
                        )))
                    }
                }
            }
            "--out" => out.out = Some(value("--out")?),
            "--list" => out.list = true,
            "--diff" => out.diff = Some((value("--diff")?, value("--diff")?)),
            "--help" | "-h" => return Err(None),
            other => return Err(Some(format!("unknown flag {other}"))),
        }
    }
    if !out.list && out.diff.is_none() {
        if out.tree.is_some() == out.spec.is_some() {
            return Err(Some("exactly one of --tree or --spec is required".into()));
        }
        if out.variant.is_none() {
            return Err(Some("--variant is required".into()));
        }
    }
    Ok(out)
}

fn list() {
    println!("golden trees (committed traces live in tests/golden/):");
    for (name, tree) in golden_trees() {
        println!("  {name:<10} {} nodes", tree.len());
    }
    println!("golden variants:");
    for (name, _) in golden_variants(1) {
        println!("  {name}");
    }
    println!("further variants (the fuzzer's set):");
    for (name, _) in variants(1) {
        if !golden_variants(1).iter().any(|(g, _)| *g == name) {
            println!("  {name}");
        }
    }
}

fn resolve_tree(args: &Args) -> Result<Tree, String> {
    if let Some(name) = &args.tree {
        return golden_trees()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .ok_or_else(|| {
                let known: Vec<String> = golden_trees().into_iter().map(|(n, _)| n).collect();
                format!("unknown tree {name}; known: {}", known.join(", "))
            });
    }
    let spec = args.spec.as_deref().expect("checked in try_parse");
    Ok(CaseSpec::decode(spec)?.to_tree())
}

fn resolve_variant(name: &str, tasks: u64) -> Result<SimConfig, String> {
    golden_variants(tasks)
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, c)| c)
        .or_else(|| variant_by_name(name, tasks))
        .ok_or_else(|| {
            let mut known: Vec<&str> = golden_variants(1).iter().map(|(n, _)| *n).collect();
            let extra: Vec<&str> = variants(1)
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| !known.contains(n))
                .collect();
            known.extend(extra);
            format!("unknown variant {name}; known: {}", known.join(", "))
        })
}

fn render(records: &[TraceRecord], format: Format) -> Vec<u8> {
    match format {
        Format::Jsonl => trace::to_jsonl(records).into_bytes(),
        Format::Binary => trace::to_binary(records),
        Format::Pretty => {
            let mut s = String::new();
            for r in records {
                s.push_str(&r.to_string());
                s.push('\n');
            }
            s.into_bytes()
        }
        Format::Summary => {
            let end = trace_end_time(records);
            let mut s = format!(
                "{} event(s), end time {end}\n\
                 node  computed  busy-comp  busy-link  preempt  resume  reqs  high-water\n",
                records.len()
            );
            for (i, tl) in fold_timelines(records).iter().enumerate() {
                s.push_str(&format!(
                    "{i:>4}  {:>8}  {:>9}  {:>9}  {:>7}  {:>6}  {:>4}  {:>10}\n",
                    tl.tasks_computed,
                    tl.busy_compute,
                    tl.busy_link,
                    tl.preemptions,
                    tl.resumes,
                    tl.requests_sent,
                    tl.buffer_high_water,
                ));
            }
            s.into_bytes()
        }
    }
}

/// Prints the first divergence between two traces with surrounding
/// context. Returns true when the traces are identical.
fn diff(a_path: &str, b_path: &str) -> Result<bool, String> {
    let read = |path: &str| -> Result<Vec<TraceRecord>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        trace::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
    };
    let a = read(a_path)?;
    let b = read(b_path)?;
    let common = a.len().min(b.len());
    let divergence = (0..common).find(|&i| a[i] != b[i]);
    let Some(first) = divergence.or((a.len() != b.len()).then_some(common)) else {
        println!("traces identical: {} event(s)", a.len());
        return Ok(true);
    };
    println!(
        "traces diverge at event {first} ({} vs {} event(s) total)",
        a.len(),
        b.len()
    );
    let ctx_from = first.saturating_sub(3);
    for (i, r) in a.iter().enumerate().take(first).skip(ctx_from) {
        println!("  {i:>6}   {r}");
    }
    let show = |label: &str, t: &[TraceRecord], i: usize| match t.get(i) {
        Some(r) => println!("  {i:>6} {label} {r}"),
        None => println!("  {i:>6} {label} <end of trace>"),
    };
    for i in first..(first + 3).min(common.max(first + 1)) {
        show("A", &a, i);
        show("B", &b, i);
    }
    Ok(false)
}

fn main() -> ExitCode {
    let args = match try_parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(Some(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        list();
        return ExitCode::SUCCESS;
    }
    if let Some((a, b)) = &args.diff {
        return match diff(a, b) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(2)
            }
        };
    }
    let tree = match resolve_tree(&args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let name = args.variant.as_deref().expect("checked in try_parse");
    let cfg = match resolve_variant(name, args.tasks) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let records = record_trace(&tree, &cfg);
    let bytes = render(&records, args.format);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &bytes) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} event(s) to {path}", records.len());
        }
        None => {
            std::io::stdout()
                .write_all(&bytes)
                .expect("stdout write failed");
        }
    }
    ExitCode::SUCCESS
}
