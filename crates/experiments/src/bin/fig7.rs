//! Regenerates Figure 7 (adaptability on the Fig 1 platform).

use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::fig7;

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 1,
            full_trees: 1,
            tasks: 1_000,
        },
    );
    let fig = fig7::run(cli.tasks, 200);
    let text = fig7::render(&fig);
    println!("{text}");
    write_artifact(&cli, "fig7.txt", &text);
    if cli.out.is_some() {
        for s in &fig.scenarios {
            let rows: Vec<Vec<String>> = s
                .completion_times
                .iter()
                .enumerate()
                .map(|(k, &t)| vec![t.to_string(), (k + 1).to_string()])
                .collect();
            let name = format!(
                "fig7_{}.csv",
                s.label.replace([' ', ',', '='], "_").replace("__", "_")
            );
            write_artifact(&cli, &name, &bc_metrics::csv(&["timestep", "tasks"], &rows));
        }
    }
}
