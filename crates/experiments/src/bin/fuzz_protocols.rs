//! Differential protocol fuzzer: random adversarial trees, every
//! protocol variant, per-event invariant checking, terminal rate oracle.
//!
//! Modes:
//!
//! * default — fuzz `--cases` trees (1,000 by default) across all
//!   variants; any failure is shrunk and printed with a reproducer
//!   command; exit 1 if anything failed.
//! * `--smoke` — a CI-sized slice (~60 s budget): a reduced case count
//!   plus the full self-test.
//! * `--self-test` — inject deliberate protocol faults (FB off-by-one,
//!   task leak, swallowed reissue) and verify the checker catches them
//!   and the shrinker minimizes the FB case to ≤ 5 nodes. Exit 1 if the
//!   checker misses.
//! * `--fork-smoke` — exercise fork mode: runs capture periodic
//!   snapshots, and a violation must reproduce identically when only
//!   the suffix after the last snapshot is replayed (also part of
//!   `--smoke`). Exit 1 if the suffix replay disagrees with the full
//!   run.
//! * `--arrival-smoke` — exercise the open-world streaming legs: a
//!   generated arrival plan checked per event, a mid-stream fork whose
//!   suffix replays cleanly, and the `LeakQueuedTask` validation fault
//!   caught as an arrival-conservation violation (also part of
//!   `--smoke`). Exit 1 if any leg disagrees.
//! * `--repro SPEC --variant NAME [--arrivals N] [--fault
//!   fb|leak:N|leakq:N|swallow]` — re-run one shrunk case printed by a
//!   previous fuzz run (the spec's third `|` segment, when present, is
//!   its fault schedule; `--arrivals` regenerates the open-world plan
//!   of an arrival-leg failure from its seed). Exit 1 while the failure
//!   reproduces, 0 once it is fixed.
//!
//! See EXPERIMENTS.md ("Fuzzing the protocols") for the workflow.

use bc_engine::FaultInjection;
use bc_experiments::fuzz::{
    arrival_smoke, case_config, fork_smoke, fuzz, fuzz_arrival_plan, parse_fault, run_case, shrink,
    trace_tail, variant_by_name, variants, with_quiet_panics, CaseSpec, Failure, ARRIVAL_VARIANTS,
    FAULT_PLAN_VARIANTS,
};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    cases: usize,
    tasks: u64,
    seed: u64,
    smoke: bool,
    self_test: bool,
    fork_smoke: bool,
    arrival_smoke: bool,
    repro: Option<String>,
    variant: Option<String>,
    arrivals: Option<u64>,
    fault: Option<FaultInjection>,
    threads: Option<usize>,
}

const USAGE: &str = "usage: fuzz_protocols [--cases N] [--tasks N] [--seed N] [--threads N]\n\
                     \x20                     [--smoke] [--self-test] [--fork-smoke] [--arrival-smoke]\n\
                     \x20                     [--repro SPEC --variant NAME [--arrivals N]\n\
                     \x20                      [--fault fb|leak:N|leakq:N|swallow]]\n\
                     defaults: cases=1000, tasks=250, seed=2003";

fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Args, Option<String>> {
    let mut out = Args {
        cases: 1000,
        tasks: 250,
        seed: 2003,
        smoke: false,
        self_test: false,
        fork_smoke: false,
        arrival_smoke: false,
        repro: None,
        variant: None,
        arrivals: None,
        fault: None,
        threads: None,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| Some(format!("{name} requires a value")))
        };
        let number = |name: &str, raw: String| {
            raw.parse::<u64>()
                .map_err(|_| Some(format!("{name} must be a number, got {raw:?}")))
        };
        match arg.as_str() {
            "--cases" => out.cases = number("--cases", value("--cases")?)? as usize,
            "--tasks" => out.tasks = number("--tasks", value("--tasks")?)?.max(1),
            "--seed" => out.seed = number("--seed", value("--seed")?)?,
            "--threads" => {
                let n = number("--threads", value("--threads")?)? as usize;
                if n == 0 {
                    return Err(Some("--threads must be at least 1".into()));
                }
                out.threads = Some(n);
            }
            "--smoke" => out.smoke = true,
            "--self-test" => out.self_test = true,
            "--fork-smoke" => out.fork_smoke = true,
            "--arrival-smoke" => out.arrival_smoke = true,
            "--repro" => out.repro = Some(value("--repro")?),
            "--variant" => out.variant = Some(value("--variant")?),
            "--arrivals" => out.arrivals = Some(number("--arrivals", value("--arrivals")?)?),
            "--fault" => out.fault = Some(parse_fault(&value("--fault")?).map_err(Some)?),
            "--help" | "-h" => return Err(None),
            other => return Err(Some(format!("unknown flag {other}"))),
        }
    }
    if out.repro.is_some() && out.variant.is_none() {
        return Err(Some("--repro requires --variant".into()));
    }
    if out.arrivals.is_some() && out.repro.is_none() {
        return Err(Some("--arrivals only makes sense with --repro".into()));
    }
    Ok(out)
}

fn print_failures(failures: &[Failure]) {
    for f in failures {
        eprintln!(
            "FAIL case {} [{}]: {}\n  shrunk {} -> {} nodes: {}\n  reproduce: {}",
            f.case,
            f.variant,
            f.message,
            f.original_nodes,
            f.spec.len(),
            f.spec.encode(),
            f.repro_command()
        );
    }
}

/// Injects known bugs and verifies detection + shrinking — the checker
/// checking itself. Returns an error description if the checker missed.
fn self_test(seed: u64, tasks: u64) -> Result<String, String> {
    // FB off-by-one: every variant with a Fixed pool must flag it.
    let (_, fb_failures) =
        with_quiet_panics(|| fuzz(seed, 3, tasks, Some(FaultInjection::FbOffByOne)));
    if fb_failures.is_empty() {
        return Err("FB off-by-one fault went UNDETECTED".into());
    }
    let worst = fb_failures.iter().map(|f| f.spec.len()).max().unwrap();
    if worst > 5 {
        return Err(format!(
            "FB off-by-one reproducer shrunk only to {worst} nodes (want <= 5)"
        ));
    }
    // Task leak: conservation must break before the run deadlocks.
    let (_, leak_failures) = with_quiet_panics(|| {
        fuzz(
            seed,
            2,
            tasks.max(100),
            Some(FaultInjection::LeakTask { every: 5 }),
        )
    });
    if leak_failures.is_empty() {
        return Err("task-leak fault went UNDETECTED".into());
    }
    if !leak_failures
        .iter()
        .any(|f| f.message.contains("task-conservation"))
    {
        return Err(format!(
            "task leak was caught but not as a conservation violation: {}",
            leak_failures[0].message
        ));
    }
    // Swallowed reissue: invisible on a reliable network, so only the
    // fault-plan legs (crashes, aborts) can expose it — as a broken
    // conservation ledger.
    let (_, swallow_failures) = with_quiet_panics(|| {
        fuzz(
            seed,
            6,
            tasks.max(100),
            Some(FaultInjection::SwallowReissue),
        )
    });
    if swallow_failures.is_empty() {
        return Err("swallowed-reissue fault went UNDETECTED".into());
    }
    if !swallow_failures
        .iter()
        .any(|f| f.message.contains("task-conservation"))
    {
        return Err(format!(
            "swallowed reissue was caught but not as a conservation violation: {}",
            swallow_failures[0].message
        ));
    }
    // Queued-task leak: only the open-world legs have an admission
    // queue to corrupt, so exactly they must break arrival conservation.
    let (_, qleak_failures) = with_quiet_panics(|| {
        fuzz(
            seed,
            4,
            tasks.max(100),
            Some(FaultInjection::LeakQueuedTask { every: 1 }),
        )
    });
    if qleak_failures.is_empty() {
        return Err("queued-task-leak fault went UNDETECTED".into());
    }
    if !qleak_failures
        .iter()
        .any(|f| f.message.contains("arrival-conservation") && f.arrival_seed.is_some())
    {
        return Err(format!(
            "queued-task leak was caught but not as an arrival-conservation \
             violation on an open-world leg: {}",
            qleak_failures[0].message
        ));
    }
    Ok(format!(
        "self-test: FB off-by-one caught in {} runs (worst reproducer {} nodes), \
         task leak caught in {} runs, swallowed reissue caught in {} runs, \
         queued-task leak caught in {} open-world runs",
        fb_failures.len(),
        worst,
        leak_failures.len(),
        swallow_failures.len(),
        qleak_failures.len()
    ))
}

fn main() -> ExitCode {
    let args = match try_parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(Some(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(n) = args.threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("configure worker threads");
    }

    // Reproducer mode: one spec, one variant, one verdict.
    if let Some(spec) = &args.repro {
        let spec = match CaseSpec::decode(spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let name = args.variant.as_deref().expect("checked in try_parse");
        let Some(cfg) = variant_by_name(name, args.tasks) else {
            eprintln!(
                "error: unknown variant {name}; known: {}",
                variants(1)
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            return ExitCode::from(2);
        };
        // An arrival-leg failure's workload is a pure function of its
        // printed seed; regenerate it so the repro streams the same plan.
        let cfg = match args.arrivals {
            Some(s) => cfg.with_arrivals(fuzz_arrival_plan(s)),
            None => cfg,
        };
        let cfg = match args.fault {
            Some(f) => cfg.with_fault(f),
            None => cfg,
        };
        // The spec's third segment, when present, is a fault schedule;
        // rebuild its plan so the repro runs the exact faulted case.
        return match with_quiet_panics(|| run_case(&spec.to_tree(), &case_config(&spec, &cfg))) {
            Ok(()) => {
                println!(
                    "PASS: {}-node tree, variant {name}, {} tasks — all invariants hold",
                    spec.len(),
                    args.tasks
                );
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("reproduced: {msg}");
                let shrunk = with_quiet_panics(|| shrink(spec.clone(), &cfg));
                if shrunk != spec {
                    eprintln!("  shrinks further to: {}", shrunk.encode());
                }
                // Event-level post-mortem: the last events of the shrunk
                // case, from a flight-recorder re-run.
                let (_, tail) = with_quiet_panics(|| {
                    trace_tail(&shrunk.to_tree(), &case_config(&shrunk, &cfg), 40)
                });
                eprintln!("trace tail of the shrunk case ({} event(s)):", tail.len());
                for r in &tail {
                    eprintln!("  {r}");
                }
                ExitCode::FAILURE
            }
        };
    }

    let started = Instant::now();
    let mut ok = true;

    if args.self_test || args.smoke {
        match self_test(args.seed, args.tasks.min(200)) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("SELF-TEST FAILED: {msg}");
                ok = false;
            }
        }
        if args.self_test && !args.smoke && !args.fork_smoke && !args.arrival_smoke {
            return if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    }

    if args.fork_smoke || args.smoke {
        match fork_smoke(args.seed, args.tasks.min(200)) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("FORK SMOKE FAILED: {msg}");
                ok = false;
            }
        }
        if args.fork_smoke && !args.smoke && !args.arrival_smoke {
            return if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    }

    if args.arrival_smoke || args.smoke {
        match arrival_smoke(args.seed, args.tasks.min(200)) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("ARRIVAL SMOKE FAILED: {msg}");
                ok = false;
            }
        }
        if args.arrival_smoke && !args.smoke {
            return if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    }

    let cases = if args.smoke {
        args.cases.min(180)
    } else {
        args.cases
    };
    let (runs, failures) = with_quiet_panics(|| fuzz(args.seed, cases, args.tasks, None));
    println!(
        "fuzzed {cases} trees x {} variants ({} fault-plan + {} arrival legs each) = \
         {runs} checked runs in {:.1}s: {} violation(s)",
        variants(1).len(),
        FAULT_PLAN_VARIANTS.len(),
        ARRIVAL_VARIANTS.len(),
        started.elapsed().as_secs_f64(),
        failures.len()
    );
    if !failures.is_empty() {
        print_failures(&failures);
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
