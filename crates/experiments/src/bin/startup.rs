//! Runs the startup-time extension experiment.

use bc_experiments::campaign::CampaignConfig;
use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::startup;

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 100,
            full_trees: 1_000,
            tasks: 4_000,
        },
    );
    let campaign = CampaignConfig::paper(cli.trees, cli.tasks, cli.seed);
    let s = startup::run(&campaign);
    let text = startup::render(&s);
    println!("{text}");
    write_artifact(&cli, "startup.txt", &text);
}
