//! Regenerates every table and figure in one run (laptop-sized defaults;
//! pass --full for paper scale — expect a long run on one core).

use bc_experiments::campaign::CampaignConfig;
use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::{
    elasticity, fig3, fig4, fig5, fig6, fig7, overlay, startup, table1, table2, utilization,
};
use std::time::Instant;

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 300,
            full_trees: 25_000,
            tasks: 10_000,
        },
    );
    let t0 = Instant::now();
    let mut all = String::new();
    let mut section = |title: &str, body: String| {
        println!("\n=== {title} ===\n{body}");
        all.push_str(&format!("\n=== {title} ===\n{body}\n"));
    };

    let c_fig3 = CampaignConfig::paper(cli.trees.min(200), 2_000, cli.seed);
    section("Figure 3", fig3::render(&fig3::run(&c_fig3), 200));

    let c_main = CampaignConfig::paper(cli.trees, cli.tasks, cli.seed);
    section("Figure 4", fig4::render(&fig4::run(&c_main)));

    let c_classes = CampaignConfig::paper(cli.trees.min(200), 4_000, cli.seed);
    section("Figure 5", fig5::render(&fig5::run(&c_classes)));

    let c_fig6 = CampaignConfig::paper(cli.trees.min(300), cli.tasks, cli.seed);
    section("Figure 6", fig6::render(&fig6::run(&c_fig6), 25, 4));

    section("Figure 7", fig7::render(&fig7::run(1_000, 200)));

    section("Table 1", table1::render(&table1::run(&c_main)));

    section("Table 2", table2::render(&table2::run(&c_classes)));

    let overlay_cfg = overlay::OverlayConfig {
        graphs: cli.trees.min(50),
        seed: cli.seed,
        ..overlay::OverlayConfig::default()
    };
    section(
        "Overlay extension",
        overlay::render(&overlay::run(&overlay_cfg)),
    );

    let c_startup = CampaignConfig::paper(cli.trees.min(60), 4_000, cli.seed);
    section(
        "Startup-time extension",
        startup::render(&startup::run(&c_startup)),
    );

    let util_cfg = utilization::UtilizationConfig {
        trees: cli.trees.min(30),
        seed: cli.seed,
        ..utilization::UtilizationConfig::default()
    };
    section(
        "Per-node rate validation",
        utilization::render(&utilization::run(&util_cfg)),
    );

    let elastic_cfg = elasticity::ElasticityConfig {
        trees: cli.trees.min(30),
        seed: cli.seed,
        ..elasticity::ElasticityConfig::default()
    };
    section(
        "Elasticity extension",
        elasticity::render(&elasticity::run(&elastic_cfg)),
    );

    println!("\ntotal: {:.1?}", t0.elapsed());
    write_artifact(&cli, "repro_all.txt", &all);
}
