//! Platform analyzer: the downstream-user tool. Reads a platform tree
//! (JSON file, or a generator seed) and reports everything the theory
//! says about it — optimal rate, per-node allocation, predicted used
//! nodes, the period bound — optionally validating by simulation.
//!
//! Usage:
//!   analyze --json platform.json [--simulate N] [--dot] [--criticality]
//!   analyze --random SEED [--simulate N] [--dot] [--criticality]

use bc_engine::{SimConfig, Simulation};
use bc_metrics::ascii_table;
use bc_platform::{io, RandomTreeConfig, Tree};
use bc_steady::{node_criticality, period_bound, SteadyState};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tree: Option<Tree> = None;
    let mut simulate: Option<u64> = None;
    let mut dot = false;
    let mut criticality = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                let path = it.next().expect("--json requires a path");
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                tree = Some(io::from_json(&text).expect("invalid platform JSON"));
            }
            "--random" => {
                let seed: u64 = it
                    .next()
                    .expect("--random requires a seed")
                    .parse()
                    .expect("seed must be a number");
                tree = Some(RandomTreeConfig::default().generate(seed));
            }
            "--simulate" => {
                simulate = Some(
                    it.next()
                        .expect("--simulate requires a task count")
                        .parse()
                        .expect("task count must be a number"),
                );
            }
            "--dot" => dot = true,
            "--criticality" => criticality = true,
            "--help" | "-h" => {
                println!(
                    "analyze --json FILE | --random SEED [--simulate TASKS] [--dot] [--criticality]"
                );
                return;
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    let tree = tree.expect("provide --json FILE or --random SEED (see --help)");

    println!("platform: {} nodes, depth {}", tree.len(), tree.depth());
    if tree.len() <= 30 {
        println!("  {}", io::to_compact(&tree));
    }
    if dot {
        println!("\n{}", io::to_dot(&tree));
    }

    let analysis = SteadyState::analyze(&tree);
    let rate = analysis.optimal_rate();
    // Deep trees produce rationals with thousand-bit components; print
    // the exact form only when it is readable.
    if rate.numer().magnitude().bit_len() <= 64 && rate.denom().bit_len() <= 64 {
        println!(
            "\noptimal steady-state rate: {} ≈ {:.6} tasks/timestep",
            rate,
            rate.to_f64()
        );
    } else {
        println!(
            "\noptimal steady-state rate ≈ {:.6} tasks/timestep \
             (exact form spans {} bits)",
            rate.to_f64(),
            rate.numer().magnitude().bit_len() + rate.denom().bit_len()
        );
    }
    println!(
        "tree weight w_tree ≈ {:.6}",
        analysis.tree_weight().to_f64()
    );
    let bound = period_bound(&tree);
    println!(
        "schedule-period LCM bound: {} ({} bits)",
        if bound.bit_len() <= 64 {
            bound.to_string()
        } else {
            format!("≈2^{}", bound.bit_len())
        },
        bound.bit_len()
    );
    let used = analysis.used_nodes();
    println!(
        "predicted used nodes: {}/{}",
        used.iter().filter(|&&u| u).count(),
        tree.len()
    );

    // Per-node allocation (largest shares first, top 15).
    let mut alloc: Vec<(String, f64)> = tree
        .ids()
        .map(|id| (id.to_string(), analysis.node_rate(id).to_f64()))
        .collect();
    alloc.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("rates are finite"));
    let rows: Vec<Vec<String>> = alloc
        .iter()
        .take(15)
        .map(|(id, r)| vec![id.clone(), format!("{r:.6}")])
        .collect();
    println!("\ntop allocated nodes (theory):");
    println!("{}", ascii_table(&["node", "rate"], &rows));

    if criticality {
        // Exact rate lost if each node's subtree detached (top 10).
        let ranks = node_criticality(&tree);
        let rows: Vec<Vec<String>> = ranks
            .iter()
            .take(10)
            .map(|c| {
                vec![
                    c.node.to_string(),
                    format!("{:.6}", c.loss.to_f64()),
                    format!("{:.6}", c.rate_without.to_f64()),
                ]
            })
            .collect();
        println!("most critical subtrees (exact rate lost if detached):");
        println!(
            "{}",
            ascii_table(&["node", "rate lost", "rate without"], &rows)
        );
    }

    if let Some(tasks) = simulate {
        println!("simulating {tasks} tasks under IC, FB=3…");
        let run = Simulation::new(tree, SimConfig::interruptible(3, tasks)).run();
        println!(
            "  completed in {} timesteps; overall rate {:.6} ({:.1}% of optimal)",
            run.end_time,
            run.overall_rate(),
            100.0 * run.overall_rate() / analysis.optimal_rate().to_f64()
        );
        println!(
            "  used nodes (simulated): {}/{}; max buffers {}",
            run.used_nodes().iter().filter(|&&u| u).count(),
            run.tasks_per_node.len(),
            run.max_buffers()
        );
    }
}
