//! Regenerates Figure 5 (impact of computation-to-communication ratio).

use bc_experiments::campaign::CampaignConfig;
use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::fig5;

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 200,
            full_trees: 1_000,
            tasks: 4_000,
        },
    );
    let campaign = CampaignConfig::paper(cli.trees, cli.tasks, cli.seed);
    let fig = fig5::run(&campaign);
    let text = fig5::render(&fig);
    println!("{text}");
    write_artifact(&cli, "fig5.txt", &text);
    if cli.out.is_some() {
        let mut rows = Vec::new();
        for c in &fig.cells {
            for (x, y) in c.cdf(&fig.probes) {
                rows.push(vec![
                    c.compute_scale.to_string(),
                    c.protocol.clone(),
                    x.to_string(),
                    format!("{y:.6}"),
                ]);
            }
        }
        write_artifact(
            &cli,
            "fig5.csv",
            &bc_metrics::csv(&["x", "protocol", "tasks", "fraction_reached"], &rows),
        );
    }
}
