//! Chaos harness: proves the durability layer against *real* process
//! death and *real* disk faults, not just the deterministic
//! `stop_after_shards` stand-in the unit tests use.
//!
//! Legs (all run by default):
//!
//! 1. **Campaign SIGKILL** — spawns a child process (this same binary in
//!    hidden worker mode) running a checkpointed streaming grid sweep,
//!    SIGKILLs it after a seeded-random delay, relaunches with resume,
//!    and repeats until the sweep completes; the final per-cell
//!    aggregates must be **bit-identical** to a clean in-process run.
//! 2. **Disk faults** — truncates and bit-flips the newest checkpoint
//!    generation of a partially-run sweep and asserts detection and
//!    fallback to the previous good generation (still bit-identical);
//!    with every generation corrupted, the failure must be the typed
//!    `NoUsableGeneration` error — never a panic, never silent garbage.
//! 3. **Serve SIGKILL** — spawns the `bc-serve` binary with a
//!    per-line session journal, opens and steps a session, SIGKILLs the
//!    server, relaunches with `--recover`, runs the session to the end,
//!    and asserts the final `done` accounting equals the uninterrupted
//!    in-process run's.
//!
//! ```text
//! chaos [--seed S] [--trees N] [--dir DIR] [--max-kills K] [--skip-serve]
//! ```
//!
//! Exits 0 with a `chaos: all legs passed` summary, or 1 with the
//! failing leg's diagnostics (CI uploads the scratch directory as a
//! failure artifact).

use bc_engine::SimConfig;
use bc_experiments::campaign::{
    run_grid_streaming, run_grid_streaming_checkpointed, CampaignAccumulator, CampaignGrid,
    CheckpointPolicy, GridCell, ResumeError,
};
use bc_metrics::OnsetConfig;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const SHARD_SIZE: usize = 2;

fn fail(msg: &str) -> ! {
    eprintln!("chaos: FAIL: {msg}");
    std::process::exit(1);
}

/// The swept grid: 4 cells x `trees_per_cell` trees (256 trees at the
/// default 64 — the CI smoke size).
fn chaos_grid(seed: u64, trees_per_cell: usize) -> CampaignGrid {
    CampaignGrid {
        max_nodes: vec![10, 20],
        tasks: vec![200],
        buffers: vec![2, 3],
        comm_max: vec![8],
        compute_scale: vec![100],
        trees_per_cell,
        seed,
        onset: OnsetConfig {
            window_threshold: 50,
            crossings: 2,
        },
    }
}

fn cfg_for(cell: &GridCell) -> SimConfig {
    SimConfig::interruptible(cell.buffers, cell.tasks)
}

/// Canonical byte form of final per-cell aggregates, for exact diffs.
fn encode_cells(cells: &[(GridCell, CampaignAccumulator)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (cell, acc) in cells {
        out.extend((cell.index as u64).to_le_bytes());
        acc.encode_into(&mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// Worker mode (the process that gets SIGKILLed)
// ---------------------------------------------------------------------------

/// Runs the checkpointed sweep with resume enabled and, on completion,
/// atomically publishes the aggregate bytes as `result.bin`.
fn worker_sweep(dir: &Path, seed: u64, trees_per_cell: usize) -> ! {
    let grid = chaos_grid(seed, trees_per_cell);
    let policy = CheckpointPolicy::new(dir, 1).resuming(true);
    let outcome = match run_grid_streaming_checkpointed(&grid, SHARD_SIZE, cfg_for, &policy) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("worker: {e}");
            std::process::exit(3);
        }
    };
    if outcome.completed {
        let tmp = dir.join(format!("result.tmp-{}", std::process::id()));
        let final_path = dir.join("result.bin");
        std::fs::write(&tmp, encode_cells(&outcome.results)).expect("worker: write result");
        std::fs::rename(&tmp, &final_path).expect("worker: publish result");
    }
    std::process::exit(0);
}

// ---------------------------------------------------------------------------
// Leg 1: campaign SIGKILL
// ---------------------------------------------------------------------------

fn campaign_kill_leg(dir: &Path, seed: u64, trees_per_cell: usize, max_kills: u32) {
    let grid = chaos_grid(seed, trees_per_cell);
    let reference = encode_cells(&run_grid_streaming(&grid, SHARD_SIZE, cfg_for));

    let sweep_dir = dir.join("sweep");
    let _ = std::fs::remove_dir_all(&sweep_dir);
    std::fs::create_dir_all(&sweep_dir).expect("create sweep dir");
    let exe = std::env::current_exe().expect("current_exe");
    let result_path = sweep_dir.join("result.bin");

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4A0_5CA0);
    let mut kills = 0u32;
    while !result_path.exists() {
        let mut child = Command::new(&exe)
            .arg("--worker-sweep")
            .arg(&sweep_dir)
            .arg(seed.to_string())
            .arg(trees_per_cell.to_string())
            .spawn()
            .expect("spawn worker");
        if kills < max_kills {
            let delay = rng.random_range(2u64..60);
            std::thread::sleep(std::time::Duration::from_millis(delay));
            match child.try_wait().expect("try_wait") {
                Some(status) => {
                    if !status.success() {
                        fail(&format!("worker exited with {status} before the kill"));
                    }
                }
                None => {
                    // SIGKILL on unix: no destructors, no flushing — the
                    // real thing the atomic checkpoint protocol defends
                    // against.
                    child.kill().expect("kill worker");
                    let _ = child.wait();
                    kills += 1;
                }
            }
        } else {
            let status = child.wait().expect("wait worker");
            if !status.success() {
                fail(&format!("worker exited with {status} on the final run"));
            }
        }
    }
    let got = std::fs::read(&result_path).expect("read worker result");
    if got != reference {
        fail("campaign aggregates after SIGKILL/resume differ from the clean run");
    }
    println!(
        "chaos: campaign leg passed — {} trees, {} SIGKILLs, aggregates bit-identical",
        grid.total_trees(),
        kills
    );
}

// ---------------------------------------------------------------------------
// Leg 2: disk faults on checkpoint files
// ---------------------------------------------------------------------------

fn checkpoint_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "bcc"))
        .collect();
    files.sort();
    files
}

/// Runs a partial sweep, corrupts the newest generation with `mangle`,
/// resumes, and demands fallback-to-previous with bit-identical finals.
fn corrupt_and_resume(
    dir: &Path,
    seed: u64,
    trees_per_cell: usize,
    reference: &[u8],
    what: &str,
    mangle: impl FnOnce(&Path),
) {
    let grid = chaos_grid(seed, trees_per_cell);
    let _ = std::fs::remove_dir_all(dir);
    let mut policy = CheckpointPolicy::new(dir, 1);
    policy.stop_after_shards = Some(5);
    policy.keep = 16;
    run_grid_streaming_checkpointed(&grid, SHARD_SIZE, cfg_for, &policy)
        .unwrap_or_else(|e| fail(&format!("{what}: partial sweep failed: {e}")));

    let files = checkpoint_files(dir);
    if files.is_empty() {
        fail(&format!("{what}: partial sweep left no checkpoints"));
    }
    mangle(files.last().expect("non-empty"));

    let mut policy = CheckpointPolicy::new(dir, 1).resuming(true);
    policy.keep = 16;
    let outcome = run_grid_streaming_checkpointed(&grid, SHARD_SIZE, cfg_for, &policy)
        .unwrap_or_else(|e| fail(&format!("{what}: resume past corruption failed: {e}")));
    if !outcome.completed {
        fail(&format!("{what}: resumed sweep did not complete"));
    }
    if encode_cells(&outcome.results) != reference {
        fail(&format!("{what}: aggregates differ after fallback"));
    }
    println!("chaos: disk-fault leg passed — {what} detected, fell back, bit-identical");
}

fn disk_fault_leg(dir: &Path, seed: u64, trees_per_cell: usize) {
    let grid = chaos_grid(seed, trees_per_cell);
    let reference = encode_cells(&run_grid_streaming(&grid, SHARD_SIZE, cfg_for));
    let fault_dir = dir.join("faults");

    corrupt_and_resume(
        &fault_dir,
        seed,
        trees_per_cell,
        &reference,
        "truncated newest generation",
        |newest| {
            let bytes = std::fs::read(newest).expect("read checkpoint");
            std::fs::write(newest, &bytes[..bytes.len() / 2]).expect("truncate checkpoint");
        },
    );
    corrupt_and_resume(
        &fault_dir,
        seed,
        trees_per_cell,
        &reference,
        "bit-flipped newest generation",
        |newest| {
            let mut bytes = std::fs::read(newest).expect("read checkpoint");
            let at = bytes.len() / 3;
            bytes[at] ^= 0x10;
            std::fs::write(newest, &bytes).expect("flip checkpoint");
        },
    );

    // Every generation corrupt: typed error, no panic, no garbage.
    let _ = std::fs::remove_dir_all(&fault_dir);
    let mut policy = CheckpointPolicy::new(&fault_dir, 1);
    policy.stop_after_shards = Some(5);
    policy.keep = 16;
    run_grid_streaming_checkpointed(&grid, SHARD_SIZE, cfg_for, &policy)
        .unwrap_or_else(|e| fail(&format!("all-corrupt: partial sweep failed: {e}")));
    for file in checkpoint_files(&fault_dir) {
        std::fs::write(&file, b"zero useful bytes").expect("corrupt checkpoint");
    }
    let policy = CheckpointPolicy::new(&fault_dir, 1).resuming(true);
    match run_grid_streaming_checkpointed(&grid, SHARD_SIZE, cfg_for, &policy) {
        Err(ResumeError::Checkpoint(bc_engine::CheckpointError::NoUsableGeneration)) => {
            println!("chaos: disk-fault leg passed — all-corrupt store is a typed error");
        }
        other => fail(&format!(
            "all-corrupt store should be NoUsableGeneration, got {other:?}"
        )),
    }
}

// ---------------------------------------------------------------------------
// Leg 3: serve SIGKILL + --recover
// ---------------------------------------------------------------------------

const SERVE_OPEN: &str = r#"{"cmd":"open","sim":"chaos","tree":{"root_compute":3,"nodes":[[0,2,3],[0,1,4],[1,2,2],[2,1,3]]},"protocol":"ic","buffers":2,"arrivals":{"seed":23,"queue_cap":3,"policy":"defer","classes":[{"name":"tick","units":1,"poisson":{"mean_gap":2,"count":25}},{"name":"surge","units":2,"burst":{"phase":7,"period":15,"size":5,"bursts":3}}]}}"#;
const SERVE_STEP: &str = r#"{"cmd":"step","sim":"chaos","events":40}"#;
const SERVE_RUN: &str = r#"{"cmd":"run","sim":"chaos"}"#;

fn find_done(lines: &[String]) -> Option<&String> {
    lines.iter().find(|l| l.contains("\"ev\":\"done\""))
}

fn serve_kill_leg(dir: &Path, seed: u64) {
    let serve_bin = std::env::current_exe()
        .expect("current_exe")
        .with_file_name("bc-serve");
    if !serve_bin.exists() {
        println!(
            "chaos: serve leg SKIPPED — {} not built (build with `cargo build -p bc-serve`)",
            serve_bin.display()
        );
        return;
    }

    // Uninterrupted reference, in-process through the same Server.
    let mut golden_srv = bc_serve::Server::new();
    let mut golden = golden_srv.handle_line(SERVE_OPEN);
    golden.extend(golden_srv.handle_line(SERVE_STEP));
    golden.extend(golden_srv.handle_line(SERVE_RUN));
    let golden_done =
        find_done(&golden).unwrap_or_else(|| fail("serve: golden run produced no done line"));

    let journal_dir = dir.join("serve-journal");
    let _ = std::fs::remove_dir_all(&journal_dir);

    // First server: open + step, journaling after every line, then die.
    let mut first = Command::new(&serve_bin)
        .arg("--journal")
        .arg(&journal_dir)
        .arg("--journal-every")
        .arg("1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn bc-serve");
    {
        let mut stdin = first.stdin.take().expect("serve stdin");
        let stdout = BufReader::new(first.stdout.take().expect("serve stdout"));
        writeln!(stdin, "{SERVE_OPEN}").expect("write open");
        writeln!(stdin, "{SERVE_STEP}").expect("write step");
        stdin.flush().expect("flush serve stdin");
        // The open + step of the golden run produced this many response
        // lines; consume the same number from the child so we know both
        // requests were fully handled before the kill.
        let prefix_lines = {
            let mut probe = bc_serve::Server::new();
            probe.handle_line(SERVE_OPEN).len() + probe.handle_line(SERVE_STEP).len()
        };
        let mut seen = 0usize;
        for line in stdout.lines() {
            line.expect("read serve stdout");
            seen += 1;
            if seen == prefix_lines {
                break;
            }
        }
        // Wait for at least one journal generation, then strike at a
        // seeded-random moment.
        while checkpoint_files(&journal_dir).is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5E4E);
        std::thread::sleep(std::time::Duration::from_millis(rng.random_range(1u64..30)));
        first.kill().expect("kill bc-serve");
        let _ = first.wait();
        // stdin drops here; the process is already dead.
    }

    // Second server: recover, run to the end, compare accounting.
    let mut second = Command::new(&serve_bin)
        .arg("--recover")
        .arg(&journal_dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("respawn bc-serve");
    {
        let mut stdin = second.stdin.take().expect("serve stdin");
        writeln!(stdin, "{SERVE_RUN}").expect("write run");
        writeln!(stdin, "{{\"cmd\":\"shutdown\"}}").expect("write shutdown");
        stdin.flush().expect("flush serve stdin");
    }
    let stdout = BufReader::new(second.stdout.take().expect("serve stdout"));
    let lines: Vec<String> = stdout.lines().map(|l| l.expect("read recovered")).collect();
    let _ = second.wait();
    if !lines
        .first()
        .is_some_and(|l| l.contains("\"ev\":\"recovered\""))
    {
        fail(&format!("serve: no recovered line, got {lines:?}"));
    }
    let done = find_done(&lines)
        .unwrap_or_else(|| fail(&format!("serve: recovered run has no done line: {lines:?}")));
    if done != golden_done {
        fail(&format!(
            "serve: recovered done accounting diverged\n  golden: {golden_done}\n  got:    {done}"
        ));
    }
    println!("chaos: serve leg passed — SIGKILL + --recover, done accounting identical");
}

// ---------------------------------------------------------------------------
// Entry
// ---------------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--worker-sweep") {
        if args.len() != 4 {
            eprintln!("usage: chaos --worker-sweep DIR SEED TREES");
            std::process::exit(2);
        }
        let dir = PathBuf::from(&args[1]);
        let seed: u64 = args[2].parse().expect("worker seed");
        let trees: usize = args[3].parse().expect("worker trees");
        worker_sweep(&dir, seed, trees);
    }

    let mut seed = 42u64;
    let mut trees = 64usize;
    let mut max_kills = 25u32;
    let mut dir: Option<PathBuf> = None;
    let mut skip_serve = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seed" => seed = val("--seed").parse().expect("--seed"),
            "--trees" => trees = val("--trees").parse().expect("--trees"),
            "--max-kills" => max_kills = val("--max-kills").parse().expect("--max-kills"),
            "--dir" => dir = Some(PathBuf::from(val("--dir"))),
            "--skip-serve" => skip_serve = true,
            "--help" | "-h" => {
                println!(
                    "usage: chaos [--seed S] [--trees N] [--dir DIR] \
                     [--max-kills K] [--skip-serve]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let scratch = dir
        .unwrap_or_else(|| std::env::temp_dir().join(format!("bc-chaos-{}", std::process::id())));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    println!(
        "chaos: seed {seed}, {} trees, scratch {}",
        trees * 4,
        scratch.display()
    );

    campaign_kill_leg(&scratch, seed, trees, max_kills);
    disk_fault_leg(&scratch, seed, trees);
    if skip_serve {
        println!("chaos: serve leg skipped (--skip-serve)");
    } else {
        serve_kill_leg(&scratch, seed);
    }
    println!("chaos: all legs passed");
}
