//! Regenerates Figure 3 (normalized window rates of illustrative trees).

use bc_experiments::campaign::CampaignConfig;
use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::fig3;

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 200,
            full_trees: 1_000,
            tasks: 2_000,
        },
    );
    let campaign = CampaignConfig::paper(cli.trees, cli.tasks, cli.seed);
    let fig = fig3::run(&campaign);
    let text = fig3::render(&fig, 200);
    println!("{text}");
    write_artifact(&cli, "fig3.txt", &text);
    if cli.out.is_some() {
        for t in &fig.trees {
            let rows: Vec<Vec<String>> = t
                .curve
                .iter()
                .map(|&(w, v)| vec![w.to_string(), format!("{v:.6}")])
                .collect();
            write_artifact(
                &cli,
                &format!("fig3_tree{}.csv", t.index),
                &bc_metrics::csv(&["window", "normalized_rate"], &rows),
            );
        }
    }
}
