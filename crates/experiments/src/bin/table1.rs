//! Regenerates Table 1 (% reaching optimal using at most n buffers).

use bc_experiments::campaign::CampaignConfig;
use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::table1;

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 400,
            full_trees: 25_000,
            tasks: 10_000,
        },
    );
    let campaign = CampaignConfig::paper(cli.trees, cli.tasks, cli.seed);
    let t = table1::run(&campaign);
    let text = table1::render(&t);
    println!("{text}");
    write_artifact(&cli, "table1.txt", &text);
}
