//! Streaming parameter-grid sweep: the fleet-scale campaign surface.
//!
//! Sweeps the paper's campaign knobs (tree size `m`, tasks `n`, buffers
//! `b`, delay spread `d`, compute scale `x`) over their cartesian
//! product, `--trees` random trees per cell, in streaming sharded mode:
//! per-tree results are folded straight into mergeable accumulators, so
//! memory stays sub-linear in total tree count no matter how large the
//! sweep grows (`--full` runs 6_400 trees per cell — 102_400 trees over
//! the 16 default cells).
//!
//! `--stream` is implied (and accepted); `--shard-size` bounds the trees
//! a worker folds before handing its shard accumulator back.

use bc_engine::SimConfig;
use bc_experiments::campaign::{run_grid_streaming, CampaignGrid};
use bc_experiments::cli::{parse, write_artifact, Defaults};

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 100,
            full_trees: 6_400,
            tasks: 500,
        },
    );
    let mut grid = CampaignGrid::default_grid(cli.trees, cli.seed);
    grid.tasks = vec![cli.tasks];
    let total = grid.total_trees();
    let t0 = std::time::Instant::now();
    let cells = run_grid_streaming(&grid, cli.shard_size, |c| {
        SimConfig::interruptible(c.buffers, c.tasks)
    });
    let wall = t0.elapsed().as_secs_f64();

    let mut csv = String::from(
        "cell,max_nodes,tasks,buffers,comm_max,compute_scale,trees,fraction_reached,\
         mean_onset,mean_nodes,mean_optimal_rate,events\n",
    );
    let mut events: u128 = 0;
    let mut reached: u64 = 0;
    println!("cell  m={{max_nodes}} b={{fb}} d={{comm}} x={{scale}}  frac_opt  mean_onset");
    for (cell, acc) in &cells {
        events += acc.run_stats.events;
        reached += acc.reached;
        println!(
            "{:4}  m={:<4} b={} d={:<3} x={:<4}  {:.4}    {:.1}",
            cell.index,
            cell.max_nodes,
            cell.buffers,
            cell.comm_max,
            cell.compute_scale,
            acc.fraction_reached(),
            acc.mean_onset(),
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{:.6},{:.2},{:.2},{:.6},{}\n",
            cell.index,
            cell.max_nodes,
            cell.tasks,
            cell.buffers,
            cell.comm_max,
            cell.compute_scale,
            acc.trees(),
            acc.fraction_reached(),
            acc.mean_onset(),
            acc.mean_nodes(),
            acc.mean_optimal_rate(),
            acc.run_stats.events,
        ));
    }
    let frac = reached as f64 / total.max(1) as f64;
    println!(
        "swept {total} trees over {} cells in {wall:.1}s \
         ({:.2}M events/s, overall fraction reached {frac:.4})",
        cells.len(),
        events as f64 / wall / 1e6,
    );
    write_artifact(&cli, "grid_sweep.csv", &csv);
}
