//! Streaming parameter-grid sweep: the fleet-scale campaign surface.
//!
//! Sweeps the paper's campaign knobs (tree size `m`, tasks `n`, buffers
//! `b`, delay spread `d`, compute scale `x`) over their cartesian
//! product, `--trees` random trees per cell, in streaming sharded mode:
//! per-tree results are folded straight into mergeable accumulators, so
//! memory stays sub-linear in total tree count no matter how large the
//! sweep grows (`--full` runs 6_400 trees per cell — 102_400 trees over
//! the 16 default cells).
//!
//! `--stream` is implied (and accepted); `--shard-size` bounds the trees
//! a worker folds before handing its shard accumulator back.
//!
//! With `--checkpoint-dir DIR` the sweep persists its per-cell
//! accumulators and (cell, shard) cursor every `--checkpoint-every`
//! shards (atomic, checksummed generations — see DESIGN.md "Durability
//! & crash recovery"); after a crash, the same command line plus
//! `--resume` continues from the last good generation and the final
//! aggregates are bit-identical to an uninterrupted run.

use bc_engine::SimConfig;
use bc_experiments::campaign::{
    run_grid_streaming, run_grid_streaming_checkpointed, CampaignGrid, CheckpointPolicy,
};
use bc_experiments::cli::{parse, write_artifact, Defaults};

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 100,
            full_trees: 6_400,
            tasks: 500,
        },
    );
    if cli.resume && cli.checkpoint_dir.is_none() {
        eprintln!("error: --resume requires --checkpoint-dir");
        std::process::exit(2);
    }
    let mut grid = CampaignGrid::default_grid(cli.trees, cli.seed);
    grid.tasks = vec![cli.tasks];
    let total = grid.total_trees();
    let t0 = std::time::Instant::now();
    let cells = match &cli.checkpoint_dir {
        None => run_grid_streaming(&grid, cli.shard_size, |c| {
            SimConfig::interruptible(c.buffers, c.tasks)
        }),
        Some(dir) => {
            let policy = CheckpointPolicy::new(dir, cli.checkpoint_every).resuming(cli.resume);
            let outcome = run_grid_streaming_checkpointed(
                &grid,
                cli.shard_size,
                |c| SimConfig::interruptible(c.buffers, c.tasks),
                &policy,
            )
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            if let Some(generation) = outcome.resumed_from_generation {
                eprintln!(
                    "resumed from checkpoint generation {generation} \
                     ({}/{} shards now done)",
                    outcome.shards_done, outcome.shards_total,
                );
            }
            outcome.results
        }
    };
    let wall = t0.elapsed().as_secs_f64();

    let mut csv = String::from(
        "cell,max_nodes,tasks,buffers,comm_max,compute_scale,trees,fraction_reached,\
         mean_onset,mean_nodes,mean_optimal_rate,events\n",
    );
    let mut events: u128 = 0;
    let mut reached: u64 = 0;
    println!("cell  m={{max_nodes}} b={{fb}} d={{comm}} x={{scale}}  frac_opt  mean_onset");
    for (cell, acc) in &cells {
        events += acc.run_stats.events;
        reached += acc.reached;
        println!(
            "{:4}  m={:<4} b={} d={:<3} x={:<4}  {:.4}    {:.1}",
            cell.index,
            cell.max_nodes,
            cell.buffers,
            cell.comm_max,
            cell.compute_scale,
            acc.fraction_reached(),
            acc.mean_onset(),
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{:.6},{:.2},{:.2},{:.6},{}\n",
            cell.index,
            cell.max_nodes,
            cell.tasks,
            cell.buffers,
            cell.comm_max,
            cell.compute_scale,
            acc.trees(),
            acc.fraction_reached(),
            acc.mean_onset(),
            acc.mean_nodes(),
            acc.mean_optimal_rate(),
            acc.run_stats.events,
        ));
    }
    let frac = reached as f64 / total.max(1) as f64;
    println!(
        "swept {total} trees over {} cells in {wall:.1}s \
         ({:.2}M events/s, overall fraction reached {frac:.4})",
        cells.len(),
        events as f64 / wall / 1e6,
    );
    write_artifact(&cli, "grid_sweep.csv", &csv);
}
