//! Regenerates Table 2 (buffers used by non-IC across ratio classes).

use bc_experiments::campaign::CampaignConfig;
use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::table2;

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 200,
            full_trees: 1_000,
            tasks: 4_000,
        },
    );
    let campaign = CampaignConfig::paper(cli.trees, cli.tasks, cli.seed);
    let t = table2::run_gated(&campaign, cli.gate);
    let text = table2::render(&t);
    println!("{text}");
    write_artifact(&cli, "table2.txt", &text);
}
