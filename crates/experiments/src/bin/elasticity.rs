//! Runs the elasticity extension experiment (join/leave tracking).

use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::elasticity::{self, ElasticityConfig};

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 40,
            full_trees: 400,
            tasks: 6_000,
        },
    );
    let cfg = ElasticityConfig {
        trees: cli.trees,
        tasks: cli.tasks,
        seed: cli.seed,
        ..ElasticityConfig::default()
    };
    let e = elasticity::run(&cfg);
    let text = elasticity::render(&e);
    println!("{text}");
    write_artifact(&cli, "elasticity.txt", &text);
}
