//! Emits the committed benchmark artifacts:
//!
//! * `BENCH_rational.json` — the small-word fast path of `Rational`
//!   against a baseline that forces every intermediate through the
//!   `BigInt`/`BigUint` machinery (the arithmetic every operation
//!   performed before the two-tier representation).
//! * `BENCH_campaign.json` — campaign-scale end-to-end numbers: the
//!   Theorem 1 fold over a tree population, the LP oracle, a full
//!   simulation campaign with its thread-scaling curve, and the
//!   paper-scale campaign (`campaign_paper_scale`: 25 000 random trees,
//!   per-protocol wall-clock / events-per-second / fraction reaching the
//!   optimal steady state).
//!
//! Flags: `--samples N` (timing samples per workload, default 15),
//! `--campaign-trees N` (paper-scale tree count, default 25 000),
//! `--campaign-tasks N` (tasks per tree, default 10 000),
//! `--assert-optimal-fraction X` (fail unless the IC/FB=3 paper-scale
//! campaign reaches at least `X`; used by the CI smoke job),
//! `--out DIR` (default `.`).

use bc_experiments::campaign::{
    fraction_reached, run_campaign, run_campaign_prepared, CampaignConfig,
};
use bc_metrics::OnsetConfig;
use bc_platform::RandomTreeConfig;
use bc_rational::{BigInt, BigUint, Rational, Sign};
use bc_steady::{lp_optimal_rate, SteadyState};
use serde::{object, Value};
use std::path::PathBuf;
use std::time::Instant;

/// Median wall time of `samples` runs of `f`, in nanoseconds.
fn time_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm up
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

fn small_operands(n: usize) -> Vec<Rational> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let num = (state >> 16) as i64 % 10_000 - 5_000;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let den = (state >> 16) % 10_000 + 1;
            Rational::new(num as i128, den as i128)
        })
        .collect()
}

fn big_of(mag: BigUint) -> BigInt {
    BigInt::from_sign_mag(Sign::Positive, mag)
}

/// `a + b` the way the pre-fast-path code computed it: heap-limb cross
/// products plus a full bignum gcd reduction.
fn big_add(a: &Rational, b: &Rational) -> Rational {
    let (an, ad) = (a.numer(), a.denom());
    let (bn, bd) = (b.numer(), b.denom());
    let num = an
        .mul(&big_of(bd.clone()))
        .add(&bn.mul(&big_of(ad.clone())));
    Rational::from_parts(num, ad.mul(&bd))
}

fn big_mul(a: &Rational, b: &Rational) -> Rational {
    Rational::from_parts(a.numer().mul(&b.numer()), a.denom().mul(&b.denom()))
}

fn big_sub_mul(cell: &Rational, factor: &Rational, pv: &Rational) -> Rational {
    let prod = big_mul(factor, pv);
    let (cn, cd) = (cell.numer(), cell.denom());
    let (pn, pd) = (prod.numer(), prod.denom());
    let num = cn
        .mul(&big_of(pd.clone()))
        .sub(&pn.mul(&big_of(cd.clone())));
    Rational::from_parts(num, cd.mul(&pd))
}

struct Workload {
    name: &'static str,
    small_ns: f64,
    big_ns: f64,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.big_ns / self.small_ns
    }

    fn to_value(&self) -> Value {
        object(vec![
            ("name", Value::Str(self.name.to_string())),
            ("small_path_ns", Value::Float(self.small_ns)),
            ("bignum_baseline_ns", Value::Float(self.big_ns)),
            ("speedup", Value::Float(self.speedup())),
        ])
    }
}

fn rational_report(samples: usize) -> (Value, f64) {
    let xs = small_operands(4096);
    let mut workloads = Vec::new();

    // Pairwise ops over adjacent operands: every input and result is
    // word-sized, the regime the fast path exists for (an accumulating
    // fold instead grows lcm-like denominators and degrades both paths
    // to bignum within a few terms).
    let small = time_ns(samples, || {
        let mut touched = 0usize;
        for pair in xs.windows(2) {
            touched += usize::from(!pair[0].add_ref(&pair[1]).is_zero());
        }
        assert!(touched > 0);
    });
    let big = time_ns(samples, || {
        let mut touched = 0usize;
        for pair in xs.windows(2) {
            touched += usize::from(!big_add(&pair[0], &pair[1]).is_zero());
        }
        assert!(touched > 0);
    });
    workloads.push(Workload {
        name: "add_pairwise_4096",
        small_ns: small,
        big_ns: big,
    });

    let small = time_ns(samples, || {
        let mut touched = 0usize;
        for pair in xs.windows(2) {
            touched += usize::from(!pair[0].mul_ref(&pair[1]).is_zero());
        }
        assert!(touched > 0);
    });
    let big = time_ns(samples, || {
        let mut touched = 0usize;
        for pair in xs.windows(2) {
            touched += usize::from(!big_mul(&pair[0], &pair[1]).is_zero());
        }
        assert!(touched > 0);
    });
    workloads.push(Workload {
        name: "mul_pairwise_4096",
        small_ns: small,
        big_ns: big,
    });

    let factor = Rational::new(7, 3);
    let row: Vec<Rational> = xs[..512].to_vec();
    let small = time_ns(samples, || {
        let mut r = row.clone();
        for (cell, pv) in r.iter_mut().zip(row.iter().rev()) {
            cell.sub_mul_assign_ref(&factor, pv);
        }
    });
    let big = time_ns(samples, || {
        let mut r = row.clone();
        for (cell, pv) in r.iter_mut().zip(row.iter().rev()) {
            *cell = big_sub_mul(cell, &factor, pv);
        }
    });
    workloads.push(Workload {
        name: "pivot_sweep_512",
        small_ns: small,
        big_ns: big,
    });

    let geomean =
        (workloads.iter().map(|w| w.speedup().ln()).sum::<f64>() / workloads.len() as f64).exp();

    let report = object(vec![
        ("generated_by", Value::Str("bench_report".to_string())),
        ("samples_per_workload", Value::Int(samples as i128)),
        (
            "baseline",
            Value::Str("same values routed through BigInt/BigUint via from_parts".to_string()),
        ),
        (
            "workloads",
            Value::Array(workloads.iter().map(Workload::to_value).collect()),
        ),
        ("geomean_speedup", Value::Float(geomean)),
    ]);
    (report, geomean)
}

/// Shape of the paper-scale campaign workload.
struct CampaignScale {
    trees: usize,
    tasks: u64,
    /// Fail the report unless IC/FB=3 reaches at least this fraction.
    assert_fraction: Option<f64>,
}

/// Runs the 64-tree campaign once per thread count and reports the
/// scaling curve (1, 2, 4, all). Results are bit-identical across thread
/// counts (each tree's run depends only on its seed), so only wall-clock
/// moves.
fn threads_curve(campaign: &CampaignConfig) -> Value {
    let all = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize, 2, 4, all];
    counts.sort_unstable();
    counts.dedup();
    let mut points = Vec::new();
    let mut baseline: Option<Vec<(Option<u64>, u64)>> = None;
    for &n in &counts {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .unwrap();
        let t0 = Instant::now();
        let runs = run_campaign(campaign, |t| bc_engine::SimConfig::interruptible(3, t));
        let ns = t0.elapsed().as_nanos() as f64;
        let summary: Vec<_> = runs.iter().map(|r| (r.onset, r.end_time)).collect();
        match &baseline {
            None => baseline = Some(summary),
            Some(b) => assert_eq!(b, &summary, "campaign differs at {n} threads"),
        }
        let events: u64 = runs.iter().map(|r| r.events).sum();
        points.push(object(vec![
            ("threads", Value::Int(n as i128)),
            ("wall_ms", Value::Float(ns / 1e6)),
            ("events_per_sec", Value::Float(events as f64 / (ns / 1e9))),
        ]));
    }
    // Back to automatic sizing for the remaining workloads.
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .unwrap();
    Value::Array(points)
}

/// The paper's evaluation shape (§4.1): `trees` random trees from the
/// default generator, both protocols over the same prepared population.
fn paper_scale_report(scale: &CampaignScale) -> Value {
    let campaign = CampaignConfig::paper(scale.trees, scale.tasks, 2003);
    let t0 = Instant::now();
    let prepared = campaign.prepare_all();
    let prepare_ns = t0.elapsed().as_nanos() as f64;

    let mut protocols = Vec::new();
    let runs_of = [("ic_fb3", true), ("nonic_ib1", false)];
    for (name, interruptible) in runs_of {
        let t0 = Instant::now();
        let runs = run_campaign_prepared(&prepared, &campaign, |t| {
            if interruptible {
                bc_engine::SimConfig::interruptible(3, t)
            } else {
                bc_engine::SimConfig::non_interruptible(1, t)
            }
        });
        let ns = t0.elapsed().as_nanos() as f64;
        let events: u64 = runs.iter().map(|r| r.events).sum();
        let fraction = fraction_reached(&runs);
        if name == "ic_fb3" {
            if let Some(min) = scale.assert_fraction {
                assert!(
                    fraction >= min,
                    "IC/FB=3 reached optimal on only {fraction:.4} of trees (required {min})"
                );
            }
        }
        protocols.push(object(vec![
            ("protocol", Value::Str(name.to_string())),
            ("wall_ms", Value::Float(ns / 1e6)),
            ("events_total", Value::Int(events as i128)),
            ("events_per_sec", Value::Float(events as f64 / (ns / 1e9))),
            ("fraction_reached_optimal", Value::Float(fraction)),
        ]));
    }

    object(vec![
        ("trees", Value::Int(scale.trees as i128)),
        ("tasks_per_tree", Value::Int(scale.tasks as i128)),
        ("threads", Value::Int(rayon::current_num_threads() as i128)),
        ("prepare_wall_ms", Value::Float(prepare_ns / 1e6)),
        ("protocols", Value::Array(protocols)),
    ])
}

fn campaign_report(samples: usize, scale: &CampaignScale) -> Value {
    // Theorem 1 fold over a population slice.
    let cfg = RandomTreeConfig {
        min_nodes: 20,
        max_nodes: 80,
        comm_min: 1,
        comm_max: 30,
        compute_scale: 500,
    };
    let trees: Vec<_> = (0..100).map(|s| cfg.generate(s)).collect();
    let analyze_ns = time_ns(samples, || {
        let mut acc = 0.0;
        for t in &trees {
            acc += SteadyState::analyze(t).optimal_rate().to_f64();
        }
        assert!(acc > 0.0);
    });

    // Paper-scale single analysis (deep trees promote to the big tier).
    let paper_tree = RandomTreeConfig::default().generate(7);
    let paper_ns = time_ns(samples, || {
        assert!(SteadyState::analyze(&paper_tree)
            .optimal_rate()
            .is_positive());
    });

    // LP oracle on a small tree (exact simplex, pivot-sweep bound).
    let lp_tree = RandomTreeConfig {
        min_nodes: 14,
        max_nodes: 16,
        comm_min: 1,
        comm_max: 10,
        compute_scale: 50,
    }
    .generate(42);
    let lp_ns = time_ns(samples, || {
        assert!(lp_optimal_rate(&lp_tree).is_positive());
    });

    // Full simulation campaign (generation + oracle + protocol).
    let campaign = CampaignConfig {
        trees: 64,
        tasks: 2_000,
        seed: 2003,
        tree_config: RandomTreeConfig {
            min_nodes: 10,
            max_nodes: 60,
            comm_min: 1,
            comm_max: 20,
            compute_scale: 500,
        },
        onset: OnsetConfig::default(),
    };
    let t0 = Instant::now();
    let runs = run_campaign(&campaign, |t| bc_engine::SimConfig::interruptible(3, t));
    let campaign_ns = t0.elapsed().as_nanos() as f64;
    let events: u64 = runs.iter().map(|r| r.events).sum();
    let reached = runs.iter().filter(|r| r.reached()).count();

    let curve = threads_curve(&campaign);
    let paper_scale = paper_scale_report(scale);

    object(vec![
        ("generated_by", Value::Str("bench_report".to_string())),
        ("samples_per_workload", Value::Int(samples as i128)),
        (
            "steady_analyze_100_trees",
            object(vec![
                ("wall_ms", Value::Float(analyze_ns / 1e6)),
                (
                    "per_tree_us",
                    Value::Float(analyze_ns / 1e3 / trees.len() as f64),
                ),
            ]),
        ),
        (
            "steady_analyze_paper_scale_tree",
            object(vec![
                ("nodes", Value::Int(paper_tree.len() as i128)),
                ("wall_ms", Value::Float(paper_ns / 1e6)),
            ]),
        ),
        (
            "lp_oracle_16_nodes",
            object(vec![("wall_ms", Value::Float(lp_ns / 1e6))]),
        ),
        (
            "simulation_campaign",
            object(vec![
                ("trees", Value::Int(campaign.trees as i128)),
                ("tasks_per_tree", Value::Int(campaign.tasks as i128)),
                ("wall_ms", Value::Float(campaign_ns / 1e6)),
                ("events_total", Value::Int(events as i128)),
                (
                    "events_per_sec",
                    Value::Float(events as f64 / (campaign_ns / 1e9)),
                ),
                (
                    "fraction_reached_optimal",
                    Value::Float(reached as f64 / runs.len() as f64),
                ),
            ]),
        ),
        ("threads_curve", curve),
        ("campaign_paper_scale", paper_scale),
    ])
}

fn main() {
    let mut samples = 15usize;
    let mut out = PathBuf::from(".");
    let mut scale = CampaignScale {
        trees: 25_000,
        tasks: 10_000,
        assert_fraction: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--samples" => {
                samples = value("--samples")
                    .parse()
                    .expect("--samples must be a number");
                assert!(samples > 0, "--samples must be at least 1");
            }
            "--campaign-trees" => {
                scale.trees = value("--campaign-trees")
                    .parse()
                    .expect("--campaign-trees must be a number");
                assert!(scale.trees > 0, "--campaign-trees must be at least 1");
            }
            "--campaign-tasks" => {
                scale.tasks = value("--campaign-tasks")
                    .parse()
                    .expect("--campaign-tasks must be a number");
                assert!(scale.tasks > 0, "--campaign-tasks must be at least 1");
            }
            "--assert-optimal-fraction" => {
                let f: f64 = value("--assert-optimal-fraction")
                    .parse()
                    .expect("--assert-optimal-fraction must be a number");
                assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
                scale.assert_fraction = Some(f);
            }
            "--out" => out = PathBuf::from(value("--out")),
            other => panic!(
                "unknown flag {other}; flags: --samples N --campaign-trees N \
                 --campaign-tasks N --assert-optimal-fraction X --out DIR"
            ),
        }
    }

    std::fs::create_dir_all(&out).expect("create --out directory");
    let (rational, geomean) = rational_report(samples);
    let path = out.join("BENCH_rational.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&rational).unwrap() + "\n",
    )
    .expect("write BENCH_rational.json");
    println!(
        "wrote {} (geomean small-path speedup: {:.2}x)",
        path.display(),
        geomean
    );

    let campaign = campaign_report(samples, &scale);
    let path = out.join("BENCH_campaign.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&campaign).unwrap() + "\n",
    )
    .expect("write BENCH_campaign.json");
    println!("wrote {}", path.display());
}
