//! Emits the committed benchmark artifacts:
//!
//! * `BENCH_rational.json` — the small-word fast path of `Rational`
//!   against a baseline that forces every intermediate through the
//!   `BigInt`/`BigUint` machinery (the arithmetic every operation
//!   performed before the two-tier representation).
//! * `BENCH_campaign.json` — campaign-scale end-to-end numbers: the
//!   Theorem 1 fold over a tree population, the LP oracle, a full
//!   simulation campaign with its thread-scaling curve, and the
//!   paper-scale campaign (`campaign_paper_scale`: 25 000 random trees,
//!   per-protocol wall-clock / events-per-second / fraction reaching the
//!   optimal steady state).
//!
//! Flags: `--samples N` (timing samples per workload, default 15),
//! `--campaign-trees N` (paper-scale tree count, default 25 000),
//! `--campaign-tasks N` (tasks per tree, default 10 000),
//! `--assert-optimal-fraction X` (fail unless the IC/FB=3 paper-scale
//! campaign reaches at least `X`; used by the CI smoke job),
//! `--threads A,B,..` (thread counts for the scaling curve, default
//! `1,2,4,<all>`; samples are interleaved across the counts and the
//! minimum per count is reported, so slow thermal/frequency drift hits
//! every count equally instead of polluting whichever ran last),
//! `--campaign-grid m=..;n=..;b=..;d=..;x=..` (grid-sweep axes),
//! `--grid-trees-per-cell N` (default 6 400 — 102 400 trees over the
//! default 16-cell grid), `--shard-size N` (streaming shard size,
//! default 512), `--scaling-smoke` (run only the thread-scaling check:
//! interleaved 1-vs-max-threads campaign, artifact + assertion; used by
//! the CI scaling step), `--assert-threads-speedup X` (with
//! `--scaling-smoke`: fail unless max-threads wall time beats 1-thread
//! by the ratio; skipped with a warning on hosts with < 2 CPUs),
//! `--scaling-trees N` (smoke campaign size, default 256),
//! `--out DIR` (default `.`).

use bc_experiments::campaign::{
    accumulate_materialized, fraction_reached, run_campaign, run_campaign_prepared,
    run_campaign_streaming, run_campaign_with_results, run_grid_streaming, CampaignConfig,
    CampaignGrid,
};
use bc_metrics::OnsetConfig;
use bc_platform::RandomTreeConfig;
use bc_rational::{BigInt, BigUint, Rational, Sign};
use bc_steady::{lp_optimal_rate, SteadyState};
use serde::{object, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicIsize, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Artifact stability: committed JSON must diff cleanly across
// regenerations, so timing fields are rounded to fixed precision
// (nanosecond tails are pure noise) and every object's keys are sorted
// before writing (layout independent of construction order).
// ---------------------------------------------------------------------------

/// Wall-clock milliseconds from nanoseconds, rounded to 1 µs.
fn wall_ms(ns: f64) -> Value {
    Value::Float((ns / 1e3).round() / 1e3)
}

/// Events per second, rounded to 0.1 events/s.
fn events_per_sec(events: f64, ns: f64) -> Value {
    Value::Float((events / (ns / 1e9) * 10.0).round() / 10.0)
}

/// Recursively sorts every object's keys.
fn sort_keys(v: &mut Value) {
    match v {
        Value::Object(fields) => {
            for (_, child) in fields.iter_mut() {
                sort_keys(child);
            }
            fields.sort_by(|a, b| a.0.cmp(&b.0));
        }
        Value::Array(items) => items.iter_mut().for_each(sort_keys),
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Exact peak-live-bytes tracking (for the streaming-vs-materialized
// memory comparison). Gated off outside the measured phases: the only
// overhead the timing workloads see is one relaxed load per allocation.
// ---------------------------------------------------------------------------

static TRACK: AtomicBool = AtomicBool::new(false);
static LIVE_BYTES: AtomicIsize = AtomicIsize::new(0);
static PEAK_BYTES: AtomicIsize = AtomicIsize::new(0);

struct TrackingAlloc;

fn bump(delta: isize) {
    let now = LIVE_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
    let mut peak = PEAK_BYTES.load(Ordering::Relaxed);
    while now > peak {
        match PEAK_BYTES.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            bump(layout.size() as isize);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if TRACK.load(Ordering::Relaxed) {
            LIVE_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACK.load(Ordering::Relaxed) {
            bump(new_size as isize - layout.size() as isize);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

/// Peak live bytes allocated while `f` runs, relative to entry (an
/// exact allocator-level measure: unlike RSS it cannot be hidden by
/// earlier high-water marks or allocator caching).
fn measure_peak_bytes<R>(f: impl FnOnce() -> R) -> (R, i64) {
    LIVE_BYTES.store(0, Ordering::SeqCst);
    PEAK_BYTES.store(0, Ordering::SeqCst);
    TRACK.store(true, Ordering::SeqCst);
    let out = f();
    TRACK.store(false, Ordering::SeqCst);
    (out, PEAK_BYTES.load(Ordering::SeqCst) as i64)
}

/// `VmHWM` (peak RSS) from /proc, in kiB — coarse, monotone over the
/// process lifetime; reported alongside the exact per-phase numbers.
fn peak_rss_kib() -> Option<i64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// CPUs the scheduler will actually give this process.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Median wall time of `samples` runs of `f`, in nanoseconds.
fn time_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm up
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

fn small_operands(n: usize) -> Vec<Rational> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let num = (state >> 16) as i64 % 10_000 - 5_000;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let den = (state >> 16) % 10_000 + 1;
            Rational::new(num as i128, den as i128)
        })
        .collect()
}

fn big_of(mag: BigUint) -> BigInt {
    BigInt::from_sign_mag(Sign::Positive, mag)
}

/// `a + b` the way the pre-fast-path code computed it: heap-limb cross
/// products plus a full bignum gcd reduction.
fn big_add(a: &Rational, b: &Rational) -> Rational {
    let (an, ad) = (a.numer(), a.denom());
    let (bn, bd) = (b.numer(), b.denom());
    let num = an
        .mul(&big_of(bd.clone()))
        .add(&bn.mul(&big_of(ad.clone())));
    Rational::from_parts(num, ad.mul(&bd))
}

fn big_mul(a: &Rational, b: &Rational) -> Rational {
    Rational::from_parts(a.numer().mul(&b.numer()), a.denom().mul(&b.denom()))
}

fn big_sub_mul(cell: &Rational, factor: &Rational, pv: &Rational) -> Rational {
    let prod = big_mul(factor, pv);
    let (cn, cd) = (cell.numer(), cell.denom());
    let (pn, pd) = (prod.numer(), prod.denom());
    let num = cn
        .mul(&big_of(pd.clone()))
        .sub(&pn.mul(&big_of(cd.clone())));
    Rational::from_parts(num, cd.mul(&pd))
}

struct Workload {
    name: &'static str,
    small_ns: f64,
    big_ns: f64,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.big_ns / self.small_ns
    }

    fn to_value(&self) -> Value {
        object(vec![
            ("name", Value::Str(self.name.to_string())),
            ("small_path_ns", Value::Float(self.small_ns)),
            ("bignum_baseline_ns", Value::Float(self.big_ns)),
            ("speedup", Value::Float(self.speedup())),
        ])
    }
}

fn rational_report(samples: usize) -> (Value, f64) {
    let xs = small_operands(4096);
    let mut workloads = Vec::new();

    // Pairwise ops over adjacent operands: every input and result is
    // word-sized, the regime the fast path exists for (an accumulating
    // fold instead grows lcm-like denominators and degrades both paths
    // to bignum within a few terms).
    let small = time_ns(samples, || {
        let mut touched = 0usize;
        for pair in xs.windows(2) {
            touched += usize::from(!pair[0].add_ref(&pair[1]).is_zero());
        }
        assert!(touched > 0);
    });
    let big = time_ns(samples, || {
        let mut touched = 0usize;
        for pair in xs.windows(2) {
            touched += usize::from(!big_add(&pair[0], &pair[1]).is_zero());
        }
        assert!(touched > 0);
    });
    workloads.push(Workload {
        name: "add_pairwise_4096",
        small_ns: small,
        big_ns: big,
    });

    let small = time_ns(samples, || {
        let mut touched = 0usize;
        for pair in xs.windows(2) {
            touched += usize::from(!pair[0].mul_ref(&pair[1]).is_zero());
        }
        assert!(touched > 0);
    });
    let big = time_ns(samples, || {
        let mut touched = 0usize;
        for pair in xs.windows(2) {
            touched += usize::from(!big_mul(&pair[0], &pair[1]).is_zero());
        }
        assert!(touched > 0);
    });
    workloads.push(Workload {
        name: "mul_pairwise_4096",
        small_ns: small,
        big_ns: big,
    });

    let factor = Rational::new(7, 3);
    let row: Vec<Rational> = xs[..512].to_vec();
    let small = time_ns(samples, || {
        let mut r = row.clone();
        for (cell, pv) in r.iter_mut().zip(row.iter().rev()) {
            cell.sub_mul_assign_ref(&factor, pv);
        }
    });
    let big = time_ns(samples, || {
        let mut r = row.clone();
        for (cell, pv) in r.iter_mut().zip(row.iter().rev()) {
            *cell = big_sub_mul(cell, &factor, pv);
        }
    });
    workloads.push(Workload {
        name: "pivot_sweep_512",
        small_ns: small,
        big_ns: big,
    });

    let geomean =
        (workloads.iter().map(|w| w.speedup().ln()).sum::<f64>() / workloads.len() as f64).exp();

    let report = object(vec![
        ("generated_by", Value::Str("bench_report".to_string())),
        ("samples_per_workload", Value::Int(samples as i128)),
        (
            "baseline",
            Value::Str("same values routed through BigInt/BigUint via from_parts".to_string()),
        ),
        (
            "workloads",
            Value::Array(workloads.iter().map(Workload::to_value).collect()),
        ),
        ("geomean_speedup", Value::Float(geomean)),
    ]);
    (report, geomean)
}

/// Shape of the paper-scale campaign workload.
struct CampaignScale {
    trees: usize,
    tasks: u64,
    /// Fail the report unless IC/FB=3 reaches at least this fraction.
    assert_fraction: Option<f64>,
    /// Thread counts the scaling curve sweeps.
    curve_threads: Vec<usize>,
    /// The streaming grid-sweep datapoint.
    grid: CampaignGrid,
    /// Streaming shard size.
    shard_size: usize,
}

/// Parses `--campaign-grid` axis specs: `m=30,120;n=500;b=2,3;d=10,30;x=100,500`
/// (axes may be omitted; omitted axes keep the default grid's values).
fn parse_grid_spec(spec: &str, grid: &mut CampaignGrid) {
    for part in spec.split(';').filter(|p| !p.is_empty()) {
        let (axis, values) = part
            .split_once('=')
            .unwrap_or_else(|| panic!("grid axis {part:?} must look like m=30,120"));
        let nums: Vec<u64> = values
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("grid axis value {v:?} must be a number"))
            })
            .collect();
        assert!(
            !nums.is_empty(),
            "grid axis {axis:?} needs at least one value"
        );
        match axis.trim() {
            "m" => grid.max_nodes = nums.iter().map(|&v| v as usize).collect(),
            "n" => grid.tasks = nums,
            "b" => grid.buffers = nums.iter().map(|&v| v as u32).collect(),
            "d" => grid.comm_max = nums,
            "x" => grid.compute_scale = nums,
            other => panic!("unknown grid axis {other:?}; axes: m n b d x"),
        }
    }
}

/// Parses `--threads` lists: `1,2,4`.
fn parse_threads_list(spec: &str) -> Vec<usize> {
    let counts: Vec<usize> = spec
        .split(',')
        .map(|v| {
            let n = v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("--threads entry {v:?} must be a number"));
            assert!(n > 0, "--threads entries must be at least 1");
            n
        })
        .collect();
    assert!(!counts.is_empty(), "--threads needs at least one count");
    counts
}

/// Runs the campaign repeatedly per thread count — **interleaved**
/// round-robin across the counts, min-of-N per count — and reports the
/// scaling curve. Interleaving means thermal/frequency drift over the
/// measurement window degrades every count's samples equally instead of
/// whichever count happened to run last; the per-count minimum is the
/// drift-free estimate. Results are bit-identical across thread counts
/// (each tree's run depends only on its seed), so only wall-clock moves.
fn threads_curve(campaign: &CampaignConfig, counts: &[usize], rounds: usize) -> Value {
    let mut counts = counts.to_vec();
    counts.sort_unstable();
    counts.dedup();
    let rounds = rounds.max(2);
    let mut mins: Vec<f64> = vec![f64::INFINITY; counts.len()];
    let mut events_of: Vec<u64> = vec![0; counts.len()];
    let mut baseline: Option<Vec<(Option<u64>, u64)>> = None;
    // Round 0 is discarded as warm-up for every count (first touch of
    // each worker count pays page faults and pool spin-up).
    for round in 0..=rounds {
        for (k, &n) in counts.iter().enumerate() {
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .unwrap();
            let t0 = Instant::now();
            let runs = run_campaign(campaign, |t| bc_engine::SimConfig::interruptible(3, t));
            let ns = t0.elapsed().as_nanos() as f64;
            let summary: Vec<_> = runs.iter().map(|r| (r.onset, r.end_time)).collect();
            match &baseline {
                None => baseline = Some(summary),
                Some(b) => assert_eq!(b, &summary, "campaign differs at {n} threads"),
            }
            if round > 0 {
                mins[k] = mins[k].min(ns);
            }
            events_of[k] = runs.iter().map(|r| r.events).sum();
        }
    }
    // Back to automatic sizing for the remaining workloads.
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .unwrap();
    let points = counts
        .iter()
        .zip(&mins)
        .zip(&events_of)
        .map(|((&n, &ns), &events)| {
            object(vec![
                ("threads", Value::Int(n as i128)),
                ("wall_ms", wall_ms(ns)),
                ("events_per_sec", events_per_sec(events as f64, ns)),
                (
                    "speedup_vs_1_thread",
                    Value::Float(if mins[0].is_finite() {
                        mins[0] / ns
                    } else {
                        1.0
                    }),
                ),
            ])
        })
        .collect();
    object(vec![
        (
            "method",
            Value::Str(format!(
                "interleaved round-robin across thread counts, min of {rounds} samples per \
                 count (1 warm-up round discarded)"
            )),
        ),
        ("host_cpus", Value::Int(host_cpus() as i128)),
        ("points", Value::Array(points)),
    ])
}

/// The streaming-vs-materialized comparison on the 64-tree campaign plus
/// the grid-sweep datapoint: wall clock, exact peak live bytes, and the
/// bit-identical aggregate check between the two modes.
fn streaming_report(campaign: &CampaignConfig, grid: &CampaignGrid, shard_size: usize) -> Value {
    // Materialized (full): keep every TreeRun + RunResult, aggregate
    // post-hoc — what any consumer needs to recover the same statistics
    // after the fact.
    let t0 = Instant::now();
    let (materialized, mat_peak) = measure_peak_bytes(|| {
        run_campaign_with_results(campaign, |t| bc_engine::SimConfig::interruptible(3, t))
    });
    let mat_ns = t0.elapsed().as_nanos() as f64;
    let reference = accumulate_materialized(&materialized);
    drop(materialized);

    // Materialized (summaries only): the pre-streaming campaign mode —
    // per-tree TreeRun summaries, raw results dropped eagerly.
    let (_runs, summaries_peak) = measure_peak_bytes(|| {
        run_campaign(campaign, |t| bc_engine::SimConfig::interruptible(3, t))
    });

    // Streaming sharded: accumulators only.
    let t0 = Instant::now();
    let (streamed, stream_peak) = measure_peak_bytes(|| {
        run_campaign_streaming(campaign, shard_size, |t| {
            bc_engine::SimConfig::interruptible(3, t)
        })
    });
    let stream_ns = t0.elapsed().as_nanos() as f64;
    assert_eq!(
        streamed, reference,
        "streamed aggregate differs from the materialized reference"
    );

    // Grid sweep: the fleet-scale datapoint, streaming mode only (the
    // whole point is that this scale never materializes).
    let total_trees = grid.total_trees();
    let t0 = Instant::now();
    let (cells, grid_peak) = measure_peak_bytes(|| {
        run_grid_streaming(grid, shard_size, |c| {
            bc_engine::SimConfig::interruptible(c.buffers, c.tasks)
        })
    });
    let grid_ns = t0.elapsed().as_nanos() as f64;
    let grid_events: u128 = cells.iter().map(|(_, a)| a.run_stats.events).sum();
    let grid_reached: u64 = cells.iter().map(|(_, a)| a.reached).sum();
    let worst_cell = cells
        .iter()
        .map(|(c, a)| (a.fraction_reached(), c.index))
        .fold(
            (f64::INFINITY, 0),
            |acc, x| if x.0 < acc.0 { x } else { acc },
        );
    let bytes_per_tree_streaming = grid_peak as f64 / total_trees as f64;

    object(vec![
        (
            "campaign_64_trees",
            object(vec![
                ("trees", Value::Int(campaign.trees as i128)),
                ("shard_size", Value::Int(shard_size as i128)),
                ("materialized_full_wall_ms", wall_ms(mat_ns)),
                ("materialized_full_peak_bytes", Value::Int(mat_peak as i128)),
                (
                    "materialized_summaries_peak_bytes",
                    Value::Int(summaries_peak as i128),
                ),
                ("streaming_wall_ms", wall_ms(stream_ns)),
                ("streaming_peak_bytes", Value::Int(stream_peak as i128)),
                (
                    "peak_bytes_ratio_full_vs_streaming",
                    Value::Float(mat_peak as f64 / (stream_peak.max(1)) as f64),
                ),
                ("aggregates_bit_identical", Value::Bool(true)),
            ]),
        ),
        (
            "grid_sweep",
            object(vec![
                ("cells", Value::Int(cells.len() as i128)),
                ("trees_total", Value::Int(total_trees as i128)),
                ("shard_size", Value::Int(shard_size as i128)),
                ("wall_ms", wall_ms(grid_ns)),
                ("events_total", Value::Int(grid_events as i128)),
                (
                    "events_per_sec",
                    events_per_sec(grid_events as f64, grid_ns),
                ),
                ("streaming_peak_bytes", Value::Int(grid_peak as i128)),
                (
                    "streaming_peak_bytes_per_tree",
                    Value::Float(bytes_per_tree_streaming),
                ),
                (
                    "fraction_reached_overall",
                    Value::Float(grid_reached as f64 / total_trees as f64),
                ),
                ("worst_cell_fraction", Value::Float(worst_cell.0)),
                ("worst_cell_index", Value::Int(worst_cell.1 as i128)),
            ]),
        ),
        (
            "peak_rss_kib_process_lifetime",
            peak_rss_kib().map_or(Value::Null, |v| Value::Int(v as i128)),
        ),
    ])
}

/// The paper's evaluation shape (§4.1): `trees` random trees from the
/// default generator, both protocols over the same prepared population.
fn paper_scale_report(scale: &CampaignScale) -> Value {
    let campaign = CampaignConfig::paper(scale.trees, scale.tasks, 2003);
    let t0 = Instant::now();
    let prepared = campaign.prepare_all();
    let prepare_ns = t0.elapsed().as_nanos() as f64;

    let mut protocols = Vec::new();
    let runs_of = [("ic_fb3", true), ("nonic_ib1", false)];
    for (name, interruptible) in runs_of {
        let t0 = Instant::now();
        let runs = run_campaign_prepared(&prepared, &campaign, |t| {
            if interruptible {
                bc_engine::SimConfig::interruptible(3, t)
            } else {
                bc_engine::SimConfig::non_interruptible(1, t)
            }
        });
        let ns = t0.elapsed().as_nanos() as f64;
        let events: u64 = runs.iter().map(|r| r.events).sum();
        let fraction = fraction_reached(&runs);
        if name == "ic_fb3" {
            if let Some(min) = scale.assert_fraction {
                assert!(
                    fraction >= min,
                    "IC/FB=3 reached optimal on only {fraction:.4} of trees (required {min})"
                );
            }
        }
        protocols.push(object(vec![
            ("protocol", Value::Str(name.to_string())),
            ("wall_ms", wall_ms(ns)),
            ("events_total", Value::Int(events as i128)),
            ("events_per_sec", events_per_sec(events as f64, ns)),
            ("fraction_reached_optimal", Value::Float(fraction)),
        ]));
    }

    object(vec![
        ("trees", Value::Int(scale.trees as i128)),
        ("tasks_per_tree", Value::Int(scale.tasks as i128)),
        ("threads", Value::Int(rayon::current_num_threads() as i128)),
        ("prepare_wall_ms", wall_ms(prepare_ns)),
        ("protocols", Value::Array(protocols)),
    ])
}

/// The 64-tree benchmark campaign every curve and comparison runs over.
fn bench_campaign() -> CampaignConfig {
    CampaignConfig {
        trees: 64,
        tasks: 2_000,
        seed: 2003,
        tree_config: RandomTreeConfig {
            min_nodes: 10,
            max_nodes: 60,
            comm_min: 1,
            comm_max: 20,
            compute_scale: 500,
        },
        onset: OnsetConfig::default(),
    }
}

/// `--scaling-smoke`: the CI thread-scaling gate. Runs the campaign at 1
/// thread and at the largest requested count, interleaved min-of-N,
/// writes the curve artifact, and (on multi-core hosts) fails unless the
/// parallel run actually beats the serial one by `min_speedup`.
fn scaling_smoke(
    trees: usize,
    counts: &[usize],
    rounds: usize,
    min_speedup: Option<f64>,
    min_events_per_sec: Option<f64>,
    out: &PathBuf,
) {
    let campaign = CampaignConfig {
        trees,
        ..bench_campaign()
    };
    let curve = threads_curve(&campaign, counts, rounds);
    // One instrumented pass for the profile artifact (collection stays
    // off during the timed curve above; see `campaign_report`).
    #[cfg(feature = "profile")]
    let kernel_profile = {
        bc_engine::profile::reset();
        bc_engine::profile::enable(true);
        let _ = run_campaign(&campaign, |t| bc_engine::SimConfig::interruptible(3, t));
        bc_engine::profile::enable(false);
        let p = bc_engine::profile::snapshot();
        let kinds: Vec<Value> = p
            .counts
            .iter()
            .zip(&p.histograms)
            .map(|(&(name, n), &(_, hist))| {
                let first = hist.iter().position(|&c| c > 0).unwrap_or(0);
                let last = hist.iter().rposition(|&c| c > 0).unwrap_or(0);
                object(vec![
                    ("kind", Value::Str(name.to_string())),
                    ("events", Value::Int(n as i128)),
                    ("log2_cycles_first_bucket", Value::Int(first as i128)),
                    (
                        "log2_cycles_histogram",
                        Value::Array(
                            hist[first..=last]
                                .iter()
                                .map(|&c| Value::Int(c as i128))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        object(vec![
            ("enabled", Value::Bool(true)),
            ("kinds", Value::Array(kinds)),
        ])
    };
    #[cfg(not(feature = "profile"))]
    let kernel_profile = object(vec![("enabled", Value::Bool(false))]);
    let mut report = object(vec![
        (
            "generated_by",
            Value::Str("bench_report --scaling-smoke".to_string()),
        ),
        ("trees", Value::Int(trees as i128)),
        ("host_cpus", Value::Int(host_cpus() as i128)),
        ("threads_curve", curve.clone()),
        ("kernel_profile", kernel_profile),
    ]);
    sort_keys(&mut report);
    std::fs::create_dir_all(out).expect("create --out directory");
    let path = out.join("SCALING_smoke.json");
    std::fs::write(&path, serde_json::to_string_pretty(&report).unwrap() + "\n")
        .expect("write SCALING_smoke.json");
    println!("wrote {}", path.display());

    let points = match curve.get("points") {
        Some(Value::Array(p)) => p,
        _ => unreachable!("threads_curve always emits points"),
    };
    let wall_of = |idx: usize| match points[idx].get("wall_ms") {
        Some(Value::Float(ms)) => *ms,
        _ => unreachable!("points carry wall_ms"),
    };
    if let Some(min) = min_events_per_sec {
        let idx = (0..points.len())
            .find(|&i| matches!(points[i].get("threads"), Some(Value::Int(1))))
            .expect("--assert-events-per-sec needs a 1-thread point (--threads 1,...)");
        let eps = match points[idx].get("events_per_sec") {
            Some(Value::Float(v)) => *v,
            _ => unreachable!("points carry events_per_sec"),
        };
        println!("single-thread kernel throughput: {eps:.0} events/s (floor {min:.0})");
        assert!(
            eps >= min,
            "single-thread kernel regressed: {eps:.0} events/s is below the floor {min:.0}"
        );
    }
    let first = wall_of(0);
    let last = wall_of(points.len() - 1);
    let speedup = first / last;
    println!(
        "scaling smoke: {first:.2} ms @ {} thread(s) -> {last:.2} ms @ {} thread(s) \
         ({speedup:.2}x)",
        counts.iter().min().unwrap(),
        counts.iter().max().unwrap(),
    );
    if let Some(min) = min_speedup {
        if host_cpus() < 2 {
            println!(
                "WARNING: host exposes {} CPU(s); parallel speedup is not observable here, \
                 skipping the >= {min:.2}x assertion (the curve artifact was still written)",
                host_cpus()
            );
            return;
        }
        assert!(
            speedup >= min,
            "thread scaling regressed: {}-thread wall time is only {speedup:.2}x faster than \
             1 thread (required {min:.2}x)",
            counts.iter().max().unwrap()
        );
    }
}

fn campaign_report(samples: usize, scale: &CampaignScale) -> Value {
    // Theorem 1 fold over a population slice.
    let cfg = RandomTreeConfig {
        min_nodes: 20,
        max_nodes: 80,
        comm_min: 1,
        comm_max: 30,
        compute_scale: 500,
    };
    let trees: Vec<_> = (0..100).map(|s| cfg.generate(s)).collect();
    let analyze_ns = time_ns(samples, || {
        let mut acc = 0.0;
        for t in &trees {
            acc += SteadyState::analyze(t).optimal_rate().to_f64();
        }
        assert!(acc > 0.0);
    });

    // Paper-scale single analysis (deep trees promote to the big tier).
    let paper_tree = RandomTreeConfig::default().generate(7);
    let paper_ns = time_ns(samples, || {
        assert!(SteadyState::analyze(&paper_tree)
            .optimal_rate()
            .is_positive());
    });

    // LP oracle on a small tree (exact simplex, pivot-sweep bound).
    let lp_tree = RandomTreeConfig {
        min_nodes: 14,
        max_nodes: 16,
        comm_min: 1,
        comm_max: 10,
        compute_scale: 50,
    }
    .generate(42);
    let lp_ns = time_ns(samples, || {
        assert!(lp_optimal_rate(&lp_tree).is_positive());
    });

    // Full simulation campaign (generation + oracle + protocol).
    // Median of `samples` runs: a single shot can land on a cold-cache
    // or thermally-throttled window and misreport the budget number the
    // ≤2% regression check compares against.
    let campaign = bench_campaign();
    let mut runs = Vec::new();
    let campaign_ns = time_ns(samples, || {
        runs = run_campaign(&campaign, |t| bc_engine::SimConfig::interruptible(3, t));
    });
    let events: u64 = runs.iter().map(|r| r.events).sum();
    let reached = runs.iter().filter(|r| r.reached()).count();

    // Kernel profile: one instrumented pass over the same campaign,
    // separate from the timed runs above (which keep collection disabled,
    // so the headline numbers never include profiling overhead).
    #[cfg(feature = "profile")]
    let kernel_profile = {
        bc_engine::profile::reset();
        bc_engine::profile::enable(true);
        let profiled = run_campaign(&campaign, |t| bc_engine::SimConfig::interruptible(3, t));
        bc_engine::profile::enable(false);
        assert_eq!(profiled.len(), runs.len());
        let p = bc_engine::profile::snapshot();
        let kinds: Vec<Value> = p
            .counts
            .iter()
            .zip(&p.histograms)
            .map(|(&(name, n), &(_, hist))| {
                let first = hist.iter().position(|&c| c > 0).unwrap_or(0);
                let last = hist.iter().rposition(|&c| c > 0).unwrap_or(0);
                object(vec![
                    ("kind", Value::Str(name.to_string())),
                    ("events", Value::Int(n as i128)),
                    ("log2_cycles_first_bucket", Value::Int(first as i128)),
                    (
                        "log2_cycles_histogram",
                        Value::Array(
                            hist[first..=last]
                                .iter()
                                .map(|&c| Value::Int(c as i128))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        object(vec![
            ("enabled", Value::Bool(true)),
            (
                "note",
                Value::Str(
                    "per-event cost in cycles (rdtsc), service cascade included; histogram \
                     bucket b counts events costing [2^(first+b), 2^(first+b+1)) cycles"
                        .to_string(),
                ),
            ),
            ("kinds", Value::Array(kinds)),
        ])
    };
    #[cfg(not(feature = "profile"))]
    let kernel_profile = object(vec![
        ("enabled", Value::Bool(false)),
        (
            "note",
            Value::Str(
                "build with `--features profile` to collect per-event-kind cycle histograms"
                    .to_string(),
            ),
        ),
    ]);

    let curve = threads_curve(&campaign, &scale.curve_threads, samples);
    let streaming = streaming_report(&campaign, &scale.grid, scale.shard_size);
    let paper_scale = paper_scale_report(scale);

    object(vec![
        ("generated_by", Value::Str("bench_report".to_string())),
        ("samples_per_workload", Value::Int(samples as i128)),
        (
            "host",
            object(vec![
                ("cpus", Value::Int(host_cpus() as i128)),
                (
                    "note",
                    Value::Str(
                        "wall-clock parallel speedup is bounded by this CPU count; campaign \
                         results themselves are bit-identical at any thread count"
                            .to_string(),
                    ),
                ),
            ]),
        ),
        (
            "steady_analyze_100_trees",
            object(vec![
                ("wall_ms", wall_ms(analyze_ns)),
                (
                    "per_tree_us",
                    Value::Float(analyze_ns / 1e3 / trees.len() as f64),
                ),
            ]),
        ),
        (
            "steady_analyze_paper_scale_tree",
            object(vec![
                ("nodes", Value::Int(paper_tree.len() as i128)),
                ("wall_ms", wall_ms(paper_ns)),
            ]),
        ),
        (
            "lp_oracle_16_nodes",
            object(vec![("wall_ms", wall_ms(lp_ns))]),
        ),
        (
            "simulation_campaign",
            object(vec![
                ("trees", Value::Int(campaign.trees as i128)),
                ("tasks_per_tree", Value::Int(campaign.tasks as i128)),
                ("wall_ms", wall_ms(campaign_ns)),
                ("events_total", Value::Int(events as i128)),
                ("events_per_sec", events_per_sec(events as f64, campaign_ns)),
                (
                    "fraction_reached_optimal",
                    Value::Float(reached as f64 / runs.len() as f64),
                ),
            ]),
        ),
        ("kernel_profile", kernel_profile),
        ("threads_curve", curve),
        ("streaming_campaign", streaming),
        ("campaign_paper_scale", paper_scale),
    ])
}

fn main() {
    let mut samples = 15usize;
    let mut out = PathBuf::from(".");
    let all = host_cpus();
    let mut scale = CampaignScale {
        trees: 25_000,
        tasks: 10_000,
        assert_fraction: None,
        curve_threads: {
            let mut c = vec![1usize, 2, 4, all];
            c.sort_unstable();
            c.dedup();
            c
        },
        grid: CampaignGrid::default_grid(6_400, 2003),
        shard_size: 512,
    };
    let mut scaling_smoke_requested = false;
    let mut scaling_trees = 256usize;
    let mut assert_speedup: Option<f64> = None;
    let mut assert_events_per_sec: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--samples" => {
                samples = value("--samples")
                    .parse()
                    .expect("--samples must be a number");
                assert!(samples > 0, "--samples must be at least 1");
            }
            "--campaign-trees" => {
                scale.trees = value("--campaign-trees")
                    .parse()
                    .expect("--campaign-trees must be a number");
                assert!(scale.trees > 0, "--campaign-trees must be at least 1");
            }
            "--campaign-tasks" => {
                scale.tasks = value("--campaign-tasks")
                    .parse()
                    .expect("--campaign-tasks must be a number");
                assert!(scale.tasks > 0, "--campaign-tasks must be at least 1");
            }
            "--assert-optimal-fraction" => {
                let f: f64 = value("--assert-optimal-fraction")
                    .parse()
                    .expect("--assert-optimal-fraction must be a number");
                assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
                scale.assert_fraction = Some(f);
            }
            "--threads" => scale.curve_threads = parse_threads_list(&value("--threads")),
            "--campaign-grid" => parse_grid_spec(&value("--campaign-grid"), &mut scale.grid),
            "--grid-trees-per-cell" => {
                scale.grid.trees_per_cell = value("--grid-trees-per-cell")
                    .parse()
                    .expect("--grid-trees-per-cell must be a number");
                assert!(
                    scale.grid.trees_per_cell > 0,
                    "--grid-trees-per-cell must be at least 1"
                );
            }
            "--shard-size" => {
                scale.shard_size = value("--shard-size")
                    .parse()
                    .expect("--shard-size must be a number");
                assert!(scale.shard_size > 0, "--shard-size must be at least 1");
            }
            "--scaling-smoke" => scaling_smoke_requested = true,
            "--scaling-trees" => {
                scaling_trees = value("--scaling-trees")
                    .parse()
                    .expect("--scaling-trees must be a number");
                assert!(scaling_trees > 0, "--scaling-trees must be at least 1");
            }
            "--assert-threads-speedup" => {
                let f: f64 = value("--assert-threads-speedup")
                    .parse()
                    .expect("--assert-threads-speedup must be a number");
                assert!(f > 0.0, "--assert-threads-speedup must be positive");
                assert_speedup = Some(f);
            }
            "--assert-events-per-sec" => {
                let f: f64 = value("--assert-events-per-sec")
                    .parse()
                    .expect("--assert-events-per-sec must be a number");
                assert!(f > 0.0, "--assert-events-per-sec must be positive");
                assert_events_per_sec = Some(f);
            }
            "--out" => out = PathBuf::from(value("--out")),
            other => panic!(
                "unknown flag {other}; flags: --samples N --campaign-trees N \
                 --campaign-tasks N --assert-optimal-fraction X --threads A,B,.. \
                 --campaign-grid SPEC --grid-trees-per-cell N --shard-size N \
                 --scaling-smoke --scaling-trees N --assert-threads-speedup X \
                 --assert-events-per-sec X --out DIR"
            ),
        }
    }

    if scaling_smoke_requested {
        scaling_smoke(
            scaling_trees,
            &scale.curve_threads,
            samples,
            assert_speedup,
            assert_events_per_sec,
            &out,
        );
        return;
    }

    std::fs::create_dir_all(&out).expect("create --out directory");
    let (mut rational, geomean) = rational_report(samples);
    sort_keys(&mut rational);
    let path = out.join("BENCH_rational.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&rational).unwrap() + "\n",
    )
    .expect("write BENCH_rational.json");
    println!(
        "wrote {} (geomean small-path speedup: {:.2}x)",
        path.display(),
        geomean
    );

    let mut campaign = campaign_report(samples, &scale);
    sort_keys(&mut campaign);
    let path = out.join("BENCH_campaign.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&campaign).unwrap() + "\n",
    )
    .expect("write BENCH_campaign.json");
    println!("wrote {}", path.display());
}
