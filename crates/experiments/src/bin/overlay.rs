//! Runs the §6 overlay-construction extension experiment.

use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::overlay::{self, OverlayConfig};

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 50,
            full_trees: 500,
            tasks: 2_000,
        },
    );
    let cfg = OverlayConfig {
        graphs: cli.trees,
        tasks: cli.tasks,
        seed: cli.seed,
        ..OverlayConfig::default()
    };
    let e = overlay::run(&cfg);
    let text = overlay::render(&e);
    println!("{text}");
    write_artifact(&cli, "overlay.txt", &text);
}
