//! Runs the per-node rate validation extension experiment.

use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::utilization::{self, UtilizationConfig};

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 40,
            full_trees: 400,
            tasks: 8_000,
        },
    );
    let cfg = UtilizationConfig {
        trees: cli.trees,
        tasks: cli.tasks,
        seed: cli.seed,
        ..UtilizationConfig::default()
    };
    let u = utilization::run(&cfg);
    let text = utilization::render(&u);
    println!("{text}");
    write_artifact(&cli, "utilization.txt", &text);
}
