//! Runs the resilience campaign (recovery under seeded network faults).
//!
//! Beyond the shared flags, accepts `--assert-recovered X`: exit
//! non-zero unless the low-intensity IC/FB=3 recovered fraction is at
//! least `X`, every run conserved its tasks exactly, and the invariant
//! checker stayed silent — the CI smoke gate.

use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::resilience::{self, Intensity, ResilienceConfig, Variant};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut assert_recovered: Option<f64> = None;
    if let Some(pos) = args.iter().position(|a| a == "--assert-recovered") {
        if pos + 1 >= args.len() {
            eprintln!("error: --assert-recovered requires a value");
            std::process::exit(2);
        }
        match args[pos + 1].parse::<f64>() {
            Ok(x) if (0.0..=1.0).contains(&x) => assert_recovered = Some(x),
            _ => {
                eprintln!("error: --assert-recovered must be a fraction in [0, 1]");
                std::process::exit(2);
            }
        }
        args.drain(pos..pos + 2);
    }
    let cli = parse(
        args,
        Defaults {
            trees: 48,
            full_trees: 256,
            tasks: 2_000,
        },
    );
    let cfg = ResilienceConfig {
        trees: cli.trees,
        tasks: cli.tasks,
        seed: cli.seed,
        ..ResilienceConfig::default()
    };
    let r = resilience::run(&cfg);
    let text = resilience::render(&r);
    println!("{text}");
    write_artifact(&cli, "resilience.txt", &text);
    write_artifact(&cli, "resilience.csv", &resilience::to_csv(&r));

    if let Some(floor) = assert_recovered {
        let summary = resilience::summarize(&r);
        let violations: usize = summary.iter().map(|s| s.violations).sum();
        let unconserved: usize = summary.iter().map(|s| s.unconserved).sum();
        let low_ic = summary
            .iter()
            .find(|s| s.variant == Variant::IcFb3 && s.tier == Intensity::Low)
            .expect("low-tier IC cell");
        let mut failed = false;
        if violations > 0 {
            eprintln!("FAIL: {violations} invariant violation(s)");
            failed = true;
        }
        if unconserved > 0 {
            eprintln!("FAIL: {unconserved} run(s) broke exact task conservation");
            failed = true;
        }
        if low_ic.recovered < floor {
            eprintln!(
                "FAIL: low-intensity ic-fb3 recovered fraction {:.3} < {floor}",
                low_ic.recovered
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "PASS: recovered {:.3} >= {floor}, 0 violations, exact conservation",
            low_ic.recovered
        );
    }
}
