//! Regenerates Figure 4 (CDF of trees reaching optimal steady state).

use bc_experiments::campaign::CampaignConfig;
use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::fig4;

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 400,
            full_trees: 25_000,
            tasks: 10_000,
        },
    );
    let campaign = CampaignConfig::paper(cli.trees, cli.tasks, cli.seed);
    let fig = fig4::run_gated(&campaign, cli.gate);
    let text = fig4::render(&fig);
    println!("{text}");
    write_artifact(&cli, "fig4.txt", &text);
    if cli.out.is_some() {
        let mut rows = Vec::new();
        for v in &fig.variants {
            for (x, y) in v.cdf(&fig.probes) {
                rows.push(vec![v.label.clone(), x.to_string(), format!("{y:.6}")]);
            }
        }
        write_artifact(
            &cli,
            "fig4.csv",
            &bc_metrics::csv(&["variant", "tasks", "fraction_reached"], &rows),
        );
    }
}
