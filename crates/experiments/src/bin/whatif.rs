//! What-if branching from a mid-run snapshot: run a scenario to a
//! capture point, fork K divergent continuations off the frozen state,
//! and diff their outcomes through the run results and per-node
//! timeline folds.
//!
//! Every invocation carries an implicit `resume` branch (the snapshot
//! continued untweaked); its result is asserted bit-identical to the
//! uninterrupted reference run, so the comparison baseline is proven
//! exact before any perturbed branch is read.
//!
//! Branch flags (each adds one branch; all may repeat):
//!
//! * `--degrade NODE:FACTOR` — multiply the node's uplink comm time.
//! * `--comm NODE:C` / `--compute NODE:W` — set a weight outright.
//! * `--crash NODE[:DT]` — crash the node DT timesteps after capture
//!   (default 10); recovery reissues its in-flight work.
//! * `--outage NODE:DUR[:DT]` — sever the node's uplink for DUR.
//!
//! Without branch flags, a demo pair is derived from the baseline fold:
//! the busiest non-root worker gets its uplink degraded x8 in one
//! branch and crashed in another.
//!
//! See EXPERIMENTS.md ("What-if branching") for the workflow.

use bc_engine::{FaultEvent, FaultKind, RunResult, SimConfig, SimWorkspace, Simulation, WhatIf};
use bc_experiments::fuzz::{variant_by_name, variants, CaseSpec};
use bc_experiments::goldens::{golden_trees, golden_variants};
use bc_metrics::fold_timelines;
use bc_platform::{NodeId, Tree};
use bc_simcore::{TraceRecord, VecSink};
use std::process::ExitCode;

struct Args {
    tree: Option<String>,
    spec: Option<String>,
    variant: Option<String>,
    tasks: u64,
    at: Option<u64>,
    branches: Vec<BranchSpec>,
}

/// One requested divergence, parsed from a branch flag.
enum BranchSpec {
    Degrade { node: u32, factor: u64 },
    Comm { node: u32, c: u64 },
    Compute { node: u32, w: u64 },
    Crash { node: u32, dt: u64 },
    Outage { node: u32, duration: u64, dt: u64 },
}

impl BranchSpec {
    fn label(&self) -> String {
        match *self {
            BranchSpec::Degrade { node, factor } => format!("degrade-{node}-x{factor}"),
            BranchSpec::Comm { node, c } => format!("comm-{node}={c}"),
            BranchSpec::Compute { node, w } => format!("compute-{node}={w}"),
            BranchSpec::Crash { node, dt } => format!("crash-{node}+{dt}"),
            BranchSpec::Outage { node, duration, dt } => format!("outage-{node}-{duration}+{dt}"),
        }
    }

    /// Applies the divergence to a fork in progress.
    fn apply(&self, w: &mut WhatIf) {
        match *self {
            BranchSpec::Degrade { node, factor } => {
                let id = NodeId(node);
                let c = w.tree().comm_time(id).saturating_mul(factor).max(1);
                w.set_comm_time(id, c);
            }
            BranchSpec::Comm { node, c } => w.set_comm_time(NodeId(node), c),
            BranchSpec::Compute { node, w: wt } => w.set_compute_time(NodeId(node), wt),
            BranchSpec::Crash { node, dt } => w.add_fault(FaultEvent {
                at: w.now() + dt,
                node: NodeId(node),
                kind: FaultKind::Crash,
            }),
            BranchSpec::Outage { node, duration, dt } => w.add_fault(FaultEvent {
                at: w.now() + dt,
                node: NodeId(node),
                kind: FaultKind::LinkOutage { duration },
            }),
        }
    }

    /// The non-root node the branch perturbs (for bounds checking).
    fn node(&self) -> u32 {
        match *self {
            BranchSpec::Degrade { node, .. }
            | BranchSpec::Comm { node, .. }
            | BranchSpec::Compute { node, .. }
            | BranchSpec::Crash { node, .. }
            | BranchSpec::Outage { node, .. } => node,
        }
    }
}

const USAGE: &str = "usage: whatif --tree NAME|--spec SPEC --variant NAME [--tasks N] [--at T]\n\
                     \x20             [--degrade NODE:FACTOR] [--comm NODE:C] [--compute NODE:W]\n\
                     \x20             [--crash NODE[:DT]] [--outage NODE:DUR[:DT]]\n\
                     defaults: tasks=120, at=end/3, branches=demo pair off the busiest worker";

fn parse_fields(name: &str, raw: &str, want: usize, defaults: &[u64]) -> Result<Vec<u64>, String> {
    let parts: Vec<&str> = raw.split(':').collect();
    if parts.len() > want || parts.len() + defaults.len() < want {
        return Err(format!(
            "{name} takes {want} colon-separated field(s), got {raw:?}"
        ));
    }
    let mut out = Vec::with_capacity(want);
    for p in &parts {
        out.push(
            p.parse::<u64>()
                .map_err(|_| format!("{name}: bad number {p:?} in {raw:?}"))?,
        );
    }
    let missing = want - out.len();
    out.extend_from_slice(&defaults[defaults.len() - missing..]);
    Ok(out)
}

fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Args, Option<String>> {
    let mut out = Args {
        tree: None,
        spec: None,
        variant: None,
        tasks: 120,
        at: None,
        branches: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| Some(format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--tree" => out.tree = Some(value("--tree")?),
            "--spec" => out.spec = Some(value("--spec")?),
            "--variant" => out.variant = Some(value("--variant")?),
            "--tasks" => {
                let raw = value("--tasks")?;
                out.tasks = raw
                    .parse::<u64>()
                    .map_err(|_| Some(format!("--tasks must be a number, got {raw:?}")))?
                    .max(1);
            }
            "--at" => {
                let raw = value("--at")?;
                out.at = Some(
                    raw.parse::<u64>()
                        .map_err(|_| Some(format!("--at must be a time, got {raw:?}")))?,
                );
            }
            "--degrade" => {
                let f = parse_fields("--degrade", &value("--degrade")?, 2, &[]).map_err(Some)?;
                out.branches.push(BranchSpec::Degrade {
                    node: f[0] as u32,
                    factor: f[1].max(1),
                });
            }
            "--comm" => {
                let f = parse_fields("--comm", &value("--comm")?, 2, &[]).map_err(Some)?;
                out.branches.push(BranchSpec::Comm {
                    node: f[0] as u32,
                    c: f[1].max(1),
                });
            }
            "--compute" => {
                let f = parse_fields("--compute", &value("--compute")?, 2, &[]).map_err(Some)?;
                out.branches.push(BranchSpec::Compute {
                    node: f[0] as u32,
                    w: f[1].max(1),
                });
            }
            "--crash" => {
                let f = parse_fields("--crash", &value("--crash")?, 2, &[10]).map_err(Some)?;
                out.branches.push(BranchSpec::Crash {
                    node: f[0] as u32,
                    dt: f[1],
                });
            }
            "--outage" => {
                let f = parse_fields("--outage", &value("--outage")?, 3, &[10]).map_err(Some)?;
                out.branches.push(BranchSpec::Outage {
                    node: f[0] as u32,
                    duration: f[1].max(1),
                    dt: f[2],
                });
            }
            "--help" | "-h" => return Err(None),
            other => return Err(Some(format!("unknown flag {other}"))),
        }
    }
    if out.tree.is_some() == out.spec.is_some() {
        return Err(Some("exactly one of --tree or --spec is required".into()));
    }
    if out.variant.is_none() {
        return Err(Some("--variant is required".into()));
    }
    Ok(out)
}

fn resolve_tree(args: &Args) -> Result<Tree, String> {
    if let Some(name) = &args.tree {
        return golden_trees()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .ok_or_else(|| {
                let known: Vec<String> = golden_trees().into_iter().map(|(n, _)| n).collect();
                format!("unknown tree {name}; known: {}", known.join(", "))
            });
    }
    let spec = args.spec.as_deref().expect("checked in try_parse");
    Ok(CaseSpec::decode(spec)?.to_tree())
}

fn resolve_variant(name: &str, tasks: u64) -> Result<SimConfig, String> {
    golden_variants(tasks)
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, c)| c)
        .or_else(|| variant_by_name(name, tasks))
        .ok_or_else(|| {
            let mut known: Vec<&str> = golden_variants(1).iter().map(|(n, _)| *n).collect();
            for (n, _) in variants(1) {
                if !known.contains(&n) {
                    known.push(n);
                }
            }
            format!("unknown variant {name}; known: {}", known.join(", "))
        })
}

/// One completed branch, ready to diff.
struct Branch {
    name: String,
    result: RunResult,
    suffix: Vec<TraceRecord>,
}

fn run() -> Result<(), String> {
    let args = match try_parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(None) => {
            println!("{USAGE}");
            return Ok(());
        }
        Err(Some(msg)) => return Err(format!("{msg}\n{USAGE}")),
    };
    let tree = resolve_tree(&args)?;
    let name = args.variant.as_deref().expect("checked in try_parse");
    let cfg = resolve_variant(name, args.tasks)?.with_checked(false);
    for b in &args.branches {
        let n = b.node() as usize;
        if n == 0 || n >= tree.len() {
            return Err(format!(
                "branch {} targets node {n}, but only workers 1..{} can be perturbed",
                b.label(),
                tree.len()
            ));
        }
    }

    // Uninterrupted reference run (also sizes the default capture point
    // and picks the demo branches' target).
    let (reference, _, ref_sink) = Simulation::traced(
        tree.clone(),
        cfg.clone(),
        SimWorkspace::new(),
        VecSink::new(),
    )
    .run_traced();
    let folds = fold_timelines(&ref_sink.records);

    let branches: Vec<BranchSpec> = if args.branches.is_empty() {
        let busiest = folds
            .iter()
            .enumerate()
            .skip(1)
            .max_by_key(|(_, tl)| tl.tasks_computed)
            .map(|(i, _)| i as u32)
            .unwrap_or(1);
        vec![
            BranchSpec::Degrade {
                node: busiest,
                factor: 8,
            },
            BranchSpec::Crash {
                node: busiest,
                dt: 10,
            },
        ]
    } else {
        args.branches
    };

    // Capture: run a fresh simulation to the fork instant and freeze it.
    let at = args.at.unwrap_or(reference.end_time / 3);
    let mut sim = Simulation::new(tree, cfg);
    sim.run_to_time(at);
    let snap = sim.snapshot();
    println!(
        "captured at t={} ({} events, {}/{} tasks complete); reference ends at t={}",
        snap.now(),
        snap.events_processed(),
        snap.completed(),
        args.tasks,
        reference.end_time
    );

    // The resume branch: the snapshot continued untweaked. Its suffix
    // must land exactly on the reference — the exactness proof that
    // makes every other diff meaningful.
    let mut runs = Vec::new();
    let (res, _, sink) = snap
        .fork_traced(SimWorkspace::new(), VecSink::new(), |_| {})
        .run_traced();
    if res != reference {
        return Err("resume branch diverged from the uninterrupted run".into());
    }
    println!("resume branch is bit-identical to the reference (snapshot exact)");
    runs.push(Branch {
        name: "resume".into(),
        result: res,
        suffix: sink.records,
    });

    for b in &branches {
        let (res, _, sink) = snap
            .fork_traced(SimWorkspace::new(), VecSink::new(), |w| b.apply(w))
            .run_traced();
        runs.push(Branch {
            name: b.label(),
            result: res,
            suffix: sink.records,
        });
    }

    // Headline diff: completion, makespan, recovery work per branch.
    println!("\nbranch                end    Δend  tasks  preempt  transfers  reissued  crashes");
    let base_end = runs[0].result.end_time;
    for b in &runs {
        let r = &b.result;
        let delta = r.end_time as i64 - base_end as i64;
        println!(
            "{:<20} {:>6}  {:>+5}  {:>5}  {:>7}  {:>9}  {:>8}  {:>7}",
            b.name,
            r.end_time,
            delta,
            r.tasks_completed(),
            r.preemptions,
            r.transfers_started,
            r.faults.tasks_reissued,
            r.faults.crashes,
        );
    }

    // Timeline-fold diff: where each branch's post-fork work moved,
    // node by node, against the resume suffix.
    let base_fold = fold_timelines(&runs[0].suffix);
    for b in runs.iter().skip(1) {
        let fold = fold_timelines(&b.suffix);
        let first_div = runs[0]
            .suffix
            .iter()
            .zip(&b.suffix)
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| runs[0].suffix.len().min(b.suffix.len()));
        println!(
            "\n{}: suffix diverges from resume at event {} of {}",
            b.name,
            first_div,
            b.suffix.len()
        );
        println!("  node  Δcomputed  Δbusy-comp  Δbusy-link  Δpreempt  Δreqs");
        for i in 0..base_fold.len().max(fold.len()) {
            let z = bc_metrics::NodeTimeline::default();
            let a = base_fold.get(i).unwrap_or(&z);
            let c = fold.get(i).unwrap_or(&z);
            let d = |x: u64, y: u64| y as i64 - x as i64;
            let row = [
                d(a.tasks_computed, c.tasks_computed),
                d(a.busy_compute, c.busy_compute),
                d(a.busy_link, c.busy_link),
                d(a.preemptions, c.preemptions),
                d(a.requests_sent, c.requests_sent),
            ];
            if row.iter().any(|&v| v != 0) {
                println!(
                    "  {i:>4}  {:>+9}  {:>+10}  {:>+10}  {:>+8}  {:>+5}",
                    row[0], row[1], row[2], row[3], row[4]
                );
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
