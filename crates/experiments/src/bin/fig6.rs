//! Regenerates Figure 6 (tree size/depth PDFs, all vs used nodes).

use bc_experiments::campaign::CampaignConfig;
use bc_experiments::cli::{parse, write_artifact, Defaults};
use bc_experiments::fig6;

fn main() {
    let cli = parse(
        std::env::args().skip(1),
        Defaults {
            trees: 300,
            full_trees: 25_000,
            tasks: 10_000,
        },
    );
    let campaign = CampaignConfig::paper(cli.trees, cli.tasks, cli.seed);
    let fig = fig6::run(&campaign);
    let text = fig6::render(&fig, 25, 4);
    println!("{text}");
    let (all_s, all_d) = fig6::means(&fig.all);
    let (ns, nd) = fig6::means(&fig.nonic_used);
    let (is_, id) = fig6::means(&fig.ic_used);
    println!(
        "\nmeans — all: {all_s:.1} nodes / depth {all_d:.1}; \
         used non-IC: {ns:.1} / {nd:.1}; used IC FB=3: {is_:.1} / {id:.1}"
    );
    write_artifact(&cli, "fig6.txt", &text);
}
