//! Table 1: percentage of trees that reached the optimal steady-state
//! rate using at most n buffers.
//!
//! Paper numbers (25 000 trees, 10 000 tasks):
//!
//! ```text
//! protocol   1      2     3    10   20   100
//! non-IC    0.0%   0.0   0.2   0.8   -   5.1
//! IC       81.9%  98.5  99.6    -    -    -
//! ```
//!
//! Reading: the IC row's column n is the IC/FB=n run's success rate (an
//! IC run uses exactly its fixed pool); the non-IC row's column n is the
//! fraction of trees that both reached the optimal rate *and* whose
//! largest grown pool stayed ≤ n.

use crate::campaign::{run_campaign_prepared, CampaignConfig, TreeRun};
use bc_engine::SimConfig;
use bc_metrics::ascii_table;

/// The paper's buffer thresholds.
pub const THRESHOLDS: [u32; 6] = [1, 2, 3, 10, 20, 100];

/// Table 1 data.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// non-IC/IB=1 per-tree outcomes.
    pub nonic: Vec<TreeRun>,
    /// IC runs for FB = 1, 2, 3 (in order).
    pub ic: Vec<Vec<TreeRun>>,
}

/// Runs both protocols over the campaign. The tree population is
/// generated and analyzed once and shared by all four protocol runs.
pub fn run(campaign: &CampaignConfig) -> Table1 {
    let prepared = campaign.prepare_all();
    let nonic = run_campaign_prepared(&prepared, campaign, |t| SimConfig::non_interruptible(1, t));
    let ic = (1..=3)
        .map(|fb| run_campaign_prepared(&prepared, campaign, |t| SimConfig::interruptible(fb, t)))
        .collect();
    Table1 { nonic, ic }
}

impl Table1 {
    /// non-IC cell: % reached with ≤ n buffers.
    pub fn nonic_cell(&self, n: u32) -> f64 {
        if self.nonic.is_empty() {
            return 0.0;
        }
        let hit = self
            .nonic
            .iter()
            .filter(|r| r.reached() && r.max_buffers <= n)
            .count();
        hit as f64 / self.nonic.len() as f64
    }

    /// IC cell for FB = n (1-indexed into the runs), None if not run.
    pub fn ic_cell(&self, n: u32) -> Option<f64> {
        let idx = n.checked_sub(1)? as usize;
        let runs = self.ic.get(idx)?;
        if runs.is_empty() {
            return Some(0.0);
        }
        Some(runs.iter().filter(|r| r.reached()).count() as f64 / runs.len() as f64)
    }
}

/// Renders the paper's table shape.
pub fn render(t: &Table1) -> String {
    let mut out = String::new();
    out.push_str("Table 1 — % of trees reaching optimal steady state using at most n buffers\n\n");
    let header: Vec<String> = std::iter::once("protocol".to_string())
        .chain(THRESHOLDS.iter().map(|n| n.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut nonic_row = vec!["non-IC".to_string()];
    nonic_row.extend(
        THRESHOLDS
            .iter()
            .map(|&n| format!("{:.1}%", 100.0 * t.nonic_cell(n))),
    );
    let mut ic_row = vec!["IC".to_string()];
    ic_row.extend(THRESHOLDS.iter().map(|&n| {
        t.ic_cell(n)
            .map_or("-".to_string(), |v| format!("{:.1}%", 100.0 * v))
    }));
    out.push_str(&ascii_table(&header_refs, &[nonic_row, ic_row]));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_metrics::OnsetConfig;
    use bc_platform::RandomTreeConfig;

    #[test]
    fn cells_are_monotone_and_ic_dominates() {
        let campaign = CampaignConfig {
            trees: 16,
            tasks: 1200,
            seed: 19,
            tree_config: RandomTreeConfig {
                min_nodes: 5,
                max_nodes: 60,
                comm_min: 1,
                comm_max: 30,
                compute_scale: 1000,
            },
            onset: OnsetConfig {
                window_threshold: 150,
                crossings: 2,
            },
        };
        let t = run(&campaign);
        // non-IC cells are nondecreasing in n (CDF over buffer usage).
        let cells: Vec<f64> = THRESHOLDS.iter().map(|&n| t.nonic_cell(n)).collect();
        assert!(cells.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        // IC columns exist exactly for FB = 1..3.
        assert!(t.ic_cell(1).is_some());
        assert!(t.ic_cell(3).is_some());
        assert!(t.ic_cell(10).is_none());
        // IC/FB=3 with 3 buffers beats non-IC restricted to ≤ 3.
        assert!(t.ic_cell(3).unwrap() >= t.nonic_cell(3));
        let rendered = render(&t);
        assert!(rendered.contains("non-IC"));
        assert!(rendered.matches('-').count() >= 3);
    }
}
