//! Figure 6: tree-characteristic PDFs — the whole tree versus the subtree
//! of *used* nodes (nodes that computed at least one task, closed under
//! ancestors since relays are part of the working subtree).
//!
//! The paper's observation: with the default (high) computation-to-
//! communication ratios, a significant part of each tree is actually used
//! — typically >50 nodes and depth ≈18 — and non-IC occasionally uses a
//! slightly larger/deeper subtree than IC/FB=3.

use crate::campaign::{run_campaign_prepared, CampaignConfig, TreeRun};
use bc_engine::SimConfig;
use bc_metrics::{ascii_table, Histogram};

/// The three populations of Fig 6.
#[derive(Clone, Debug)]
pub struct Fig6 {
    /// Size/depth of every generated tree (the "all nodes" curve).
    pub all: Vec<(u64, u64)>,
    /// Used-subtree size/depth under non-IC, IB=1.
    pub nonic_used: Vec<(u64, u64)>,
    /// Used-subtree size/depth under IC, FB=3.
    pub ic_used: Vec<(u64, u64)>,
}

fn used_stats(runs: &[TreeRun]) -> Vec<(u64, u64)> {
    runs.iter()
        .map(|r| (r.used.size as u64, r.used.depth as u64))
        .collect()
}

/// Runs both protocols over the campaign and collects the populations.
/// The tree population is generated and analyzed once, shared by both.
pub fn run(campaign: &CampaignConfig) -> Fig6 {
    let prepared = campaign.prepare_all();
    let nonic = run_campaign_prepared(&prepared, campaign, |t| SimConfig::non_interruptible(1, t));
    let ic = run_campaign_prepared(&prepared, campaign, |t| SimConfig::interruptible(3, t));
    let all = nonic
        .iter()
        .map(|r| (r.nodes as u64, r.depth as u64))
        .collect();
    Fig6 {
        all,
        nonic_used: used_stats(&nonic),
        ic_used: used_stats(&ic),
    }
}

/// Renders panel (a) size PDF and panel (b) depth PDF.
pub fn render(fig: &Fig6, size_bin: u64, depth_bin: u64) -> String {
    let mut out = String::new();
    out.push_str("Figure 6 — tree characteristics: all nodes vs used nodes\n");
    for (title, pick, bin) in [
        (
            "(a) tree size PDF",
            0usize, // size
            size_bin,
        ),
        ("(b) tree depth PDF", 1, depth_bin),
    ] {
        out.push_str(&format!("\n{title} (bin width {bin}):\n"));
        let series: [(&str, &Vec<(u64, u64)>); 3] = [
            ("all nodes", &fig.all),
            ("used, non-IC IB=1", &fig.nonic_used),
            ("used, IC FB=3", &fig.ic_used),
        ];
        let hists: Vec<(&str, Histogram)> = series
            .iter()
            .map(|(label, data)| {
                let mut h = Histogram::new(bin);
                for &(size, depth) in data.iter() {
                    h.add(if pick == 0 { size } else { depth });
                }
                (*label, h)
            })
            .collect();
        let max_bins = hists.iter().map(|(_, h)| h.pdf().len()).max().unwrap_or(0);
        let header: Vec<String> = std::iter::once("bin".to_string())
            .chain(hists.iter().map(|(l, _)| l.to_string()))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let pdfs: Vec<Vec<(u64, f64)>> = hists.iter().map(|(_, h)| h.pdf()).collect();
        let rows: Vec<Vec<String>> = (0..max_bins)
            .map(|b| {
                let mut row = vec![format!("{}", b as u64 * bin)];
                for pdf in &pdfs {
                    row.push(
                        pdf.get(b)
                            .map_or("0.0%".to_string(), |&(_, v)| format!("{:.1}%", 100.0 * v)),
                    );
                }
                row
            })
            .collect();
        out.push_str(&ascii_table(&header_refs, &rows));
    }
    out
}

/// Mean used-subtree size and depth, for the headline comparison.
pub fn means(data: &[(u64, u64)]) -> (f64, f64) {
    if data.is_empty() {
        return (0.0, 0.0);
    }
    let n = data.len() as f64;
    (
        data.iter().map(|&(s, _)| s as f64).sum::<f64>() / n,
        data.iter().map(|&(_, d)| d as f64).sum::<f64>() / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_metrics::OnsetConfig;
    use bc_platform::RandomTreeConfig;

    #[test]
    fn used_subtrees_are_substantial_at_high_ratio() {
        let campaign = CampaignConfig {
            trees: 12,
            tasks: 1000,
            seed: 5,
            tree_config: RandomTreeConfig {
                min_nodes: 30,
                max_nodes: 120,
                comm_min: 1,
                comm_max: 100,
                compute_scale: 10_000,
            },
            onset: OnsetConfig::default(),
        };
        let fig = run(&campaign);
        assert_eq!(fig.all.len(), 12);
        let (all_size, _) = means(&fig.all);
        let (ic_size, _) = means(&fig.ic_used);
        // Used subtree is nonempty and no larger than the whole tree.
        assert!(ic_size > 1.0);
        assert!(ic_size <= all_size + 1e-9);
        // At x=10 000 most of the tree gets used (paper: usually > 50
        // nodes of ~245) — check a loose proportional version.
        assert!(
            ic_size > 0.2 * all_size,
            "used {ic_size} of {all_size} nodes"
        );
        for (&(s, d), &(alls, alld)) in fig.ic_used.iter().zip(&fig.all) {
            assert!(s <= alls && d <= alld);
        }
        let rendered = render(&fig, 25, 4);
        assert!(rendered.contains("tree size PDF"));
    }
}
