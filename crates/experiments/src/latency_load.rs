//! Latency under sustained load (EXPERIMENTS.md, "Extension — latency
//! under sustained load").
//!
//! The paper evaluates closed batches: every task sits in the root's
//! repository at t = 0 and the figure of merit is steady-state
//! bandwidth. The open-world extension streams tasks in and asks the
//! queueing question instead: **how does tail latency respond to
//! offered load?** This module sweeps the same seeded platform
//! population at three arrival intensities (the Poisson background gap
//! shrinks while a periodic burst class stays fixed) and reports the
//! exact-rational latency decomposition per intensity, aggregated over
//! the whole population by pooling rank-matched samples.
//!
//! Everything is exact and deterministic: offered load is a
//! [`Rational`], percentiles are nearest-rank integers from
//! [`bc_metrics::LatencySummary`], and the report (and its JSON
//! artifact, committed as `BENCH_latency.json`) is a pure function of
//! `(trees, tasks-per-class, seed)`.

use bc_engine::{
    AdmissionPolicy, ArrivalPlan, ArrivalProcess, SimConfig, SimWorkspace, Simulation, TaskClass,
};
use bc_metrics::{latency_profile, LatencySummary};
use bc_platform::RandomTreeConfig;
use bc_rational::Rational;
use serde::Value;

/// One arrival intensity in the sweep.
#[derive(Clone, Copy, Debug)]
pub struct Intensity {
    /// Display name ("low" / "medium" / "high").
    pub name: &'static str,
    /// Mean gap of the Poisson background class (smaller = hotter).
    pub mean_gap: u64,
}

/// The three intensities of the committed sweep. The burst class is
/// identical across intensities, so the offered-load axis is exactly
/// the Poisson background rate.
pub const INTENSITIES: [Intensity; 3] = [
    Intensity {
        name: "low",
        mean_gap: 6,
    },
    Intensity {
        name: "medium",
        mean_gap: 3,
    },
    Intensity {
        name: "high",
        mean_gap: 1,
    },
];

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct LatencyLoadConfig {
    /// Platforms per intensity.
    pub trees: usize,
    /// Poisson arrivals per platform (burst arrivals come on top).
    pub tasks: u64,
    /// Population seed.
    pub seed: u64,
    /// Platform shape (defaults mirror the paper's random trees).
    pub tree_cfg: RandomTreeConfig,
    /// Admission queue capacity.
    pub queue_cap: u64,
}

impl Default for LatencyLoadConfig {
    fn default() -> Self {
        LatencyLoadConfig {
            trees: 32,
            tasks: 120,
            seed: 2003,
            tree_cfg: RandomTreeConfig {
                min_nodes: 5,
                max_nodes: 12,
                comm_min: 1,
                comm_max: 4,
                compute_scale: 3,
            },
            queue_cap: 8,
        }
    }
}

/// The arrival plan for one intensity: a Poisson background class of
/// unit tasks plus a fixed periodic burst class of 2-unit tasks.
pub fn plan_for(cfg: &LatencyLoadConfig, intensity: Intensity, tree_seed: u64) -> ArrivalPlan {
    ArrivalPlan {
        seed: tree_seed ^ 0x1A7E,
        classes: vec![
            TaskClass {
                name: "background".into(),
                work_units: 1,
                process: ArrivalProcess::Poisson {
                    mean_gap: intensity.mean_gap,
                    count: cfg.tasks,
                },
            },
            TaskClass {
                name: "burst".into(),
                work_units: 2,
                process: ArrivalProcess::Burst {
                    phase: 10,
                    period: 40,
                    size: 3,
                    bursts: 4,
                },
            },
        ],
        queue_cap: cfg.queue_cap,
        policy: AdmissionPolicy::Defer,
    }
}

/// Exact offered load of an intensity's plan, in work units per
/// timestep: `1/mean_gap` from the background class plus the burst
/// class's `units * size / period`.
pub fn offered_load(intensity: Intensity) -> Rational {
    Rational::new(1, intensity.mean_gap as i128) + Rational::new(2 * 3, 40)
}

/// Aggregated results of one intensity across the population.
#[derive(Clone, Debug)]
pub struct IntensityReport {
    /// The intensity swept.
    pub intensity: Intensity,
    /// Offered load in units/timestep (exact).
    pub offered: Rational,
    /// Arrival units submitted / admitted over all trees.
    pub submitted: u64,
    /// Units admitted (Defer policy: equals submitted).
    pub admitted: u64,
    /// Admission deferrals observed (backpressure events).
    pub deferrals: u64,
    /// Largest deferred-queue depth seen on any tree.
    pub peak_deferred: u64,
    /// Pooled admission→completion distribution.
    pub sojourn: LatencySummary,
    /// Pooled admission→dispatch distribution.
    pub queue_wait: LatencySummary,
    /// Pooled dispatch→completion distribution.
    pub service: LatencySummary,
}

/// The full sweep report.
#[derive(Clone, Debug)]
pub struct LatencyLoadReport {
    /// Sweep parameters echoed back.
    pub trees: usize,
    /// Poisson arrivals per platform.
    pub tasks: u64,
    /// Population seed.
    pub seed: u64,
    /// One entry per [`INTENSITIES`] row, in order.
    pub rows: Vec<IntensityReport>,
}

/// Runs the sweep. Single-threaded by design — the whole default sweep
/// is well under a second, and sequential runs reuse one workspace.
pub fn run(cfg: &LatencyLoadConfig) -> LatencyLoadReport {
    let mut ws = SimWorkspace::new();
    let rows = INTENSITIES
        .iter()
        .map(|&intensity| {
            let mut sojourn = Vec::new();
            let mut queue_wait = Vec::new();
            let mut service = Vec::new();
            let (mut submitted, mut admitted, mut deferrals, mut peak) = (0u64, 0u64, 0u64, 0u64);
            for k in 0..cfg.trees {
                let tree_seed = cfg.seed.wrapping_add(k as u64);
                let tree = cfg.tree_cfg.generate(tree_seed);
                let sim_cfg = SimConfig::interruptible(2, 0)
                    .with_arrivals(plan_for(cfg, intensity, tree_seed));
                let sim = Simulation::with_workspace(tree, sim_cfg, std::mem::take(&mut ws));
                let (r, back) = sim.run_reusing();
                ws = back;
                let profile = latency_profile(
                    &r.arrivals.admit_times,
                    &r.arrivals.dispatch_times,
                    &r.completion_times,
                );
                sojourn.extend_from_slice(profile.sojourn.samples());
                queue_wait.extend_from_slice(profile.queue_wait.samples());
                service.extend_from_slice(profile.service.samples());
                submitted += r.arrivals.submitted;
                admitted += r.arrivals.admitted;
                deferrals += r.arrivals.deferrals;
                peak = peak.max(r.arrivals.peak_deferred);
            }
            IntensityReport {
                intensity,
                offered: offered_load(intensity),
                submitted,
                admitted,
                deferrals,
                peak_deferred: peak,
                sojourn: LatencySummary::from_samples(sojourn),
                queue_wait: LatencySummary::from_samples(queue_wait),
                service: LatencySummary::from_samples(service),
            }
        })
        .collect();
    LatencyLoadReport {
        trees: cfg.trees,
        tasks: cfg.tasks,
        seed: cfg.seed,
        rows,
    }
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".into(), |n| n.to_string())
}

/// Renders the p99-vs-offered-load table.
pub fn render(report: &LatencyLoadReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "latency under sustained load — {} trees, {} Poisson arrivals each, seed {}\n",
        report.trees, report.tasks, report.seed
    ));
    out.push_str(
        "intensity  offered     sojourn p50/p99/max   queue-wait p50/p99   service p50/p99   deferrals (peak)\n",
    );
    for row in &report.rows {
        out.push_str(&format!(
            "{:<9}  {:<10}  {:>7}/{:>4}/{:>4}   {:>10}/{:>4}   {:>7}/{:>4}   {:>9} ({})\n",
            row.intensity.name,
            row.offered.to_string(),
            fmt_opt(row.sojourn.p50()),
            fmt_opt(row.sojourn.p99()),
            fmt_opt(row.sojourn.max()),
            fmt_opt(row.queue_wait.p50()),
            fmt_opt(row.queue_wait.p99()),
            fmt_opt(row.service.p50()),
            fmt_opt(row.service.p99()),
            row.deferrals,
            row.peak_deferred,
        ));
    }
    out
}

fn summary_value(s: &LatencySummary) -> Value {
    let num = |v: Option<u64>| v.map_or(Value::Null, |n| Value::Int(n as i128));
    serde::object(vec![
        ("count", Value::Int(s.count() as i128)),
        (
            "mean",
            s.mean().map_or(Value::Null, |m| Value::Str(m.to_string())),
        ),
        ("p50", num(s.p50())),
        ("p99", num(s.p99())),
        ("min", num(s.min())),
        ("max", num(s.max())),
    ])
}

/// The committed-artifact JSON (`BENCH_latency.json`).
pub fn to_json(report: &LatencyLoadReport) -> String {
    let rows: Vec<Value> = report
        .rows
        .iter()
        .map(|row| {
            serde::object(vec![
                ("intensity", Value::Str(row.intensity.name.into())),
                (
                    "offered_units_per_step",
                    Value::Str(row.offered.to_string()),
                ),
                ("submitted", Value::Int(row.submitted as i128)),
                ("admitted", Value::Int(row.admitted as i128)),
                ("deferrals", Value::Int(row.deferrals as i128)),
                ("peak_deferred", Value::Int(row.peak_deferred as i128)),
                ("sojourn", summary_value(&row.sojourn)),
                ("queue_wait", summary_value(&row.queue_wait)),
                ("service", summary_value(&row.service)),
            ])
        })
        .collect();
    let root = serde::object(vec![
        (
            "experiment",
            Value::Str("latency_under_sustained_load".into()),
        ),
        ("trees", Value::Int(report.trees as i128)),
        ("tasks", Value::Int(report.tasks as i128)),
        ("seed", Value::Int(report.seed as i128)),
        ("intensities", Value::Array(rows)),
    ]);
    serde_json::to_string_pretty(&root).expect("serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LatencyLoadConfig {
        LatencyLoadConfig {
            trees: 6,
            tasks: 40,
            ..LatencyLoadConfig::default()
        }
    }

    /// The sweep is a pure function of its config.
    #[test]
    fn sweep_is_deterministic() {
        let a = run(&small());
        let b = run(&small());
        assert_eq!(to_json(&a), to_json(&b));
    }

    /// Hotter offered load cannot shrink queueing: deferral pressure and
    /// tail sojourn are monotone along the committed intensity ladder.
    #[test]
    fn load_ladder_is_monotone() {
        let r = run(&small());
        assert_eq!(r.rows.len(), 3);
        for w in r.rows.windows(2) {
            assert!(
                w[0].offered < w[1].offered,
                "intensity ladder must increase offered load"
            );
            assert!(
                w[0].deferrals <= w[1].deferrals,
                "hotter load should not reduce backpressure ({} vs {})",
                w[0].deferrals,
                w[1].deferrals
            );
            assert!(
                w[0].sojourn.p99() <= w[1].sojourn.p99(),
                "hotter load should not reduce p99 sojourn"
            );
        }
        // The high tier must actually saturate something, or the sweep
        // is measuring an idle system.
        assert!(r.rows[2].deferrals > 0, "high intensity never deferred");
    }

    /// Every admitted unit completes (Defer policy, fault-free), and the
    /// pooled decomposition covers all of them.
    #[test]
    fn pooled_samples_cover_all_admitted_units() {
        let r = run(&small());
        for row in &r.rows {
            assert_eq!(row.submitted, row.admitted, "Defer must admit everything");
            assert_eq!(row.sojourn.count() as u64, row.admitted);
            assert_eq!(row.queue_wait.count() as u64, row.admitted);
            assert_eq!(row.service.count() as u64, row.admitted);
        }
    }

    /// The artifact JSON parses and round-trips the headline numbers.
    #[test]
    fn artifact_json_is_well_formed() {
        let r = run(&small());
        let v: Value = serde_json::from_str(&to_json(&r)).expect("artifact must parse");
        let Some(Value::Array(rows)) = v.get("intensities") else {
            panic!("no intensities array")
        };
        assert_eq!(rows.len(), 3);
        for (row, rep) in rows.iter().zip(&r.rows) {
            assert_eq!(
                row.get("intensity"),
                Some(&Value::Str(rep.intensity.name.into()))
            );
            let Some(sojourn) = row.get("sojourn") else {
                panic!("no sojourn block")
            };
            assert_eq!(
                sojourn.get("p99"),
                Some(
                    &rep.sojourn
                        .p99()
                        .map_or(Value::Null, |n| Value::Int(n as i128))
                )
            );
        }
    }
}
