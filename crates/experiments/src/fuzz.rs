//! Differential protocol fuzzing: adversarial random trees, every
//! protocol variant run under the invariant checker, and a greedy
//! shrinker that minimizes failures to a few-node reproducer.
//!
//! The harness drives each case with `checked` *off* and calls the
//! checker's fallible entry points ([`Simulation::verify_invariants`] /
//! [`Simulation::verify_terminal`]) after every step, so a violation
//! surfaces as an `Err` the shrinker can iterate on rather than a panic.
//! Engine panics (deadlock, internal assertions, event-budget blowups)
//! are caught and reported as failures too.
//!
//! Reproducers are self-contained: a failing case is shrunk and printed
//! as a `fuzz_protocols --repro <spec> --variant <name>` command whose
//! spec encodes the exact tree (see [`CaseSpec::encode`]), independent
//! of generator seeds or versions. See EXPERIMENTS.md for the workflow.

use bc_core::{GrowthGate, ObserverKind};
use bc_engine::{
    AdmissionPolicy, ArrivalPlan, ArrivalProcess, FaultEvent, FaultInjection, FaultKind, FaultPlan,
    RecoveryTuning, SelectorKind, SimConfig, SimSnapshot, SimWorkspace, Simulation, TaskClass,
};
use bc_platform::{NodeId, Tree};
use bc_simcore::trace::{RingRecorder, TraceEvent, TraceRecord, TraceSink};
use bc_simcore::{split_seed, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::IntoParallelIterator;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Cap on events per fuzz run — far above any legitimate small-tree run,
/// so hitting it is itself a caught failure (runaway simulation).
const FUZZ_MAX_EVENTS: u64 = 5_000_000;

/// Fixed jitter seed every fuzz fault plan uses, so a reproducer spec
/// fully determines the run (the schedule itself is in the spec).
pub const FUZZ_FAULT_SEED: u64 = 0xFA17;

/// Variants the fault-plan legs run under (a subset: both disciplines,
/// fixed and growable pools). Reproduce with the same `--variant` name —
/// the fault schedule rides in the spec's third segment.
pub const FAULT_PLAN_VARIANTS: [&str; 3] = ["ic-fb3", "nonic-ib1-every", "nonic-fb2"];

/// Variants the open-world arrival legs run under. Reproduce with the
/// same `--variant` name plus `--arrivals <seed>` (the whole plan is a
/// pure function of that seed; see [`fuzz_arrival_plan`]).
pub const ARRIVAL_VARIANTS: [&str; 3] = ["ic-fb2", "nonic-ib1-every", "nonic-fb2"];

/// Salt mixed into the campaign seed to derive per-case arrival seeds.
pub const FUZZ_ARRIVAL_SALT: u64 = 0xA881;

/// Deterministically derives an open-world workload from one seed: a
/// Poisson background class plus a bursty class sized so a full burst
/// always overruns the admission queue (every plan exercises the
/// admission gate, not just the happy path). Policy is `Defer` three
/// times in four — backpressure has the richer invariant surface — and
/// `Drop` otherwise.
pub fn fuzz_arrival_plan(arr_seed: u64) -> ArrivalPlan {
    let mut rng = SmallRng::seed_from_u64(arr_seed);
    let width = rng.random_range(1..=2u64);
    let cap = rng.random_range(3..=8u64).max(width);
    // size * width > cap: the burst instant must hit the bound.
    let size = cap / width + 1;
    ArrivalPlan {
        seed: rng.random(),
        classes: vec![
            TaskClass {
                name: "background".into(),
                work_units: 1,
                process: ArrivalProcess::Poisson {
                    mean_gap: rng.random_range(1..=5),
                    count: rng.random_range(15..=40),
                },
            },
            TaskClass {
                name: "burst".into(),
                work_units: width,
                process: ArrivalProcess::Burst {
                    phase: rng.random_range(0..=20),
                    period: rng.random_range(5..=25),
                    size,
                    bursts: rng.random_range(2..=4),
                },
            },
        ],
        queue_cap: cap,
        policy: if rng.random_range(0..4) < 3 {
            AdmissionPolicy::Defer
        } else {
            AdmissionPolicy::Drop
        },
    }
}

// ---------------------------------------------------------------------
// Case specification
// ---------------------------------------------------------------------

/// A platform tree as explicit data: the root's compute time plus, for
/// each further node, its parent id, uplink communication time, and
/// compute time. Spec entry `k` (0-based) is the node with id `k + 1`;
/// parents always precede children, so [`CaseSpec::to_tree`] rebuilds
/// the identical tree, and [`CaseSpec::encode`] makes a reproducer
/// independent of any generator seed or version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseSpec {
    /// Compute time of the repository (node 0).
    pub root_compute: u64,
    /// `(parent_id, comm_time, compute_time)` per non-root node, in id
    /// order (entry `k` is node `k + 1`).
    pub nodes: Vec<(usize, u64, u64)>,
    /// Scheduled environment faults, if the case runs under a fault
    /// plan. Encoded as the spec's third `|` segment, so `--repro`
    /// round-trips the whole schedule.
    pub faults: Vec<FaultEvent>,
}

impl CaseSpec {
    /// Total node count (root included).
    pub fn len(&self) -> usize {
        self.nodes.len() + 1
    }

    /// True when the spec is just the repository.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rebuilds the tree.
    pub fn to_tree(&self) -> Tree {
        let mut tree = Tree::new(self.root_compute);
        for &(parent, comm, compute) in &self.nodes {
            tree.add_child(NodeId(parent as u32), comm, compute);
        }
        tree
    }

    /// Serializes the spec for a `--repro` command line:
    /// `root_compute|parent:comm:compute;...[|kind:at:node[:arg];...]`.
    /// The fault segment (kinds `l`oss, `a`bort, `o`utage, `c`rash,
    /// `d`uplicate) appears only when the case carries a fault plan, so
    /// fault-free specs encode exactly as before.
    pub fn encode(&self) -> String {
        use std::fmt::Write;
        let mut s = self.root_compute.to_string();
        s.push('|');
        for (k, &(p, c, w)) in self.nodes.iter().enumerate() {
            if k > 0 {
                s.push(';');
            }
            let _ = write!(s, "{p}:{c}:{w}");
        }
        for (k, f) in self.faults.iter().enumerate() {
            s.push(if k == 0 { '|' } else { ';' });
            let (at, n) = (f.at, f.node.0);
            let _ = match f.kind {
                FaultKind::RequestLoss { batches } => write!(s, "l:{at}:{n}:{batches}"),
                FaultKind::TransferAbort => write!(s, "a:{at}:{n}"),
                FaultKind::LinkOutage { duration } => write!(s, "o:{at}:{n}:{duration}"),
                FaultKind::Crash => write!(s, "c:{at}:{n}"),
                FaultKind::DuplicateDelivery { copies } => write!(s, "d:{at}:{n}:{copies}"),
            };
        }
        s
    }

    /// Parses [`CaseSpec::encode`]'s format.
    pub fn decode(s: &str) -> Result<CaseSpec, String> {
        let (root, rest) = s
            .split_once('|')
            .ok_or_else(|| format!("spec {s:?} lacks the root| prefix"))?;
        let (rest, fault_segment) = match rest.split_once('|') {
            Some((nodes, faults)) => (nodes, Some(faults)),
            None => (rest, None),
        };
        let root_compute: u64 = root
            .parse()
            .map_err(|_| format!("bad root compute time {root:?}"))?;
        let mut nodes = Vec::new();
        if !rest.is_empty() {
            for (k, entry) in rest.split(';').enumerate() {
                let mut f = entry.split(':');
                let mut num = |what: &str| {
                    f.next()
                        .ok_or_else(|| format!("node {}: missing {what}", k + 1))?
                        .parse::<u64>()
                        .map_err(|_| format!("node {}: bad {what} in {entry:?}", k + 1))
                };
                let parent = num("parent")? as usize;
                let comm = num("comm")?;
                let compute = num("compute")?;
                if parent > k {
                    return Err(format!(
                        "node {}: parent {parent} does not precede it",
                        k + 1
                    ));
                }
                if comm == 0 || compute == 0 {
                    return Err(format!("node {}: weights must be >= 1", k + 1));
                }
                nodes.push((parent, comm, compute));
            }
        }
        if root_compute == 0 {
            return Err("root compute time must be >= 1".into());
        }
        let mut faults = Vec::new();
        if let Some(seg) = fault_segment {
            for entry in seg.split(';') {
                faults.push(Self::decode_fault(entry, nodes.len())?);
            }
        }
        Ok(CaseSpec {
            root_compute,
            nodes,
            faults,
        })
    }

    /// Parses one `kind:at:node[:arg]` fault entry.
    fn decode_fault(entry: &str, non_root_nodes: usize) -> Result<FaultEvent, String> {
        let mut f = entry.split(':');
        let kind_tag = f.next().unwrap_or_default();
        let mut num = |what: &str| {
            f.next()
                .ok_or_else(|| format!("fault {entry:?}: missing {what}"))?
                .parse::<u64>()
                .map_err(|_| format!("fault {entry:?}: bad {what}"))
        };
        let at = num("time")?;
        let node = num("node")? as usize;
        if node == 0 || node > non_root_nodes {
            return Err(format!(
                "fault {entry:?}: node {node} is the repository or out of range"
            ));
        }
        let kind = match kind_tag {
            "l" => FaultKind::RequestLoss {
                batches: num("batches")?.max(1) as u32,
            },
            "a" => FaultKind::TransferAbort,
            "o" => FaultKind::LinkOutage {
                duration: num("duration")?.max(1),
            },
            "c" => FaultKind::Crash,
            "d" => FaultKind::DuplicateDelivery {
                copies: num("copies")?.max(1) as u32,
            },
            other => return Err(format!("fault {entry:?}: unknown kind {other:?}")),
        };
        Ok(FaultEvent {
            at,
            node: NodeId(node as u32),
            kind,
        })
    }

    /// The fault plan the spec's schedule describes, with the fixed fuzz
    /// jitter seed and default recovery tuning. `None` when fault-free.
    pub fn to_fault_plan(&self) -> Option<FaultPlan> {
        if self.faults.is_empty() {
            return None;
        }
        Some(FaultPlan {
            seed: FUZZ_FAULT_SEED,
            faults: self.faults.clone(),
            recovery: RecoveryTuning::default(),
        })
    }

    /// True when spec node `k` (id `k + 1`) has no children.
    fn is_leaf(&self, k: usize) -> bool {
        let id = k + 1;
        !self.nodes.iter().any(|&(p, _, _)| p == id)
    }

    /// The spec with leaf `k` removed (ids above it shift down by one).
    /// Faults targeting the removed node are dropped; targets above it
    /// are renumbered along with their nodes.
    fn without_leaf(&self, k: usize) -> CaseSpec {
        let removed = k + 1;
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != k)
            .map(|(_, &(p, c, w))| (if p > removed { p - 1 } else { p }, c, w))
            .collect();
        let faults = self
            .faults
            .iter()
            .filter(|f| f.node.index() != removed)
            .map(|f| FaultEvent {
                node: if f.node.index() > removed {
                    NodeId(f.node.0 - 1)
                } else {
                    f.node
                },
                ..*f
            })
            .collect();
        CaseSpec {
            root_compute: self.root_compute,
            nodes,
            faults,
        }
    }
}

// ---------------------------------------------------------------------
// Adversarial tree shapes
// ---------------------------------------------------------------------

/// The generator's shape families. Each targets a different stress:
/// relay depth, link contention, selector tie-breaking, or the §4.1
/// paper distribution in miniature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Small §4.1-style tree: random parents, mixed weights.
    PaperLike,
    /// A single chain 10–24 deep: every task relays through every node.
    DeepChain,
    /// A flat fan of 8–24 children: maximal outbound-link contention.
    WideFan,
    /// All edges and processors identical: every selector decision ties.
    EqualWeight,
    /// Unit communication, slow processors: the link is never binding.
    UnitComm,
    /// A caterpillar: a spine with a leaf at every level — chains and
    /// fans interleaved.
    Caterpillar,
}

/// All shape families, in the round-robin order the fuzzer uses.
pub const SHAPES: [Shape; 6] = [
    Shape::PaperLike,
    Shape::DeepChain,
    Shape::WideFan,
    Shape::EqualWeight,
    Shape::UnitComm,
    Shape::Caterpillar,
];

/// Deterministically generates fuzz case `index` of a `seed`-keyed
/// population: shape families round-robin, sizes and weights drawn from
/// a per-case split seed.
pub fn generate_case(seed: u64, index: usize) -> CaseSpec {
    let shape = SHAPES[index % SHAPES.len()];
    let mut rng = SmallRng::seed_from_u64(split_seed(seed, index as u64));
    let mut nodes = Vec::new();
    let root_compute;
    match shape {
        Shape::PaperLike => {
            root_compute = rng.random_range(1..=40);
            let n = rng.random_range(5..=23);
            for k in 0..n {
                let parent = rng.random_range(0..=k);
                nodes.push((parent, rng.random_range(1..=12), rng.random_range(1..=40)));
            }
        }
        Shape::DeepChain => {
            root_compute = rng.random_range(1..=30);
            let depth = rng.random_range(10..=24);
            for k in 0..depth {
                nodes.push((k, rng.random_range(1..=6), rng.random_range(1..=30)));
            }
        }
        Shape::WideFan => {
            root_compute = rng.random_range(1..=30);
            let width = rng.random_range(8..=24);
            for _ in 0..width {
                nodes.push((0, rng.random_range(1..=10), rng.random_range(1..=30)));
            }
        }
        Shape::EqualWeight => {
            let c = rng.random_range(1..=5);
            let w = rng.random_range(1..=10);
            root_compute = w;
            let n = rng.random_range(6..=20);
            for k in 0..n {
                let parent = rng.random_range(0..=k);
                nodes.push((parent, c, w));
            }
        }
        Shape::UnitComm => {
            root_compute = rng.random_range(20..=60);
            let n = rng.random_range(6..=20);
            for k in 0..n {
                let parent = rng.random_range(0..=k);
                nodes.push((parent, 1, rng.random_range(20..=60)));
            }
        }
        Shape::Caterpillar => {
            root_compute = rng.random_range(1..=30);
            let levels = rng.random_range(5..=11);
            let mut spine = 0usize;
            for _ in 0..levels {
                nodes.push((spine, rng.random_range(1..=8), rng.random_range(1..=30)));
                spine = nodes.len(); // id of the spine node just pushed
                                     // A leaf hangs off every spine node.
                nodes.push((spine, rng.random_range(1..=8), rng.random_range(1..=30)));
            }
        }
    }
    CaseSpec {
        root_compute,
        nodes,
        faults: Vec::new(),
    }
}

/// Draws a low-intensity fault schedule for fuzz case `index`: one lost
/// request batch, one transfer abort, a leaf crash, and (half the time
/// each) a short link outage or duplicated deliveries. Times sit inside
/// the early makespan of a small-tree run, so the faults actually bite.
pub fn generate_faults(seed: u64, index: usize, spec: &CaseSpec) -> Vec<FaultEvent> {
    let mut rng = SmallRng::seed_from_u64(split_seed(seed ^ FUZZ_FAULT_SEED, index as u64));
    let n = spec.nodes.len();
    if n == 0 {
        return Vec::new();
    }
    let any = |rng: &mut SmallRng| NodeId(rng.random_range(1..=n) as u32);
    let mut faults = vec![
        FaultEvent {
            at: rng.random_range(5..=150),
            node: any(&mut rng),
            kind: FaultKind::RequestLoss {
                batches: rng.random_range(1..=2),
            },
        },
        FaultEvent {
            at: rng.random_range(5..=200),
            node: any(&mut rng),
            kind: FaultKind::TransferAbort,
        },
    ];
    let leaves: Vec<usize> = (0..n).filter(|&k| spec.is_leaf(k)).collect();
    if !leaves.is_empty() {
        let leaf = leaves[rng.random_range(0..leaves.len())];
        faults.push(FaultEvent {
            at: rng.random_range(30..=250),
            node: NodeId(leaf as u32 + 1),
            kind: FaultKind::Crash,
        });
    }
    if rng.random_range(0..2) == 0 {
        faults.push(FaultEvent {
            at: rng.random_range(10..=180),
            node: any(&mut rng),
            kind: FaultKind::LinkOutage {
                duration: rng.random_range(10..=120),
            },
        });
    }
    if rng.random_range(0..2) == 0 {
        faults.push(FaultEvent {
            at: rng.random_range(10..=180),
            node: any(&mut rng),
            kind: FaultKind::DuplicateDelivery {
                copies: rng.random_range(1..=3),
            },
        });
    }
    faults
}

/// The full run configuration for a spec: `base` plus the spec's fault
/// plan, when it carries one. Every fuzz entry point composes configs
/// through this, so shrunk candidates re-derive their plan from the
/// candidate spec (a dropped node takes its faults with it).
pub fn case_config(spec: &CaseSpec, base: &SimConfig) -> SimConfig {
    match spec.to_fault_plan() {
        Some(plan) => base.clone().with_fault_plan(plan),
        None => base.clone(),
    }
}

// ---------------------------------------------------------------------
// Protocol variants
// ---------------------------------------------------------------------

/// Every protocol variant a fuzz case runs under: both disciplines, the
/// paper's buffer sizes, all growth gates, both service orders, the
/// non-oracle observers, and a baseline selector (the invariants — and
/// the rate oracle — must hold for *any* of them).
pub fn variants(tasks: u64) -> Vec<(&'static str, SimConfig)> {
    let mut v: Vec<(&'static str, SimConfig)> = vec![
        ("ic-fb1", SimConfig::interruptible(1, tasks)),
        ("ic-fb2", SimConfig::interruptible(2, tasks)),
        ("ic-fb3", SimConfig::interruptible(3, tasks)),
        ("nonic-ib1-every", SimConfig::non_interruptible(1, tasks)),
        (
            "nonic-ib1-arrival",
            SimConfig::non_interruptible_gated(1, GrowthGate::OncePerArrival, tasks),
        ),
        (
            "nonic-ib1-filled",
            SimConfig::non_interruptible_gated(1, GrowthGate::AfterPoolFilled, tasks),
        ),
        ("nonic-fb2", SimConfig::non_interruptible_fixed(2, tasks)),
    ];
    let mut link_first = SimConfig::interruptible(3, tasks);
    link_first.self_first = false;
    v.push(("ic-fb3-link-first", link_first));
    let mut last_sample = SimConfig::interruptible(2, tasks);
    last_sample.observer = ObserverKind::LastSample { initial: 5 };
    v.push(("ic-fb2-lastsample", last_sample));
    let mut round_robin = SimConfig::interruptible(2, tasks);
    round_robin.selector = SelectorKind::RoundRobin;
    v.push(("ic-fb2-roundrobin", round_robin));
    v
}

/// Looks a variant up by name (for `--repro`).
pub fn variant_by_name(name: &str, tasks: u64) -> Option<SimConfig> {
    variants(tasks)
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, c)| c)
}

/// Parses a `--fault` operand: `fb` (FB off-by-one), `leak:N`, or
/// `swallow` (reissue swallowing; only bites under a fault plan).
pub fn parse_fault(s: &str) -> Result<FaultInjection, String> {
    if s == "fb" {
        return Ok(FaultInjection::FbOffByOne);
    }
    if s == "swallow" {
        return Ok(FaultInjection::SwallowReissue);
    }
    if let Some(n) = s.strip_prefix("leak:") {
        let every: u64 = n.parse().map_err(|_| format!("bad leak period {n:?}"))?;
        if every == 0 {
            return Err("leak period must be >= 1".into());
        }
        return Ok(FaultInjection::LeakTask { every });
    }
    if let Some(n) = s.strip_prefix("leakq:") {
        let every: u64 = n.parse().map_err(|_| format!("bad leakq period {n:?}"))?;
        if every == 0 {
            return Err("leakq period must be >= 1".into());
        }
        return Ok(FaultInjection::LeakQueuedTask { every });
    }
    Err(format!(
        "unknown fault {s:?}; use fb, leak:N, leakq:N, or swallow"
    ))
}

/// Renders a fault back to its `--fault` operand.
pub fn fault_flag(f: FaultInjection) -> String {
    match f {
        FaultInjection::FbOffByOne => "fb".into(),
        FaultInjection::LeakTask { every } => format!("leak:{every}"),
        FaultInjection::SwallowReissue => "swallow".into(),
        FaultInjection::LeakQueuedTask { every } => format!("leakq:{every}"),
    }
}

// ---------------------------------------------------------------------
// Checked execution
// ---------------------------------------------------------------------

/// Runs one tree under one configuration with the invariant checker
/// consulted after *every* event (stricter than checked mode's amortized
/// sweep), plus the terminal differential oracle. Returns the first
/// violation, or the failure text of any engine panic (deadlock,
/// internal assertion, event budget).
pub fn run_case(tree: &Tree, cfg: &SimConfig) -> Result<(), String> {
    let mut cfg = cfg.clone().with_checked(false);
    cfg.max_events = FUZZ_MAX_EVENTS;
    let tree = tree.clone();
    let outcome = catch_unwind(AssertUnwindSafe(move || -> Result<(), String> {
        let mut sim = Simulation::with_workspace(tree, cfg, SimWorkspace::new());
        sim.start();
        sim.verify_invariants().map_err(|v| v.to_string())?;
        loop {
            let more = sim.step();
            sim.verify_invariants()
                .map_err(|v| format!("{v} (at t={}, {} completed)", sim.now(), sim.completed()))?;
            if !more {
                break;
            }
        }
        sim.verify_terminal().map_err(|v| v.to_string())
    }));
    match outcome {
        Ok(run) => run,
        Err(payload) => Err(format!("engine panic: {}", panic_text(&payload))),
    }
}

/// A ring recorder behind shared ownership, so the retained tail
/// survives an engine panic (the simulation — sink included — is
/// consumed by `catch_unwind`).
struct SharedRing(Arc<Mutex<RingRecorder>>);

impl TraceSink for SharedRing {
    fn record(&mut self, time: Time, event: TraceEvent) {
        self.0.lock().expect("ring poisoned").record(time, event);
    }

    fn retained(&self, out: &mut Vec<TraceRecord>) {
        self.0.lock().expect("ring poisoned").retained(out);
    }
}

/// Re-runs one case exactly like [`run_case`], but with a bounded flight
/// recorder attached: returns the verdict plus the last `keep` trace
/// events leading up to the violation (or the end of a passing run).
/// `fuzz_protocols --repro` prints this tail so a reproducer comes with
/// its own event-level post-mortem.
pub fn trace_tail(
    tree: &Tree,
    cfg: &SimConfig,
    keep: usize,
) -> (Result<(), String>, Vec<TraceRecord>) {
    let mut cfg = cfg.clone().with_checked(false);
    cfg.max_events = FUZZ_MAX_EVENTS;
    let tree = tree.clone();
    let ring = Arc::new(Mutex::new(RingRecorder::new(keep.max(1))));
    let sink = SharedRing(Arc::clone(&ring));
    let outcome = catch_unwind(AssertUnwindSafe(move || -> Result<(), String> {
        let mut sim = Simulation::traced(tree, cfg, SimWorkspace::new(), sink);
        sim.start();
        sim.verify_invariants().map_err(|v| v.to_string())?;
        loop {
            let more = sim.step();
            sim.verify_invariants()
                .map_err(|v| format!("{v} (at t={}, {} completed)", sim.now(), sim.completed()))?;
            if !more {
                break;
            }
        }
        sim.verify_terminal().map_err(|v| v.to_string())
    }));
    let verdict = match outcome {
        Ok(run) => run,
        Err(payload) => Err(format!("engine panic: {}", panic_text(&payload))),
    };
    let tail = ring.lock().expect("ring poisoned").tail();
    (verdict, tail)
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Runs `f` with panic messages suppressed (the fuzzer expects panics —
/// deadlocks, injected faults — and would otherwise spray backtraces).
/// The previous hook is restored afterward.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    let _ = std::panic::take_hook();
    std::panic::set_hook(prev);
    out
}

// ---------------------------------------------------------------------
// Fork mode: periodic snapshots and suffix replay
// ---------------------------------------------------------------------

/// Default events between fork-mode snapshot captures.
pub const FORK_SNAPSHOT_PERIOD: u64 = 256;

/// Outcome of a fork-mode run: the verdict plus the last periodic
/// [`SimSnapshot`] captured at a checker-verified point *before* the
/// verdict, so a failure can be re-examined by replaying only the
/// suffix instead of the whole run.
pub struct ForkRun {
    /// First violation (or panic text), as in [`run_case`].
    pub verdict: Result<(), String>,
    /// The last snapshot captured before the verdict. `None` only when
    /// the run ended (or failed) before the first capture was due.
    pub snapshot: Option<Box<SimSnapshot>>,
    /// Events processed when [`ForkRun::snapshot`] was captured.
    pub snapshot_events: u64,
    /// Events processed by the whole run (up to the failure, if any).
    pub total_events: u64,
}

/// Runs one case exactly like [`run_case`], additionally capturing a
/// snapshot every `period` events — each taken right after the checker
/// passed, so every capture is a verified-good state. The returned
/// snapshot is the fork point for [`replay_suffix`].
pub fn run_case_snapshotting(tree: &Tree, cfg: &SimConfig, period: u64) -> ForkRun {
    let mut cfg = cfg.clone().with_checked(false);
    cfg.max_events = FUZZ_MAX_EVENTS;
    let tree = tree.clone();
    let period = period.max(1);
    // The snapshot and counters live behind shared ownership so they
    // survive an engine panic (catch_unwind consumes the simulation).
    type Kept = (Option<Box<SimSnapshot>>, u64, u64);
    let kept: Arc<Mutex<Kept>> = Arc::new(Mutex::new((None, 0, 0)));
    let keeper = Arc::clone(&kept);
    let outcome = catch_unwind(AssertUnwindSafe(move || -> Result<(), String> {
        let mut sim = Simulation::with_workspace(tree, cfg, SimWorkspace::new());
        sim.start();
        sim.verify_invariants().map_err(|v| v.to_string())?;
        let mut next_capture = period;
        loop {
            if sim.events_processed() >= next_capture {
                let mut k = keeper.lock().expect("fork slot poisoned");
                k.0 = Some(Box::new(sim.snapshot()));
                k.1 = sim.events_processed();
                next_capture = sim.events_processed() + period;
            }
            let more = sim.step();
            keeper.lock().expect("fork slot poisoned").2 = sim.events_processed();
            sim.verify_invariants()
                .map_err(|v| format!("{v} (at t={}, {} completed)", sim.now(), sim.completed()))?;
            if !more {
                break;
            }
        }
        sim.verify_terminal().map_err(|v| v.to_string())
    }));
    let verdict = match outcome {
        Ok(run) => run,
        Err(payload) => Err(format!("engine panic: {}", panic_text(&payload))),
    };
    let (snapshot, snapshot_events, total_events) =
        std::mem::take(&mut *kept.lock().expect("fork slot poisoned"));
    ForkRun {
        verdict,
        snapshot,
        snapshot_events,
        total_events,
    }
}

/// Replays a fork-mode suffix: restores the snapshot and re-checks
/// every remaining event, exactly like [`run_case`] from that point on.
/// Returns the verdict plus the events the replay processed — for a
/// deterministic engine a [`run_case_snapshotting`] failure must
/// reproduce here with an identical message in
/// `total_events - snapshot_events` events.
pub fn replay_suffix(snap: &SimSnapshot) -> (Result<(), String>, u64) {
    let replayed = Arc::new(Mutex::new(0u64));
    let counter = Arc::clone(&replayed);
    let snap = snap.clone();
    let base = snap.events_processed();
    let outcome = catch_unwind(AssertUnwindSafe(move || -> Result<(), String> {
        let mut sim = Simulation::from_snapshot(&snap);
        sim.verify_invariants().map_err(|v| v.to_string())?;
        loop {
            let more = sim.step();
            *counter.lock().expect("replay counter poisoned") = sim.events_processed() - base;
            sim.verify_invariants()
                .map_err(|v| format!("{v} (at t={}, {} completed)", sim.now(), sim.completed()))?;
            if !more {
                break;
            }
        }
        sim.verify_terminal().map_err(|v| v.to_string())
    }));
    let verdict = match outcome {
        Ok(run) => run,
        Err(payload) => Err(format!("engine panic: {}", panic_text(&payload))),
    };
    let n = *replayed.lock().expect("replay counter poisoned");
    (verdict, n)
}

/// Fork-mode self-test: a known-bad run's violation must reproduce from
/// the last periodic snapshot's suffix (with an identical message, in
/// fewer events than the whole run), and a faithful run's snapshot must
/// replay cleanly to the end. Returns a summary, or what broke.
pub fn fork_smoke(seed: u64, tasks: u64) -> Result<String, String> {
    let spec = generate_case(seed, 0);
    let tree = spec.to_tree();
    let period = 16;

    // Leg 1: a faithful run — the suffix replays to the same clean end.
    // Elision off, so the event stream (and thus the suffix) is dense.
    let good_cfg = variant_by_name("ic-fb2", tasks)
        .expect("known variant")
        .with_elision(false);
    let good = run_case_snapshotting(&tree, &good_cfg, period);
    good.verdict
        .as_ref()
        .map_err(|e| format!("faithful fork-mode run flagged: {e}"))?;
    let snap = good
        .snapshot
        .as_ref()
        .ok_or("faithful run ended before the first capture")?;
    let (verdict, replayed) = replay_suffix(snap);
    verdict.map_err(|e| format!("faithful suffix replay flagged: {e}"))?;
    if replayed != good.total_events - good.snapshot_events {
        return Err(format!(
            "faithful suffix replayed {replayed} events, expected {}",
            good.total_events - good.snapshot_events
        ));
    }

    // Leg 2: an injected slow task leak — it breaks conservation well
    // after the first captures, and the violation must reproduce from
    // the suffix alone, word for word.
    let bad_cfg = good_cfg.with_fault(FaultInjection::LeakTask { every: 25 });
    let bad = with_quiet_panics(|| run_case_snapshotting(&tree, &bad_cfg, period));
    let message = match &bad.verdict {
        Err(m) => m.clone(),
        Ok(()) => return Err("injected task leak went undetected in fork mode".into()),
    };
    let Some(snap) = bad.snapshot.as_ref() else {
        return Err("failing run produced no snapshot before the violation".into());
    };
    let (verdict, replayed) = with_quiet_panics(|| replay_suffix(snap));
    match verdict {
        Ok(()) => return Err("violation vanished when replayed from the suffix".into()),
        Err(m) if m != message => {
            return Err(format!(
                "suffix replay found a different violation:\n  full run: {message}\n  suffix:   {m}"
            ));
        }
        Err(_) => {}
    }
    if replayed > bad.total_events - bad.snapshot_events {
        return Err(format!(
            "suffix replay took {replayed} events, more than the {} it skipped to",
            bad.total_events - bad.snapshot_events
        ));
    }
    Ok(format!(
        "fork smoke: clean suffix of {replayed_good} event(s) replayed exactly; \
         leak violation reproduced from a snapshot at event {at} of {total} \
         ({replayed} suffix event(s) instead of a full rerun)",
        replayed_good = good.total_events - good.snapshot_events,
        at = bad.snapshot_events,
        total = bad.total_events,
        replayed = replayed,
    ))
}

/// Open-world (streaming) smoke: a generated arrival plan on a generated
/// tree must (1) pass per-event checking end to end, (2) survive a
/// mid-stream fork — snapshot taken while the arrival schedule is still
/// partially consumed, suffix replayed cleanly to the same end — and
/// (3) have its `LeakQueuedTask` checker-validation fault caught as an
/// `arrival-conservation` violation. Returns a summary, or what broke.
pub fn arrival_smoke(seed: u64, tasks: u64) -> Result<String, String> {
    let spec = generate_case(seed, 0);
    let tree = spec.to_tree();
    // Scan for a deferring plan — backpressure is the richer leg (Drop
    // sheds the overrun instead of queueing it), and `LeakQueuedTask`
    // needs deferrals to corrupt. Three in four plans defer, so this
    // terminates almost immediately; it stays a pure function of `seed`.
    let arr_seed = (0u64..16)
        .map(|k| split_seed(seed ^ FUZZ_ARRIVAL_SALT, k))
        .find(|&s| fuzz_arrival_plan(s).policy == AdmissionPolicy::Defer)
        .ok_or("no deferring plan in 16 derived seeds")?;
    let plan = fuzz_arrival_plan(arr_seed);
    let cfg = variant_by_name("ic-fb2", tasks)
        .expect("known variant")
        .with_arrivals(plan)
        .with_elision(false);

    // Leg 1: the streamed run passes per-event checking.
    run_case(&tree, &cfg).map_err(|e| format!("faithful streamed run flagged: {e}"))?;

    // Leg 2: mid-stream fork. A small period lands the kept snapshot
    // inside the stream (pending arrivals and, under backpressure, a
    // non-empty admission queue), and the suffix must replay to the
    // same clean end in exactly the events it skipped to.
    let fork = run_case_snapshotting(&tree, &cfg, 32);
    fork.verdict
        .as_ref()
        .map_err(|e| format!("streamed fork-mode run flagged: {e}"))?;
    let snap = fork
        .snapshot
        .as_ref()
        .ok_or("streamed run ended before the first capture")?;
    let (verdict, replayed) = replay_suffix(snap);
    verdict.map_err(|e| format!("streamed suffix replay flagged: {e}"))?;
    if replayed != fork.total_events - fork.snapshot_events {
        return Err(format!(
            "streamed suffix replayed {replayed} events, expected {}",
            fork.total_events - fork.snapshot_events
        ));
    }

    // Leg 3: the checker must catch a leaked queued task immediately.
    let leaky = cfg.with_fault(FaultInjection::LeakQueuedTask { every: 1 });
    match with_quiet_panics(|| run_case(&tree, &leaky)) {
        Ok(()) => return Err("injected queued-task leak went undetected".into()),
        Err(m) if !m.contains("arrival-conservation") => {
            return Err(format!(
                "queued-task leak surfaced as the wrong violation: {m}"
            ));
        }
        Err(_) => {}
    }
    Ok(format!(
        "arrival smoke: streamed run checked per-event; suffix of {replayed} \
         event(s) (fork at event {at} of {total}) replayed exactly; injected \
         queued-task leak caught as arrival-conservation (arrival seed {arr_seed})",
        at = fork.snapshot_events,
        total = fork.total_events,
    ))
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Greedily minimizes a failing case: drop scheduled faults, remove
/// leaves (deepest first), and reduce weights to 1, keeping each
/// mutation only if the failure persists under the *same* base
/// configuration (each candidate re-derives its fault plan from its own
/// schedule). Terminates at a local minimum — every single fault drop,
/// leaf removal, or weight reduction makes the failure vanish.
pub fn shrink(spec: CaseSpec, cfg: &SimConfig) -> CaseSpec {
    let fails = |s: &CaseSpec| run_case(&s.to_tree(), &case_config(s, cfg)).is_err();
    debug_assert!(fails(&spec), "shrinking a passing case");
    let mut spec = spec;
    loop {
        let mut progressed = false;
        // Pass 0: drop scheduled faults, one at a time.
        let mut k = spec.faults.len();
        while k > 0 {
            k -= 1;
            let mut cand = spec.clone();
            cand.faults.remove(k);
            if fails(&cand) {
                spec = cand;
                progressed = true;
            }
        }
        // Pass 1: structural — drop leaves, last (deepest-id) first.
        let mut k = spec.nodes.len();
        while k > 0 {
            k -= 1;
            if k < spec.nodes.len() && spec.is_leaf(k) {
                let cand = spec.without_leaf(k);
                if fails(&cand) {
                    spec = cand;
                    progressed = true;
                }
            }
        }
        // Pass 2: weights toward 1.
        if spec.root_compute > 1 {
            let cand = CaseSpec {
                root_compute: 1,
                ..spec.clone()
            };
            if fails(&cand) {
                spec = cand;
                progressed = true;
            }
        }
        for k in 0..spec.nodes.len() {
            // Re-read the node before each attempt: the comm candidate may
            // have just been accepted, and building the compute candidate
            // from stale values would reinflate comm (and oscillate).
            for comm_first in [true, false] {
                let (p, c, w) = spec.nodes[k];
                let replacement = if comm_first { (p, 1, w) } else { (p, c, 1) };
                if replacement != spec.nodes[k] {
                    let mut cand = spec.clone();
                    cand.nodes[k] = replacement;
                    if fails(&cand) {
                        spec = cand;
                        progressed = true;
                    }
                }
            }
        }
        if !progressed {
            return spec;
        }
    }
}

// ---------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------

/// One minimized failure, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Fuzz case index.
    pub case: usize,
    /// Variant name (see [`variants`]).
    pub variant: &'static str,
    /// The violation or panic text of the *original* case.
    pub message: String,
    /// Node count before shrinking.
    pub original_nodes: usize,
    /// The shrunk spec.
    pub spec: CaseSpec,
    /// Task count the case ran with.
    pub tasks: u64,
    /// Injected fault, if any (self-test runs).
    pub fault: Option<FaultInjection>,
    /// Arrival-plan seed, when the failure came from an open-world leg
    /// (the full plan is [`fuzz_arrival_plan`] of this seed).
    pub arrival_seed: Option<u64>,
}

impl Failure {
    /// The copy-paste reproducer command.
    pub fn repro_command(&self) -> String {
        let mut cmd = format!(
            "cargo run --release -p bc-experiments --bin fuzz_protocols -- \
             --repro '{}' --variant {} --tasks {}",
            self.spec.encode(),
            self.variant,
            self.tasks
        );
        if let Some(s) = self.arrival_seed {
            cmd.push_str(&format!(" --arrivals {s}"));
        }
        if let Some(f) = self.fault {
            cmd.push_str(&format!(" --fault {}", fault_flag(f)));
        }
        cmd
    }
}

/// Fuzz `cases` generated trees, each under every protocol variant —
/// fault-free, then under a generated low-intensity fault plan for the
/// [`FAULT_PLAN_VARIANTS`] subset, then under a generated open-world
/// arrival plan for the [`ARRIVAL_VARIANTS`] subset — in parallel.
/// Failures are shrunk before being returned. `fault` injects a
/// deliberate bug into every run (self-test mode).
pub fn fuzz(
    seed: u64,
    cases: usize,
    tasks: u64,
    fault: Option<FaultInjection>,
) -> (u64, Vec<Failure>) {
    let per_case: Vec<(u64, Vec<Failure>)> = (0..cases)
        .into_par_iter()
        .map(|i| {
            let spec = generate_case(seed, i);
            let tree = spec.to_tree();
            let mut runs = 0u64;
            let mut failures = Vec::new();
            let mut check = |spec: &CaseSpec,
                             tree: &Tree,
                             name: &'static str,
                             base: SimConfig,
                             arrival_seed: Option<u64>| {
                let base = match fault {
                    Some(f) => base.with_fault(f),
                    None => base,
                };
                runs += 1;
                if let Err(message) = run_case(tree, &case_config(spec, &base)) {
                    failures.push(Failure {
                        case: i,
                        variant: name,
                        message,
                        original_nodes: spec.len(),
                        spec: shrink(spec.clone(), &base),
                        tasks,
                        fault,
                        arrival_seed,
                    });
                }
            };
            for (name, cfg) in variants(tasks) {
                check(&spec, &tree, name, cfg, None);
            }
            let faulted = CaseSpec {
                faults: generate_faults(seed, i, &spec),
                ..spec.clone()
            };
            for name in FAULT_PLAN_VARIANTS {
                let cfg = variant_by_name(name, tasks).expect("known fault-plan variant");
                check(&faulted, &tree, name, cfg, None);
            }
            // Open-world legs: the same tree fed by a streamed workload
            // (fault-free spec, so the admission-bound invariant stays
            // armed). The plan is a pure function of the arrival seed.
            let arr_seed = split_seed(seed ^ FUZZ_ARRIVAL_SALT, i as u64);
            for name in ARRIVAL_VARIANTS {
                let cfg = variant_by_name(name, tasks)
                    .expect("known arrival variant")
                    .with_arrivals(fuzz_arrival_plan(arr_seed));
                check(&spec, &tree, name, cfg, Some(arr_seed));
            }
            (runs, failures)
        })
        .collect();
    let mut runs = 0;
    let mut failures = Vec::new();
    for (r, f) in per_case {
        runs += r;
        failures.extend(f);
    }
    (runs, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_encoding() {
        for i in 0..24 {
            let spec = generate_case(7, i);
            let decoded = CaseSpec::decode(&spec.encode()).unwrap();
            assert_eq!(decoded, spec);
            spec.to_tree().validate().unwrap();
        }
    }

    #[test]
    fn decode_rejects_malformed_specs() {
        for bad in [
            "", "5", "0|0:1:1", "5|1:1:1", // parent does not precede node 1
            "5|0:0:1", // zero comm
            "5|0:1:x", // non-numeric
            "5|0:1",   // missing field
        ] {
            assert!(CaseSpec::decode(bad).is_err(), "accepted {bad:?}");
        }
        assert_eq!(CaseSpec::decode("5|").unwrap().len(), 1);
    }

    #[test]
    fn shapes_generate_their_structure() {
        // Deep chains are chains; wide fans are stars.
        let chain = generate_case(3, 1); // SHAPES[1] = DeepChain
        assert!(chain.nodes.iter().enumerate().all(|(k, &(p, _, _))| p == k));
        let fan = generate_case(3, 2); // SHAPES[2] = WideFan
        assert!(fan.nodes.iter().all(|&(p, _, _)| p == 0));
        assert!(fan.len() >= 9);
    }

    #[test]
    fn faulted_specs_roundtrip_through_encoding() {
        for i in 0..24 {
            let mut spec = generate_case(7, i);
            spec.faults = generate_faults(7, i, &spec);
            assert!(!spec.faults.is_empty());
            assert!(spec.encode().matches('|').count() == 2);
            let decoded = CaseSpec::decode(&spec.encode()).unwrap();
            assert_eq!(decoded, spec);
            let plan = decoded.to_fault_plan().unwrap();
            assert_eq!(plan.seed, FUZZ_FAULT_SEED);
            SimConfig::interruptible(3, 100)
                .with_fault_plan(plan)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn decode_rejects_malformed_fault_segments() {
        for bad in [
            "5|0:1:1|x:3:1",    // unknown kind
            "5|0:1:1|c:3:0",    // crash of the repository
            "5|0:1:1|c:3:2",    // node out of range
            "5|0:1:1|l:3:1",    // loss without batch count
            "5|0:1:1|o:hi:1:4", // non-numeric time
        ] {
            assert!(CaseSpec::decode(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn dropping_a_leaf_drops_and_renumbers_its_faults() {
        // Chain 0 -> 1 -> 2, faults on both non-root nodes.
        let spec = CaseSpec {
            root_compute: 5,
            nodes: vec![(0, 1, 1), (1, 1, 1)],
            faults: vec![
                FaultEvent {
                    at: 10,
                    node: NodeId(1),
                    kind: FaultKind::TransferAbort,
                },
                FaultEvent {
                    at: 20,
                    node: NodeId(2),
                    kind: FaultKind::Crash,
                },
            ],
        };
        let shrunk = spec.without_leaf(1); // removes node id 2
        assert_eq!(shrunk.nodes.len(), 1);
        assert_eq!(shrunk.faults.len(), 1);
        assert_eq!(shrunk.faults[0].node, NodeId(1));
        // Removing node 1 from a fan renumbers node 2's fault to node 1.
        let fan = CaseSpec {
            root_compute: 5,
            nodes: vec![(0, 1, 1), (0, 1, 1)],
            faults: vec![FaultEvent {
                at: 20,
                node: NodeId(2),
                kind: FaultKind::Crash,
            }],
        };
        let shrunk = fan.without_leaf(0);
        assert_eq!(shrunk.faults[0].node, NodeId(1));
    }

    #[test]
    fn faithful_variants_pass_a_fuzz_slice() {
        let (runs, failures) = fuzz(2003, 12, 120, None);
        assert_eq!(
            runs,
            12 * (variants(1).len() + FAULT_PLAN_VARIANTS.len() + ARRIVAL_VARIANTS.len()) as u64
        );
        assert!(
            failures.is_empty(),
            "faithful protocol flagged: {} ({})",
            failures[0].message,
            failures[0].repro_command()
        );
    }

    #[test]
    fn injected_fb_fault_is_caught_and_shrunk_small() {
        let failures = with_quiet_panics(|| {
            let (_, f) = fuzz(2003, 2, 120, Some(FaultInjection::FbOffByOne));
            f
        });
        assert!(!failures.is_empty(), "FB off-by-one went undetected");
        for f in &failures {
            assert!(
                f.spec.len() <= 5,
                "shrunk reproducer still has {} nodes",
                f.spec.len()
            );
            assert!(f.message.contains("buffer-bound"), "got: {}", f.message);
        }
    }

    #[test]
    fn swallowed_reissue_is_caught_under_fault_plans() {
        // SwallowReissue only bites when an environment fault loses a
        // task — the fault-plan legs provide the crashes and aborts.
        let failures = with_quiet_panics(|| {
            let (_, f) = fuzz(2003, 6, 150, Some(FaultInjection::SwallowReissue));
            f
        });
        assert!(!failures.is_empty(), "swallowed reissue went undetected");
        assert!(
            failures
                .iter()
                .any(|f| f.message.contains("task-conservation")),
            "got: {}",
            failures[0].message
        );
        // The reproducer round-trips its fault schedule.
        let with_faults = failures.iter().find(|f| !f.spec.faults.is_empty());
        if let Some(f) = with_faults {
            let spec = CaseSpec::decode(&f.spec.encode()).unwrap();
            assert_eq!(spec.faults, f.spec.faults);
            assert!(f.repro_command().contains("--fault swallow"));
            let cfg = variant_by_name(f.variant, f.tasks)
                .unwrap()
                .with_fault(FaultInjection::SwallowReissue);
            assert!(
                with_quiet_panics(|| run_case(&spec.to_tree(), &case_config(&spec, &cfg))).is_err()
            );
        }
    }

    #[test]
    fn injected_leak_fault_is_caught() {
        let failures = with_quiet_panics(|| {
            let (_, f) = fuzz(2003, 1, 200, Some(FaultInjection::LeakTask { every: 5 }));
            f
        });
        assert!(!failures.is_empty(), "task leak went undetected");
        assert!(
            failures[0].message.contains("task-conservation"),
            "got: {}",
            failures[0].message
        );
    }

    #[test]
    fn fork_smoke_validates_suffix_replay() {
        let msg = fork_smoke(2003, 120).expect("fork smoke must pass on a faithful engine");
        assert!(msg.contains("reproduced"), "{msg}");
    }

    #[test]
    fn arrival_smoke_validates_open_world_checking() {
        let msg = arrival_smoke(2003, 120).expect("arrival smoke must pass on a faithful engine");
        assert!(msg.contains("arrival-conservation"), "{msg}");
        assert!(msg.contains("replayed exactly"), "{msg}");
    }

    #[test]
    fn injected_queued_task_leak_is_caught_on_arrival_legs() {
        // `LeakQueuedTask` only bites where there is an admission queue
        // to corrupt — the closed-world legs never defer, so exactly the
        // open-world legs (with a deferring plan) must flag it.
        let failures = with_quiet_panics(|| {
            let (_, f) = fuzz(
                2003,
                4,
                120,
                Some(FaultInjection::LeakQueuedTask { every: 1 }),
            );
            f
        });
        assert!(!failures.is_empty(), "queued-task leak went undetected");
        let flagged = failures
            .iter()
            .find(|f| f.message.contains("arrival-conservation"))
            .expect("leak must surface as arrival-conservation");
        let arr_seed = flagged.arrival_seed.expect("an open-world leg caught it");
        assert!(
            flagged
                .repro_command()
                .contains(&format!("--arrivals {arr_seed}")),
            "{}",
            flagged.repro_command()
        );
        // The reproducer's ingredients rebuild a failing run.
        let cfg = variant_by_name(flagged.variant, flagged.tasks)
            .unwrap()
            .with_arrivals(fuzz_arrival_plan(arr_seed))
            .with_fault(FaultInjection::LeakQueuedTask { every: 1 });
        let spec = CaseSpec::decode(&flagged.spec.encode()).unwrap();
        assert!(with_quiet_panics(|| run_case(&spec.to_tree(), &cfg)).is_err());
    }

    #[test]
    fn suffix_replay_matches_the_full_verdict() {
        // A failing run's violation reproduces word-for-word from the
        // last snapshot; the suffix is shorter than the whole run. The
        // slow leak fails long after the first captures (FB off-by-one
        // would trip before any snapshot exists).
        let spec = generate_case(7, 3);
        let cfg = variant_by_name("ic-fb3", 150)
            .unwrap()
            .with_elision(false)
            .with_fault(FaultInjection::LeakTask { every: 30 });
        let fork = with_quiet_panics(|| run_case_snapshotting(&spec.to_tree(), &cfg, 32));
        let message = fork.verdict.expect_err("task leak must be caught");
        let snap = fork.snapshot.expect("snapshot before the violation");
        assert!(fork.snapshot_events < fork.total_events);
        let (verdict, replayed) = with_quiet_panics(|| replay_suffix(&snap));
        assert_eq!(verdict.expect_err("must reproduce"), message);
        assert!(replayed <= fork.total_events - fork.snapshot_events);
    }

    #[test]
    fn trace_tail_accompanies_the_verdict() {
        // A passing run: verdict Ok, tail bounded and ending at the final
        // completion.
        let spec = generate_case(2003, 0);
        let cfg = variant_by_name("ic-fb2", 60).unwrap();
        let (verdict, tail) = trace_tail(&spec.to_tree(), &cfg, 25);
        assert!(verdict.is_ok(), "{verdict:?}");
        assert_eq!(tail.len(), 25);
        assert!(matches!(
            tail.last().unwrap().event,
            bc_simcore::TraceEvent::ComputeFinish { .. }
        ));
        // A faulty run: verdict Err, and the tail still came back even
        // though the failure surfaced mid-run.
        let cfg = cfg.with_fault(FaultInjection::FbOffByOne);
        let (verdict, tail) = with_quiet_panics(|| trace_tail(&spec.to_tree(), &cfg, 25));
        assert!(verdict.is_err());
        assert!(!tail.is_empty());
    }

    #[test]
    fn repro_command_names_the_shrunk_spec() {
        let failures = with_quiet_panics(|| {
            let (_, f) = fuzz(5, 1, 100, Some(FaultInjection::FbOffByOne));
            f
        });
        let cmd = failures[0].repro_command();
        assert!(cmd.contains("--repro"), "{cmd}");
        assert!(cmd.contains("--fault fb"), "{cmd}");
        // The printed spec must itself decode and still fail.
        let spec = CaseSpec::decode(&failures[0].spec.encode()).unwrap();
        let cfg = variant_by_name(failures[0].variant, 100)
            .unwrap()
            .with_fault(FaultInjection::FbOffByOne);
        assert!(run_case(&spec.to_tree(), &cfg).is_err());
    }
}
