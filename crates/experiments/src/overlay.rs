//! Extension experiment (the paper's §6 future work): how much does the
//! choice of tree overlay matter?
//!
//! For random connected platform graphs we build three overlays — BFS
//! (minimize hops), minimum-communication spanning tree (Prim on `c`),
//! and a random spanning tree — and compare (a) the analytic optimal
//! rate of each overlay and (b) the rate the IC/FB=3 protocol actually
//! achieves on it.

use bc_engine::{SimConfig, Simulation};
use bc_metrics::ascii_table;
use bc_platform::{PlatformGraph, Tree};
use bc_simcore::split_seed;
use bc_steady::SteadyState;
use rayon::prelude::*;

/// Overlay strategies compared.
pub const STRATEGIES: [&str; 3] = ["bfs", "min-comm", "random"];

/// Configuration of the overlay experiment.
#[derive(Clone, Debug)]
pub struct OverlayConfig {
    /// Number of random platform graphs.
    pub graphs: usize,
    /// Vertices per graph.
    pub vertices: usize,
    /// Extra (non-spanning) edges per graph.
    pub extra_edges: usize,
    /// Link-cost range.
    pub comm_range: (u64, u64),
    /// Compute-time range.
    pub compute_range: (u64, u64),
    /// Tasks per simulated run.
    pub tasks: u64,
    /// Campaign seed.
    pub seed: u64,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            graphs: 50,
            vertices: 60,
            extra_edges: 90,
            comm_range: (1, 100),
            compute_range: (100, 10_000),
            tasks: 2_000,
            seed: 1,
        }
    }
}

/// Results for one strategy.
#[derive(Clone, Debug)]
pub struct StrategyResult {
    /// Strategy name.
    pub strategy: &'static str,
    /// Per-graph analytic optimal rate (as f64 for aggregation).
    pub optimal_rates: Vec<f64>,
    /// Per-graph simulated overall rate (tasks / end time).
    pub achieved_rates: Vec<f64>,
    /// How often this strategy's overlay had the (weakly) best analytic
    /// rate among the three.
    pub wins: usize,
}

/// Full experiment output.
#[derive(Clone, Debug)]
pub struct OverlayExperiment {
    /// One entry per strategy, [`STRATEGIES`] order.
    pub strategies: Vec<StrategyResult>,
}

fn build(strategy: &str, g: &PlatformGraph, seed: u64) -> Tree {
    match strategy {
        "bfs" => g.bfs_overlay(),
        "min-comm" => g.min_comm_overlay(),
        "random" => g.random_overlay(seed),
        other => unreachable!("unknown strategy {other}"),
    }
}

/// Runs the experiment.
pub fn run(cfg: &OverlayConfig) -> OverlayExperiment {
    let per_graph: Vec<Vec<(f64, f64)>> = (0..cfg.graphs)
        .into_par_iter()
        .map(|i| {
            let seed = split_seed(cfg.seed, i as u64);
            let g = PlatformGraph::random(
                cfg.vertices,
                cfg.extra_edges,
                cfg.comm_range,
                cfg.compute_range,
                seed,
            );
            STRATEGIES
                .iter()
                .map(|s| {
                    let tree = build(s, &g, seed ^ 0x5eed);
                    let optimal = SteadyState::analyze(&tree).optimal_rate().to_f64();
                    let result =
                        Simulation::new(tree, SimConfig::interruptible(3, cfg.tasks)).run();
                    (optimal, result.overall_rate())
                })
                .collect()
        })
        .collect();

    let strategies = STRATEGIES
        .iter()
        .enumerate()
        .map(|(si, s)| {
            let optimal_rates: Vec<f64> = per_graph.iter().map(|g| g[si].0).collect();
            let achieved_rates: Vec<f64> = per_graph.iter().map(|g| g[si].1).collect();
            let wins = per_graph
                .iter()
                .filter(|g| {
                    let best = g.iter().map(|&(o, _)| o).fold(f64::MIN, f64::max);
                    g[si].0 >= best - 1e-12
                })
                .count();
            StrategyResult {
                strategy: s,
                optimal_rates,
                achieved_rates,
                wins,
            }
        })
        .collect();
    OverlayExperiment { strategies }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Renders the comparison.
pub fn render(e: &OverlayExperiment) -> String {
    let mut out = String::new();
    out.push_str("Overlay construction (paper §6 future work) — IC, FB=3\n\n");
    let rows: Vec<Vec<String>> = e
        .strategies
        .iter()
        .map(|s| {
            vec![
                s.strategy.to_string(),
                format!("{:.4}", mean(&s.optimal_rates)),
                format!("{:.4}", mean(&s.achieved_rates)),
                format!("{}", s.wins),
            ]
        })
        .collect();
    out.push_str(&ascii_table(
        &[
            "strategy",
            "mean optimal rate",
            "mean achieved rate",
            "wins",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_comm_overlay_wins_most_graphs() {
        let cfg = OverlayConfig {
            graphs: 10,
            vertices: 30,
            extra_edges: 45,
            tasks: 400,
            ..OverlayConfig::default()
        };
        let e = run(&cfg);
        assert_eq!(e.strategies.len(), 3);
        let by_name = |n: &str| e.strategies.iter().find(|s| s.strategy == n).unwrap();
        let min_comm = by_name("min-comm");
        let random = by_name("random");
        // Bandwidth-centric intuition: cheaper links ⇒ weakly better
        // steady-state rates; min-comm should win at least as often as
        // the random overlay.
        assert!(
            min_comm.wins >= random.wins,
            "min-comm {} < random {}",
            min_comm.wins,
            random.wins
        );
        // Achieved rates never exceed optimal (modulo startup noise).
        for s in &e.strategies {
            for (&a, &o) in s.achieved_rates.iter().zip(&s.optimal_rates) {
                assert!(a <= o * 1.05, "{}: achieved {a} vs optimal {o}", s.strategy);
            }
        }
        let rendered = render(&e);
        assert!(rendered.contains("min-comm"));
    }
}
