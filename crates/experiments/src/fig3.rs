//! Figure 3: normalized throughput over the sliding growing window for
//! three illustrative trees — (a) the startup region, (b) the entire run.
//!
//! The paper picked three trees "to illustrate the difficulty in
//! determining the onset of steady-state behavior": one that overshoots
//! the optimal rate early before settling just below it, one that stays
//! well below optimal, and one that climbs steadily to optimal. We scan
//! the campaign for seeds with those signatures instead of hard-coding
//! seeds, so the figure survives generator changes.

use crate::campaign::CampaignConfig;
use bc_engine::{SimConfig, Simulation};
use bc_metrics::{ascii_table, detect_onset, normalized_curve, Chart};
use bc_steady::SteadyState;

/// One tree's curve and classification.
#[derive(Clone, Debug)]
pub struct TreeCurve {
    /// Campaign index the tree came from.
    pub index: usize,
    /// `(window, normalized rate)` points.
    pub curve: Vec<(u64, f64)>,
    /// Window of steady-state onset, if any.
    pub onset: Option<u64>,
    /// Classification label.
    pub label: &'static str,
}

/// Figure 3 output: up to three trees, one per signature.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// The selected trees.
    pub trees: Vec<TreeCurve>,
}

fn classify(curve: &[(u64, f64)], onset: Option<u64>, threshold: u64) -> &'static str {
    let early_overshoot = curve.iter().any(|&(w, v)| w <= threshold && v > 1.0 + 1e-9);
    match (onset, early_overshoot) {
        (Some(_), true) => "early overshoot, settles near optimal",
        (Some(_), false) => "steady climb to optimal",
        (None, _) => "below optimal throughout",
    }
}

/// Runs Fig 3: simulates campaign trees (IC, FB=1 — the variant with the
/// richest mix of behaviors) until one tree of each signature is found.
pub fn run(campaign: &CampaignConfig) -> Fig3 {
    let mut found: Vec<TreeCurve> = Vec::new();
    let mut have: [bool; 3] = [false; 3];
    for index in 0..campaign.trees {
        if have.iter().all(|&b| b) {
            break;
        }
        let tree = campaign.tree(index);
        let optimal = SteadyState::analyze(&tree).optimal_rate();
        let result = Simulation::new(tree, SimConfig::interruptible(1, campaign.tasks)).run();
        let onset = detect_onset(&result.completion_times, &optimal, campaign.onset);
        let curve = normalized_curve(&result.completion_times, &optimal);
        let label = classify(&curve, onset, campaign.onset.window_threshold);
        let slot = match label {
            "early overshoot, settles near optimal" => 0,
            "steady climb to optimal" => 1,
            _ => 2,
        };
        if !have[slot] {
            have[slot] = true;
            found.push(TreeCurve {
                index,
                curve,
                onset,
                label,
            });
        }
    }
    Fig3 { trees: found }
}

/// Renders both panels: startup (first `startup_windows`) and full run,
/// sampled to keep the table readable.
pub fn render(fig: &Fig3, startup_windows: u64) -> String {
    let mut out = String::new();
    out.push_str("Figure 3 — normalized window rates for three illustrative trees\n\n");
    for t in &fig.trees {
        out.push_str(&format!(
            "tree #{} — {} (onset: {})\n",
            t.index,
            t.label,
            t.onset
                .map_or("never".to_string(), |w| format!("window {w}")),
        ));
    }
    for (title, max_w, step) in [
        ("(a) startup", startup_windows, startup_windows / 20),
        (
            "(b) entire run",
            fig.trees
                .iter()
                .flat_map(|t| t.curve.last().map(|&(w, _)| w))
                .max()
                .unwrap_or(0),
            fig.trees
                .iter()
                .flat_map(|t| t.curve.last().map(|&(w, _)| w))
                .max()
                .unwrap_or(20)
                / 20,
        ),
    ] {
        out.push_str(&format!("\n{title}:\n"));
        let header: Vec<String> = std::iter::once("window".to_string())
            .chain(fig.trees.iter().map(|t| format!("tree#{}", t.index)))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let step = step.max(1);
        let rows: Vec<Vec<String>> = (1..=max_w)
            .filter(|w| w % step == 0)
            .map(|w| {
                let mut row = vec![w.to_string()];
                for t in &fig.trees {
                    let v = t.curve.iter().find(|&&(cw, _)| cw == w).map(|&(_, v)| v);
                    row.push(v.map_or("-".into(), |v| format!("{v:.3}")));
                }
                row
            })
            .collect();
        out.push_str(&ascii_table(&header_refs, &rows));
        let mut chart = Chart::new(64, 12).y_max(1.4);
        for t in &fig.trees {
            let pts: Vec<(f64, f64)> = t
                .curve
                .iter()
                .filter(|&&(w, _)| w <= max_w)
                .map(|&(w, v)| (w as f64, v))
                .collect();
            chart = chart.series(format!("tree#{}", t.index), &pts);
        }
        out.push('\n');
        out.push_str(&chart.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_metrics::OnsetConfig;
    use bc_platform::RandomTreeConfig;

    #[test]
    fn finds_distinct_signatures() {
        let campaign = CampaignConfig {
            trees: 40,
            tasks: 1000,
            seed: 11,
            tree_config: RandomTreeConfig {
                min_nodes: 5,
                max_nodes: 80,
                comm_min: 1,
                comm_max: 40,
                compute_scale: 1000,
            },
            onset: OnsetConfig {
                window_threshold: 100,
                crossings: 2,
            },
        };
        let fig = run(&campaign);
        assert!(!fig.trees.is_empty());
        // All curves are normalized: values positive, mostly ≤ ~2.
        for t in &fig.trees {
            assert!(!t.curve.is_empty());
            assert!(t.curve.iter().all(|&(_, v)| v > 0.0));
        }
        // Labels are distinct by construction.
        let labels: std::collections::HashSet<_> = fig.trees.iter().map(|t| t.label).collect();
        assert_eq!(labels.len(), fig.trees.len());
        let rendered = render(&fig, 200);
        assert!(rendered.contains("startup"));
        assert!(rendered.contains("entire run"));
    }
}
