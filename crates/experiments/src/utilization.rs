//! Extension experiment: per-node rate validation.
//!
//! Theorem 1 doesn't just give the tree's aggregate rate — the top-down
//! allocation in `bc-steady` predicts each node's individual steady
//! compute rate. This experiment checks the autonomous protocol realizes
//! that *distribution*, not merely the total: on each platform we compare
//! every node's simulated task rate against its theoretical allocation
//! and report the mean absolute deviation (startup and wind-down are
//! amortized by running long).

use bc_engine::{SimConfig, Simulation};
use bc_metrics::ascii_table;
use bc_platform::{RandomTreeConfig, Tree};
use bc_steady::SteadyState;
use rayon::prelude::*;

/// Configuration of the utilization experiment.
#[derive(Clone, Debug)]
pub struct UtilizationConfig {
    /// Number of random platforms.
    pub trees: usize,
    /// Tasks per run (longer runs amortize startup better).
    pub tasks: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Random tree parameters.
    pub tree_config: RandomTreeConfig,
}

impl Default for UtilizationConfig {
    fn default() -> Self {
        UtilizationConfig {
            trees: 40,
            tasks: 8_000,
            seed: 2003,
            tree_config: RandomTreeConfig {
                min_nodes: 10,
                max_nodes: 120,
                comm_min: 1,
                comm_max: 50,
                compute_scale: 2_000,
            },
        }
    }
}

/// One platform's comparison.
#[derive(Clone, Debug)]
pub struct TreeUtilization {
    /// Campaign index.
    pub index: usize,
    /// Node count.
    pub nodes: usize,
    /// Mean absolute deviation between simulated and theoretical
    /// per-node rates, normalized by the tree's optimal rate.
    pub mean_abs_deviation: f64,
    /// Worst single-node deviation (same normalization).
    pub max_abs_deviation: f64,
    /// Fraction of nodes whose used/starved status matches theory.
    pub used_agreement: f64,
}

/// Experiment output.
#[derive(Clone, Debug)]
pub struct Utilization {
    /// Per-platform comparisons.
    pub per_tree: Vec<TreeUtilization>,
}

fn compare(index: usize, tree: &Tree, tasks: u64) -> TreeUtilization {
    let analysis = SteadyState::analyze(tree);
    let run = Simulation::new(tree.clone(), SimConfig::interruptible(3, tasks)).run();
    let total = analysis.optimal_rate().to_f64();
    let mut sum_dev = 0.0;
    let mut max_dev: f64 = 0.0;
    let mut agree = 0usize;
    for id in tree.ids() {
        let theory = analysis.node_rate(id).to_f64();
        let measured = run.node_rate(id.index());
        let dev = (theory - measured).abs() / total;
        sum_dev += dev;
        max_dev = max_dev.max(dev);
        // "Used" agreement: theory predicts a starved node computes
        // nothing in steady state; simulation may give it a couple of
        // startup tasks, so threshold at 1% of the tree rate.
        let theory_used = theory > 1e-12;
        let sim_used = measured > 0.01 * total;
        if theory_used == sim_used {
            agree += 1;
        }
    }
    TreeUtilization {
        index,
        nodes: tree.len(),
        mean_abs_deviation: sum_dev / tree.len() as f64,
        max_abs_deviation: max_dev,
        used_agreement: agree as f64 / tree.len() as f64,
    }
}

/// Runs the experiment.
pub fn run(cfg: &UtilizationConfig) -> Utilization {
    let per_tree = (0..cfg.trees)
        .into_par_iter()
        .map(|i| {
            let tree = crate::campaign::campaign_tree(&cfg.tree_config, cfg.seed, i);
            compare(i, &tree, cfg.tasks)
        })
        .collect();
    Utilization { per_tree }
}

/// Renders summary statistics.
pub fn render(u: &Utilization) -> String {
    let mut out = String::new();
    out.push_str("Per-node rate validation — simulated IC/FB=3 vs Theorem 1 allocation\n\n");
    let n = u.per_tree.len().max(1) as f64;
    let mean_mad = u.per_tree.iter().map(|t| t.mean_abs_deviation).sum::<f64>() / n;
    let worst = u
        .per_tree
        .iter()
        .map(|t| t.max_abs_deviation)
        .fold(0.0f64, f64::max);
    let mean_agree = u.per_tree.iter().map(|t| t.used_agreement).sum::<f64>() / n;
    let rows = vec![
        vec![
            "mean |sim − theory| per node (fraction of tree rate)".to_string(),
            format!("{:.4}", mean_mad),
        ],
        vec![
            "worst single-node deviation".to_string(),
            format!("{:.4}", worst),
        ],
        vec![
            "used/starved agreement with theory".to_string(),
            format!("{:.1}%", 100.0 * mean_agree),
        ],
    ];
    out.push_str(&ascii_table(&["metric", "value"], &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_realizes_the_theoretical_allocation() {
        let cfg = UtilizationConfig {
            trees: 8,
            tasks: 4_000,
            ..UtilizationConfig::default()
        };
        let u = run(&cfg);
        assert_eq!(u.per_tree.len(), 8);
        for t in &u.per_tree {
            assert!(
                t.mean_abs_deviation < 0.05,
                "tree {}: mean deviation {:.4}",
                t.index,
                t.mean_abs_deviation
            );
            // The theoretical allocation is one optimum among possibly
            // many (the split is non-unique when inflow-bound), so the
            // per-tree used/starved agreement is high but not perfect —
            // a tree whose optimum is highly non-unique can realize the
            // exact rate distribution (tiny deviation above) through a
            // different node subset, so the per-tree floor only requires
            // majority agreement; the mean below stays strict.
            assert!(
                t.used_agreement > 0.5,
                "tree {}: used-node agreement only {:.2}",
                t.index,
                t.used_agreement
            );
        }
        let mean_agree =
            u.per_tree.iter().map(|t| t.used_agreement).sum::<f64>() / u.per_tree.len() as f64;
        assert!(mean_agree > 0.85, "mean agreement {mean_agree:.2}");
        let rendered = render(&u);
        assert!(rendered.contains("agreement"));
    }

    #[test]
    fn hand_built_fork_allocation_matches() {
        // Fork where theory says: fast child fully busy, slow child gets
        // the ε remainder. Check each node's simulated rate individually.
        let mut tree = Tree::new(5);
        let fast = tree.add_child(bc_platform::NodeId::ROOT, 1, 2); // rate 1/2
        let slow = tree.add_child(bc_platform::NodeId::ROOT, 3, 2); // ε/c = (1/2)/3
        let analysis = SteadyState::analyze(&tree);
        let run = Simulation::new(tree, SimConfig::interruptible(3, 6_000)).run();
        for (id, tol) in [(fast, 0.02), (slow, 0.02)] {
            let theory = analysis.node_rate(id).to_f64();
            let measured = run.node_rate(id.index());
            assert!(
                (theory - measured).abs() < tol,
                "{id}: theory {theory} vs measured {measured}"
            );
        }
    }
}
