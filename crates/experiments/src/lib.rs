//! # bc-experiments — the reproduction harness
//!
//! One module (and one binary) per table/figure of the paper, plus the
//! §6 overlay extension. See DESIGN.md's experiment index for the
//! mapping and EXPERIMENTS.md for paper-vs-measured results.
//!
//! Binaries accept `--trees N --tasks N --seed N --full --out DIR`;
//! defaults are laptop-sized, `--full` is paper scale.

pub mod campaign;
pub mod cli;
pub mod elasticity;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fuzz;
pub mod goldens;
pub mod latency_load;
pub mod overlay;
pub mod resilience;
pub mod startup;
pub mod table1;
pub mod table2;
pub mod utilization;
