//! Extension experiment: resilience under an unreliable network.
//!
//! §6 of the paper defers fault tolerance to future work; this campaign
//! measures it. Each random platform is run under seeded fault
//! schedules of increasing intensity — request loss, mid-flight
//! transfer aborts, link outages, duplicate deliveries, and abrupt
//! subtree crashes — with the invariant checker on. We report, per
//! intensity tier, the fraction of runs that recover to the *post-fault*
//! platform's Theorem 1 optimal rate, the distribution of recovery
//! times, and the degraded-window fraction, and we demand exact task
//! conservation (lost == reissued) and checker silence in every run.

use bc_engine::{FaultEvent, FaultKind, FaultPlan, RecoveryTuning, SimConfig, Simulation};
use bc_metrics::{ascii_table, degraded_fraction, time_to_rate};
use bc_platform::{NodeId, RandomTreeConfig, Tree};
use bc_simcore::split_seed;
use bc_steady::SteadyState;
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fault intensity tiers, ordered mildest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Intensity {
    /// One lost request batch, one transfer abort, one leaf crash.
    Low,
    /// Low plus a link outage, duplicate deliveries, and an internal
    /// (subtree) crash.
    Medium,
    /// Two crashes, two outages, two request losses, an abort, and
    /// duplicates.
    High,
}

impl Intensity {
    /// Every tier, mildest first.
    pub const ALL: [Intensity; 3] = [Intensity::Low, Intensity::Medium, Intensity::High];

    /// Human-readable tier name.
    pub fn label(self) -> &'static str {
        match self {
            Intensity::Low => "low",
            Intensity::Medium => "medium",
            Intensity::High => "high",
        }
    }
}

/// Protocol variants the campaign runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Interruptible, 3 fixed buffers (the paper's recommended setting).
    IcFb3,
    /// Non-interruptible, 2 fixed buffers (Fig 7's setting).
    NonIcFb2,
}

impl Variant {
    /// Every variant.
    pub const ALL: [Variant; 2] = [Variant::IcFb3, Variant::NonIcFb2];

    /// Human-readable variant name.
    pub fn label(self) -> &'static str {
        match self {
            Variant::IcFb3 => "ic-fb3",
            Variant::NonIcFb2 => "nonic-fb2",
        }
    }

    fn config(self, tasks: u64) -> SimConfig {
        match self {
            Variant::IcFb3 => SimConfig::interruptible(3, tasks),
            Variant::NonIcFb2 => SimConfig::non_interruptible_fixed(2, tasks),
        }
    }
}

/// Configuration of the resilience campaign.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Number of random platforms.
    pub trees: usize,
    /// Tasks per run.
    pub tasks: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Platform generator.
    pub tree_config: RandomTreeConfig,
    /// Consecutive completions a recovery window must hold the
    /// post-fault optimal rate over.
    pub window: usize,
    /// Completions per degraded-fraction chunk.
    pub chunk: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            trees: 48,
            tasks: 2_000,
            seed: 2003,
            tree_config: RandomTreeConfig {
                min_nodes: 6,
                max_nodes: 20,
                comm_min: 1,
                comm_max: 12,
                compute_scale: 150,
            },
            window: 24,
            chunk: 32,
        }
    }
}

/// Outcome of one faulted run.
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome {
    /// Variant the run used.
    pub variant: Variant,
    /// Fault intensity tier.
    pub tier: Intensity,
    /// The run sustained the post-fault optimal rate after the last
    /// scheduled fault.
    pub recovered: bool,
    /// Timesteps from the last scheduled fault to the end of the first
    /// sustained-optimal window (when recovered).
    pub recovery_time: Option<u64>,
    /// Fraction of fixed-size completion chunks below the post-fault
    /// optimal rate.
    pub degraded: f64,
    /// The invariant checker tripped (must never happen).
    pub violation: bool,
    /// Every task is accounted for: all completed, lost == reissued.
    pub conserved: bool,
}

/// Campaign output.
#[derive(Clone, Debug)]
pub struct Resilience {
    /// One outcome per (tree, variant, tier), tree-major.
    pub runs: Vec<RunOutcome>,
}

fn under(tree: &Tree, mut n: NodeId, anc: NodeId) -> bool {
    loop {
        if n == anc {
            return true;
        }
        match tree.parent(n) {
            Some(p) => n = p,
            None => return false,
        }
    }
}

fn pick(nodes: &[NodeId], salt: u64) -> Option<NodeId> {
    if nodes.is_empty() {
        None
    } else {
        Some(nodes[(salt % nodes.len() as u64) as usize])
    }
}

/// Builds the seeded fault schedule for one (tree, tier) pair. Fault
/// times sit at fixed fractions of the fault-free makespan lower bound
/// `tasks / optimal_rate`, so every fault lands mid-run; targets are
/// drawn deterministically from the campaign seed.
pub fn fault_plan_for(
    tree: &Tree,
    tasks: u64,
    seed: u64,
    index: usize,
    tier: Intensity,
) -> FaultPlan {
    let opt = SteadyState::analyze(tree).optimal_rate().to_f64();
    let est = ((tasks as f64 / opt).ceil() as u64).max(200);
    let at = |frac_pct: u64| (est * frac_pct / 100).max(1);
    let salt = split_seed(seed, index as u64);

    let non_root: Vec<NodeId> = tree.ids().skip(1).collect();
    let leaves: Vec<NodeId> = tree.ids().skip(1).filter(|&n| tree.is_leaf(n)).collect();
    let internals: Vec<NodeId> = tree.ids().skip(1).filter(|&n| !tree.is_leaf(n)).collect();

    // Crash victims: an internal node (subtree crash, medium and up) and
    // a leaf outside that subtree, so neither crash shadows the other.
    let internal_victim = pick(&internals, split_seed(salt, 1));
    let free_leaves: Vec<NodeId> = leaves
        .iter()
        .copied()
        .filter(|&l| internal_victim.is_none_or(|v| !under(tree, l, v)))
        .collect();
    let leaf_victim = pick(&free_leaves, split_seed(salt, 2)).or_else(|| pick(&leaves, salt));

    let target = |k: u64| pick(&non_root, split_seed(salt, 10 + k)).expect("non-root node");
    let outage = est.clamp(160, 6_400) / 16;

    let mut faults = vec![
        FaultEvent {
            at: at(15),
            node: target(0),
            kind: FaultKind::RequestLoss { batches: 2 },
        },
        FaultEvent {
            at: at(30),
            node: target(1),
            kind: FaultKind::TransferAbort,
        },
    ];
    if let Some(leaf) = leaf_victim {
        faults.push(FaultEvent {
            at: at(50),
            node: leaf,
            kind: FaultKind::Crash,
        });
    }
    if tier != Intensity::Low {
        faults.push(FaultEvent {
            at: at(25),
            node: target(2),
            kind: FaultKind::LinkOutage { duration: outage },
        });
        faults.push(FaultEvent {
            at: at(40),
            node: target(3),
            kind: FaultKind::DuplicateDelivery { copies: 2 },
        });
        if let Some(v) = internal_victim {
            faults.push(FaultEvent {
                at: at(55),
                node: v,
                kind: FaultKind::Crash,
            });
        }
    }
    if tier == Intensity::High {
        faults.push(FaultEvent {
            at: at(20),
            node: target(4),
            kind: FaultKind::RequestLoss { batches: 3 },
        });
        faults.push(FaultEvent {
            at: at(35),
            node: target(5),
            kind: FaultKind::LinkOutage {
                duration: outage * 2,
            },
        });
        faults.push(FaultEvent {
            at: at(60),
            node: target(6),
            kind: FaultKind::TransferAbort,
        });
    }
    FaultPlan {
        seed: split_seed(salt, 3),
        faults,
        recovery: RecoveryTuning::default(),
    }
}

/// The platform left standing after the plan's crashes: every crashed
/// subtree removed, remaining nodes re-numbered in preorder. Matches the
/// engine's own surviving-tree reconstruction.
fn surviving(tree: &Tree, plan: &FaultPlan) -> Tree {
    let crashed: Vec<NodeId> = plan
        .faults
        .iter()
        .filter(|f| f.kind == FaultKind::Crash)
        .map(|f| f.node)
        .collect();
    let mut surv = Tree::new(tree.compute_time(NodeId::ROOT));
    let mut stack: Vec<(NodeId, NodeId)> = tree
        .children(NodeId::ROOT)
        .iter()
        .rev()
        .map(|&c| (c, NodeId::ROOT))
        .collect();
    while let Some((id, mapped_parent)) = stack.pop() {
        if crashed.contains(&id) {
            continue;
        }
        let mapped = surv.add_child(mapped_parent, tree.comm_time(id), tree.compute_time(id));
        for &c in tree.children(id).iter().rev() {
            stack.push((c, mapped));
        }
    }
    surv
}

fn run_one(cfg: &ResilienceConfig, index: usize, variant: Variant, tier: Intensity) -> RunOutcome {
    let tree = crate::campaign::campaign_tree(&cfg.tree_config, cfg.seed, index);
    let plan = fault_plan_for(&tree, cfg.tasks, cfg.seed, index, tier);
    let last_fault = plan.faults.iter().map(|f| f.at).max().unwrap_or(0);
    let rate_post = SteadyState::analyze(&surviving(&tree, &plan)).optimal_rate();

    let sim_cfg = variant
        .config(cfg.tasks)
        .with_checked(true)
        .with_fault_plan(plan);
    let run = catch_unwind(AssertUnwindSafe(|| Simulation::new(tree, sim_cfg).run()));
    let Ok(run) = run else {
        return RunOutcome {
            variant,
            tier,
            recovered: false,
            recovery_time: None,
            degraded: 1.0,
            violation: true,
            conserved: false,
        };
    };
    let recovery_time = time_to_rate(&run.completion_times, last_fault, &rate_post, cfg.window);
    RunOutcome {
        variant,
        tier,
        recovered: recovery_time.is_some(),
        recovery_time,
        degraded: degraded_fraction(&run.completion_times, cfg.chunk, &rate_post),
        violation: false,
        conserved: run.completion_times.len() as u64 == cfg.tasks
            && run.faults.tasks_lost == run.faults.tasks_reissued,
    }
}

/// Runs the campaign: every tree × variant × tier, checker on.
pub fn run(cfg: &ResilienceConfig) -> Resilience {
    let grid: Vec<(usize, Variant, Intensity)> = (0..cfg.trees)
        .flat_map(|i| {
            Variant::ALL
                .into_iter()
                .flat_map(move |v| Intensity::ALL.into_iter().map(move |t| (i, v, t)))
        })
        .collect();
    let runs = grid
        .into_par_iter()
        .map(|(i, v, t)| run_one(cfg, i, v, t))
        .collect();
    Resilience { runs }
}

/// Per-(variant, tier) aggregates.
#[derive(Clone, Copy, Debug)]
pub struct TierSummary {
    /// Variant the row covers.
    pub variant: Variant,
    /// Tier the row covers.
    pub tier: Intensity,
    /// Runs in this cell.
    pub runs: usize,
    /// Fraction that recovered to the post-fault optimal rate.
    pub recovered: f64,
    /// Median recovery time over recovered runs.
    pub p50: u64,
    /// 90th-percentile recovery time over recovered runs.
    pub p90: u64,
    /// Worst recovery time over recovered runs.
    pub max: u64,
    /// Mean degraded-chunk fraction.
    pub degraded: f64,
    /// Invariant violations (must be 0).
    pub violations: usize,
    /// Runs that failed exact conservation (must be 0).
    pub unconserved: usize,
}

/// Aggregates the campaign per (variant, tier).
pub fn summarize(r: &Resilience) -> Vec<TierSummary> {
    Variant::ALL
        .into_iter()
        .flat_map(|variant| {
            Intensity::ALL.into_iter().map(move |tier| {
                let cell: Vec<&RunOutcome> = r
                    .runs
                    .iter()
                    .filter(|o| o.variant == variant && o.tier == tier)
                    .collect();
                let mut times: Vec<u64> = cell.iter().filter_map(|o| o.recovery_time).collect();
                times.sort_unstable();
                let pct = |p: usize| {
                    if times.is_empty() {
                        0
                    } else {
                        times[(times.len() - 1) * p / 100]
                    }
                };
                let n = cell.len().max(1);
                TierSummary {
                    variant,
                    tier,
                    runs: cell.len(),
                    recovered: cell.iter().filter(|o| o.recovered).count() as f64 / n as f64,
                    p50: pct(50),
                    p90: pct(90),
                    max: times.last().copied().unwrap_or(0),
                    degraded: cell.iter().map(|o| o.degraded).sum::<f64>() / n as f64,
                    violations: cell.iter().filter(|o| o.violation).count(),
                    unconserved: cell.iter().filter(|o| !o.conserved).count(),
                }
            })
        })
        .collect()
}

/// Renders the per-tier recovery table.
pub fn render(r: &Resilience) -> String {
    let mut out = String::new();
    out.push_str(
        "Resilience — recovery to the post-fault Theorem 1 optimum under seeded faults\n\n",
    );
    let rows: Vec<Vec<String>> = summarize(r)
        .into_iter()
        .map(|s| {
            vec![
                s.variant.label().to_string(),
                s.tier.label().to_string(),
                s.runs.to_string(),
                format!("{:.3}", s.recovered),
                s.p50.to_string(),
                s.p90.to_string(),
                s.max.to_string(),
                format!("{:.3}", s.degraded),
                s.violations.to_string(),
                s.unconserved.to_string(),
            ]
        })
        .collect();
    out.push_str(&ascii_table(
        &[
            "variant",
            "tier",
            "runs",
            "recovered",
            "t50",
            "t90",
            "tmax",
            "degraded",
            "violations",
            "unconserved",
        ],
        &rows,
    ));
    out
}

/// Per-run CSV artifact.
pub fn to_csv(r: &Resilience) -> String {
    let mut out =
        String::from("variant,tier,recovered,recovery_time,degraded,violation,conserved\n");
    for o in &r.runs {
        out.push_str(&format!(
            "{},{},{},{},{:.4},{},{}\n",
            o.variant.label(),
            o.tier.label(),
            o.recovered,
            o.recovery_time.map_or(-1i64, |t| t as i64),
            o.degraded,
            o.violation,
            o.conserved,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_conserves_and_recovers() {
        let cfg = ResilienceConfig {
            trees: 8,
            tasks: 800,
            ..ResilienceConfig::default()
        };
        let r = run(&cfg);
        assert_eq!(r.runs.len(), 8 * Variant::ALL.len() * Intensity::ALL.len());
        for o in &r.runs {
            assert!(!o.violation, "invariant violation under {:?}", o.tier);
            assert!(o.conserved, "conservation broken under {:?}", o.tier);
        }
        let summary = summarize(&r);
        let low_ic = summary
            .iter()
            .find(|s| s.variant == Variant::IcFb3 && s.tier == Intensity::Low)
            .unwrap();
        assert!(
            low_ic.recovered >= 0.75,
            "low-intensity IC recovery {:.2} too rare",
            low_ic.recovered
        );
        let rendered = render(&r);
        assert!(rendered.contains("ic-fb3") && rendered.contains("high"));
        assert!(to_csv(&r).lines().count() == r.runs.len() + 1);
    }

    #[test]
    fn fault_plans_are_deterministic_and_valid() {
        let cfg = ResilienceConfig::default();
        for i in 0..4 {
            let tree = crate::campaign::campaign_tree(&cfg.tree_config, cfg.seed, i);
            for tier in Intensity::ALL {
                let a = fault_plan_for(&tree, cfg.tasks, cfg.seed, i, tier);
                let b = fault_plan_for(&tree, cfg.tasks, cfg.seed, i, tier);
                assert_eq!(a.faults, b.faults);
                assert_eq!(a.seed, b.seed);
                SimConfig::interruptible(3, cfg.tasks)
                    .with_fault_plan(a)
                    .validate()
                    .expect("generated plan validates");
            }
        }
    }

    #[test]
    fn surviving_tree_drops_crashed_subtrees() {
        let mut tree = Tree::new(10);
        let a = tree.add_child(NodeId::ROOT, 2, 5);
        let b = tree.add_child(a, 3, 7);
        let _c = tree.add_child(b, 1, 4);
        let _d = tree.add_child(NodeId::ROOT, 4, 9);
        let plan = FaultPlan {
            seed: 0,
            faults: vec![FaultEvent {
                at: 10,
                node: b,
                kind: FaultKind::Crash,
            }],
            recovery: RecoveryTuning::default(),
        };
        let surv = surviving(&tree, &plan);
        assert_eq!(surv.len(), 3); // root, a, d — b's subtree gone
        assert_eq!(surv.comm_time(NodeId(1)), 2);
        assert_eq!(surv.comm_time(NodeId(2)), 4);
    }
}
