//! Figure 5: impact of the computation-to-communication ratio.
//!
//! Four tree classes differing only in the computation scale
//! `x ∈ {500, 1 000, 5 000, 10 000}` (ratios x/10 000 through x/1), 1 000
//! trees per class at paper scale, 4 000 tasks. Two protocols: non-IC
//! IB=1 and IC FB=3. The paper's findings: IC/FB=3 performs well on all
//! classes; non-IC suffers greatly as the ratio rises; startup time grows
//! with the ratio for every protocol.

use crate::campaign::{run_campaign, CampaignConfig, TreeRun};
use bc_engine::SimConfig;
use bc_metrics::{ascii_table, onset_cdf, Chart};

/// The paper's four computation-scale classes.
pub const CLASSES: [u64; 4] = [500, 1_000, 5_000, 10_000];

/// Results for one (class, protocol) cell.
#[derive(Clone, Debug)]
pub struct ClassResult {
    /// The class's computation scale `x`.
    pub compute_scale: u64,
    /// Protocol label.
    pub protocol: String,
    /// Per-tree results.
    pub runs: Vec<TreeRun>,
}

impl ClassResult {
    /// Cumulative fraction reached by each probe (Fig 5's curves).
    pub fn cdf(&self, probes: &[u64]) -> Vec<(u64, f64)> {
        let onsets: Vec<Option<u64>> = self.runs.iter().map(|r| r.onset).collect();
        onset_cdf(&onsets, probes)
    }

    /// Final fraction reached.
    pub fn fraction_reached(&self) -> f64 {
        crate::campaign::fraction_reached(&self.runs)
    }
}

/// Figure 5 output.
#[derive(Clone, Debug)]
pub struct Fig5 {
    /// All (class, protocol) cells, classes outer.
    pub cells: Vec<ClassResult>,
    /// Probe grid.
    pub probes: Vec<u64>,
}

/// Runs Fig 5 over the campaign shape (tree count/tasks/seed taken from
/// `campaign`; the compute scale is overridden per class).
pub fn run(campaign: &CampaignConfig) -> Fig5 {
    let mut cells = Vec::new();
    for &x in &CLASSES {
        let mut class_campaign = campaign.clone();
        class_campaign.tree_config = campaign.tree_config.with_compute_scale(x);
        // Decorrelate tree draws across classes while keeping the run
        // reproducible.
        class_campaign.seed = campaign.seed.wrapping_add(x);
        for (protocol, cfg) in [
            (
                "non-IC, IB=1",
                SimConfig::non_interruptible(1, campaign.tasks),
            ),
            ("IC, FB=3", SimConfig::interruptible(3, campaign.tasks)),
        ] {
            cells.push(ClassResult {
                compute_scale: x,
                protocol: protocol.to_string(),
                runs: run_campaign(&class_campaign, |_| cfg.clone()),
            });
        }
    }
    let max_x = campaign.tasks / 2;
    let probes: Vec<u64> = (1..=40).map(|k| k * max_x / 40).collect();
    Fig5 { cells, probes }
}

/// Renders the summary and curves.
pub fn render(fig: &Fig5) -> String {
    let mut out = String::new();
    out.push_str("Figure 5 — impact of computation-to-communication ratio\n\n");
    let rows: Vec<Vec<String>> = fig
        .cells
        .iter()
        .map(|c| {
            vec![
                format!("x={}", c.compute_scale),
                c.protocol.clone(),
                format!("{:.1}%", 100.0 * c.fraction_reached()),
            ]
        })
        .collect();
    out.push_str(&ascii_table(
        &["class", "protocol", "reached optimal"],
        &rows,
    ));
    out.push_str("\nCumulative % of trees reaching optimal vs tasks completed:\n");
    let header: Vec<String> = std::iter::once("x".to_string())
        .chain(
            fig.cells
                .iter()
                .map(|c| format!("{} x={}", c.protocol, c.compute_scale)),
        )
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let curves: Vec<Vec<(u64, f64)>> = fig.cells.iter().map(|c| c.cdf(&fig.probes)).collect();
    let rows: Vec<Vec<String>> = fig
        .probes
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let mut row = vec![x.to_string()];
            row.extend(curves.iter().map(|c| format!("{:.1}%", 100.0 * c[i].1)));
            row
        })
        .collect();
    out.push_str(&ascii_table(&header_refs, &rows));
    out.push_str("\nshape:\n");
    let mut chart = Chart::new(64, 14).y_max(1.0);
    for (c, curve) in fig.cells.iter().zip(&curves) {
        let pts: Vec<(f64, f64)> = curve.iter().map(|&(x, y)| (x as f64, y)).collect();
        chart = chart.series(format!("{} x={}", c.protocol, c.compute_scale), &pts);
    }
    out.push_str(&chart.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_metrics::OnsetConfig;
    use bc_platform::RandomTreeConfig;

    #[test]
    fn ic_dominates_every_class() {
        let campaign = CampaignConfig {
            trees: 10,
            tasks: 1500,
            seed: 3,
            tree_config: RandomTreeConfig {
                min_nodes: 5,
                max_nodes: 60,
                comm_min: 1,
                comm_max: 50,
                compute_scale: 0, // overridden per class
            },
            onset: OnsetConfig {
                window_threshold: 200,
                crossings: 2,
            },
        };
        let fig = run(&campaign);
        assert_eq!(fig.cells.len(), 8);
        for pair in fig.cells.chunks(2) {
            let nonic = &pair[0];
            let ic = &pair[1];
            assert_eq!(nonic.compute_scale, ic.compute_scale);
            assert!(
                ic.fraction_reached() >= nonic.fraction_reached() - 1e-9,
                "x={}: IC {} < non-IC {}",
                ic.compute_scale,
                ic.fraction_reached(),
                nonic.fraction_reached()
            );
        }
        let rendered = render(&fig);
        assert!(rendered.contains("x=10000"));
    }
}
