//! Decoder fuzz corpus: `SimSnapshot::from_bytes` is *total* — every
//! byte string, however hostile, maps to `Ok` or a typed
//! [`SnapshotError`]. No panic, no unwinding, no unbounded allocation.
//!
//! Three adversaries, all seeded and deterministic:
//!  1. pure noise (random bytes, with and without a valid header),
//!  2. truncation (every prefix of real snapshots),
//!  3. mutation (bit-flips and random splices of real snapshots).
//!
//! Plus a regression pin for the one latent decode→restore panic this
//! corpus flushed out: bytes whose *config* carries an arrival plan but
//! whose *cursor* layer does not (or vice versa) used to decode `Ok` and
//! then panic inside `from_snapshot_traced`; they are now rejected as
//! `Corrupt` at decode time.

use bc_engine::{
    AdmissionPolicy, ArrivalPlan, ArrivalProcess, FaultEvent, FaultKind, FaultPlan, SimConfig,
    SimSnapshot, Simulation, SnapshotError, TaskClass,
};
use bc_platform::{NodeId, RandomTreeConfig};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Decode arbitrary bytes; if the decoder accepts them, the canonical
/// form must re-encode without panicking (we don't demand restore
/// safety for semantically impossible states, only decode totality).
fn probe(bytes: &[u8]) -> Result<(), SnapshotError> {
    SimSnapshot::from_bytes(bytes).map(|snap| {
        let _ = snap.to_bytes();
    })
}

/// A small corpus of genuine snapshots covering the format's layers:
/// plain runs, fault plans mid-flight, and open-world arrivals (the
/// arrival-cursor tail), captured at several event depths.
fn corpus() -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for seed in [3u64, 41] {
        let gen = RandomTreeConfig {
            min_nodes: 2,
            max_nodes: 12,
            comm_min: 1,
            comm_max: 8,
            compute_scale: 30,
        };
        let tree = gen.generate(seed);
        let plain = SimConfig::interruptible(2, 40).with_checked(false);
        let faulty = SimConfig::non_interruptible(1, 40)
            .with_checked(false)
            .with_fault_plan(FaultPlan {
                seed: 7,
                faults: vec![FaultEvent {
                    at: 25,
                    node: NodeId(((tree.len() - 1).max(1)) as u32),
                    kind: FaultKind::Crash,
                }],
                recovery: Default::default(),
            });
        let open = SimConfig::interruptible(3, 30)
            .with_checked(false)
            .with_arrivals(ArrivalPlan {
                seed: 11,
                classes: vec![TaskClass {
                    name: "bg".into(),
                    work_units: 1,
                    process: ArrivalProcess::Poisson {
                        mean_gap: 4,
                        count: 20,
                    },
                }],
                queue_cap: 3,
                policy: AdmissionPolicy::Defer,
            });
        for cfg in [plain, faulty, open] {
            for k in [0u64, 17, 90] {
                let mut sim = Simulation::new(tree.clone(), cfg.clone());
                let mut stepped = 0;
                while stepped < k && sim.step() {
                    stepped += 1;
                }
                out.push(sim.snapshot().to_bytes());
            }
        }
    }
    out
}

#[test]
fn random_noise_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0xF022);
    for _ in 0..4000 {
        let len = rng.random_range(0..512usize);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.random::<u32>() as u8).collect();
        let _ = probe(&bytes);
        // Again with a valid header so the fuzz reaches the tree/config/
        // workspace decoders instead of dying on the magic check.
        if bytes.len() >= 5 {
            bytes[..4].copy_from_slice(b"BCSS");
            bytes[4] = 2;
        }
        let _ = probe(&bytes);
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    for bytes in corpus() {
        for cut in 0..bytes.len() {
            assert!(
                probe(&bytes[..cut]).is_err(),
                "prefix of length {cut}/{} decoded as a full snapshot",
                bytes.len()
            );
        }
    }
}

#[test]
fn bit_flips_never_panic() {
    for bytes in corpus() {
        for i in 0..bytes.len() {
            for bit in [0u8, 3, 7] {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                // A flip in a free integer field can still decode; the
                // contract under attack is totality, not rejection.
                let _ = probe(&bad);
            }
        }
    }
}

#[test]
fn random_splices_never_panic() {
    let corpus = corpus();
    let mut rng = SmallRng::seed_from_u64(0x5CAB);
    for bytes in &corpus {
        for _ in 0..300 {
            let mut bad = bytes.clone();
            let at = rng.random_range(0..bad.len());
            let span = rng.random_range(1..32usize).min(bad.len() - at);
            for b in &mut bad[at..at + span] {
                *b = rng.random::<u32>() as u8;
            }
            let _ = probe(&bad);
            // Also splice-and-truncate: torn tail plus garbage body.
            let keep = rng.random_range(0..bad.len());
            bad.truncate(keep);
            let _ = probe(&bad);
        }
    }
}

/// Regression: an arrival *plan* in the config without arrival *cursor*
/// state is structurally inconsistent — restoring such a snapshot used
/// to panic (`expect("arrival plan without cursor state")`). The
/// decoder must reject it. We forge the bytes by taking a real
/// open-world snapshot (whose arrival cursor is the final field) and
/// rewriting the cursor tag to "absent" at each plausible tail
/// position: at least one forgery reaches the consistency check, and
/// every forgery must fail without panicking.
#[test]
fn arrival_plan_without_cursor_is_rejected() {
    let tree = RandomTreeConfig::default().generate(9);
    let cfg = SimConfig::interruptible(2, 20)
        .with_checked(false)
        .with_arrivals(ArrivalPlan {
            seed: 5,
            classes: vec![TaskClass {
                name: "only".into(),
                work_units: 1,
                process: ArrivalProcess::Poisson {
                    mean_gap: 5,
                    count: 10,
                },
            }],
            queue_cap: 2,
            policy: AdmissionPolicy::Drop,
        });
    let sim = Simulation::new(tree, cfg);
    let bytes = sim.snapshot().to_bytes();

    let mut hit_mismatch = false;
    for tag_pos in (0..bytes.len()).rev() {
        // Pretend the arrival-cursor tag lives at `tag_pos`: set it to 0
        // (absent) and drop the cursor payload that followed.
        let mut forged = bytes[..tag_pos + 1].to_vec();
        forged[tag_pos] = 0;
        match probe(&forged) {
            // A zero landing *inside* the cursor payload can still parse
            // as a structurally valid (differently valued) cursor — fine.
            Ok(()) => {}
            Err(SnapshotError::Corrupt("arrival plan/cursor mismatch")) => hit_mismatch = true,
            Err(_) => {}
        }
    }
    assert!(
        hit_mismatch,
        "no forgery reached the plan/cursor consistency check"
    );
}
