//! The unreliable-network fault model end-to-end: every fault kind is
//! recovered from under checked mode (conservation exact, checker
//! silent), recovery stats are reported faithfully, the checker catches
//! a repository that forgets to reissue, and denied joins are graceful.

use bc_core::GrowthGate;
use bc_engine::{
    ChangeKind, FaultEvent, FaultInjection, FaultKind, FaultPlan, PlannedChange, RecoveryTuning,
    SimConfig, SimWorkspace, Simulation, TraceEvent, VecSink,
};
use bc_platform::examples::fig1_tree;
use bc_platform::{NodeId, RandomTreeConfig, Tree};
use bc_simcore::split_seed;

fn variants(total_tasks: u64) -> Vec<(&'static str, SimConfig)> {
    vec![
        ("ic-fb1", SimConfig::interruptible(1, total_tasks)),
        ("ic-fb3", SimConfig::interruptible(3, total_tasks)),
        ("nonic-ib1", SimConfig::non_interruptible(1, total_tasks)),
        (
            "nonic-ib1-filled",
            SimConfig::non_interruptible_gated(1, GrowthGate::AfterPoolFilled, total_tasks),
        ),
        (
            "nonic-fb2",
            SimConfig::non_interruptible_fixed(2, total_tasks),
        ),
    ]
}

fn small_tree(seed: u64) -> Tree {
    RandomTreeConfig {
        min_nodes: 8,
        max_nodes: 14,
        comm_min: 1,
        comm_max: 10,
        compute_scale: 60,
    }
    .generate(seed)
}

/// 0 -> 1 -> 2 -> 3 -> 4 chain plus a side child: guarantees
/// ancestor/descendant fault interplay and keeps the root fed.
fn chain_tree() -> Tree {
    let mut tree = Tree::new(10);
    let mut prev = NodeId::ROOT;
    for _ in 0..4 {
        prev = tree.add_child(prev, 2, 7);
    }
    tree.add_child(NodeId::ROOT, 3, 9);
    tree
}

fn plan(faults: Vec<FaultEvent>) -> FaultPlan {
    FaultPlan {
        seed: 0xFA_17,
        faults,
        recovery: RecoveryTuning::default(),
    }
}

/// A mixed low-intensity fault plan completes every task on every
/// protocol variant across a spread of random trees, with the checker
/// on the whole way: conservation stays exact through loss, abort,
/// outage, and crash.
#[test]
fn mixed_faults_recover_across_variants() {
    for (name, cfg) in variants(500) {
        for s in 0..4u64 {
            let tree = small_tree(split_seed(0xBAD_CAB1E, s));
            let leaf = NodeId((tree.len() - 1) as u32);
            let cfg = cfg.clone().with_checked(true).with_fault_plan(plan(vec![
                FaultEvent {
                    at: 40,
                    node: NodeId(1),
                    kind: FaultKind::RequestLoss { batches: 2 },
                },
                FaultEvent {
                    at: 90,
                    node: NodeId(2),
                    kind: FaultKind::TransferAbort,
                },
                FaultEvent {
                    at: 150,
                    node: NodeId(1),
                    kind: FaultKind::LinkOutage { duration: 60 },
                },
                FaultEvent {
                    at: 400,
                    node: leaf,
                    kind: FaultKind::Crash,
                },
            ]));
            let r = Simulation::new(tree, cfg).run();
            assert_eq!(r.tasks_completed(), 500, "{name} on tree {s}");
            assert_eq!(r.faults.faults_injected, 4, "{name} on tree {s}");
            assert_eq!(
                r.faults.tasks_lost, r.faults.tasks_reissued,
                "{name} on tree {s}: every lost task must be reissued"
            );
        }
    }
}

/// A crash while a transfer is in flight toward the crashing subtree:
/// the boundary transfer aborts, the lost tasks are reissued, and the
/// full task count still completes (on the surviving platform).
#[test]
fn crash_mid_transfer_conserves_tasks() {
    for (name, cfg) in variants(600) {
        let cfg = cfg
            .with_checked(true)
            .with_fault_plan(plan(vec![FaultEvent {
                at: 120,
                node: NodeId(1),
                kind: FaultKind::Crash,
            }]));
        let r = Simulation::new(chain_tree(), cfg).run();
        assert_eq!(r.tasks_completed(), 600, "{name}");
        assert_eq!(r.faults.crashes, 1, "{name}");
        assert!(r.faults.tasks_lost > 0, "{name}: chain held tasks at t=120");
        assert_eq!(r.faults.tasks_lost, r.faults.tasks_reissued, "{name}");
        assert_eq!(r.faults.last_crash_time, Some(120), "{name}");
    }
}

/// Nested crash storm: a deep node crashes, then an ancestor of it
/// crashes. The second crash's subtree walk must not re-count the
/// already-lost branch (the crashed ledger still reports holdings).
#[test]
fn nested_crashes_conserve_tasks() {
    for (name, cfg) in variants(600) {
        let cfg = cfg.with_checked(true).with_fault_plan(plan(vec![
            FaultEvent {
                at: 100,
                node: NodeId(3),
                kind: FaultKind::Crash,
            },
            FaultEvent {
                at: 220,
                node: NodeId(1),
                kind: FaultKind::Crash,
            },
        ]));
        let r = Simulation::new(chain_tree(), cfg).run();
        assert_eq!(r.tasks_completed(), 600, "{name}");
        assert_eq!(r.faults.crashes, 2, "{name}");
        assert_eq!(r.faults.tasks_lost, r.faults.tasks_reissued, "{name}");
    }
}

/// Crash-inside-leave interplay: a node crashes, then a scripted
/// graceful leave takes an ancestor. The leave's reclaim walk must skip
/// the crashed branch — its tasks are in the lost ledger, not
/// reclaimable — or conservation double-counts.
#[test]
fn leave_of_ancestor_skips_crashed_branch() {
    for (name, cfg) in variants(600) {
        let cfg = cfg
            .with_checked(true)
            .with_fault_plan(plan(vec![FaultEvent {
                at: 80,
                node: NodeId(3),
                kind: FaultKind::Crash,
            }]))
            .with_change(PlannedChange {
                after_tasks: 250,
                node: NodeId(1),
                kind: ChangeKind::Leave,
            });
        let r = Simulation::new(chain_tree(), cfg).run();
        assert_eq!(r.tasks_completed(), 600, "{name}");
        assert_eq!(r.faults.tasks_lost, r.faults.tasks_reissued, "{name}");
    }
}

/// Request loss alone: the batch vanishes, the timeout fires, the
/// retry re-covers, nothing is lost and nothing needs reissue.
#[test]
fn request_loss_retries_until_delivered() {
    for (name, cfg) in variants(400) {
        let cfg = cfg
            .with_checked(true)
            .with_fault_plan(plan(vec![FaultEvent {
                at: 30,
                node: NodeId(1),
                kind: FaultKind::RequestLoss { batches: 3 },
            }]));
        let r = Simulation::new(fig1_tree(), cfg).run();
        assert_eq!(r.tasks_completed(), 400, "{name}");
        assert!(r.faults.requests_dropped > 0, "{name}");
        assert!(r.faults.retries > 0, "{name}");
        assert_eq!(r.faults.tasks_lost, 0, "{name}: no task ever in danger");
    }
}

/// A long outage makes the parent miss enough acks to declare the child
/// dead — a false positive, since the child is only unreachable. When
/// the link returns the child re-requests and must be revived.
#[test]
fn declared_dead_child_revives_after_outage() {
    // A fast child (w=1) drains its buffers and piles requests up at the
    // root, so the root keeps delegating into the outage and misses
    // enough acks to cross the threshold.
    let mut tree = Tree::new(6);
    tree.add_child(NodeId::ROOT, 2, 1);
    // Capacity-3 variants only: a 1-buffer child never has two covered
    // requests in flight at once, so the parent cannot accumulate the
    // two missed acks the threshold needs.
    let caps3 = vec![
        ("ic-fb3", SimConfig::interruptible(3, 400)),
        ("nonic-fb3", SimConfig::non_interruptible_fixed(3, 400)),
    ];
    for (name, cfg) in caps3 {
        let mut p = plan(vec![FaultEvent {
            at: 25,
            node: NodeId(1),
            kind: FaultKind::LinkOutage { duration: 600 },
        }]);
        // Short timeout so retries burn through the outage window and the
        // parent keeps attempting deliveries that fail.
        p.recovery.request_timeout = 8;
        p.recovery.backoff_cap = 2;
        p.recovery.max_retries = 200;
        let cfg = cfg.with_checked(true).with_fault_plan(p);
        let r = Simulation::new(tree.clone(), cfg).run();
        assert_eq!(r.tasks_completed(), 400, "{name}");
        assert!(r.faults.children_declared_dead >= 1, "{name}");
        assert!(
            r.faults.children_revived >= 1,
            "{name}: live child must rejoin after the outage"
        );
    }
}

/// Every request batch a child sends is dropped: it exhausts its retry
/// budget, presumes the parent dead, and goes quiet. The repository
/// computes the whole application itself; the run still terminates.
#[test]
fn orphaned_node_gives_up_and_run_completes() {
    let mut tree = Tree::new(4);
    tree.add_child(NodeId::ROOT, 2, 3);
    for (name, cfg) in variants(300) {
        // The initial batch goes out during start-up, before the t=0
        // fault event is processed, so the child computes a handful of
        // tasks first — every batch after that is dropped. Short
        // timeouts so the retry budget burns out well before wind-down.
        let mut p = plan(vec![FaultEvent {
            at: 0,
            node: NodeId(1),
            kind: FaultKind::RequestLoss { batches: 1000 },
        }]);
        p.recovery.request_timeout = 4;
        p.recovery.backoff_cap = 2;
        p.recovery.max_retries = 3;
        let cfg = cfg.with_checked(true).with_fault_plan(p);
        let r = Simulation::new(tree.clone(), cfg).run();
        assert_eq!(r.tasks_completed(), 300, "{name}");
        assert_eq!(r.faults.gave_up, 1, "{name}");
        assert!(
            r.tasks_per_node[1] < 20,
            "{name}: orphan kept receiving tasks ({})",
            r.tasks_per_node[1]
        );
    }
}

/// Duplicated deliveries are recognized and dropped without touching the
/// ledger — at-least-once network, at-most-once buffer.
#[test]
fn duplicate_deliveries_are_dropped() {
    for (name, cfg) in variants(400) {
        let cfg = cfg
            .with_checked(true)
            .with_fault_plan(plan(vec![FaultEvent {
                at: 50,
                node: NodeId(1),
                kind: FaultKind::DuplicateDelivery { copies: 3 },
            }]));
        let r = Simulation::new(fig1_tree(), cfg).run();
        assert_eq!(r.tasks_completed(), 400, "{name}");
        assert_eq!(r.faults.duplicates_dropped, 3, "{name}");
    }
}

/// Fault plumbing is transparent when the plan schedules nothing: a run
/// with an empty fault plan is bit-identical to a run without one.
#[test]
fn empty_fault_plan_changes_nothing() {
    for (name, cfg) in variants(500) {
        let tree = small_tree(split_seed(0xD1FF, 5));
        let plain = Simulation::new(tree.clone(), cfg.clone().with_checked(true)).run();
        let planned =
            Simulation::new(tree, cfg.with_checked(true).with_fault_plan(plan(vec![]))).run();
        assert_eq!(plain.end_time, planned.end_time, "{name}");
        assert_eq!(plain.completion_times, planned.completion_times, "{name}");
        assert_eq!(plain.events_processed, planned.events_processed, "{name}");
        assert_eq!(plain.tasks_per_node, planned.tasks_per_node, "{name}");
    }
}

/// Fault runs are deterministic: same plan, same seed, same everything.
#[test]
fn fault_runs_are_deterministic() {
    let mk = || {
        let cfg = SimConfig::interruptible(3, 500)
            .with_checked(true)
            .with_fault_plan(plan(vec![
                FaultEvent {
                    at: 60,
                    node: NodeId(2),
                    kind: FaultKind::LinkOutage { duration: 90 },
                },
                FaultEvent {
                    at: 200,
                    node: NodeId(4),
                    kind: FaultKind::Crash,
                },
            ]));
        Simulation::new(small_tree(split_seed(0xDE7, 1)), cfg).run()
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.completion_times, b.completion_times);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.faults, b.faults);
}

/// Checker self-test: a repository that swallows a reissue (the lost
/// tasks never re-enter the pool) breaks task conservation, and the
/// extended ledger — which tracks `lost` as a first-class term — says so.
#[test]
#[should_panic(expected = "task-conservation")]
fn swallowed_reissue_is_caught() {
    let cfg = SimConfig::interruptible(3, 500)
        .with_checked(true)
        .with_fault(FaultInjection::SwallowReissue)
        .with_fault_plan(plan(vec![FaultEvent {
            at: 100,
            node: NodeId(1),
            kind: FaultKind::Crash,
        }]));
    let _ = Simulation::new(fig1_tree(), cfg).run();
}

/// Regression (was a panic): a scripted join whose contact node already
/// left is denied gracefully, with a trace event, and the run completes.
#[test]
fn join_after_parent_leave_is_denied() {
    for (name, cfg) in variants(500) {
        let cfg = cfg
            .with_checked(true)
            .with_change(PlannedChange {
                after_tasks: 100,
                node: NodeId(2),
                kind: ChangeKind::Leave,
            })
            .with_change(PlannedChange {
                after_tasks: 200,
                node: NodeId(2),
                kind: ChangeKind::Join {
                    comm: 2,
                    compute: 5,
                },
            });
        let sim = Simulation::traced(
            small_tree(split_seed(3, 3)),
            cfg,
            SimWorkspace::new(),
            VecSink::new(),
        );
        let (r, _ws, sink) = sim.run_traced();
        assert_eq!(r.tasks_completed(), 500, "{name}");
        assert!(
            sink.records
                .iter()
                .any(|rec| matches!(rec.event, TraceEvent::JoinDenied { parent: 2 })),
            "{name}: denial must be traced"
        );
    }
}

/// Regression (was a panic): a join addressed to a node id that does not
/// exist is denied, not asserted on.
#[test]
fn join_under_unknown_parent_is_denied() {
    let cfg = SimConfig::interruptible(2, 300)
        .with_checked(true)
        .with_change(PlannedChange {
            after_tasks: 50,
            node: NodeId(99),
            kind: ChangeKind::Join {
                comm: 2,
                compute: 5,
            },
        });
    let r = Simulation::new(fig1_tree(), cfg).run();
    assert_eq!(r.tasks_completed(), 300);
}

/// A join under a *crashed* contact node is likewise denied.
#[test]
fn join_under_crashed_parent_is_denied() {
    let cfg = SimConfig::interruptible(2, 400)
        .with_checked(true)
        .with_fault_plan(plan(vec![FaultEvent {
            at: 20,
            node: NodeId(1),
            kind: FaultKind::Crash,
        }]))
        .with_change(PlannedChange {
            after_tasks: 150,
            node: NodeId(1),
            kind: ChangeKind::Join {
                comm: 2,
                compute: 5,
            },
        });
    let r = Simulation::new(fig1_tree(), cfg).run();
    assert_eq!(r.tasks_completed(), 400);
}

/// Regression: a scripted `Leave` landing while the parent is
/// mid-transfer toward the departing child. The incremental row caches
/// (`pending_sum`, `slots_used`) and `kid_gone` flags must stay
/// coherent with a full recount — `verify_invariants` (which recounts
/// via `check_row_caches`) is consulted after *every* event, stricter
/// than checked mode's amortized sweep — and every reclaimed task must
/// be re-dispatched, so the run still completes exactly.
#[test]
fn leave_with_in_flight_transfer_keeps_row_caches_coherent() {
    // Node 1's uplink is slow (transfers toward it are long-lived) and
    // it has a grandchild, so the departing subtree carries pending
    // requests, held buffers, and possibly its own active transfer.
    let mut tree = Tree::new(3);
    let slow = tree.add_child(NodeId::ROOT, 9, 4);
    tree.add_child(NodeId::ROOT, 2, 6);
    tree.add_child(slow, 2, 5);

    let mut saw_in_flight = false;
    for after_tasks in [3, 5, 8, 13] {
        for (name, cfg) in variants(60) {
            let mut cfg = cfg.with_checked(false);
            cfg.changes = vec![PlannedChange {
                after_tasks,
                node: slow,
                kind: ChangeKind::Leave,
            }];
            let mut sim =
                Simulation::traced(tree.clone(), cfg, SimWorkspace::new(), VecSink::new());
            sim.start();
            sim.verify_invariants().expect("start state");
            loop {
                let more = sim.step();
                sim.verify_invariants().unwrap_or_else(|v| {
                    panic!("{name} leave@{after_tasks}: {v} (t={})", sim.now())
                });
                if !more {
                    break;
                }
            }
            sim.verify_terminal()
                .unwrap_or_else(|v| panic!("{name} leave@{after_tasks}: terminal {v}"));
            let (res, _ws, sink) = sim.run_traced();
            assert_eq!(res.tasks_completed(), 60, "{name} leave@{after_tasks}");

            // Was a transfer toward the leaver open on the parent's link
            // at the leave instant? (Starts/resumes minus completes/
            // preempts, up to the NodeLeave record.)
            let mut open = 0i64;
            for r in &sink.records {
                match r.event {
                    TraceEvent::NodeLeave { node, .. } if node == slow.0 => break,
                    TraceEvent::TransferStart { child, .. }
                    | TraceEvent::TransferResume { child, .. }
                        if child == slow.0 =>
                    {
                        open += 1;
                    }
                    TraceEvent::TransferComplete { child, .. }
                    | TraceEvent::TransferPreempt { child, .. }
                        if child == slow.0 =>
                    {
                        open -= 1;
                    }
                    _ => {}
                }
            }
            saw_in_flight |= open > 0;
        }
    }
    assert!(
        saw_in_flight,
        "no scheduled leave ever interrupted an in-flight transfer; the scenario lost its bite"
    );
}
