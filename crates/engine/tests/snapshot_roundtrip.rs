//! Snapshot exactness: a simulation restored from a mid-run
//! [`SimSnapshot`] — directly or through the serialized binary form —
//! must continue **bit-identically**: the same `RunResult` (which
//! embeds `FaultStats`), the same trace suffix, the same event counts.
//! Proptested over random platforms × protocol variants × fault legs ×
//! scripted-change legs × elision on/off × random capture points.

use bc_engine::{
    AdmissionPolicy, ArrivalPlan, ArrivalProcess, ChangeKind, FaultEvent, FaultKind, FaultPlan,
    PlannedChange, RunResult, SelectorKind, SimConfig, SimSnapshot, SimWorkspace, Simulation,
    SnapshotError, TaskClass,
};
use bc_platform::{NodeId, RandomTreeConfig, Tree};
use bc_simcore::VecSink;
use proptest::prelude::*;

/// Protocol variants the round trip must hold for (a compressed version
/// of the elision-equivalence matrix: both disciplines, fixed and
/// growable buffers, every selector family, a measuring observer).
fn variants(tasks: u64) -> Vec<(&'static str, SimConfig)> {
    let mut v = vec![
        ("ic-fb2", SimConfig::interruptible(2, tasks)),
        ("nonic-fb2", SimConfig::non_interruptible_fixed(2, tasks)),
        ("nonic-ib1", SimConfig::non_interruptible(1, tasks)),
    ];
    let mut rr = SimConfig::interruptible(3, tasks);
    rr.selector = SelectorKind::RoundRobin;
    v.push(("ic-fb3-rr", rr));
    let mut ob = SimConfig::interruptible(3, tasks);
    ob.observer = bc_core::ObserverKind::Ema {
        initial: 4,
        num: 1,
        den: 2,
    };
    v.push(("ic-fb3-ema", ob));
    v
}

/// A fault plan hitting several recovery paths (request loss, outage,
/// crash) so the capture lands amid armed timeouts, pending nacks, and
/// lost-task ledgers.
fn fault_plan(nodes: usize) -> FaultPlan {
    let mid = ((nodes / 2).max(1)) as u32;
    let last = ((nodes - 1).max(1)) as u32;
    FaultPlan {
        seed: 23,
        faults: vec![
            FaultEvent {
                at: 30,
                node: NodeId(mid),
                kind: FaultKind::RequestLoss { batches: 1 },
            },
            FaultEvent {
                at: 70,
                node: NodeId(last),
                kind: FaultKind::LinkOutage { duration: 30 },
            },
            FaultEvent {
                at: 140,
                node: NodeId(mid),
                kind: FaultKind::Crash,
            },
        ],
        recovery: Default::default(),
    }
}

/// Scripted platform changes (weight shifts, a join, a leave) so the
/// capture can land with the change cursor mid-script and the tree
/// mutated away from its original shape.
fn change_script(nodes: usize) -> Vec<PlannedChange> {
    let mid = NodeId(((nodes / 2).max(1)) as u32);
    vec![
        PlannedChange {
            after_tasks: 5,
            node: mid,
            kind: ChangeKind::CommTime(7),
        },
        PlannedChange {
            after_tasks: 12,
            node: NodeId(0),
            kind: ChangeKind::Join {
                comm: 3,
                compute: 6,
            },
        },
        PlannedChange {
            after_tasks: 25,
            node: mid,
            kind: ChangeKind::Leave,
        },
    ]
}

/// An open-world workload whose bursts overrun the admission queue, so
/// mid-run captures land with pending arrivals and (under `Defer`) a
/// non-empty deferred queue — the `ArrivalCursor` layer of the snapshot
/// is exercised in anger, not just in its empty state.
fn arrival_plan(policy: AdmissionPolicy) -> ArrivalPlan {
    ArrivalPlan {
        seed: 31,
        classes: vec![
            TaskClass {
                name: "background".into(),
                work_units: 1,
                process: ArrivalProcess::Poisson {
                    mean_gap: 3,
                    count: 25,
                },
            },
            TaskClass {
                name: "burst".into(),
                work_units: 3,
                process: ArrivalProcess::Burst {
                    phase: 8,
                    period: 20,
                    size: 2,
                    bursts: 5,
                },
            },
        ],
        queue_cap: 4,
        policy,
    }
}

/// Steps to completion and returns the result (keeping the terminal
/// oracle in the loop).
fn finish(mut sim: Simulation) -> RunResult {
    while sim.step() {}
    sim.verify_terminal().expect("terminal oracle");
    sim.run()
}

/// Reference run plus a mid-run snapshot after `k` events (capped to
/// the run's length).
fn run_and_capture(tree: Tree, cfg: SimConfig, k: u64) -> (RunResult, SimSnapshot) {
    let mut sim = Simulation::new(tree, cfg);
    let mut stepped = 0u64;
    while stepped < k && sim.step() {
        stepped += 1;
    }
    let snap = sim.snapshot();
    (finish(sim), snap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `restore(snapshot(t))` then run-to-completion is bit-identical
    /// to never snapshotting, across the full variant matrix — both
    /// restoring the in-memory snapshot and round-tripping it through
    /// the serialized form. The serialized form itself must re-encode
    /// byte-identically after decoding. Legs 3/4 run the open-world
    /// arrival layer (Defer and Drop), so captures land with pending
    /// arrivals and deferred backlogs.
    #[test]
    fn restore_continues_bit_identically(
        seed in 0u64..1_000_000,
        k in 0u64..600,
        leg in 0u8..5,
        elide_coin in 0u8..2,
    ) {
        let elide = elide_coin == 1;
        let gen = RandomTreeConfig {
            min_nodes: 2,
            max_nodes: 14,
            comm_min: 1,
            comm_max: 9,
            compute_scale: 40,
        };
        let tree = gen.generate(seed);
        for (name, cfg) in variants(60) {
            let mut cfg = cfg.with_checked(false).with_elision(elide);
            match leg {
                1 => cfg = cfg.with_fault_plan(fault_plan(tree.len())),
                2 => { cfg.changes = change_script(tree.len()); }
                3 => cfg = cfg.with_arrivals(arrival_plan(AdmissionPolicy::Defer)),
                4 => cfg = cfg.with_arrivals(arrival_plan(AdmissionPolicy::Drop)),
                _ => {}
            }
            cfg = cfg.with_checkpoints(vec![10, 30]);
            let (reference, snap) = run_and_capture(tree.clone(), cfg, k);

            // In-memory restore.
            let restored = finish(snap.resume());
            prop_assert_eq!(&restored, &reference, "in-memory restore diverged ({})", name);

            // Serialized round trip: decode(encode(s)) restores the same
            // run, and re-encoding reproduces the bytes.
            let bytes = snap.to_bytes();
            let decoded = SimSnapshot::from_bytes(&bytes).expect("decode own snapshot");
            prop_assert_eq!(decoded.to_bytes(), bytes, "re-encode not byte-identical ({})", name);
            let redone = finish(Simulation::from_snapshot_with(&decoded, SimWorkspace::new()));
            prop_assert_eq!(&redone, &reference, "serialized restore diverged ({})", name);
        }
    }

    /// The trace suffix of a restored continuation is bit-identical to
    /// the corresponding tail of an uninterrupted traced run.
    #[test]
    fn trace_suffix_is_bit_identical(
        seed in 0u64..1_000_000,
        k in 0u64..400,
        leg in 0u8..3,
    ) {
        let gen = RandomTreeConfig {
            min_nodes: 2,
            max_nodes: 10,
            comm_min: 1,
            comm_max: 8,
            compute_scale: 25,
        };
        let tree = gen.generate(seed);
        let mut cfg = SimConfig::interruptible(2, 50).with_checked(false);
        match leg {
            1 => cfg = cfg.with_fault_plan(fault_plan(tree.len())),
            // The restored stream must replay admission decisions
            // (arrival/admit/defer events) bit-identically too.
            2 => cfg = cfg.with_arrivals(arrival_plan(AdmissionPolicy::Defer)),
            _ => {}
        }
        let mut sim = Simulation::traced(tree, cfg, SimWorkspace::new(), VecSink::new());
        let mut stepped = 0u64;
        while stepped < k && sim.step() {
            stepped += 1;
        }
        let snap = sim.snapshot();
        let (_res, _ws, sink) = sim.run_traced();
        let full = sink.records;

        let branch = Simulation::from_snapshot_traced(&snap, SimWorkspace::new(), VecSink::new());
        let (_res2, _ws2, sink2) = branch.run_traced();
        let suffix = sink2.records;
        prop_assert!(suffix.len() <= full.len());
        prop_assert_eq!(&full[full.len() - suffix.len()..], &suffix[..],
            "restored trace suffix diverged");
    }
}

/// Exhaustive mid-stream sweep for the arrival layer: snapshot after
/// *every* event of an overloaded `Defer` run, restore each, and demand
/// the exact reference result. Some captures necessarily land with a
/// non-empty deferred queue and arrivals still pending (the run's
/// deferral count proves backpressure engaged), so the `ArrivalCursor`
/// state — cursor, deferred indices, per-class ledgers — must round-trip
/// through both the in-memory and the serialized path.
#[test]
fn arrival_snapshots_restore_exactly_at_every_event() {
    let tree = RandomTreeConfig::default().generate(17);
    let cfg = SimConfig::interruptible(2, 1)
        .with_arrivals(arrival_plan(AdmissionPolicy::Defer))
        .with_checked(false);
    let reference = finish(Simulation::new(tree.clone(), cfg.clone()));
    assert!(
        reference.arrivals.deferrals > 0,
        "workload must engage backpressure for this sweep to mean anything"
    );
    let mut sim = Simulation::new(tree, cfg);
    let mut event = 0u64;
    loop {
        let snap = sim.snapshot();
        assert_eq!(
            finish(snap.resume()),
            reference,
            "in-memory restore diverged at event {event}"
        );
        // Serialize every 7th capture (the cursor layer moves every few
        // events; encoding all ~1k would only slow the suite down).
        if event.is_multiple_of(7) {
            let bytes = snap.to_bytes();
            let decoded = SimSnapshot::from_bytes(&bytes).expect("decode own snapshot");
            assert_eq!(decoded.to_bytes(), bytes, "re-encode at event {event}");
            assert_eq!(
                finish(decoded.resume()),
                reference,
                "serialized restore diverged at event {event}"
            );
        }
        if !sim.step() {
            break;
        }
        event += 1;
    }
}

/// A pre-start snapshot (taken before the first step) restores to the
/// exact full run, including fault-plan scheduling done by `start`.
#[test]
fn pre_start_snapshot_restores_full_run() {
    let gen = RandomTreeConfig::default();
    let tree = gen.generate(7);
    let cfg = SimConfig::interruptible(3, 80)
        .with_checked(false)
        .with_fault_plan(fault_plan(tree.len()));
    let sim = Simulation::new(tree.clone(), cfg.clone());
    let snap = sim.snapshot();
    let reference = finish(sim);
    assert_eq!(finish(snap.resume()), reference);
    let decoded = SimSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    assert_eq!(finish(decoded.resume()), reference);
}

/// A post-finish snapshot restores to a finished simulation whose
/// result equals the original's.
#[test]
fn finished_snapshot_round_trips() {
    let tree = RandomTreeConfig::default().generate(11);
    let mut sim = Simulation::new(tree, SimConfig::interruptible(2, 40).with_checked(false));
    while sim.step() {}
    let snap = sim.snapshot();
    let reference = sim.run();
    let branch = snap.resume();
    assert_eq!(finish(branch), reference);
}

/// Forking with no tweaks is exactly `resume`; forking K branches off
/// one snapshot leaves the snapshot (and each other) untouched.
#[test]
fn fork_without_tweaks_is_resume() {
    let tree = RandomTreeConfig::default().generate(3);
    let cfg = SimConfig::interruptible(2, 60).with_checked(false);
    let (reference, snap) = run_and_capture(tree, cfg, 100);
    let a = finish(snap.fork(|_| {}));
    let b = finish(snap.resume());
    let c = finish(snap.fork(|_| {}));
    assert_eq!(a, reference);
    assert_eq!(b, reference);
    assert_eq!(c, reference);
}

/// What-if branches diverge as specified and still complete all tasks:
/// a degraded edge and an injected crash both finish (recovery
/// reissues), while the unperturbed branch equals the reference.
#[test]
fn whatif_branches_diverge_and_complete() {
    let mut tree = Tree::new(50);
    let a = tree.add_child(NodeId::ROOT, 2, 8);
    let _b = tree.add_child(NodeId::ROOT, 3, 9);
    let cfg = SimConfig::interruptible(2, 120).with_checked(false);
    let (reference, snap) = run_and_capture(tree, cfg, 150);

    let baseline = finish(snap.fork(|_| {}));
    assert_eq!(baseline, reference);

    let degraded = finish(snap.fork(|w| w.set_comm_time(a, 40)));
    assert_eq!(degraded.tasks_completed(), 120);
    assert_ne!(
        degraded, reference,
        "degrading a live edge mid-run must change the outcome"
    );

    let crashed = finish(snap.fork(|w| {
        w.add_fault(FaultEvent {
            at: w.now() + 10,
            node: a,
            kind: FaultKind::Crash,
        })
    }));
    assert_eq!(crashed.tasks_completed(), 120);
    assert!(crashed.faults.crashes >= 1, "injected crash must strike");
    assert!(crashed.end_time >= reference.end_time);
}

/// Checked-mode time travel keeps a periodic snapshot that resumes to
/// the same result as the run it was captured from.
#[test]
fn time_travel_snapshot_resumes_exactly() {
    let tree = RandomTreeConfig::default().generate(5);
    let cfg = SimConfig::interruptible(2, 200).with_checked(true);
    let mut sim = Simulation::new(tree, cfg);
    sim.enable_time_travel(64);
    while sim.step() {}
    let (snap, at) = sim
        .last_time_travel_snapshot()
        .expect("periodic capture must have fired");
    assert!(at >= 64);
    let resumed = snap.clone();
    let reference = sim.run();
    assert_eq!(finish(resumed.resume()), reference);
}

/// Malformed input is rejected, never panics.
#[test]
fn from_bytes_rejects_garbage() {
    assert_eq!(
        SimSnapshot::from_bytes(b"").unwrap_err(),
        SnapshotError::BadMagic
    );
    assert_eq!(
        SimSnapshot::from_bytes(b"NOPE\x01").unwrap_err(),
        SnapshotError::BadMagic
    );
    assert_eq!(
        SimSnapshot::from_bytes(b"BCSS\x63").unwrap_err(),
        SnapshotError::UnsupportedVersion(0x63)
    );
    let tree = RandomTreeConfig::default().generate(1);
    let sim = Simulation::new(tree, SimConfig::interruptible(2, 10).with_checked(false));
    let bytes = sim.snapshot().to_bytes();
    // Any truncation of a valid snapshot must fail cleanly.
    for cut in [5, bytes.len() / 2, bytes.len() - 1] {
        assert!(SimSnapshot::from_bytes(&bytes[..cut]).is_err());
    }
}
