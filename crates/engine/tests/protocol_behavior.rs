//! Behavioral tests of the protocol simulator against hand-checkable
//! platforms and the paper's qualitative claims.

use bc_engine::{ChangeKind, PlannedChange, Protocol, SelectorKind, SimConfig, Simulation};
use bc_platform::examples::{fig1_p1, fig1_tree, fig2a_b, fig2a_c, fig2a_tree, fig2b_tree};
use bc_platform::{NodeId, RandomTreeConfig, Tree};
use bc_steady::SteadyState;

/// Measured steady rate over the 20%–80% completion window — skips both
/// startup and wind-down stragglers (e.g. a deliberately slow root whose
/// single task completes long after everyone else finished).
fn mid_rate(times: &[u64]) -> f64 {
    let lo = times.len() / 5;
    let hi = times.len() * 4 / 5;
    (hi - lo) as f64 / (times[hi] - times[lo]) as f64
}

#[test]
fn single_node_runs_serially() {
    let t = Tree::new(7);
    let r = Simulation::new(t, SimConfig::interruptible(3, 10)).run();
    assert_eq!(r.tasks_completed(), 10);
    assert_eq!(
        r.completion_times,
        (1..=10).map(|k| 7 * k).collect::<Vec<_>>()
    );
    assert_eq!(r.end_time, 70);
    assert_eq!(r.tasks_per_node, vec![10]);
}

#[test]
fn two_node_pipeline_reaches_full_rate() {
    // Root w=2, child c=1 w=2: optimal rate 1 task/timestep.
    let mut t = Tree::new(2);
    t.add_child(NodeId::ROOT, 1, 2);
    let ss = SteadyState::analyze(&t);
    assert_eq!(ss.optimal_rate(), bc_rational::Rational::from_integer(1));
    let r = Simulation::new(t, SimConfig::interruptible(3, 400)).run();
    assert_eq!(r.tasks_completed(), 400);
    let rate = mid_rate(&r.completion_times);
    assert!((rate - 1.0).abs() < 0.02, "tail rate {rate}");
}

#[test]
fn completions_are_sorted_and_conserved() {
    let tree = RandomTreeConfig {
        min_nodes: 5,
        max_nodes: 40,
        comm_min: 1,
        comm_max: 10,
        compute_scale: 100,
    }
    .generate(3);
    for cfg in [
        SimConfig::interruptible(3, 500),
        SimConfig::non_interruptible(1, 500),
    ] {
        let r = Simulation::new(tree.clone(), cfg).run();
        assert_eq!(r.tasks_completed(), 500);
        assert!(r.completion_times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(r.tasks_per_node.iter().sum::<u64>(), 500);
    }
}

#[test]
fn determinism_across_runs() {
    let tree = RandomTreeConfig::default().generate(77);
    let run = |tree: Tree| Simulation::new(tree, SimConfig::interruptible(2, 300)).run();
    let a = run(tree.clone());
    let b = run(tree);
    assert_eq!(a.completion_times, b.completion_times);
    assert_eq!(a.tasks_per_node, b.tasks_per_node);
    assert_eq!(a.events_processed, b.events_processed);
}

#[test]
fn fig2a_one_buffer_nonic_is_suboptimal_but_ic_recovers() {
    // Fig 2(a): under non-IC with one fixed buffer, B starves while A
    // feeds C for 5 timesteps. IC preempts the transfer to C, keeping B
    // busy; FB=1 suffices on this tree.
    let tasks = 600;
    let opt = SteadyState::analyze(&fig2a_tree()).optimal_rate().to_f64();

    let nonic = Simulation::new(fig2a_tree(), SimConfig::non_interruptible_fixed(1, tasks)).run();
    let ic = Simulation::new(fig2a_tree(), SimConfig::interruptible(1, tasks)).run();

    let nonic_rate = mid_rate(&nonic.completion_times);
    let ic_rate = mid_rate(&ic.completion_times);
    assert!(
        ic_rate > nonic_rate * 1.05,
        "IC ({ic_rate}) must clearly beat non-IC/FB=1 ({nonic_rate})"
    );
    assert!(
        ic_rate > 0.97 * opt,
        "IC should approach the optimal rate {opt}, got {ic_rate}"
    );
    // B does the bulk of the work under IC.
    assert!(ic.tasks_per_node[fig2a_b().index()] > ic.tasks_per_node[fig2a_c().index()]);
}

#[test]
fn fig2a_nonic_growth_stockpiles_buffers_for_b() {
    // With growable buffers, non-IC eventually grows B's pool to cover
    // A's 5-step absences (the paper says B needs 3 buffered tasks).
    let r = Simulation::new(fig2a_tree(), SimConfig::non_interruptible(1, 600)).run();
    let b_buffers = r.max_buffers_per_node[fig2a_b().index()];
    assert!(b_buffers >= 3, "B grew only {b_buffers} buffers");
    let rate = mid_rate(&r.completion_times);
    let opt = SteadyState::analyze(&fig2a_tree()).optimal_rate().to_f64();
    assert!(
        rate > 0.95 * opt,
        "grown non-IC should near the optimal rate {opt}, got {rate}"
    );
}

#[test]
fn fig2b_needs_more_buffers_as_k_rises() {
    // Fig 2(b): the buffer need scales with k under non-IC.
    let mut prev = 0;
    for k in [1u64, 3, 6] {
        let t = fig2b_tree(k, 4);
        let r = Simulation::new(t, SimConfig::non_interruptible(1, 800)).run();
        let b_buffers = r.max_buffers_per_node[1];
        assert!(
            b_buffers as u64 >= k,
            "k={k}: B grew only {b_buffers} buffers"
        );
        assert!(b_buffers >= prev, "buffer need should not shrink with k");
        prev = b_buffers;
    }
}

#[test]
fn ic_fixed_buffers_never_grow() {
    let tree = RandomTreeConfig::default().generate(5);
    let r = Simulation::new(tree, SimConfig::interruptible(3, 300)).run();
    assert!(r.max_buffers_per_node.iter().all(|&b| b <= 3));
    assert_eq!(r.max_buffers_per_node[0], 0, "root has no pool");
}

#[test]
fn starved_slow_child_computes_nothing() {
    // Fast child saturates the root's link (c/w = 1); slow-link child
    // must starve no matter how fast its processor is.
    let mut t = Tree::new(1_000_000);
    let fast = t.add_child(NodeId::ROOT, 4, 4);
    let slow = t.add_child(NodeId::ROOT, 9, 1);
    let r = Simulation::new(t, SimConfig::interruptible(3, 400)).run();
    assert!(r.tasks_per_node[fast.index()] > 350);
    // The slow child may get a task or two during startup, never a
    // steady stream.
    assert!(
        r.tasks_per_node[slow.index()] < 20,
        "slow child computed {}",
        r.tasks_per_node[slow.index()]
    );
}

#[test]
fn bandwidth_centric_beats_compute_centric_when_links_disagree() {
    // Two children: fast-link/slow-CPU and slow-link/fast-CPU sized so
    // the policies order them oppositely.
    let build = || {
        let mut t = Tree::new(1_000_000);
        t.add_child(NodeId::ROOT, 2, 6); // fast link
        t.add_child(NodeId::ROOT, 12, 3); // fast CPU, slow link
        t
    };
    let tasks = 500;
    let mut bw = SimConfig::interruptible(3, tasks);
    bw.selector = SelectorKind::BandwidthCentric;
    let mut cc = SimConfig::interruptible(3, tasks);
    cc.selector = SelectorKind::ComputeCentric;
    let bw_rate = mid_rate(&Simulation::new(build(), bw).run().completion_times);
    let cc_rate = mid_rate(&Simulation::new(build(), cc).run().completion_times);
    assert!(
        bw_rate > cc_rate * 1.05,
        "bandwidth-centric ({bw_rate}) should clearly beat compute-centric ({cc_rate})"
    );
}

#[test]
fn adaptability_changes_apply_mid_run() {
    // Fig 7 setup: degrade c1 after 200 tasks; the rate must drop.
    let cfg = SimConfig::non_interruptible_fixed(2, 1000).with_change(PlannedChange {
        after_tasks: 200,
        node: fig1_p1(),
        kind: ChangeKind::CommTime(3),
    });
    let base = Simulation::new(fig1_tree(), SimConfig::non_interruptible_fixed(2, 1000)).run();
    let changed = Simulation::new(fig1_tree(), cfg).run();
    assert!(
        changed.end_time > base.end_time,
        "degrading c1 must slow the run ({} vs {})",
        changed.end_time,
        base.end_time
    );
    // Improvement case: w1 3 → 1 speeds the run up.
    let cfg = SimConfig::non_interruptible_fixed(2, 1000).with_change(PlannedChange {
        after_tasks: 200,
        node: fig1_p1(),
        kind: ChangeKind::ComputeTime(1),
    });
    let improved = Simulation::new(fig1_tree(), cfg).run();
    assert!(improved.end_time < base.end_time);
}

#[test]
fn checkpoints_record_running_buffer_max() {
    let tree = RandomTreeConfig {
        min_nodes: 10,
        max_nodes: 60,
        comm_min: 1,
        comm_max: 50,
        compute_scale: 5_000,
    }
    .generate(9);
    let cfg = SimConfig::non_interruptible(1, 400).with_checkpoints(vec![100, 200, 400]);
    let r = Simulation::new(tree, cfg).run();
    assert_eq!(r.checkpoint_max_buffers.len(), 3);
    assert_eq!(r.checkpoint_max_buffers[0].0, 100);
    // Running maxima are monotone.
    assert!(r
        .checkpoint_max_buffers
        .windows(2)
        .all(|w| w[0].1 <= w[1].1));
    assert_eq!(r.checkpoint_max_buffers[2].1, r.max_buffers());
}

#[test]
fn round_robin_still_completes() {
    let tree = RandomTreeConfig {
        min_nodes: 5,
        max_nodes: 25,
        comm_min: 1,
        comm_max: 10,
        compute_scale: 50,
    }
    .generate(4);
    let mut cfg = SimConfig::interruptible(2, 200);
    cfg.selector = SelectorKind::RoundRobin;
    let r = Simulation::new(tree, cfg).run();
    assert_eq!(r.tasks_completed(), 200);
}

#[test]
fn measured_observer_matches_oracle_on_static_platform() {
    // On a platform that never changes, last-sample measurement converges
    // to the truth and long-run behavior matches the oracle.
    let tree = RandomTreeConfig {
        min_nodes: 10,
        max_nodes: 30,
        comm_min: 1,
        comm_max: 10,
        compute_scale: 100,
    }
    .generate(12);
    let tasks = 2_000;
    let oracle = Simulation::new(tree.clone(), SimConfig::interruptible(3, tasks)).run();
    let mut cfg = SimConfig::interruptible(3, tasks);
    cfg.observer = bc_core::ObserverKind::LastSample { initial: 0 };
    let measured = Simulation::new(tree, cfg).run();
    let or = mid_rate(&oracle.completion_times);
    let mr = mid_rate(&measured.completion_times);
    assert!(
        (or - mr).abs() / or < 0.05,
        "oracle {or} vs measured {mr} diverge"
    );
}

#[test]
fn self_last_variant_completes() {
    let tree = RandomTreeConfig {
        min_nodes: 5,
        max_nodes: 20,
        comm_min: 1,
        comm_max: 5,
        compute_scale: 20,
    }
    .generate(8);
    let mut cfg = SimConfig::interruptible(2, 150);
    cfg.self_first = false;
    let r = Simulation::new(tree, cfg).run();
    assert_eq!(r.tasks_completed(), 150);
}

#[test]
fn protocol_enum_distinguishes_behaviour_on_fig2a() {
    // Same buffers, same tree; only the protocol differs, and the event
    // trace must differ (preemptions happen).
    let a = Simulation::new(fig2a_tree(), {
        let mut c = SimConfig::interruptible(1, 200);
        c.protocol = Protocol::Interruptible;
        c
    })
    .run();
    let b = Simulation::new(fig2a_tree(), SimConfig::non_interruptible_fixed(1, 200)).run();
    assert_ne!(
        a.completion_times, b.completion_times,
        "interruption must change the schedule"
    );
    assert!(mid_rate(&a.completion_times) > mid_rate(&b.completion_times));
}

#[test]
fn used_nodes_subset_matches_theory_on_starved_tree() {
    let mut t = Tree::new(1_000_000);
    let _fast = t.add_child(NodeId::ROOT, 4, 4);
    let slow = t.add_child(NodeId::ROOT, 9, 1);
    let deep = t.add_child(slow, 1, 1);
    let ss = SteadyState::analyze(&t);
    let r = Simulation::new(t, SimConfig::interruptible(3, 500)).run();
    let used = r.used_nodes();
    // Theory says slow+deep starve; simulation may give them a startup
    // task but their totals stay negligible.
    assert!(!ss.used_nodes()[slow.index()]);
    assert!(r.tasks_per_node[deep.index()] < 15);
    assert!(used[1]);
}
