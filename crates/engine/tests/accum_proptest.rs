//! Property tests for [`RunStatsAccumulator`]: the algebra the streaming
//! campaign engine leans on. Over arbitrary synthesized [`RunResult`]s,
//! `merge` must be associative and commutative with `default()` as the
//! identity, and folding runs one by one must equal merging **any**
//! sharding of the same runs — the exact property that makes a streamed
//! sharded campaign bit-identical to the materialized path.

use bc_engine::{FaultStats, RunResult, RunStatsAccumulator};
use proptest::prelude::*;

/// Strategy: one arbitrary (but structurally valid) run result. Values
/// are kept within the ranges a real simulation can produce so sums stay
/// far from overflow even across hundreds of folded runs.
fn arb_run() -> impl Strategy<Value = RunResult> {
    (
        (
            0u64..5_000,     // tasks completed
            1u64..1_000_000, // end time
            0u64..2_000_000, // events
            0u64..10_000,    // preemptions
            0u64..50_000,    // transfers started
            0u64..50_000,    // requests sent
        ),
        prop::collection::vec((0u32..200, 0u64..500_000, 0u64..500_000), 1..12),
        (0u64..100, 0u64..100, 0u64..100, 0u64..100, 0u64..100),
    )
        .prop_map(
            |(
                (tasks, end_time, events, preemptions, transfers, requests),
                nodes,
                (faults, lost, reissued, retries, crashes),
            )| {
                let n = nodes.len();
                RunResult {
                    completion_times: (1..=tasks).collect(),
                    end_time,
                    tasks_per_node: vec![0; n],
                    max_buffers_per_node: nodes.iter().map(|&(b, _, _)| b).collect(),
                    final_buffers_per_node: vec![0; n],
                    peak_held_per_node: vec![0; n],
                    busy_compute_per_node: nodes.iter().map(|&(_, c, _)| c).collect(),
                    busy_link_per_node: nodes.iter().map(|&(_, _, l)| l).collect(),
                    preemptions_per_node: vec![0; n],
                    checkpoint_max_buffers: Vec::new(),
                    events_processed: events,
                    preemptions,
                    transfers_started: transfers,
                    requests_sent: requests,
                    faults: FaultStats {
                        faults_injected: faults,
                        tasks_lost: lost,
                        tasks_reissued: reissued,
                        retries,
                        crashes,
                        ..FaultStats::default()
                    },
                    arrivals: bc_engine::ArrivalStats::default(),
                }
            },
        )
}

fn fold_all(runs: &[RunResult]) -> RunStatsAccumulator {
    let mut acc = RunStatsAccumulator::new();
    for r in runs {
        acc.fold(r);
    }
    acc
}

proptest! {
    /// Any sharding of the runs, merged in any order, equals the
    /// one-by-one fold: merge is associative and commutative over
    /// real fold outputs.
    #[test]
    fn any_sharding_merges_to_the_sequential_fold(
        runs in prop::collection::vec(arb_run(), 1..24),
        cut_a in 0usize..24,
        cut_b in 0usize..24,
    ) {
        let whole = fold_all(&runs);
        let (i, j) = {
            let a = cut_a % (runs.len() + 1);
            let b = cut_b % (runs.len() + 1);
            (a.min(b), a.max(b))
        };
        let shards = [&runs[..i], &runs[i..j], &runs[j..]].map(fold_all);

        // Left association: ((s0 · s1) · s2).
        let mut left = shards[0].clone();
        left.merge(&shards[1]);
        left.merge(&shards[2]);
        prop_assert_eq!(&left, &whole);

        // Right association: (s0 · (s1 · s2)).
        let mut tail = shards[1].clone();
        tail.merge(&shards[2]);
        let mut right = shards[0].clone();
        right.merge(&tail);
        prop_assert_eq!(&right, &whole);

        // Reversed shard order (commutativity).
        let mut rev = shards[2].clone();
        rev.merge(&shards[1]);
        rev.merge(&shards[0]);
        prop_assert_eq!(&rev, &whole);
    }

    /// `default()` is the merge identity on both sides.
    #[test]
    fn default_is_identity(runs in prop::collection::vec(arb_run(), 0..12)) {
        let acc = fold_all(&runs);

        let mut left = RunStatsAccumulator::default();
        left.merge(&acc);
        prop_assert_eq!(&left, &acc);

        let mut right = acc.clone();
        right.merge(&RunStatsAccumulator::default());
        prop_assert_eq!(&right, &acc);
    }

    /// The derived means agree with a naive recomputation from the runs.
    #[test]
    fn means_match_naive_recomputation(runs in prop::collection::vec(arb_run(), 1..16)) {
        let acc = fold_all(&runs);
        let n = runs.len() as f64;
        let end_sum: f64 = runs.iter().map(|r| r.end_time as f64).sum();
        let ev_sum: f64 = runs.iter().map(|r| r.events_processed as f64).sum();
        prop_assert!((acc.mean_end_time() - end_sum / n).abs() < 1e-6);
        prop_assert!((acc.mean_events() - ev_sum / n).abs() < 1e-6);
        prop_assert_eq!(acc.end_time_min, runs.iter().map(|r| r.end_time).min().unwrap());
        prop_assert_eq!(acc.end_time_max, runs.iter().map(|r| r.end_time).max().unwrap());
    }
}
