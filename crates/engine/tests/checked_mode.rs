//! Checked simulation mode end-to-end: faithful runs pass every
//! invariant under all protocol variants, checking never perturbs
//! results, and deliberately injected protocol faults are caught.

use bc_core::GrowthGate;
use bc_engine::{FaultInjection, SimConfig, SimWorkspace, Simulation};
use bc_platform::examples::fig1_tree;
use bc_platform::{RandomTreeConfig, Tree};
use bc_simcore::split_seed;

fn variants(total_tasks: u64) -> Vec<(&'static str, SimConfig)> {
    vec![
        ("ic-fb1", SimConfig::interruptible(1, total_tasks)),
        ("ic-fb3", SimConfig::interruptible(3, total_tasks)),
        ("nonic-ib1", SimConfig::non_interruptible(1, total_tasks)),
        (
            "nonic-ib1-filled",
            SimConfig::non_interruptible_gated(1, GrowthGate::AfterPoolFilled, total_tasks),
        ),
        (
            "nonic-fb2",
            SimConfig::non_interruptible_fixed(2, total_tasks),
        ),
    ]
}

fn small_tree(seed: u64) -> Tree {
    RandomTreeConfig {
        min_nodes: 8,
        max_nodes: 14,
        comm_min: 1,
        comm_max: 10,
        compute_scale: 60,
    }
    .generate(seed)
}

/// Every protocol variant survives checked mode on the paper's Figure 1
/// tree and a spread of random trees — including the terminal
/// differential oracle (these trees are ≤ 16 nodes, so the LP simplex
/// cross-check runs too).
#[test]
fn faithful_runs_pass_checked_mode() {
    for (name, cfg) in variants(400) {
        let r = Simulation::new(fig1_tree(), cfg.clone().with_checked(true)).run();
        assert_eq!(r.tasks_completed(), 400, "{name} on fig1");
        for s in 0..6u64 {
            let tree = small_tree(split_seed(0xC0FFEE, s));
            let r = Simulation::new(tree, cfg.clone().with_checked(true)).run();
            assert_eq!(r.tasks_completed(), 400, "{name} on tree {s}");
        }
    }
}

/// Checked mode also holds under scripted platform changes (weight
/// changes, join, leave) — the checker must not false-positive on
/// dynamic topology, where the terminal theory checks are skipped.
#[test]
fn checked_mode_handles_dynamic_topology() {
    use bc_engine::{ChangeKind, PlannedChange};
    use bc_platform::NodeId;
    for (name, cfg) in variants(600) {
        let cfg = cfg
            .with_checked(true)
            .with_change(PlannedChange {
                after_tasks: 100,
                node: NodeId(1),
                kind: ChangeKind::CommTime(4),
            })
            .with_change(PlannedChange {
                after_tasks: 200,
                node: NodeId::ROOT,
                kind: ChangeKind::Join {
                    comm: 2,
                    compute: 5,
                },
            })
            .with_change(PlannedChange {
                after_tasks: 350,
                node: NodeId(2),
                kind: ChangeKind::Leave,
            });
        let r = Simulation::new(small_tree(77), cfg).run();
        assert_eq!(r.tasks_completed(), 600, "{name}");
    }
}

/// Regression: a node departs, then an *ancestor* of it departs. The
/// second leave's subtree walk must not re-reclaim what the first leave
/// already returned to the repository (the departed child's ledger still
/// reports its old holdings) — double-crediting broke task conservation.
#[test]
fn nested_leaves_conserve_tasks() {
    use bc_engine::{ChangeKind, PlannedChange};
    use bc_platform::NodeId;
    // A chain under the root guarantees ancestor/descendant leaves:
    // 0 -> 1 -> 2 -> 3 -> 4, plus a side child to keep the root busy.
    let mut tree = Tree::new(10);
    let mut prev = NodeId::ROOT;
    for _ in 0..4 {
        prev = tree.add_child(prev, 2, 7);
    }
    tree.add_child(NodeId::ROOT, 3, 9);
    for (name, cfg) in variants(600) {
        let cfg = cfg
            .with_checked(true)
            .with_change(PlannedChange {
                after_tasks: 150,
                node: NodeId(3), // deep node leaves first...
                kind: ChangeKind::Leave,
            })
            .with_change(PlannedChange {
                after_tasks: 300,
                node: NodeId(1), // ...then its ancestor takes the rest
                kind: ChangeKind::Leave,
            });
        let r = Simulation::new(tree.clone(), cfg).run();
        assert_eq!(r.tasks_completed(), 600, "{name}");
    }
}

/// Checking is read-only: a checked and an unchecked run of the same
/// configuration produce identical traces.
#[test]
fn checked_mode_is_observationally_transparent() {
    for (name, cfg) in variants(500) {
        let tree = small_tree(split_seed(9, 9));
        let checked = Simulation::new(tree.clone(), cfg.clone().with_checked(true)).run();
        let unchecked = Simulation::new(tree, cfg.with_checked(false)).run();
        assert_eq!(checked.end_time, unchecked.end_time, "{name}");
        assert_eq!(
            checked.completion_times, unchecked.completion_times,
            "{name}"
        );
        assert_eq!(checked.tasks_per_node, unchecked.tasks_per_node, "{name}");
        assert_eq!(
            checked.events_processed, unchecked.events_processed,
            "{name}"
        );
    }
}

/// The manual verification entry points work mid-run (the fuzzer drives
/// them with `checked` off).
#[test]
fn manual_verification_between_steps() {
    let cfg = SimConfig::interruptible(3, 300).with_checked(false);
    let mut sim = Simulation::with_workspace(fig1_tree(), cfg, SimWorkspace::new());
    sim.start();
    sim.verify_invariants().expect("quiescent start state");
    while sim.step() {
        sim.verify_invariants().expect("mid-run invariants");
    }
    sim.verify_invariants().expect("final state");
    sim.verify_terminal().expect("terminal oracle");
}

/// An FB off-by-one (pools provisioned one larger than the configured
/// policy) violates buffer legality at the first sweep.
#[test]
#[should_panic(expected = "buffer-bound")]
fn fb_off_by_one_is_caught() {
    let cfg = SimConfig::interruptible(3, 500)
        .with_checked(true)
        .with_fault(FaultInjection::FbOffByOne);
    let _ = Simulation::new(fig1_tree(), cfg).run();
}

/// A silently vanishing task violates conservation at the next sweep
/// (long before the run would deadlock in wind-down).
#[test]
#[should_panic(expected = "task-conservation")]
fn leaked_task_is_caught() {
    let cfg = SimConfig::interruptible(3, 500)
        .with_checked(true)
        .with_fault(FaultInjection::LeakTask { every: 7 });
    let _ = Simulation::new(fig1_tree(), cfg).run();
}

/// The same faults surface as `Err` through the manual entry point —
/// the detection channel the fuzzer's shrinker uses.
#[test]
fn faults_surface_as_violations_not_panics_when_unchecked() {
    let cfg = SimConfig::interruptible(2, 400)
        .with_checked(false)
        .with_fault(FaultInjection::FbOffByOne);
    let mut sim = Simulation::with_workspace(fig1_tree(), cfg, SimWorkspace::new());
    sim.start();
    let v = sim.verify_invariants().expect_err("fault must be visible");
    assert_eq!(v.check, "buffer-bound");
    assert!(v.message.contains("fixed pool"), "got: {v}");
}
