//! Verifies the campaign-engine acceptance criterion: the steady-state
//! event loop performs **zero heap allocations per event**, and a reused
//! [`SimWorkspace`] makes entire repeat runs allocation-free.
//!
//! A counting global allocator tallies every allocation on this thread;
//! the tests warm the workspace (first runs grow the arenas to their
//! high-water marks), snapshot the counter, then drive thousands more
//! events/runs and assert the counter did not move.

use bc_engine::{NullSink, RingRecorder, SimConfig, SimWorkspace, Simulation};
use bc_platform::{RandomTreeConfig, Tree};
use bc_simcore::split_seed;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

thread_local! {
    // const-init: no lazy initialization, so reading the counter from
    // inside `alloc` cannot itself allocate or recurse.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

static COUNTING: AtomicBool = AtomicBool::new(false);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.with(|c| c.set(c.get() + 1));
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.with(|c| c.set(c.get() + 1));
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn random_tree(seed: u64) -> Tree {
    RandomTreeConfig::default().generate(seed)
}

/// Within one run: once start-up has passed, each further event touches
/// only pre-sized containers.
///
/// Both tests measure the *production* (unchecked) path: checked mode's
/// terminal oracle does exact rational analysis, which allocates, so the
/// configs opt out explicitly (under `debug_assertions` checked would
/// otherwise default on).
#[test]
fn steady_state_loop_is_allocation_free_per_event() {
    for cfg in [
        SimConfig::interruptible(3, 4000).with_checked(false),
        SimConfig::non_interruptible(1, 4000).with_checked(false),
    ] {
        let mut sim = Simulation::with_workspace(random_tree(7), cfg, SimWorkspace::new());
        sim.start();
        // Warm up: completion_times is pre-reserved, but the agenda heap,
        // free list, and per-node queues reach their high-water marks only
        // once the pipeline is saturated.
        while sim.completed() < 2000 {
            assert!(sim.step(), "run ended during warm-up");
        }
        COUNTING.store(true, Ordering::SeqCst);
        let before = allocs();
        for _ in 0..5000 {
            if !sim.step() {
                break;
            }
        }
        let after = allocs();
        COUNTING.store(false, Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "steady-state event loop allocated ({:?})",
            sim.now()
        );
    }
}

/// The tracing claim: with the default [`NullSink`], instrumentation
/// compiles down to nothing — the explicitly-traced simulation is exactly
/// as allocation-free per event as the untraced one. This is the
/// "zero overhead when off" half of the trace subsystem's contract.
#[test]
fn null_sink_traced_loop_is_allocation_free_per_event() {
    let cfg = SimConfig::interruptible(3, 4000).with_checked(false);
    let mut sim = Simulation::traced(random_tree(7), cfg, SimWorkspace::new(), NullSink);
    sim.start();
    while sim.completed() < 2000 {
        assert!(sim.step(), "run ended during warm-up");
    }
    COUNTING.store(true, Ordering::SeqCst);
    let before = allocs();
    for _ in 0..5000 {
        if !sim.step() {
            break;
        }
    }
    let after = allocs();
    COUNTING.store(false, Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "NullSink-traced event loop allocated ({:?})",
        sim.now()
    );
}

/// And the "cheap when on" half: a [`RingRecorder`] preallocates its ring
/// at construction, so steady-state recording into it is allocation-free
/// too — safe to leave armed in checked production runs.
#[test]
fn ring_recorder_traced_loop_is_allocation_free_per_event() {
    let cfg = SimConfig::interruptible(3, 4000).with_checked(false);
    let sink = RingRecorder::new(512);
    let mut sim = Simulation::traced(random_tree(7), cfg, SimWorkspace::new(), sink);
    sim.start();
    while sim.completed() < 2000 {
        assert!(sim.step(), "run ended during warm-up");
    }
    COUNTING.store(true, Ordering::SeqCst);
    let before = allocs();
    for _ in 0..5000 {
        if !sim.step() {
            break;
        }
    }
    let after = allocs();
    COUNTING.store(false, Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "RingRecorder-traced event loop allocated ({:?})",
        sim.now()
    );
}

/// Across runs: after a few campaign iterations warm the workspace,
/// whole simulations (construction included) run without allocating.
#[test]
fn reused_workspace_makes_repeat_runs_allocation_free() {
    let cfg = SimConfig::interruptible(3, 500).with_checked(false);
    let mut ws = SimWorkspace::new();
    let tree = random_tree(split_seed(42, 9));
    // Warm runs on the same tree grow every arena to its final size.
    for _ in 0..3 {
        let r = ws.run(tree.clone(), cfg.clone());
        assert_eq!(r.tasks_completed(), 500);
    }
    let trees: Vec<Tree> = (0..5).map(|_| tree.clone()).collect();
    COUNTING.store(true, Ordering::SeqCst);
    let before = allocs();
    for t in trees {
        // `t` is consumed and dropped inside; only `into_result`'s final
        // trace vectors allocate, and those are the product we measure
        // separately below.
        let (result, returned) =
            Simulation::with_workspace(t, cfg.clone(), std::mem::take(&mut ws)).run_reusing();
        ws = returned;
        // RunResult construction allocates its per-node summary vectors
        // (the completion_times Vec is moved, not copied); everything else
        // must be free.
        assert_eq!(result.tasks_completed(), 500);
        drop(result);
    }
    let after = allocs();
    COUNTING.store(false, Ordering::SeqCst);
    // Per run: exactly the six per-node summary vectors plus the next
    // run's completion_times/checkpoint reserve — a small constant,
    // independent of event count (~570k events would otherwise show up
    // as tens of thousands of allocations).
    let per_run = (after - before) / 5;
    assert!(
        per_run <= 16,
        "expected only constant per-run result allocations, got {per_run} per run"
    );
}
